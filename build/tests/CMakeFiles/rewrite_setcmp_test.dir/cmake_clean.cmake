file(REMOVE_RECURSE
  "CMakeFiles/rewrite_setcmp_test.dir/rewrite_setcmp_test.cc.o"
  "CMakeFiles/rewrite_setcmp_test.dir/rewrite_setcmp_test.cc.o.d"
  "rewrite_setcmp_test"
  "rewrite_setcmp_test.pdb"
  "rewrite_setcmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_setcmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
