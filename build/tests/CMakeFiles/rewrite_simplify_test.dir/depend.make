# Empty dependencies file for rewrite_simplify_test.
# This may be replaced when dependencies are built.
