file(REMOVE_RECURSE
  "CMakeFiles/rewrite_simplify_test.dir/rewrite_simplify_test.cc.o"
  "CMakeFiles/rewrite_simplify_test.dir/rewrite_simplify_test.cc.o.d"
  "rewrite_simplify_test"
  "rewrite_simplify_test.pdb"
  "rewrite_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
