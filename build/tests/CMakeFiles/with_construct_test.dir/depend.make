# Empty dependencies file for with_construct_test.
# This may be replaced when dependencies are built.
