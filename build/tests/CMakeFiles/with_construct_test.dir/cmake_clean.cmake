file(REMOVE_RECURSE
  "CMakeFiles/with_construct_test.dir/with_construct_test.cc.o"
  "CMakeFiles/with_construct_test.dir/with_construct_test.cc.o.d"
  "with_construct_test"
  "with_construct_test.pdb"
  "with_construct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/with_construct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
