# Empty dependencies file for value_property_test.
# This may be replaced when dependencies are built.
