file(REMOVE_RECURSE
  "CMakeFiles/value_property_test.dir/value_property_test.cc.o"
  "CMakeFiles/value_property_test.dir/value_property_test.cc.o.d"
  "value_property_test"
  "value_property_test.pdb"
  "value_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
