# Empty compiler generated dependencies file for pnhl_test.
# This may be replaced when dependencies are built.
