file(REMOVE_RECURSE
  "CMakeFiles/pnhl_test.dir/pnhl_test.cc.o"
  "CMakeFiles/pnhl_test.dir/pnhl_test.cc.o.d"
  "pnhl_test"
  "pnhl_test.pdb"
  "pnhl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnhl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
