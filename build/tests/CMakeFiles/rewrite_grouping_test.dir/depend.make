# Empty dependencies file for rewrite_grouping_test.
# This may be replaced when dependencies are built.
