file(REMOVE_RECURSE
  "CMakeFiles/rewrite_grouping_test.dir/rewrite_grouping_test.cc.o"
  "CMakeFiles/rewrite_grouping_test.dir/rewrite_grouping_test.cc.o.d"
  "rewrite_grouping_test"
  "rewrite_grouping_test.pdb"
  "rewrite_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
