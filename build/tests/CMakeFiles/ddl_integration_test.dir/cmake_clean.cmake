file(REMOVE_RECURSE
  "CMakeFiles/ddl_integration_test.dir/ddl_integration_test.cc.o"
  "CMakeFiles/ddl_integration_test.dir/ddl_integration_test.cc.o.d"
  "ddl_integration_test"
  "ddl_integration_test.pdb"
  "ddl_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
