# Empty dependencies file for ddl_integration_test.
# This may be replaced when dependencies are built.
