# Empty compiler generated dependencies file for rewrite_unnest_test.
# This may be replaced when dependencies are built.
