file(REMOVE_RECURSE
  "CMakeFiles/rewrite_unnest_test.dir/rewrite_unnest_test.cc.o"
  "CMakeFiles/rewrite_unnest_test.dir/rewrite_unnest_test.cc.o.d"
  "rewrite_unnest_test"
  "rewrite_unnest_test.pdb"
  "rewrite_unnest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_unnest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
