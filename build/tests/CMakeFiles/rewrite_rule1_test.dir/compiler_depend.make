# Empty compiler generated dependencies file for rewrite_rule1_test.
# This may be replaced when dependencies are built.
