file(REMOVE_RECURSE
  "CMakeFiles/rewrite_rule1_test.dir/rewrite_rule1_test.cc.o"
  "CMakeFiles/rewrite_rule1_test.dir/rewrite_rule1_test.cc.o.d"
  "rewrite_rule1_test"
  "rewrite_rule1_test.pdb"
  "rewrite_rule1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_rule1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
