file(REMOVE_RECURSE
  "CMakeFiles/rewrite_pushdown_test.dir/rewrite_pushdown_test.cc.o"
  "CMakeFiles/rewrite_pushdown_test.dir/rewrite_pushdown_test.cc.o.d"
  "rewrite_pushdown_test"
  "rewrite_pushdown_test.pdb"
  "rewrite_pushdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
