# Empty compiler generated dependencies file for rewrite_pushdown_test.
# This may be replaced when dependencies are built.
