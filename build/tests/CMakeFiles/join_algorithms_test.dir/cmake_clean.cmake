file(REMOVE_RECURSE
  "CMakeFiles/join_algorithms_test.dir/join_algorithms_test.cc.o"
  "CMakeFiles/join_algorithms_test.dir/join_algorithms_test.cc.o.d"
  "join_algorithms_test"
  "join_algorithms_test.pdb"
  "join_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
