# Empty dependencies file for join_algorithms_test.
# This may be replaced when dependencies are built.
