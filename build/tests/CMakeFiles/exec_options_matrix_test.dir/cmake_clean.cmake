file(REMOVE_RECURSE
  "CMakeFiles/exec_options_matrix_test.dir/exec_options_matrix_test.cc.o"
  "CMakeFiles/exec_options_matrix_test.dir/exec_options_matrix_test.cc.o.d"
  "exec_options_matrix_test"
  "exec_options_matrix_test.pdb"
  "exec_options_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_options_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
