# Empty compiler generated dependencies file for exec_options_matrix_test.
# This may be replaced when dependencies are built.
