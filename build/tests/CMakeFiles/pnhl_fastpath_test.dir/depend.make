# Empty dependencies file for pnhl_fastpath_test.
# This may be replaced when dependencies are built.
