file(REMOVE_RECURSE
  "CMakeFiles/pnhl_fastpath_test.dir/pnhl_fastpath_test.cc.o"
  "CMakeFiles/pnhl_fastpath_test.dir/pnhl_fastpath_test.cc.o.d"
  "pnhl_fastpath_test"
  "pnhl_fastpath_test.pdb"
  "pnhl_fastpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnhl_fastpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
