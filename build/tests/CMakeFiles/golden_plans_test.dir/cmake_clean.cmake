file(REMOVE_RECURSE
  "CMakeFiles/golden_plans_test.dir/golden_plans_test.cc.o"
  "CMakeFiles/golden_plans_test.dir/golden_plans_test.cc.o.d"
  "golden_plans_test"
  "golden_plans_test.pdb"
  "golden_plans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
