
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/analysis.cc" "src/CMakeFiles/n2j.dir/adl/analysis.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/analysis.cc.o.d"
  "/root/repo/src/adl/expr.cc" "src/CMakeFiles/n2j.dir/adl/expr.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/expr.cc.o.d"
  "/root/repo/src/adl/printer.cc" "src/CMakeFiles/n2j.dir/adl/printer.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/printer.cc.o.d"
  "/root/repo/src/adl/schema.cc" "src/CMakeFiles/n2j.dir/adl/schema.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/schema.cc.o.d"
  "/root/repo/src/adl/type.cc" "src/CMakeFiles/n2j.dir/adl/type.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/type.cc.o.d"
  "/root/repo/src/adl/typecheck.cc" "src/CMakeFiles/n2j.dir/adl/typecheck.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/typecheck.cc.o.d"
  "/root/repo/src/adl/value.cc" "src/CMakeFiles/n2j.dir/adl/value.cc.o" "gcc" "src/CMakeFiles/n2j.dir/adl/value.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/n2j.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/n2j.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/n2j.dir/common/status.cc.o" "gcc" "src/CMakeFiles/n2j.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/n2j.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/n2j.dir/common/str_util.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/n2j.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/n2j.dir/core/engine.cc.o.d"
  "/root/repo/src/exec/equi_join.cc" "src/CMakeFiles/n2j.dir/exec/equi_join.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/equi_join.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/n2j.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/eval.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/CMakeFiles/n2j.dir/exec/materialize.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/materialize.cc.o.d"
  "/root/repo/src/exec/physical.cc" "src/CMakeFiles/n2j.dir/exec/physical.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/physical.cc.o.d"
  "/root/repo/src/exec/physical_membership.cc" "src/CMakeFiles/n2j.dir/exec/physical_membership.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/physical_membership.cc.o.d"
  "/root/repo/src/exec/physical_sortmerge.cc" "src/CMakeFiles/n2j.dir/exec/physical_sortmerge.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/physical_sortmerge.cc.o.d"
  "/root/repo/src/exec/pnhl.cc" "src/CMakeFiles/n2j.dir/exec/pnhl.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/pnhl.cc.o.d"
  "/root/repo/src/exec/pnhl_fastpath.cc" "src/CMakeFiles/n2j.dir/exec/pnhl_fastpath.cc.o" "gcc" "src/CMakeFiles/n2j.dir/exec/pnhl_fastpath.cc.o.d"
  "/root/repo/src/oosql/ast.cc" "src/CMakeFiles/n2j.dir/oosql/ast.cc.o" "gcc" "src/CMakeFiles/n2j.dir/oosql/ast.cc.o.d"
  "/root/repo/src/oosql/lexer.cc" "src/CMakeFiles/n2j.dir/oosql/lexer.cc.o" "gcc" "src/CMakeFiles/n2j.dir/oosql/lexer.cc.o.d"
  "/root/repo/src/oosql/parser.cc" "src/CMakeFiles/n2j.dir/oosql/parser.cc.o" "gcc" "src/CMakeFiles/n2j.dir/oosql/parser.cc.o.d"
  "/root/repo/src/oosql/translate.cc" "src/CMakeFiles/n2j.dir/oosql/translate.cc.o" "gcc" "src/CMakeFiles/n2j.dir/oosql/translate.cc.o.d"
  "/root/repo/src/rewrite/helpers.cc" "src/CMakeFiles/n2j.dir/rewrite/helpers.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/helpers.cc.o.d"
  "/root/repo/src/rewrite/hoist.cc" "src/CMakeFiles/n2j.dir/rewrite/hoist.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/hoist.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/CMakeFiles/n2j.dir/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rewriter.cc.o.d"
  "/root/repo/src/rewrite/rule_grouping.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_grouping.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_grouping.cc.o.d"
  "/root/repo/src/rewrite/rule_map.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_map.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_map.cc.o.d"
  "/root/repo/src/rewrite/rule_pushdown.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_pushdown.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_pushdown.cc.o.d"
  "/root/repo/src/rewrite/rule_quantifier.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_quantifier.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_quantifier.cc.o.d"
  "/root/repo/src/rewrite/rule_setcmp.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_setcmp.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_setcmp.cc.o.d"
  "/root/repo/src/rewrite/rule_unnest_attr.cc" "src/CMakeFiles/n2j.dir/rewrite/rule_unnest_attr.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/rule_unnest_attr.cc.o.d"
  "/root/repo/src/rewrite/simplify.cc" "src/CMakeFiles/n2j.dir/rewrite/simplify.cc.o" "gcc" "src/CMakeFiles/n2j.dir/rewrite/simplify.cc.o.d"
  "/root/repo/src/storage/csv_loader.cc" "src/CMakeFiles/n2j.dir/storage/csv_loader.cc.o" "gcc" "src/CMakeFiles/n2j.dir/storage/csv_loader.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/n2j.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/n2j.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/datagen.cc" "src/CMakeFiles/n2j.dir/storage/datagen.cc.o" "gcc" "src/CMakeFiles/n2j.dir/storage/datagen.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/n2j.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/n2j.dir/storage/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
