# Empty compiler generated dependencies file for n2j.
# This may be replaced when dependencies are built.
