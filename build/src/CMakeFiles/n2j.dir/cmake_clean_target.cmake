file(REMOVE_RECURSE
  "libn2j.a"
)
