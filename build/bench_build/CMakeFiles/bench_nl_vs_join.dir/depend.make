# Empty dependencies file for bench_nl_vs_join.
# This may be replaced when dependencies are built.
