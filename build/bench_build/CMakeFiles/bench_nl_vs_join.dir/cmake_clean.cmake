file(REMOVE_RECURSE
  "../bench/bench_nl_vs_join"
  "../bench/bench_nl_vs_join.pdb"
  "CMakeFiles/bench_nl_vs_join.dir/bench_nl_vs_join.cc.o"
  "CMakeFiles/bench_nl_vs_join.dir/bench_nl_vs_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nl_vs_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
