file(REMOVE_RECURSE
  "../bench/bench_fig1_nested_query"
  "../bench/bench_fig1_nested_query.pdb"
  "CMakeFiles/bench_fig1_nested_query.dir/bench_fig1_nested_query.cc.o"
  "CMakeFiles/bench_fig1_nested_query.dir/bench_fig1_nested_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_nested_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
