# Empty compiler generated dependencies file for bench_fig1_nested_query.
# This may be replaced when dependencies are built.
