file(REMOVE_RECURSE
  "../bench/bench_strategy_ablation"
  "../bench/bench_strategy_ablation.pdb"
  "CMakeFiles/bench_strategy_ablation.dir/bench_strategy_ablation.cc.o"
  "CMakeFiles/bench_strategy_ablation.dir/bench_strategy_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
