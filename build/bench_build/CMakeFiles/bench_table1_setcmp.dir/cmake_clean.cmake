file(REMOVE_RECURSE
  "../bench/bench_table1_setcmp"
  "../bench/bench_table1_setcmp.pdb"
  "CMakeFiles/bench_table1_setcmp.dir/bench_table1_setcmp.cc.o"
  "CMakeFiles/bench_table1_setcmp.dir/bench_table1_setcmp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_setcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
