file(REMOVE_RECURSE
  "../bench/bench_materialize"
  "../bench/bench_materialize.pdb"
  "CMakeFiles/bench_materialize.dir/bench_materialize.cc.o"
  "CMakeFiles/bench_materialize.dir/bench_materialize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
