file(REMOVE_RECURSE
  "../bench/bench_fig3_nestjoin"
  "../bench/bench_fig3_nestjoin.pdb"
  "CMakeFiles/bench_fig3_nestjoin.dir/bench_fig3_nestjoin.cc.o"
  "CMakeFiles/bench_fig3_nestjoin.dir/bench_fig3_nestjoin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nestjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
