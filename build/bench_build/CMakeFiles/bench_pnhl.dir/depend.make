# Empty dependencies file for bench_pnhl.
# This may be replaced when dependencies are built.
