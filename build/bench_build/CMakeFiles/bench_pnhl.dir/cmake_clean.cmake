file(REMOVE_RECURSE
  "../bench/bench_pnhl"
  "../bench/bench_pnhl.pdb"
  "CMakeFiles/bench_pnhl.dir/bench_pnhl.cc.o"
  "CMakeFiles/bench_pnhl.dir/bench_pnhl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pnhl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
