file(REMOVE_RECURSE
  "../bench/bench_table3_bugs"
  "../bench/bench_table3_bugs.pdb"
  "CMakeFiles/bench_table3_bugs.dir/bench_table3_bugs.cc.o"
  "CMakeFiles/bench_table3_bugs.dir/bench_table3_bugs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
