# Empty dependencies file for bench_table3_bugs.
# This may be replaced when dependencies are built.
