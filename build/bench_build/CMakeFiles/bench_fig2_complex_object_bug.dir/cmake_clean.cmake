file(REMOVE_RECURSE
  "../bench/bench_fig2_complex_object_bug"
  "../bench/bench_fig2_complex_object_bug.pdb"
  "CMakeFiles/bench_fig2_complex_object_bug.dir/bench_fig2_complex_object_bug.cc.o"
  "CMakeFiles/bench_fig2_complex_object_bug.dir/bench_fig2_complex_object_bug.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_complex_object_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
