# Empty dependencies file for bench_fig2_complex_object_bug.
# This may be replaced when dependencies are built.
