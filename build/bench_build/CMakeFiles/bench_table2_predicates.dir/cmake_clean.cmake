file(REMOVE_RECURSE
  "../bench/bench_table2_predicates"
  "../bench/bench_table2_predicates.pdb"
  "CMakeFiles/bench_table2_predicates.dir/bench_table2_predicates.cc.o"
  "CMakeFiles/bench_table2_predicates.dir/bench_table2_predicates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
