file(REMOVE_RECURSE
  "CMakeFiles/csv_analytics.dir/csv_analytics.cc.o"
  "CMakeFiles/csv_analytics.dir/csv_analytics.cc.o.d"
  "csv_analytics"
  "csv_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
