# Empty compiler generated dependencies file for oosql_shell.
# This may be replaced when dependencies are built.
