file(REMOVE_RECURSE
  "CMakeFiles/oosql_shell.dir/oosql_shell.cc.o"
  "CMakeFiles/oosql_shell.dir/oosql_shell.cc.o.d"
  "oosql_shell"
  "oosql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
