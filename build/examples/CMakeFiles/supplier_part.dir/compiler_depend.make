# Empty compiler generated dependencies file for supplier_part.
# This may be replaced when dependencies are built.
