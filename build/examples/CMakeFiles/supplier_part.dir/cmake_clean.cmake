file(REMOVE_RECURSE
  "CMakeFiles/supplier_part.dir/supplier_part.cc.o"
  "CMakeFiles/supplier_part.dir/supplier_part.cc.o.d"
  "supplier_part"
  "supplier_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplier_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
