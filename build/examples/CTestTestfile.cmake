# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_supplier_part "/root/repo/build/examples/supplier_part")
set_tests_properties(example_supplier_part PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_referential_integrity "/root/repo/build/examples/referential_integrity" "200" "50")
set_tests_properties(example_referential_integrity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csv_analytics "/root/repo/build/examples/csv_analytics")
set_tests_properties(example_csv_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
