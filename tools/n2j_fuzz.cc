// Differential query fuzzer CLI: random OOSQL vs. the nested-loop
// oracle across the rewrite/exec option matrix. Exit code 0 iff every
// round matched (and every malformed query was rejected gracefully).
//
//   n2j_fuzz --seed=1 --rounds=1000                # the default matrix
//   n2j_fuzz --rounds=200 --matrix=minimal         # 3-cell quick mode
//   n2j_fuzz --rounds=500 --reject-rounds=500      # + rejection fuzzing
//   n2j_fuzz --seed=S --start-round=R --rounds=1   # replay round R of S
//
// Reproducing a failure: the fuzzer prints the round index and seed of
// every mismatch; rerun with the same --seed plus --start-round=<round>
// --rounds=1 to regenerate exactly that database and query (see
// docs/FUZZING.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "fuzz/fuzzer.h"
#include "obs/querylog.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--rounds=N] [--time-budget-ms=N]\n"
               "          [--matrix=default|minimal|unsafe] "
               "[--reject-rounds=N]\n"
               "          [--start-round=N] [--max-rows=N] [--no-shrink] "
               "[--verbose]\n"
               "          [--querylog=PATH]   dump the flight recorder "
               "as JSONL on exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  n2j::fuzz::FuzzOptions options;
  options.rounds = 100;
  int reject_rounds = 0;
  std::string querylog_path;
  std::string v;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "--seed", &v)) {
      options.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--rounds", &v)) {
      options.rounds = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--time-budget-ms", &v)) {
      options.time_budget_ms = std::atoll(v.c_str());
    } else if (ParseFlag(a, "--reject-rounds", &v)) {
      reject_rounds = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--start-round", &v)) {
      options.start_round = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--max-rows", &v)) {
      options.tables.max_rows = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--querylog", &v)) {
      querylog_path = v;
    } else if (ParseFlag(a, "--matrix", &v)) {
      if (v == "minimal") {
        options.matrix = n2j::fuzz::MinimalConfigMatrix();
      } else if (v == "unsafe") {
        // Demonstration mode: force the Complex-Object-bug rewrite the
        // paper warns about; expect mismatches.
        options.matrix = n2j::fuzz::UnsafeGroupingMatrix();
      } else if (v != "default") {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(a, "--no-shrink") == 0) {
      options.shrink_failures = false;
    } else if (std::strcmp(a, "--verbose") == 0) {
      options.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::vector<n2j::fuzz::FuzzFailure> failures;
  n2j::fuzz::FuzzSummary summary =
      n2j::fuzz::RunFuzzer(options, &failures, &std::cout);

  int rejected = 0;
  if (reject_rounds > 0) {
    n2j::fuzz::FuzzOptions reject = options;
    reject.rounds = reject_rounds;
    rejected = n2j::fuzz::RunRejectionRounds(reject, &std::cout);
    std::cout << "rejection rounds survived: " << rejected << "\n";
  }

  if (!querylog_path.empty()) {
    n2j::obs::QueryLog& qlog = n2j::obs::QueryLog::Global();
    n2j::Status st = qlog.DumpJsonl(querylog_path);
    if (!st.ok()) {
      std::cerr << "querylog dump failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "querylog: " << qlog.total_appended()
              << " queries recorded, last "
              << qlog.Snapshot().size() << " dumped to " << querylog_path
              << "\n";
  }

  if (!summary.Clean()) {
    std::cout << "FAIL: " << summary.mismatches << " mismatches, "
              << summary.front_end_rejects << " front-end rejects\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
