// Flight-recorder log reader: digests the query-log JSONL that
// QueryLog::DumpJsonl writes (n2j_fuzz --querylog=..., bench
// --querylog=..., the shell's \log) into the three tables a post-mortem
// starts from — slowest queries, worst cardinality estimates, most
// fallback-prone queries — plus an aggregate header.
//
//   n2j_logcat querylog.jsonl                # top 10 of each
//   n2j_logcat --top=25 querylog.jsonl      # deeper tables
//   n2j_logcat a.jsonl b.jsonl              # merged across files

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "obs/querylog.h"

namespace {

using n2j::StrFormat;
using n2j::obs::QueryLogRecord;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--top=K] <querylog.jsonl>...\n", argv0);
  return 2;
}

/// Query text fit for one table cell: first line only, elided at 60.
std::string Ellipsize(const std::string& s) {
  std::string flat = s.substr(0, s.find('\n'));
  if (flat.size() <= 60) return flat;
  return flat.substr(0, 57) + "...";
}

void PrintTable(const char* title, const std::vector<const QueryLogRecord*>&
                rows, const char* value_header,
                std::string (*value)(const QueryLogRecord&)) {
  std::printf("\n%s\n", title);
  std::printf("  %6s  %-12s  %-10s  %-8s  %s\n", "id", value_header,
              "strategy", "backend", "query");
  for (const QueryLogRecord* r : rows) {
    std::printf("  %6llu  %-12s  %-10s  %-8s  %s%s\n",
                static_cast<unsigned long long>(r->id), value(*r).c_str(),
                r->strategy.c_str(), r->backend.c_str(),
                Ellipsize(r->query).c_str(),
                r->error.empty() ? "" : "  [error]");
  }
}

/// The `top` records ranked by `metric` descending (ties: older first),
/// records with a zero metric skipped.
std::vector<const QueryLogRecord*> TopBy(
    const std::vector<QueryLogRecord>& records, size_t top,
    double (*metric)(const QueryLogRecord&)) {
  std::vector<const QueryLogRecord*> out;
  for (const QueryLogRecord& r : records) {
    if (metric(r) > 0.0) out.push_back(&r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](const QueryLogRecord* a, const QueryLogRecord* b) {
                     return metric(*a) > metric(*b);
                   });
  if (out.size() > top) out.resize(top);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top = 10;
  std::vector<std::string> paths;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--top", &v)) {
      top = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) return Usage(argv[0]);

  std::vector<QueryLogRecord> records;
  size_t malformed = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      QueryLogRecord r;
      if (QueryLogRecord::FromJson(line, &r)) {
        records.push_back(std::move(r));
      } else {
        ++malformed;
      }
    }
  }
  if (malformed > 0) {
    std::fprintf(stderr, "warning: %zu malformed lines skipped\n", malformed);
  }
  if (records.empty()) {
    std::printf("no records\n");
    return malformed > 0 ? 1 : 0;
  }

  size_t errors = 0;
  uint64_t fallbacks = 0;
  double total_wall = 0.0, max_q = 0.0;
  for (const QueryLogRecord& r : records) {
    if (!r.error.empty()) ++errors;
    fallbacks += r.fallbacks();
    total_wall += r.wall_ms;
    max_q = std::max(max_q, r.max_q);
  }
  std::printf(
      "%zu queries (%zu errors), %.1fms total wall, %llu fallbacks, "
      "max q-error %.2f\n",
      records.size(), errors, total_wall,
      static_cast<unsigned long long>(fallbacks), max_q);

  PrintTable(
      StrFormat("top %zu slowest", top).c_str(),
      TopBy(records, top,
            [](const QueryLogRecord& r) { return r.wall_ms; }),
      "wall_ms", [](const QueryLogRecord& r) {
        return StrFormat("%.3f", r.wall_ms);
      });
  PrintTable(
      StrFormat("top %zu highest q-error", top).c_str(),
      TopBy(records, top, [](const QueryLogRecord& r) {
        return r.max_q > 1.0 ? r.max_q : 0.0;
      }),
      "max_q", [](const QueryLogRecord& r) {
        return StrFormat("%.2f", r.max_q);
      });
  PrintTable(
      StrFormat("top %zu most fallbacks", top).c_str(),
      TopBy(records, top,
            [](const QueryLogRecord& r) {
              return static_cast<double>(r.fallbacks());
            }),
      "fallbacks", [](const QueryLogRecord& r) {
        return StrFormat("%llu",
                         static_cast<unsigned long long>(r.fallbacks()));
      });
  return 0;
}
