// An interactive OOSQL shell over the supplier–part database. Queries
// end with ';'. Meta commands:
//   \schema          print the schema
//   \tables          list tables and sizes
//   \explain <query> show translation, optimization trace and plan
//   \nestedloop      toggle the rewriter off/on (to feel the difference)
//   \threads N       set worker threads for the parallel operators
//   \compiled        toggle bytecode-compiled lambda evaluation
//   \stats           print the last query's execution counters
//   \quit            exit
//
//   $ ./build/examples/oosql_shell
//   oosql> select s.sname from s in SUPPLIER where ... ;

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "adl/printer.h"
#include "core/engine.h"
#include "storage/datagen.h"

using namespace n2j;  // NOLINT — example code

namespace {

void PrintResult(const Value& v, size_t limit = 20) {
  if (!v.is_set()) {
    std::printf("%s\n", v.ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const Value& e : v.elements()) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more)\n", v.set_size() - limit);
      break;
    }
    std::printf("  %s\n", e.ToString().c_str());
  }
  std::printf("(%zu tuples)\n", v.set_size());
}

}  // namespace

int main() {
  SupplierPartConfig config;
  config.seed = 7;
  config.num_parts = 100;
  config.num_suppliers = 25;
  config.parts_per_supplier = 6;
  config.match_fraction = 0.9;
  config.num_deliveries = 40;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);

  bool rewrites_enabled = true;
  bool compiled_enabled = true;
  int num_threads = 1;
  EvalStats last_stats;
  bool have_stats = false;
  std::printf(
      "nested-to-join OOSQL shell — supplier-part database loaded\n"
      "(|SUPPLIER| = %zu, |PART| = %zu, |DELIVERY| = %zu)\n"
      "end queries with ';'. try: \\schema, \\tables, \\explain, \\stats, "
      "\\quit\n",
      db->FindTable("SUPPLIER")->size(), db->FindTable("PART")->size(),
      db->FindTable("DELIVERY")->size());

  std::string buffer;
  std::string line;
  std::printf("oosql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    // Meta commands act on a whole line.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      std::istringstream iss(line);
      std::string cmd;
      iss >> cmd;
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\schema") {
        std::printf("%s", db->schema().ToString().c_str());
      } else if (cmd == "\\tables") {
        for (const std::string& name : db->TableNames()) {
          std::printf("  %-12s %zu rows\n", name.c_str(),
                      db->FindTable(name)->size());
        }
      } else if (cmd == "\\nestedloop") {
        rewrites_enabled = !rewrites_enabled;
        std::printf("rewrites %s\n", rewrites_enabled ? "ON" : "OFF");
      } else if (cmd == "\\threads") {
        int n = 0;
        if (iss >> n && n >= 1) {
          num_threads = n;
          std::printf("worker threads: %d%s\n", num_threads,
                      num_threads == 1 ? " (serial)" : "");
        } else {
          std::printf("usage: \\threads N   (N >= 1)\n");
        }
      } else if (cmd == "\\compiled") {
        compiled_enabled = !compiled_enabled;
        std::printf("compiled evaluation %s\n",
                    compiled_enabled ? "ON" : "OFF");
      } else if (cmd == "\\stats") {
        if (have_stats) {
          std::printf("[%s]\n", last_stats.ToString().c_str());
        } else {
          std::printf("no query has run yet\n");
        }
      } else if (cmd == "\\explain") {
        std::string rest;
        std::getline(iss, rest);
        if (!rest.empty() && rest.back() == ';') rest.pop_back();
        QueryEngine engine(db.get());
        Result<QueryReport> r = engine.Run(rest);
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
        } else {
          std::printf("%s", r->Explain().c_str());
        }
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      std::printf("oosql> ");
      std::fflush(stdout);
      continue;
    }

    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) {
      std::printf("  ...> ");
      std::fflush(stdout);
      continue;
    }

    RewriteOptions opts;
    if (!rewrites_enabled) {
      opts.enable_setcmp = false;
      opts.enable_quantifier = false;
      opts.enable_map_join = false;
      opts.enable_unnest_attr = false;
      opts.enable_hoist = false;
      opts.grouping = GroupingMode::kNone;
    }
    EvalOptions eval_opts;
    eval_opts.num_threads = num_threads;
    eval_opts.compiled = compiled_enabled;
    QueryEngine engine(db.get(), opts, eval_opts);
    Result<QueryReport> r = engine.Run(buffer);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      PrintResult(r->result);
      last_stats = r->exec_stats;
      have_stats = true;
      std::printf("[%s]\n", last_stats.ToString().c_str());
    }
    buffer.clear();
    std::printf("oosql> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
