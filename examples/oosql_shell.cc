// An interactive OOSQL shell over the supplier–part database. Queries
// end with ';'. Meta commands:
//   \schema          print the schema
//   \tables          list tables and sizes
//   \explain <query> show translation, optimization trace and plan
//                    (with \profile on, also the profiled span tree)
//   \nestedloop      toggle the rewriter off/on (to feel the difference)
//   \threads [N]     set worker threads (no argument: show the setting)
//   \compiled [on|off] toggle/set bytecode-compiled lambda evaluation
//                    (no argument: show the setting)
//   \profile on|off  per-operator tracing; each query prints its span
//                    tree (wall time, cardinalities, stats deltas)
//   \trace <f.json>  write a Chrome trace (chrome://tracing, Perfetto)
//                    of each query to f.json; \trace off disables
//   \timing on|off   print each query's wall time
//   \stats           print the last query's execution counters
//   \stats <extent>  print the extent's optimizer statistics (row count,
//                    per-attribute distincts/ranges, set-attr fanout)
//   \analyze         refresh statistics for every extent (SQL's ANALYZE)
//   \strategy [cost|heuristic] select the planner strategy: 'cost' runs
//                    the statistics-driven planner (EXPLAIN then shows
//                    per-node algorithm + est_rows/est_cost); default is
//                    the paper's priority strategy
//   \backend [nested|shredded] select the evaluation backend: 'shredded'
//                    lowers the query to a DAG of flat queries over
//                    columnar relations and stitches the nested result
//                    (EXPLAIN then shows the shredded plan); default is
//                    the nested-loop interpreter
//   \vectorized [on|off] toggle/set batch (column-at-a-time) execution
//                    inside the shredded backend (no argument: toggle;
//                    only takes effect with \backend shredded)
//   \metrics         print the process-wide metrics registry
//   \openmetrics     print the registry in OpenMetrics text format
//                    (Prometheus-scrapable; ends with # EOF)
//   \log [n]         print the last n (default 10) flight-recorder
//                    records: latency, stats, fallbacks, q-error
//   \slow [n]        the n slowest recorded queries, slowest first
//   \drift           per-extent plan-drift report (rolling q-error
//                    windows; extents flagged when stats went stale —
//                    \analyze refreshes and clears them)
//   \quit            exit
//
//   $ ./build/examples/oosql_shell
//   oosql> select s.sname from s in SUPPLIER where ... ;

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adl/printer.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "obs/chrome_trace.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/querylog.h"
#include "obs/trace.h"
#include "stats/stats.h"
#include "storage/datagen.h"

using namespace n2j;  // NOLINT — example code

namespace {

void PrintResult(const Value& v, size_t limit = 20) {
  if (!v.is_set()) {
    std::printf("%s\n", v.ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const Value& e : v.elements()) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more)\n", v.set_size() - limit);
      break;
    }
    std::printf("  %s\n", e.ToString().c_str());
  }
  std::printf("(%zu tuples)\n", v.set_size());
}

/// One flight-recorder record as a shell line: id, phase latencies,
/// rows, fallbacks, worst q-error, then the (possibly elided) query.
void PrintLogRecord(const obs::QueryLogRecord& r) {
  std::string q = r.query.substr(0, r.query.find('\n'));
  if (q.size() > 48) q = q.substr(0, 45) + "...";
  if (!r.error.empty()) {
    std::printf("  #%-5llu %8.3fms ERROR %s  %s\n",
                static_cast<unsigned long long>(r.id), r.wall_ms,
                r.error.c_str(), q.c_str());
    return;
  }
  // max_q < 1 means no span or extent was priced — not a measured 0.
  char qbuf[16] = "-";
  if (r.max_q >= 1.0) std::snprintf(qbuf, sizeof(qbuf), "%.2f", r.max_q);
  std::printf(
      "  #%-5llu %8.3fms (rw %.3f, eval %.3f) rows=%llu fb=%llu q=%s  %s\n",
      static_cast<unsigned long long>(r.id), r.wall_ms, r.rewrite_ms,
      r.eval_ms, static_cast<unsigned long long>(r.rows_out),
      static_cast<unsigned long long>(r.fallbacks()), qbuf, q.c_str());
}

/// Parses the "on"/"off" argument style shared by \profile, \timing and
/// \compiled. Returns false (and prints usage) on anything else.
bool ParseOnOff(std::istringstream& iss, const char* cmd, bool* out) {
  std::string arg;
  if (iss >> arg) {
    if (arg == "on") {
      *out = true;
      return true;
    }
    if (arg == "off") {
      *out = false;
      return true;
    }
  }
  std::printf("usage: %s on|off\n", cmd);
  return false;
}

}  // namespace

int main() {
  SupplierPartConfig config;
  config.seed = 7;
  config.num_parts = 100;
  config.num_suppliers = 25;
  config.parts_per_supplier = 6;
  config.match_fraction = 0.9;
  config.num_deliveries = 40;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);

  bool rewrites_enabled = true;
  bool compiled_enabled = true;
  bool vectorized_enabled = true;
  PlanStrategy strategy = PlanStrategy::kHeuristic;
  Backend backend = Backend::kNested;
  bool profile_on = false;
  bool timing_on = false;
  int num_threads = 1;
  std::string trace_path;      // Chrome-trace output, empty = off
  TraceCollector collector;    // reused across queries (engine clears it)
  EvalStats last_stats;
  bool have_stats = false;
  std::printf(
      "nested-to-join OOSQL shell — supplier-part database loaded\n"
      "(|SUPPLIER| = %zu, |PART| = %zu, |DELIVERY| = %zu)\n"
      "end queries with ';'. try: \\schema, \\tables, \\explain, \\profile, "
      "\\stats, \\quit\n",
      db->FindTable("SUPPLIER")->size(), db->FindTable("PART")->size(),
      db->FindTable("DELIVERY")->size());

  auto make_engine = [&]() {
    RewriteOptions opts;
    if (!rewrites_enabled) {
      opts.enable_setcmp = false;
      opts.enable_quantifier = false;
      opts.enable_map_join = false;
      opts.enable_unnest_attr = false;
      opts.enable_hoist = false;
      opts.grouping = GroupingMode::kNone;
    }
    EvalOptions eval_opts;
    eval_opts.backend = backend;
    eval_opts.num_threads = num_threads;
    eval_opts.compiled = compiled_enabled;
    eval_opts.vectorized = vectorized_enabled;
    if (profile_on || !trace_path.empty()) {
      eval_opts.trace = &collector;
    }
    PlannerOptions planner_opts;
    planner_opts.strategy = strategy;
    return QueryEngine(db.get(), opts, eval_opts, planner_opts);
  };

  auto write_chrome_trace = [&]() {
    if (trace_path.empty()) return;
    Status st = WriteChromeTrace(collector, trace_path);
    if (st.ok()) {
      std::printf("chrome trace written to %s\n", trace_path.c_str());
    } else {
      std::printf("trace write failed: %s\n", st.ToString().c_str());
    }
  };

  std::string buffer;
  std::string line;
  std::printf("oosql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    // Meta commands act on a whole line.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      std::istringstream iss(line);
      std::string cmd;
      iss >> cmd;
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\schema") {
        std::printf("%s", db->schema().ToString().c_str());
      } else if (cmd == "\\tables") {
        for (const std::string& name : db->TableNames()) {
          std::printf("  %-12s %zu rows\n", name.c_str(),
                      db->FindTable(name)->size());
        }
      } else if (cmd == "\\nestedloop") {
        rewrites_enabled = !rewrites_enabled;
        std::printf("rewrites %s\n", rewrites_enabled ? "ON" : "OFF");
      } else if (cmd == "\\threads") {
        int n = 0;
        if (iss >> n) {
          if (n >= 1) {
            num_threads = n;
          } else {
            std::printf("usage: \\threads [N]   (N >= 1)\n");
          }
        }
        std::printf("worker threads: %d%s\n", num_threads,
                    num_threads == 1 ? " (serial)" : "");
      } else if (cmd == "\\compiled") {
        std::string arg;
        if (iss >> arg) {
          if (arg == "on") {
            compiled_enabled = true;
          } else if (arg == "off") {
            compiled_enabled = false;
          } else {
            std::printf("usage: \\compiled [on|off]\n");
          }
        } else {
          compiled_enabled = !compiled_enabled;
        }
        std::printf("compiled evaluation %s\n",
                    compiled_enabled ? "ON" : "OFF");
      } else if (cmd == "\\vectorized") {
        std::string arg;
        if (iss >> arg) {
          if (arg == "on") {
            vectorized_enabled = true;
          } else if (arg == "off") {
            vectorized_enabled = false;
          } else {
            std::printf("usage: \\vectorized [on|off]\n");
          }
        } else {
          vectorized_enabled = !vectorized_enabled;
        }
        std::printf("vectorized execution %s%s\n",
                    vectorized_enabled ? "ON" : "OFF",
                    backend == Backend::kShredded
                        ? ""
                        : " (takes effect under \\backend shredded)");
      } else if (cmd == "\\profile") {
        if (ParseOnOff(iss, "\\profile", &profile_on)) {
          std::printf("profiling %s\n", profile_on ? "ON" : "OFF");
        }
      } else if (cmd == "\\timing") {
        if (ParseOnOff(iss, "\\timing", &timing_on)) {
          std::printf("timing %s\n", timing_on ? "ON" : "OFF");
        }
      } else if (cmd == "\\trace") {
        std::string arg;
        if (iss >> arg) {
          if (arg == "off") {
            trace_path.clear();
            std::printf("chrome tracing OFF\n");
          } else {
            trace_path = arg;
            std::printf("chrome trace of each query -> %s\n",
                        trace_path.c_str());
          }
        } else {
          std::printf("usage: \\trace <file.json> | \\trace off\n");
        }
      } else if (cmd == "\\stats") {
        std::string extent;
        if (iss >> extent) {
          auto es = db->stats().Get(*db, extent);
          if (es == nullptr) {
            std::printf("no such extent: %s\n", extent.c_str());
          } else {
            std::printf("%s", es->ToString().c_str());
          }
        } else if (have_stats) {
          std::printf("%s", last_stats.ToString().c_str());
        } else {
          std::printf("no query has run yet\n");
        }
      } else if (cmd == "\\analyze") {
        db->stats().Analyze(*db);
        for (const std::string& name : db->TableNames()) {
          auto es = db->stats().Get(*db, name);
          std::printf("  %-12s %zu rows, %zu attrs profiled\n", name.c_str(),
                      es == nullptr ? 0 : static_cast<size_t>(es->row_count),
                      es == nullptr ? 0 : es->attrs.size());
        }
      } else if (cmd == "\\strategy") {
        std::string arg;
        if (iss >> arg) {
          if (arg == "cost") {
            strategy = PlanStrategy::kCost;
          } else if (arg == "heuristic") {
            strategy = PlanStrategy::kHeuristic;
          } else {
            std::printf("usage: \\strategy [cost|heuristic]\n");
          }
        }
        std::printf("planner strategy: %s\n", PlanStrategyName(strategy));
      } else if (cmd == "\\backend") {
        std::string arg;
        if (iss >> arg) {
          if (arg == "nested") {
            backend = Backend::kNested;
          } else if (arg == "shredded") {
            backend = Backend::kShredded;
          } else {
            std::printf("usage: \\backend [nested|shredded]\n");
          }
        }
        std::printf("evaluation backend: %s\n",
                    backend == Backend::kShredded ? "shredded" : "nested");
      } else if (cmd == "\\metrics") {
        std::printf("%s", obs::MetricsRegistry::Global().Render().c_str());
      } else if (cmd == "\\openmetrics") {
        std::printf("%s", obs::RenderOpenMetrics().c_str());
      } else if (cmd == "\\log") {
        size_t n = 10;
        int arg = 0;
        if (iss >> arg && arg >= 1) n = static_cast<size_t>(arg);
        std::vector<obs::QueryLogRecord> recent =
            obs::QueryLog::Global().Snapshot(n);
        if (recent.empty()) {
          std::printf("no queries recorded yet\n");
        }
        for (const obs::QueryLogRecord& r : recent) PrintLogRecord(r);
      } else if (cmd == "\\slow") {
        size_t n = 10;
        int arg = 0;
        if (iss >> arg && arg >= 1) n = static_cast<size_t>(arg);
        std::vector<obs::QueryLogRecord> all =
            obs::QueryLog::Global().Snapshot();
        std::stable_sort(all.begin(), all.end(),
                         [](const obs::QueryLogRecord& a,
                            const obs::QueryLogRecord& b) {
                           return a.wall_ms > b.wall_ms;
                         });
        if (all.size() > n) all.resize(n);
        if (all.empty()) {
          std::printf("no queries recorded yet\n");
        }
        for (const obs::QueryLogRecord& r : all) PrintLogRecord(r);
      } else if (cmd == "\\drift") {
        std::printf("%s",
                    obs::DriftMonitor::Global().Report().ToString().c_str());
      } else if (cmd == "\\explain") {
        std::string rest;
        std::getline(iss, rest);
        if (!rest.empty() && rest.back() == ';') rest.pop_back();
        QueryEngine engine = make_engine();
        Result<QueryReport> r = engine.Run(rest);
        if (!r.ok()) {
          std::printf("error: %s\n", r.status().ToString().c_str());
        } else {
          std::printf("%s", r->Explain().c_str());
          write_chrome_trace();
        }
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      std::printf("oosql> ");
      std::fflush(stdout);
      continue;
    }

    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) {
      std::printf("  ...> ");
      std::fflush(stdout);
      continue;
    }

    QueryEngine engine = make_engine();
    int64_t t0 = MonotonicNanos();
    Result<QueryReport> r = engine.Run(buffer);
    double elapsed_ms =
        static_cast<double>(MonotonicNanos() - t0) / 1e6;
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      PrintResult(r->result);
      last_stats = r->exec_stats;
      have_stats = true;
      std::string compact = last_stats.Compact();
      std::printf("[%s]\n", compact.empty() ? "no work counted"
                                            : compact.c_str());
      if (profile_on && r->profile != nullptr) {
        std::printf("%s", r->profile->Render().c_str());
      }
      write_chrome_trace();
    }
    if (timing_on) {
      std::printf("time: %.3f ms\n", elapsed_ms);
    }
    buffer.clear();
    std::printf("oosql> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
