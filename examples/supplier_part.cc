// The paper's running example: the supplier–part–delivery database of
// Section 2, with all six Example Queries run through the full pipeline.
// For each query the program prints the OOSQL text, the naive ADL
// translation, the optimized plan, the fired rules and the execution
// statistics — a guided tour of Sections 2–6.
//
//   $ ./build/examples/supplier_part

#include <cstdio>

#include "adl/printer.h"
#include "core/engine.h"
#include "storage/datagen.h"

using namespace n2j;  // NOLINT — example code

namespace {

void RunAndReport(const QueryEngine& engine, const char* label,
                  const char* comment, const std::string& query) {
  std::printf("=== %s ===\n%s\n\n", label, comment);
  std::printf("OOSQL:\n  %s\n", query.c_str());
  Result<QueryReport> report = engine.Run(query);
  if (!report.ok()) {
    std::printf("  error: %s\n\n", report.status().ToString().c_str());
    return;
  }
  std::printf("translated (naive, nested loops):\n  %s\n",
              AlgebraStr(report->translated).c_str());
  std::printf("optimized:\n  %s\n", AlgebraStr(report->optimized).c_str());
  if (!report->trace.empty()) {
    std::printf("rules fired:\n");
    for (const RuleApplication& rule : report->trace) {
      std::printf("  - %s\n", rule.rule.c_str());
    }
  }
  std::printf("result size: %zu\n", report->result.set_size());
  if (report->result.set_size() <= 4 && report->result.set_size() > 0) {
    for (const Value& v : report->result.elements()) {
      std::printf("  %s\n", v.ToString().c_str());
    }
  }
  std::printf("exec stats:  %s\n\n", report->exec_stats.Compact().c_str());
}

}  // namespace

int main() {
  SupplierPartConfig config;
  config.seed = 1994;  // the year of the paper
  config.num_parts = 200;
  config.num_suppliers = 50;
  config.parts_per_supplier = 8;
  config.red_fraction = 0.2;
  config.match_fraction = 0.9;  // a few dangling references for Query 4
  config.num_deliveries = 80;
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);
  QueryEngine engine(db.get());

  std::printf("Schema (Section 2):\n%s\n", db->schema().ToString().c_str());
  std::printf("|SUPPLIER| = %zu, |PART| = %zu, |DELIVERY| = %zu\n\n",
              db->FindTable("SUPPLIER")->size(),
              db->FindTable("PART")->size(),
              db->FindTable("DELIVERY")->size());

  RunAndReport(engine, "Example Query 1",
               "Nesting in the select-clause: supplier names with the "
               "names of red parts supplied.\n(Dereferencing dangling part "
               "refs would fail, so the inner block guards via an exists.)",
               "select (sname = s.sname, "
               "pnames = select p.pname from p in PART "
               "where p[pid] in s.parts and p.color = \"red\") "
               "from s in SUPPLIER");

  RunAndReport(engine, "Example Query 2",
               "Nesting in the from-clause (query composition); the "
               "rewriter merges the blocks.",
               "select d from d in (select e from e in DELIVERY "
               "where e.supplier.sname = \"s1\") where d.date > 940600");

  RunAndReport(engine, "Example Query 3.1",
               "Nesting in the where-clause over a base table: suppliers "
               "supplying all parts supplied by s1 (set comparison between "
               "blocks; the uncorrelated block is a constant).",
               "select s.sname from s in SUPPLIER where s.parts supseteq "
               "(select x from t in SUPPLIER, x in t.parts "
               "where t.sname = \"s1\")");

  RunAndReport(engine, "Example Query 3.2",
               "Nesting in the where-clause over a set-valued attribute: "
               "deliveries including red parts (stays tuple-oriented, as "
               "the paper prescribes for clustered attributes).",
               "select d from d in DELIVERY where "
               "exists x in d.supply : x.part.color = \"red\"");

  RunAndReport(engine, "Example Query 4",
               "Referential integrity violations: µ (attribute unnest) "
               "followed by an antijoin — option 1 of Section 4.",
               "select s.eid from s in SUPPLIER where "
               "exists z in s.parts : not exists p in PART : z.pid = p.pid");

  RunAndReport(engine, "Example Query 5",
               "Suppliers supplying red parts: quantifier exchange + "
               "Rule 1 produce the paper's semijoin.",
               "select s.sname from s in SUPPLIER where "
               "exists x in s.parts : exists p in PART : "
               "x.pid = p.pid and p.color = \"red\"");

  RunAndReport(engine, "Example Query 6",
               "Supplier names with the set of supplied parts: no flat "
               "relational join preserves dangling suppliers — the "
               "nestjoin (Section 6.1) does.",
               "select (sname = s.sname, partssuppl = "
               "select p from p in PART where p[pid] in s.parts) "
               "from s in SUPPLIER");

  return 0;
}
