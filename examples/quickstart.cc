// Quickstart: define a schema, load objects, run a nested OOSQL query,
// and inspect how the optimizer turns the nested loop into a join.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "adl/printer.h"
#include "core/engine.h"
#include "oosql/parser.h"
#include "storage/database.h"

using namespace n2j;  // NOLINT — example code

int main() {
  // 1. Define a schema in the paper's class-definition syntax.
  Result<Schema> schema = Parser::ParseSchemaString(R"(
    class Author with extension AUTHOR oid aid
      attributes name : string, country : string
    end Author
    class Book with extension BOOK oid bid
      attributes title : string,
                 year : int,
                 author : Author,
                 tags : { (tag : string) }
    end Book
  )");
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // 2. Create a database and some objects.
  Database db(std::move(*schema));
  auto author = [&](const char* name, const char* country) {
    Result<Oid> oid = db.NewObject(
        "Author", Value::Tuple({Field("name", Value::String(name)),
                                Field("country", Value::String(country))}));
    N2J_CHECK(oid.ok());
    return *oid;
  };
  auto book = [&](const char* title, int64_t year, Oid who,
                  std::vector<const char*> tags) {
    std::vector<Value> tag_set;
    for (const char* t : tags) {
      tag_set.push_back(Value::Tuple({Field("tag", Value::String(t))}));
    }
    N2J_CHECK(db.NewObject(
                    "Book",
                    Value::Tuple({Field("title", Value::String(title)),
                                  Field("year", Value::Int(year)),
                                  Field("author", Value::MakeOidValue(who)),
                                  Field("tags", Value::Set(tag_set))}))
                  .ok());
  };
  Oid codd = author("Codd", "UK");
  Oid date = author("Date", "UK");
  Oid gray = author("Gray", "US");
  book("A Relational Model", 1970, codd, {"theory", "classic"});
  book("Database in Depth", 2005, date, {"theory"});
  book("Transaction Processing", 1992, gray, {"systems", "classic"});

  // 3. Run a nested query: authors of books tagged "classic". The nested
  //    block over BOOK is correlated with a, so the optimizer unnests it
  //    (quantifier exchange + Rule 1 → a semijoin).
  QueryEngine engine(&db);
  const char* query =
      "select a.name from a in AUTHOR "
      "where exists b in BOOK : "
      "  b.author = a.aid and "
      "  (exists t in b.tags : t.tag = \"classic\")";
  Result<QueryReport> report = engine.Run(query);
  if (!report.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("query:      %s\n", query);
  std::printf("translated: %s\n", AlgebraStr(report->translated).c_str());
  std::printf("optimized:  %s\n", AlgebraStr(report->optimized).c_str());
  std::printf("rules:\n");
  for (const RuleApplication& rule : report->trace) {
    std::printf("  [%s]\n", rule.rule.c_str());
  }
  std::printf("result:     %s\n", report->result.ToString().c_str());
  std::printf("stats:      %s\n", report->exec_stats.Compact().c_str());
  return 0;
}
