// A small analytics application on CSV data: load flat files, build an
// index, and run nested OOSQL analytics that the optimizer turns into
// joins. Demonstrates the library as a downstream user would adopt it —
// no hand-written algebra, just DDL-free tables, CSV, and queries.
//
//   $ ./build/examples/csv_analytics

#include <cstdio>

#include "adl/printer.h"
#include "core/engine.h"
#include "storage/csv_loader.h"
#include "storage/database.h"

using namespace n2j;  // NOLINT — example code

namespace {

const char* kProductsCsv =
    "sku,pname,category,price\n"
    "1,widget,\"tools, small\",30\n"
    "2,gadget,electronics,120\n"
    "3,sprocket,tools,15\n"
    "4,flange,plumbing,45\n"
    "5,gizmo,electronics,200\n"
    "6,bracket,tools,10\n";

const char* kOrdersCsv =
    "order_id,sku,qty,region\n"
    "100,1,3,EU\n"
    "101,2,1,US\n"
    "102,1,5,US\n"
    "103,3,10,EU\n"
    "104,5,1,EU\n"
    "105,1,2,APAC\n"
    "106,6,7,US\n"
    "107,2,2,EU\n";

void Run(const QueryEngine& engine, const char* label,
         const std::string& query) {
  std::printf("--- %s\n%s\n", label, query.c_str());
  Result<QueryReport> r = engine.Run(query);
  if (!r.ok()) {
    std::printf("error: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("plan: %s\n", AlgebraStr(r->optimized).c_str());
  for (const Value& row : r->result.elements()) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf("stats: %s\n\n", r->exec_stats.Compact().c_str());
}

}  // namespace

int main() {
  Database db;
  N2J_CHECK(db.CreateTable("PRODUCTS",
                           Type::Tuple({{"sku", Type::Int()},
                                        {"pname", Type::String()},
                                        {"category", Type::String()},
                                        {"price", Type::Int()}}))
                .ok());
  N2J_CHECK(db.CreateTable("ORDERS",
                           Type::Tuple({{"order_id", Type::Int()},
                                        {"sku", Type::Int()},
                                        {"qty", Type::Int()},
                                        {"region", Type::String()}}))
                .ok());

  Result<size_t> products = LoadCsv(&db, "PRODUCTS", kProductsCsv);
  Result<size_t> orders = LoadCsv(&db, "ORDERS", kOrdersCsv);
  N2J_CHECK(products.ok() && orders.ok());
  std::printf("loaded %zu products, %zu orders\n\n", *products, *orders);

  // An index on the join key lets the engine use the index nested-loop
  // join for every query below.
  N2J_CHECK(db.CreateIndex("ORDERS", "sku").ok());

  RewriteOptions rewrite;
  EvalOptions exec;
  exec.join_algorithm = JoinAlgorithm::kAuto;  // use the index when it fits
  QueryEngine engine(&db, rewrite, exec);

  Run(engine, "products that were ever ordered (semijoin)",
      "select p.pname from p in PRODUCTS "
      "where exists o in ORDERS : o.sku = p.sku");

  Run(engine, "products never ordered (antijoin)",
      "select p.pname from p in PRODUCTS "
      "where not exists o in ORDERS : o.sku = p.sku");

  Run(engine, "per-product order book (nestjoin, dangling kept)",
      "select (pname = p.pname, n_orders = count(Os), "
      "        total_qty = sum(select o.qty from o in Os)) "
      "from p in PRODUCTS "
      "with Os = select o from o in ORDERS where o.sku = p.sku");

  Run(engine, "expensive products ordered in the EU (join + pushdown)",
      "select (pname = p.pname, order_id = o.order_id) "
      "from p in PRODUCTS, o in ORDERS "
      "where p.sku = o.sku and p.price > 25 and o.region = \"EU\"");

  Run(engine, "categories whose every product was ordered (universal)",
      "select c.category from c in PRODUCTS where "
      "forall p in PRODUCTS : not (p.category = c.category) or "
      "(exists o in ORDERS : o.sku = p.sku)");

  return 0;
}
