// Example Query 4 as an application: audit a database for referential
// integrity violations and compare the three execution strategies the
// paper discusses for it — naive nested loops, the attribute-unnest +
// antijoin plan, and per-strategy cost counters.
//
//   $ ./build/examples/referential_integrity [num_parts] [num_suppliers]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "adl/printer.h"
#include "core/engine.h"
#include "storage/datagen.h"

using namespace n2j;  // NOLINT — example code

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  SupplierPartConfig config;
  config.seed = 4;
  config.num_parts = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.num_suppliers = argc > 2 ? std::atoi(argv[2]) : 500;
  config.parts_per_supplier = 10;
  config.match_fraction = 0.95;  // ~5% of references dangle
  std::unique_ptr<Database> db = MakeSupplierPartDatabase(config);

  const char* query =
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid";
  std::printf("auditing %d suppliers x %d refs against %d parts\n",
              config.num_suppliers, config.parts_per_supplier,
              config.num_parts);
  std::printf("query: %s\n\n", query);

  // Strategy A: naive nested-loop execution of the translated query.
  RewriteOptions off;
  off.enable_setcmp = false;
  off.enable_quantifier = false;
  off.enable_map_join = false;
  off.enable_unnest_attr = false;
  off.enable_hoist = false;
  off.grouping = GroupingMode::kNone;
  QueryEngine naive(db.get(), off);
  auto t0 = std::chrono::steady_clock::now();
  Result<QueryReport> a = naive.Run(query);
  double naive_ms = MillisSince(t0);
  N2J_CHECK(a.ok());

  // Strategy B: the paper's plan — µ_parts(SUPPLIER) ▷ PART.
  QueryEngine optimized(db.get());
  t0 = std::chrono::steady_clock::now();
  Result<QueryReport> b = optimized.Run(query);
  double opt_ms = MillisSince(t0);
  N2J_CHECK(b.ok());

  N2J_CHECK(a->result == b->result);
  std::printf("violating suppliers: %zu of %d\n\n", b->result.set_size(),
              config.num_suppliers);

  std::printf("%-28s %12s %16s %14s\n", "strategy", "time (ms)",
              "predicate evals", "hash probes");
  std::printf("%-28s %12.2f %16llu %14llu\n", "nested loops (naive)",
              naive_ms,
              static_cast<unsigned long long>(a->exec_stats.predicate_evals),
              static_cast<unsigned long long>(a->exec_stats.hash_probes));
  std::printf("%-28s %12.2f %16llu %14llu\n", "unnest + antijoin (paper)",
              opt_ms,
              static_cast<unsigned long long>(b->exec_stats.predicate_evals),
              static_cast<unsigned long long>(b->exec_stats.hash_probes));
  std::printf("\noptimized plan: %s\n", AlgebraStr(b->optimized).c_str());
  std::printf("speedup: %.1fx\n", naive_ms / (opt_ms > 0 ? opt_ms : 1e-9));
  return 0;
}
