#include <algorithm>
#include <iterator>
#include <optional>
#include <unordered_map>
#include <utility>

#include "adl/analysis.h"
#include "common/str_util.h"
#include "exec/equi_join.h"
#include "shred/exec_internal.h"
#include "shred/shred.h"

namespace n2j {
namespace shred {

EquiSplit SplitEquiPred(const RangeSpec& r) {
  // Split p into equi-key pairs (one side a function of the range var
  // alone, the other side free of it) and residual conjuncts.
  EquiSplit s;
  std::vector<ExprPtr> conjs = SplitConjuncts(r.pred);
  for (const ExprPtr& c : conjs) {
    if (c->kind() == ExprKind::kBinary && c->bin_op() == BinOp::kEq) {
      std::set<std::string> fl = FreeVars(c->child(0));
      std::set<std::string> fr = FreeVars(c->child(1));
      if (fl.size() == 1 && fl.count(r.var) > 0 && fr.count(r.var) == 0) {
        s.scan_keys.push_back(c->child(0));
        s.probe_keys.push_back(c->child(1));
        continue;
      }
      if (fr.size() == 1 && fr.count(r.var) > 0 && fl.count(r.var) == 0) {
        s.scan_keys.push_back(c->child(1));
        s.probe_keys.push_back(c->child(0));
        continue;
      }
    }
    s.residual.push_back(c);
  }
  return s;
}

Rel ShredExecutor::Skeleton(
    const Rel& work, const RangeSpec& r,
    const std::shared_ptr<const ColumnarExtent>& columnar) {
  Rel out;
  out.cols.reserve(work.cols.size() + 1);
  for (const Col& c : work.cols) {
    Col nc;
    nc.var = c.var;
    nc.extent = c.extent;
    out.cols.push_back(std::move(nc));
  }
  Col nc;
  nc.var = r.var;
  if (r.kind == RangeKind::kExtent) nc.extent = columnar;
  out.cols.push_back(std::move(nc));
  return out;
}

void ShredExecutor::Emit(const Rel& work, size_t row, const Value& elem,
                         uint32_t elem_row_id, Rel* out) {
  for (size_t i = 0; i < work.cols.size(); ++i) {
    out->cols[i].vals.push_back(work.cols[i].vals[row]);
    if (work.cols[i].extent != nullptr) {
      out->cols[i].row_ids.push_back(work.cols[i].row_ids[row]);
    }
  }
  Col& ncol = out->cols.back();
  ncol.vals.push_back(elem);
  if (ncol.extent != nullptr) ncol.row_ids.push_back(elem_row_id);
  out->ctx.push_back(work.ctx[row]);
}

namespace {

// Concatenates `src`'s rows after `dst`'s (same skeleton). The morsel
// merge: per-morsel slots appended in morsel order reproduce the serial
// engine's row order exactly.
void AppendRel(Rel* dst, Rel&& src) {
  for (size_t i = 0; i < dst->cols.size(); ++i) {
    Col& d = dst->cols[i];
    Col& s = src.cols[i];
    std::move(s.vals.begin(), s.vals.end(), std::back_inserter(d.vals));
    d.row_ids.insert(d.row_ids.end(), s.row_ids.begin(), s.row_ids.end());
  }
  dst->ctx.insert(dst->ctx.end(), src.ctx.begin(), src.ctx.end());
}

}  // namespace

ThreadPool& ShredExecutor::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
    if (opts_.trace != nullptr) {
      TraceCollector* tc = opts_.trace;
      pool_->set_morsel_sink([tc](int w, size_t m, const char* phase,
                                  int64_t t0, int64_t t1) {
        tc->AddWorkerSpan(w, m, phase, t0, t1);
      });
    }
  }
  return *pool_;
}

std::vector<std::unique_ptr<Evaluator>>& ShredExecutor::workers() {
  if (workers_.empty()) {
    const int count = pool().num_workers();
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) workers_.push_back(inner_.ForkWorker());
  }
  return workers_;
}

void ShredExecutor::MergeWorkerStats() {
  for (const auto& w : workers_) {
    inner_.stats().Merge(w->stats());
    w->ResetStats();
  }
}

void ShredExecutor::ResetWorkerStats() {
  for (const auto& w : workers_) w->ResetStats();
}

Status ShredExecutor::ParallelRows(
    size_t nrows, const char* phase,
    const std::function<Status(Evaluator&, size_t, size_t, Rel*)>& body,
    Rel* out) {
  ThreadPool& tp = pool();
  tp.set_morsel_phase(phase);
  std::vector<std::unique_ptr<Evaluator>>& ws = workers();
  const size_t morsel = PickMorselSize(nrows, tp.num_workers());
  const size_t nm = NumMorsels(nrows, morsel);
  std::vector<Rel> slots(nm, *out);
  Status s = tp.RunMorsels(nm, [&](int w, size_t m) -> Status {
    MorselRange rg = MorselAt(nrows, morsel, m);
    return body(*ws[static_cast<size_t>(w)], rg.begin, rg.end, &slots[m]);
  });
  // Merge before the enclosing shred-node span closes so its exclusive
  // delta — and the span-sum invariant — includes the workers' counters
  // whether or not a morsel failed.
  MergeWorkerStats();
  N2J_RETURN_IF_ERROR(s);
  for (Rel& slot : slots) AppendRel(out, std::move(slot));
  return Status::OK();
}

std::vector<Value> ShredExecutor::StitchByCtx(std::vector<Value> outs,
                                              const std::vector<uint32_t>& ctx,
                                              size_t nctx) {
  // Stitch: work rows are contiguous and ascending by ctx, so one pass
  // folds each context row's outputs into its set. A context row with no
  // surviving work rows gets the empty set — exactly Map/Select over an
  // empty or fully filtered input.
  std::vector<Value> result;
  result.reserve(nctx);
  size_t j = 0;
  for (uint32_t c = 0; c < nctx; ++c) {
    std::vector<Value> elems;
    while (j < outs.size() && ctx[j] == c) {
      elems.push_back(std::move(outs[j]));
      ++j;
    }
    result.push_back(Value::Set(std::move(elems)));
  }
  return result;
}

Result<Value> ShredExecutor::Run() {
  OpSpan span(opts_.trace, inner_.stats(), "shredded");
  Environment env;
  std::vector<std::pair<std::string, Value>> lets;
  for (const auto& [var, def] : plan_.lets) {
    Result<Value> v = inner_.Eval(def, env);
    if (!v.ok()) return v.status();
    env.Push(var, *v);
    lets.emplace_back(var, *v);
  }
  if (plan_.scalar_root) {
    // Non-comprehension root: the flat DAG degenerates to one row-wise
    // evaluation under the let bindings.
    span.Annotate("scalar root");
    Result<Value> r = inner_.Eval(plan_.scalar_root_expr, env);
    span.RowsOut(r);
    return r;
  }
  const FlatNode& root = plan_.nodes[0];
  Rel ctx;
  ctx.ctx = {0};
  for (const std::string& v : root.ctx_vars) {
    for (auto it = lets.rbegin(); it != lets.rend(); ++it) {
      if (it->first == v) {
        Col c;
        c.var = v;
        c.vals = {it->second};
        ctx.cols.push_back(std::move(c));
        break;
      }
    }
  }
  N2J_ASSIGN_OR_RETURN(std::vector<Value> sets,
                       ExecNode(root, std::move(ctx)));
  span.RowsOut(sets[0].set_size());
  return std::move(sets[0]);
}

Result<std::vector<Value>> ShredExecutor::ExecNode(const FlatNode& node,
                                                   Rel ctx) {
  OpSpan span(opts_.trace, inner_.stats(), "shred-node");
  span.Label(node.label);
  const size_t nctx = ctx.size();
  span.RowsIn(nctx);
  if (nctx == 0) return std::vector<Value>{};

  if (opts_.vectorized && node.vectorizable) {
    EvalStats before = inner_.stats();
    Result<std::optional<std::vector<Value>>> v =
        TryExecNodeVectorized(node, ctx, span);
    if (v.ok() && v->has_value()) return std::move(**v);
    // Refusal (a lambda did not compile, no columnar projection): nothing
    // ran, the scalar engine does the node from scratch. Error: every
    // evaluation the pipeline performed, the scalar engine performs too
    // (unless it errors even earlier), so rerunning it surfaces the
    // row-order first error the fidelity contract promises. The failed
    // attempt's counters roll back to the pre-attempt snapshot first: a
    // parallel pipeline has already run units past the erroring one
    // (morsels don't cancel), so its partial counts are not the serial
    // engine's partial counts — discarding the attempt entirely is the
    // one accounting that is exact for every thread count. The node's
    // span nets the attempt out to zero the same way.
    if (!v.ok()) inner_.stats() = before;
    ++inner_.stats().vec_fallbacks;
  }
  return ExecNodeScalar(node, std::move(ctx), span);
}

Result<std::vector<Value>> ShredExecutor::ExecNodeScalar(const FlatNode& node,
                                                         Rel ctx,
                                                         OpSpan& span) {
  const size_t nctx = ctx.size();
  Rel work;
  work.cols = std::move(ctx.cols);
  work.ctx.resize(nctx);
  for (size_t i = 0; i < nctx; ++i) work.ctx[i] = static_cast<uint32_t>(i);

  for (const RangeSpec& r : node.ranges) {
    N2J_ASSIGN_OR_RETURN(work, ExpandRange(r, std::move(work)));
  }
  N2J_ASSIGN_OR_RETURN(std::vector<Value> outs, EvalOutputs(node.out, work));

  span.RowsOut(work.size());
  return StitchByCtx(std::move(outs), work.ctx, nctx);
}

Result<Rel> ShredExecutor::ExpandRange(const RangeSpec& r, Rel work) {
  const size_t nrows = work.size();
  RangeKind kind = r.kind;

  std::shared_ptr<const ColumnarExtent> columnar;
  if (kind == RangeKind::kExtent && nrows > 0) {
    columnar = db_.columnar().Get(db_, r.table);
    // Unknown table: evaluate the GetTable row-wise so the interpreter's
    // own error surfaces.
    if (columnar == nullptr) kind = RangeKind::kOpaque;
  }

  Rel out = Skeleton(work, r, columnar);
  if (nrows == 0) return out;  // lazy: sources of dead ranges never run

  // Shared element list: one scan serves every work row.
  const std::vector<Value>* shared = nullptr;
  Value shared_holder;
  if (kind == RangeKind::kExtent) {
    shared = &columnar->rows;
  } else if (kind == RangeKind::kConstSet) {
    // Uncorrelated: evaluated once — but only because >= 1 work row
    // exists, matching how often (at least once) the interpreter would
    // evaluate it.
    Environment env;
    PushRow(&env, work, 0);
    Result<Value> v = inner_.Eval(r.source, env);
    PopRow(&env, work);
    if (!v.ok()) return v.status();
    if (!v->is_set()) {
      return Status::RuntimeError("shredded range over non-set");
    }
    shared_holder = std::move(*v);
    shared = &shared_holder.elements();
  }

  if (shared != nullptr) {
    if (r.pred != nullptr && opts_.use_hash_joins &&
        opts_.join_algorithm != JoinAlgorithm::kNestedLoop) {
      N2J_ASSIGN_OR_RETURN(std::optional<Rel> joined,
                           TryJoinExpand(r, work, *shared, columnar));
      if (joined.has_value()) return std::move(*joined);
    }
    // Nested-loop scan: evaluate the full combined predicate per
    // (row, element) pair — bit-for-bit the interpreter's Select path,
    // including And short-circuit and error order within one row.
    // Parallel: morsels over work rows (rows are independent here), the
    // ordered slot merge keeps the serial row order.
    if (parallel() && nrows > 1) {
      N2J_RETURN_IF_ERROR(ParallelRows(
          nrows, "shred-scan",
          [&](Evaluator& ev, size_t b, size_t e, Rel* slot) {
            return NlScanRows(ev, r, work, *shared, b, e, slot);
          },
          &out));
      return out;
    }
    N2J_RETURN_IF_ERROR(NlScanRows(inner_, r, work, *shared, 0, nrows, &out));
    return out;
  }

  // Per-row element lists: CSR child slices when provenance allows,
  // row-wise interpreter evaluation otherwise.
  const ColumnarChild* csr = nullptr;
  const Col* parent = nullptr;
  if (kind == RangeKind::kChildAttr) {
    for (auto it = work.cols.rbegin(); it != work.cols.rend(); ++it) {
      if (it->var == r.parent_var) {
        parent = &*it;
        break;
      }
    }
    if (parent != nullptr && parent->extent != nullptr) {
      csr = parent->extent->Child(r.attr);
    }
    if (csr == nullptr) parent = nullptr;  // fall back to row-wise access
  }

  if (parallel() && nrows > 1) {
    N2J_RETURN_IF_ERROR(ParallelRows(
        nrows, "shred-expand",
        [&](Evaluator& ev, size_t b, size_t e, Rel* slot) {
          return PerRowExpandRows(ev, r, work, csr, parent, b, e, slot);
        },
        &out));
    return out;
  }
  N2J_RETURN_IF_ERROR(
      PerRowExpandRows(inner_, r, work, csr, parent, 0, nrows, &out));
  return out;
}

Status ShredExecutor::NlScanRows(Evaluator& ev, const RangeSpec& r,
                                 const Rel& work,
                                 const std::vector<Value>& elems,
                                 size_t row_begin, size_t row_end, Rel* out) {
  Environment env;
  for (size_t row = row_begin; row < row_end; ++row) {
    PushRow(&env, work, row);
    for (size_t idx = 0; idx < elems.size(); ++idx) {
      const Value& elem = elems[idx];
      ++ev.stats().tuples_scanned;
      if (r.pred != nullptr) {
        env.Push(r.var, elem);
        Result<Value> p = ev.Eval(r.pred, env);
        env.Pop();
        ++ev.stats().predicate_evals;
        if (!p.ok()) {
          PopRow(&env, work);
          return p.status();
        }
        if (!p->is_bool()) {
          PopRow(&env, work);
          return Status::RuntimeError("selection predicate not boolean");
        }
        if (!p->bool_value()) continue;
      }
      Emit(work, row, elem, static_cast<uint32_t>(idx), out);
    }
    PopRow(&env, work);
  }
  return Status::OK();
}

Status ShredExecutor::PerRowExpandRows(Evaluator& ev, const RangeSpec& r,
                                       const Rel& work,
                                       const ColumnarChild* csr,
                                       const Col* parent, size_t row_begin,
                                       size_t row_end, Rel* out) {
  Environment env;
  for (size_t row = row_begin; row < row_end; ++row) {
    PushRow(&env, work, row);
    const Value* elems_begin = nullptr;
    size_t elem_count = 0;
    Value holder;
    if (csr != nullptr) {
      uint32_t rid = parent->row_ids[row];
      elems_begin = csr->elems.data() + csr->begin(rid);
      elem_count = csr->fanout(rid);
    } else {
      Result<Value> v = ev.Eval(r.source, env);
      if (!v.ok()) {
        PopRow(&env, work);
        return v.status();
      }
      if (!v->is_set()) {
        PopRow(&env, work);
        return Status::RuntimeError("shredded range over non-set");
      }
      holder = std::move(*v);
      elems_begin = holder.elements().data();
      elem_count = holder.elements().size();
    }
    for (size_t idx = 0; idx < elem_count; ++idx) {
      const Value& elem = elems_begin[idx];
      ++ev.stats().tuples_scanned;
      if (r.pred != nullptr) {
        env.Push(r.var, elem);
        Result<Value> p = ev.Eval(r.pred, env);
        env.Pop();
        ++ev.stats().predicate_evals;
        if (!p.ok()) {
          PopRow(&env, work);
          return p.status();
        }
        if (!p->is_bool()) {
          PopRow(&env, work);
          return Status::RuntimeError("selection predicate not boolean");
        }
        if (!p->bool_value()) continue;
      }
      Emit(work, row, elem, 0, out);
    }
    PopRow(&env, work);
  }
  return Status::OK();
}

Result<std::optional<Rel>> ShredExecutor::TryJoinExpand(
    const RangeSpec& r, const Rel& work, const std::vector<Value>& elems,
    const std::shared_ptr<const ColumnarExtent>& columnar) {
  EquiSplit split = SplitEquiPred(r);
  std::vector<ExprPtr>& scan_keys = split.scan_keys;
  std::vector<ExprPtr>& residual = split.residual;
  if (scan_keys.empty()) return std::optional<Rel>();

  // Scan-side keys, column fast path where the projection has the field.
  std::vector<const std::vector<Value>*> key_cols(scan_keys.size(), nullptr);
  for (size_t k = 0; k < scan_keys.size(); ++k) {
    const ExprPtr& e = scan_keys[k];
    if (columnar != nullptr && e->kind() == ExprKind::kFieldAccess &&
        e->child(0)->kind() == ExprKind::kVar &&
        e->child(0)->name() == r.var) {
      key_cols[k] = columnar->Column(e->name());
    }
  }

  // Build. Key evaluation may touch elements the interpreter would have
  // short-circuited past (an earlier conjunct false), so ANY evaluation
  // error abandons the join — the nested-loop path then reproduces the
  // interpreter's exact behavior, error or not.
  std::vector<Value> keys;
  keys.reserve(elems.size());
  {
    Environment env;
    std::vector<Value> parts(scan_keys.size());
    for (size_t idx = 0; idx < elems.size(); ++idx) {
      env.Push(r.var, elems[idx]);
      bool failed = false;
      for (size_t k = 0; k < scan_keys.size(); ++k) {
        if (key_cols[k] != nullptr) {
          parts[k] = (*key_cols[k])[idx];
          continue;
        }
        Result<Value> v = inner_.Eval(scan_keys[k], env);
        if (!v.ok()) {
          failed = true;
          break;
        }
        parts[k] = std::move(*v);
      }
      env.Pop();
      if (failed) return std::optional<Rel>();
      keys.push_back(JoinKeyFromParts(parts));
    }
  }

  const bool sort_merge = opts_.join_algorithm == JoinAlgorithm::kSortMerge;
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets;
  std::vector<std::pair<Value, uint32_t>> sorted;
  if (sort_merge) {
    sorted.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      sorted.emplace_back(keys[i], static_cast<uint32_t>(i));
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    inner_.stats().rows_sorted += sorted.size();
    ++inner_.stats().joins_sortmerge;
  } else {
    buckets.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      buckets[keys[i]].push_back(static_cast<uint32_t>(i));
    }
    ++inner_.stats().joins_hash;
  }
  inner_.stats().hash_inserts += keys.size();
  inner_.stats().tuples_scanned += keys.size();
  if (opts_.trace != nullptr) {
    opts_.trace->AnnotateOpen(StrFormat(
        " %s keys=%zu residual=%zu", sort_merge ? "sortmerge" : "hash",
        scan_keys.size(), residual.size()));
    opts_.trace->NotePeakHash(sort_merge ? sorted.size() : buckets.size());
  }

  Rel out = Skeleton(work, r, columnar);
  const size_t nrows = work.size();

  if (parallel() && nrows > 1) {
    // Parallel probe with a per-morsel ledger. The complication is the
    // abandon path: the serial engine stops at the first failing
    // probe-key row having fully processed every earlier row, discards
    // the join, and lets the nested-loop scan reproduce the
    // interpreter's behavior — so its stats hold a strict prefix of the
    // probe work. RunMorsels cannot cancel later morsels, so each
    // morsel records its exact stats delta (workers run morsels one at
    // a time; snapshotting around the morsel needs no synchronization)
    // and the coordinator merges only what the serial engine would have
    // done: everything up to the lowest abandoning morsel, or all of it
    // when an error (which aborts the query) comes first.
    ThreadPool& tp = pool();
    tp.set_morsel_phase("shred-probe");
    std::vector<std::unique_ptr<Evaluator>>& ws = workers();
    const size_t morsel = PickMorselSize(nrows, tp.num_workers());
    const size_t nm = NumMorsels(nrows, morsel);
    std::vector<Rel> slots(nm, out);
    std::vector<EvalStats> deltas(nm);
    std::vector<char> abandons(nm, 0);
    size_t err_m = nm;  // sentinel: no erroring morsel
    Status s = tp.RunMorsels(
        nm,
        [&](int w, size_t m) -> Status {
          Evaluator& ev = *ws[static_cast<size_t>(w)];
          EvalStats before = ev.stats();
          MorselRange rg = MorselAt(nrows, morsel, m);
          bool ab = false;
          Status st = ProbeRows(ev, r, work, elems, split, sort_merge,
                                &buckets, &sorted, rg.begin, rg.end,
                                &slots[m], &ab);
          deltas[m] = ev.stats();
          deltas[m].Subtract(before);
          abandons[m] = ab ? 1 : 0;
          return st;
        },
        &err_m);
    size_t ab_m = nm;
    for (size_t m = 0; m < nm; ++m) {
      if (abandons[m] != 0) {
        ab_m = m;
        break;
      }
    }
    if (ab_m < err_m) {
      // Serial row order hits this morsel's failing probe key before any
      // erroring row: abandon with exactly the serial prefix accounted
      // (full deltas before it plus its own partial delta); later
      // morsels ran only because the pool does not cancel, and their
      // counters are discarded with their slots.
      for (size_t m = 0; m <= ab_m; ++m) inner_.stats().Merge(deltas[m]);
      ResetWorkerStats();
      return std::optional<Rel>();
    }
    MergeWorkerStats();
    N2J_RETURN_IF_ERROR(s);
    for (Rel& slot : slots) AppendRel(&out, std::move(slot));
    return std::optional<Rel>(std::move(out));
  }

  bool abandoned = false;
  N2J_RETURN_IF_ERROR(ProbeRows(inner_, r, work, elems, split, sort_merge,
                                &buckets, &sorted, 0, nrows, &out,
                                &abandoned));
  if (abandoned) return std::optional<Rel>();
  return std::optional<Rel>(std::move(out));
}

Status ShredExecutor::ProbeRows(
    Evaluator& ev, const RangeSpec& r, const Rel& work,
    const std::vector<Value>& elems, const EquiSplit& split, bool sort_merge,
    const std::unordered_map<Value, std::vector<uint32_t>, ValueHash>* buckets,
    const std::vector<std::pair<Value, uint32_t>>* sorted, size_t row_begin,
    size_t row_end, Rel* out, bool* abandoned) {
  const std::vector<ExprPtr>& probe_keys = split.probe_keys;
  const std::vector<ExprPtr>& residual = split.residual;
  Environment env;
  std::vector<Value> parts(probe_keys.size());
  for (size_t row = row_begin; row < row_end; ++row) {
    PushRow(&env, work, row);
    bool failed = false;
    for (size_t k = 0; k < probe_keys.size(); ++k) {
      Result<Value> v = ev.Eval(probe_keys[k], env);
      if (!v.ok()) {
        failed = true;
        break;
      }
      parts[k] = std::move(*v);
    }
    if (failed) {
      PopRow(&env, work);
      *abandoned = true;
      return Status::OK();
    }
    Value key = JoinKeyFromParts(parts);
    ++ev.stats().hash_probes;

    const uint32_t* cand = nullptr;
    size_t ncand = 0;
    std::vector<uint32_t> range_cands;
    if (sort_merge) {
      auto lo = std::lower_bound(sorted->begin(), sorted->end(), key,
                                 [](const auto& p, const Value& k) {
                                   return p.first.Compare(k) < 0;
                                 });
      auto hi = std::upper_bound(lo, sorted->end(), key,
                                 [](const Value& k, const auto& p) {
                                   return k.Compare(p.first) < 0;
                                 });
      for (auto it = lo; it != hi; ++it) range_cands.push_back(it->second);
      cand = range_cands.data();
      ncand = range_cands.size();
    } else {
      auto it = buckets->find(key);
      if (it != buckets->end()) {
        cand = it->second.data();
        ncand = it->second.size();
      }
    }

    for (size_t ci = 0; ci < ncand; ++ci) {
      const Value& elem = elems[cand[ci]];
      bool pass = true;
      if (!residual.empty()) {
        // Residual conjuncts run in source order with short-circuit —
        // identical to the And chain the interpreter would walk once the
        // (already verified) key equalities held. Errors here imply the
        // interpreter errors on the same pair, so they propagate.
        env.Push(r.var, elem);
        ++ev.stats().predicate_evals;
        for (const ExprPtr& rc : residual) {
          Result<Value> p = ev.Eval(rc, env);
          if (!p.ok()) {
            env.Pop();
            PopRow(&env, work);
            return p.status();
          }
          if (!p->is_bool()) {
            env.Pop();
            PopRow(&env, work);
            return Status::RuntimeError("selection predicate not boolean");
          }
          if (!p->bool_value()) {
            pass = false;
            break;
          }
        }
        env.Pop();
      }
      if (pass) Emit(work, row, elem, cand[ci], out);
    }
    PopRow(&env, work);
  }
  return Status::OK();
}

Result<std::vector<Value>> ShredExecutor::EvalOutputs(const OutputSpec& out,
                                                      const Rel& work) {
  const size_t n = work.size();
  switch (out.kind) {
    case OutputSpec::Kind::kScalar: {
      std::vector<Value> vals(n);
      if (parallel() && n > 1) {
        // Each morsel writes disjoint vals[row] slots, so the output is
        // positionally identical to the serial loop with no merge step.
        ThreadPool& tp = pool();
        tp.set_morsel_phase("shred-out");
        std::vector<std::unique_ptr<Evaluator>>& ws = workers();
        const size_t morsel = PickMorselSize(n, tp.num_workers());
        const size_t nm = NumMorsels(n, morsel);
        Status s = tp.RunMorsels(nm, [&](int w, size_t m) -> Status {
          Evaluator& ev = *ws[static_cast<size_t>(w)];
          MorselRange rg = MorselAt(n, morsel, m);
          Environment env;
          for (size_t row = rg.begin; row < rg.end; ++row) {
            PushRow(&env, work, row);
            Result<Value> v = ev.Eval(out.scalar, env);
            PopRow(&env, work);
            if (!v.ok()) return v.status();
            vals[row] = std::move(*v);
          }
          return Status::OK();
        });
        MergeWorkerStats();
        N2J_RETURN_IF_ERROR(s);
        return vals;
      }
      Environment env;
      for (size_t row = 0; row < n; ++row) {
        PushRow(&env, work, row);
        Result<Value> v = inner_.Eval(out.scalar, env);
        PopRow(&env, work);
        if (!v.ok()) return v.status();
        vals[row] = std::move(*v);
      }
      return vals;
    }
    case OutputSpec::Kind::kChild: {
      const FlatNode& child = plan_.nodes[static_cast<size_t>(out.child)];
      if (child.ctx_vars.empty()) {
        // Uncorrelated subquery: one execution, broadcast — but only
        // when at least one work row exists (laziness again).
        if (n == 0) return std::vector<Value>{};
        Rel unit;
        unit.ctx = {0};
        N2J_ASSIGN_OR_RETURN(std::vector<Value> one,
                             ExecNode(child, std::move(unit)));
        return std::vector<Value>(n, one[0]);
      }
      Rel ctx;
      ctx.cols.reserve(child.ctx_vars.size());
      for (const std::string& v : child.ctx_vars) {
        // Innermost binding wins, like Environment::Lookup.
        for (auto it = work.cols.rbegin(); it != work.cols.rend(); ++it) {
          if (it->var == v) {
            ctx.cols.push_back(*it);
            break;
          }
        }
      }
      ctx.ctx.resize(n);
      for (size_t i = 0; i < n; ++i) ctx.ctx[i] = static_cast<uint32_t>(i);
      return ExecNode(child, std::move(ctx));
    }
    case OutputSpec::Kind::kTuple: {
      std::vector<std::vector<Value>> field_vals;
      field_vals.reserve(out.fields.size());
      for (const OutputSpec& f : out.fields) {
        N2J_ASSIGN_OR_RETURN(std::vector<Value> fv, EvalOutputs(f, work));
        field_vals.push_back(std::move(fv));
      }
      std::vector<Value> vals;
      vals.reserve(n);
      for (size_t row = 0; row < n; ++row) {
        std::vector<Field> fields;
        fields.reserve(out.fields.size());
        for (size_t f = 0; f < out.fields.size(); ++f) {
          fields.emplace_back(out.field_names[f],
                              std::move(field_vals[f][row]));
        }
        vals.push_back(Value::Tuple(std::move(fields)));
      }
      return vals;
    }
  }
  return Status::Internal("unreachable output kind");
}

Result<Value> EvalShredded(const Database& db, const ExprPtr& query,
                           const EvalOptions& opts, EvalStats* stats,
                           std::string* plan_text) {
  ShredPlan plan = ShredQuery(query);
  if (plan_text != nullptr) *plan_text = plan.Describe();
  ShredExecutor ex(db, plan, opts);
  Result<Value> r = ex.Run();
  if (stats != nullptr) *stats = ex.stats();
  return r;
}

Result<Value> EvalWithBackend(const Database& db, const ExprPtr& query,
                              const EvalOptions& opts, EvalStats* stats,
                              std::string* plan_text) {
  if (opts.backend == Backend::kShredded) {
    return EvalShredded(db, query, opts, stats, plan_text);
  }
  Evaluator ev(db, opts);
  Result<Value> r = ev.Eval(query);
  if (stats != nullptr) *stats = ev.stats();
  return r;
}

}  // namespace shred
}  // namespace n2j
