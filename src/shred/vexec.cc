// Vectorized batch engine of the shredded executor.
//
// A flat node whose ranges are all structural (extent / CSR child /
// constant set) runs as ONE fused pipeline: context rows enter in
// column batches of EvalOptions::vector_batch_size, each range expands
// candidates in chunks, the range predicate runs through the BatchVm
// over parameter columns, and only survivor indices flow to the next
// range — values materialize at the output stage. The pipeline is
// depth-first: a survivor chunk of range j advances to range j+1 before
// the next chunk of range j is generated, so work rows reach the final
// relation in exactly the scalar engine's lexicographic row order and
// the context column stays non-decreasing for single-pass stitching.
//
// Equi-join ranges build their hash table once over the whole element
// domain (whole-column key extraction when the projection has the key
// field), then probe a key column per batch. All-int / all-oid key
// domains use a contiguous open-addressing table of raw uint64 keys
// with software prefetch between the hash and probe passes; anything
// else (or an int domain probed by doubles, where int/double compare
// numerically) uses Value buckets — the same candidates the scalar
// engine's join produces, in the same survivor set.
//
// Fidelity: every evaluation this engine performs, the scalar engine
// also performs unless it errors even earlier. So ANY error here makes
// the caller rerun the node row-wise, which reproduces the canonical
// scalar-order first error; no Status produced here ever reaches the
// user directly. Gating failures (Setup returning false) evaluate
// nothing at all.

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "adl/analysis.h"
#include "common/str_util.h"
#include "exec/compile.h"
#include "shred/exec_internal.h"

namespace n2j {
namespace shred {
namespace {

// Where a free variable of a compiled fragment gets its column from.
struct Bind {
  enum Kind {
    kSelfVar,  // the range's own variable: the candidate element column
    kLevel,    // an earlier range of this node
    kCtxCol,   // a context column of the node
  };
  Kind kind = kCtxCol;
  int index = 0;  // level index / context column index
};

// A batch-compiled expression plus the binding of each parameter column.
struct Frag {
  CompiledBatchLambda prog;
  std::vector<Bind> binds;
  bool present = false;
};

// A batch of work rows mid-pipeline. Per completed range level, rows
// carry either an index into that level's shared element base (`idx`) or
// a materialized element value (`vals`) — never both.
struct VBatch {
  size_t n = 0;
  std::vector<uint32_t> ctx;               // context row ids, non-decreasing
  std::vector<std::vector<uint32_t>> idx;  // one (possibly unused) per level
  std::vector<std::vector<Value>> vals;
};

// Candidate (input row, element) pairs of one range, buffered up to the
// batch size before the predicate runs.
struct CandChunk {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> elems;
  std::vector<Value> elem_vals;  // materialized levels only
  size_t size() const { return rows.size(); }
  void clear() {
    rows.clear();
    elems.clear();
    elem_vals.clear();
  }
};

// Open-addressing table over raw uint64 join keys (all-int or all-oid
// build domains): contiguous key/head slots, chains threaded through a
// per-element `next` array in ascending element order.
struct RawKeyTable {
  std::vector<uint64_t> slot_key;
  std::vector<int32_t> slot_head;  // -1 = empty slot
  std::vector<int32_t> next;       // -1 = end of chain
  uint64_t mask = 0;
  size_t distinct = 0;

  static uint64_t Mix(uint64_t k) {
    // splitmix64 finalizer
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
  }

  void Build(const std::vector<uint64_t>& keys) {
    size_t cap = 16;
    while (cap < keys.size() * 2) cap <<= 1;
    slot_key.assign(cap, 0);
    slot_head.assign(cap, -1);
    next.assign(keys.size(), -1);
    mask = cap - 1;
    // Reverse insertion order + prepend = ascending chains, so probes
    // emit candidates in the scalar engine's bucket order.
    for (size_t i = keys.size(); i-- > 0;) {
      uint64_t slot = Mix(keys[i]) & mask;
      while (slot_head[slot] != -1 && slot_key[slot] != keys[i]) {
        slot = (slot + 1) & mask;
      }
      if (slot_head[slot] == -1) {
        slot_key[slot] = keys[i];
        ++distinct;
      }
      next[i] = slot_head[slot];
      slot_head[slot] = static_cast<int32_t>(i);
    }
  }

  uint64_t StartSlot(uint64_t k) const { return Mix(k) & mask; }

  int32_t FindFrom(uint64_t slot, uint64_t k) const {
    while (slot_head[slot] != -1) {
      if (slot_key[slot] == k) return slot_head[slot];
      slot = (slot + 1) & mask;
    }
    return -1;
  }
};

// Per-range state of the pipeline.
struct VecLevel {
  const RangeSpec* r = nullptr;

  enum Mode {
    kShared,        // extent scan or constant set: one element base
    kCsr,           // CSR child slice per parent row id
    kMaterialized,  // per-row set from a batch-evaluated field access
  };
  Mode mode = kShared;

  // kShared element base. Constant sets fill these lazily, on the first
  // non-empty batch — the same at-least-one-work-row condition under
  // which the scalar engine evaluates the source.
  const std::vector<Value>* shared = nullptr;
  Value shared_holder;
  bool shared_ready = false;
  std::shared_ptr<const ColumnarExtent> extent;  // kExtent provenance

  // kCsr / kMaterialized parent binding.
  const ColumnarChild* csr = nullptr;
  Bind parent;

  bool has_pred = false;    // r.pred != nullptr (lane frag compiled)
  bool has_source = false;  // kMaterialized source (lane frag compiled)

  // Batch hash join (kShared with equi-keys only). The build state below
  // is shared across worker lanes; lazy pieces (hash_decided / hash_ok /
  // buckets_ready and what they guard) are written only under the
  // pipeline mutex by whichever lane arrives first.
  bool try_hash = false;
  bool hash_decided = false;
  bool hash_ok = false;
  EquiSplit split;
  ExprPtr residual_all;  // AndAll(split.residual), compiled per lane
  bool has_scan_key = false;  // key_col missed: lanes carry a scan_key frag
  bool has_residual = false;
  const std::vector<Value>* key_col = nullptr;  // whole-column fast path

  enum KeyMode { kGeneric, kIntKeys, kOidKeys };
  KeyMode key_mode = kGeneric;
  const std::vector<Value>* keys_view = nullptr;
  std::vector<Value> keys_own;
  std::vector<uint64_t> raw_keys;
  RawKeyTable raw;
  bool buckets_ready = false;
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets;
};

// The compiled fragments of one range level, owned by one lane (below).
struct LaneLevel {
  Frag pred;      // full range predicate (the non-join path)
  Frag source;    // kMaterialized: the set-valued access, batch-compiled
  Frag scan_key;  // hash build keys (when no whole-column fast path)
  Frag probe_key;
  Frag residual;
};

// Everything one executing thread needs privately: a row-wise evaluator
// (whose stats the BatchVm bumps — bound at compile time), the compiled
// fragments, and the probe scratch. Lane 0 wraps the coordinator's
// inner evaluator and is the only lane a serial execution touches;
// worker lanes are compiled only when the pipeline goes parallel.
struct VecLane {
  Evaluator* ev = nullptr;
  std::vector<LaneLevel> lv;
  std::map<const OutputSpec*, Frag> out_frags;
  // Probe-pass scratch, reused across batches.
  std::vector<uint64_t> probe_u64;
  std::vector<uint64_t> probe_slot;
  std::vector<uint8_t> probe_cls;
  EvalStats& stats() { return ev->stats(); }
};

// One independently-runnable piece of the expansion: a context batch,
// optionally narrowed to a window of the level-0 candidate sequence.
// Units are exactly the serial engine's chunk boundaries, so every
// BatchVm::Run the workers issue has the same size and count as the
// serial execution — the per-batch counters merge to identical totals.
struct Unit {
  size_t lo = 0, hi = 0;            // context row range [lo, hi)
  size_t cand_lo = 0, cand_hi = 0;  // flattened candidate window
  bool windowed = false;
};

}  // namespace

// The per-node pipeline object. Lives for one TryExecNodeVectorized
// call; Setup() compiles every fragment (pure — no evaluation, so a
// refusal leaves no trace in results or errors), Execute() streams the
// batches and evaluates the outputs.
class VecPipeline {
 public:
  VecPipeline(ShredExecutor& ex, const FlatNode& node, const Rel& ctx,
              OpSpan& span)
      : ex_(ex),
        node_(node),
        ctx_(ctx),
        span_(span),
        nlevels_(node.ranges.size()),
        batch_(static_cast<size_t>(
            std::max(1, ex.opts().vector_batch_size))) {}

  bool Setup();
  Result<std::vector<Value>> Execute();

 private:
  std::optional<Bind> ResolveVar(const std::string& name, size_t upto) const {
    for (size_t l = upto; l-- > 0;) {
      if (node_.ranges[l].var == name) {
        return Bind{Bind::kLevel, static_cast<int>(l)};
      }
    }
    for (size_t c = ctx_.cols.size(); c-- > 0;) {
      if (ctx_.cols[c].var == name) {
        return Bind{Bind::kCtxCol, static_cast<int>(c)};
      }
    }
    return std::nullopt;
  }

  // Parameter selection: one column per *resolvable* free variable,
  // innermost binding first per name (duplicates shadow exactly like
  // Environment::Lookup). An unresolvable free variable is left to the
  // compiler, which fails on it — and the scalar rerun then reproduces
  // the interpreter's unbound-variable error.
  void CollectBinds(const std::set<std::string>& fv, size_t upto,
                    const std::string* self_var, Frag* f,
                    std::vector<std::string>* params) const {
    for (const std::string& v : fv) {
      if (self_var != nullptr && v == *self_var) {
        params->push_back(v);
        f->binds.push_back(Bind{Bind::kSelfVar, 0});
        continue;
      }
      std::optional<Bind> b = ResolveVar(v, upto);
      if (!b.has_value()) continue;
      params->push_back(v);
      f->binds.push_back(*b);
    }
  }

  bool CompileFrag(Evaluator& ev, Frag* f, const ExprPtr& body, size_t upto,
                   const std::string* self_var) {
    std::vector<std::string> params;
    CollectBinds(FreeVars(body), upto, self_var, f, &params);
    Environment empty;
    f->prog.Compile(ev, *body, params, empty);
    if (!f->prog.ok()) return false;
    f->present = true;
    return true;
  }

  bool CompileKeyFrag(Evaluator& ev, Frag* f, const std::vector<ExprPtr>& keys,
                      size_t upto, const std::string* self_var) {
    std::set<std::string> fv;
    for (const ExprPtr& k : keys) {
      std::set<std::string> kv = FreeVars(k);
      fv.insert(kv.begin(), kv.end());
    }
    std::vector<std::string> params;
    CollectBinds(fv, upto, self_var, f, &params);
    Environment empty;
    f->prog.CompileKey(ev, keys, params, empty);
    if (!f->prog.ok()) return false;
    f->present = true;
    return true;
  }

  bool CompileLaneOutputs(VecLane& ln, const OutputSpec& o) {
    switch (o.kind) {
      case OutputSpec::Kind::kScalar: {
        Frag& f = ln.out_frags[&o];
        return CompileFrag(*ln.ev, &f, o.scalar, nlevels_, nullptr);
      }
      case OutputSpec::Kind::kChild:
        return true;  // the child node gates independently via ExecNode
      case OutputSpec::Kind::kTuple:
        for (const OutputSpec& fo : o.fields) {
          if (!CompileLaneOutputs(ln, fo)) return false;
        }
        return true;
    }
    return false;
  }

  // Re-runs lane 0's compile recipe against a worker's evaluator. A
  // failure here (theoretical — workers share the coordinator's options)
  // just keeps the pipeline serial.
  bool CompileLane(VecLane& ln, Evaluator& ev) {
    ln.ev = &ev;
    ln.lv.resize(nlevels_);
    for (size_t j = 0; j < nlevels_; ++j) {
      const LaneLevel& proto = lane0_.lv[j];
      const VecLevel& lvl = levels_[j];
      LaneLevel& out = ln.lv[j];
      if (proto.source.present &&
          !CompileFrag(ev, &out.source, lvl.r->source, j, nullptr)) {
        return false;
      }
      if (proto.pred.present &&
          !CompileFrag(ev, &out.pred, lvl.r->pred, j, &lvl.r->var)) {
        return false;
      }
      if (proto.scan_key.present &&
          !CompileKeyFrag(ev, &out.scan_key, lvl.split.scan_keys, 0,
                          &lvl.r->var)) {
        return false;
      }
      if (proto.probe_key.present &&
          !CompileKeyFrag(ev, &out.probe_key, lvl.split.probe_keys, j,
                          nullptr)) {
        return false;
      }
      if (proto.residual.present &&
          !CompileFrag(ev, &out.residual, lvl.residual_all, j, &lvl.r->var)) {
        return false;
      }
    }
    return CompileLaneOutputs(ln, node_.out);
  }

  const Value& LevelVal(const VBatch& b, size_t l, uint32_t row) const {
    const VecLevel& lv = levels_[l];
    if (lv.mode == VecLevel::kMaterialized) return b.vals[l][row];
    if (lv.mode == VecLevel::kCsr) return lv.csr->elems[b.idx[l][row]];
    return (*lv.shared)[b.idx[l][row]];
  }

  // Fills the fragment's parameter columns for `m` rows. Rows come from
  // `cand->rows` when a chunk is given, else they are the identity range
  // [row_offset, row_offset + m) of `b`. The self column (candidate
  // elements) comes from the chunk.
  void BindFrag(Frag& f, const VBatch& b, size_t m, size_t row_offset,
                const CandChunk* cand, size_t self_level) {
    const uint32_t* rows = cand != nullptr ? cand->rows.data() : nullptr;
    for (size_t p = 0; p < f.binds.size(); ++p) {
      std::vector<Value>& col = f.prog.vm().ParamColumn(p);
      col.resize(m);
      const Bind& bd = f.binds[p];
      switch (bd.kind) {
        case Bind::kSelfVar: {
          const VecLevel& lv = levels_[self_level];
          if (lv.mode == VecLevel::kMaterialized) {
            for (size_t t = 0; t < m; ++t) col[t] = cand->elem_vals[t];
          } else {
            const std::vector<Value>& base = lv.mode == VecLevel::kCsr
                                                 ? lv.csr->elems
                                                 : *lv.shared;
            for (size_t t = 0; t < m; ++t) col[t] = base[cand->elems[t]];
          }
          break;
        }
        case Bind::kLevel: {
          const size_t l = static_cast<size_t>(bd.index);
          for (size_t t = 0; t < m; ++t) {
            const uint32_t row =
                rows != nullptr ? rows[t]
                                : static_cast<uint32_t>(row_offset + t);
            col[t] = LevelVal(b, l, row);
          }
          break;
        }
        case Bind::kCtxCol: {
          const Col& cc = ctx_.cols[static_cast<size_t>(bd.index)];
          for (size_t t = 0; t < m; ++t) {
            const uint32_t row =
                rows != nullptr ? rows[t]
                                : static_cast<uint32_t>(row_offset + t);
            col[t] = cc.vals[b.ctx[row]];
          }
          break;
        }
      }
    }
  }

  uint32_t ParentRowId(const VBatch& b, const Bind& parent,
                       uint32_t row) const {
    if (parent.kind == Bind::kLevel) {
      return b.idx[static_cast<size_t>(parent.index)][row];
    }
    const Col& cc = ctx_.cols[static_cast<size_t>(parent.index)];
    return cc.row_ids[b.ctx[row]];
  }

  VBatch MakeCtxBatch(size_t lo, size_t hi) const;
  Status ExpandFrom(VecLane& ln, size_t j, VBatch& b, VBatch* sink);
  Status FlushChunk(VecLane& ln, size_t j, const VBatch& b, CandChunk& chunk,
                    Frag* pred, VBatch* sink);
  Status EnsureShared(VecLane& ln, size_t j, VecLevel& lvl, const VBatch& b);
  void EnsureBuild(VecLane& ln, size_t j, VecLevel& lvl, bool allow_trace);
  void EnsureBuckets(VecLevel& lvl);
  void EnsureBucketsLocked(VecLevel& lvl);
  Status HashExpand(VecLane& ln, size_t j, VecLevel& lvl, const VBatch& b,
                    VBatch* sink);
  Status NLExpand(VecLane& ln, size_t j, VecLevel& lvl, const VBatch& b,
                  VBatch* sink);
  Status CsrExpand(VecLane& ln, size_t j, VecLevel& lvl, const VBatch& b,
                   VBatch* sink);
  Status MatExpand(VecLane& ln, size_t j, VecLevel& lvl, const VBatch& b,
                   VBatch* sink);
  Status RunUnit(VecLane& ln, const Unit& u, VBatch* sink);
  void AppendTo(VBatch* dst, VBatch b);
  Result<std::vector<Value>> EvalOut(const OutputSpec& out);

  ShredExecutor& ex_;
  const FlatNode& node_;
  const Rel& ctx_;
  OpSpan& span_;
  const size_t nlevels_;
  const size_t batch_;
  std::vector<VecLevel> levels_;
  VecLane lane0_;            // the coordinator's lane (ev = inner_)
  std::vector<VecLane> wl_;  // worker lanes, compiled only under mt_
  bool mt_ = false;
  // Guards every lazily-built piece of shared level state: constant-set
  // element bases, hash builds, Value buckets. One mutex for the whole
  // pipeline — lazy inits are per-level one-shots, not hot paths.
  std::mutex mu_;
  VBatch final_;
};

bool VecPipeline::Setup() {
  if (nlevels_ == 0) return false;
  levels_.resize(nlevels_);
  lane0_.ev = &ex_.inner();
  lane0_.lv.resize(nlevels_);
  const EvalOptions& opts = ex_.opts();
  for (size_t j = 0; j < nlevels_; ++j) {
    VecLevel& lvl = levels_[j];
    LaneLevel& ll = lane0_.lv[j];
    const RangeSpec& r = node_.ranges[j];
    lvl.r = &r;
    switch (r.kind) {
      case RangeKind::kExtent: {
        lvl.extent = ex_.db().columnar().Get(ex_.db(), r.table);
        // No projection (unknown table included): the scalar engine's
        // row-wise path owns the error behavior.
        if (lvl.extent == nullptr) return false;
        lvl.mode = VecLevel::kShared;
        lvl.shared = &lvl.extent->rows;
        lvl.shared_ready = true;
        break;
      }
      case RangeKind::kConstSet:
        lvl.mode = VecLevel::kShared;
        break;
      case RangeKind::kChildAttr: {
        std::optional<Bind> parent = ResolveVar(r.parent_var, j);
        const ColumnarExtent* pext = nullptr;
        if (parent.has_value()) {
          if (parent->kind == Bind::kLevel) {
            const VecLevel& pl = levels_[static_cast<size_t>(parent->index)];
            pext = pl.extent.get();
          } else {
            pext = ctx_.cols[static_cast<size_t>(parent->index)].extent.get();
          }
        }
        if (pext != nullptr) lvl.csr = pext->Child(r.attr);
        if (lvl.csr != nullptr) {
          lvl.mode = VecLevel::kCsr;
          lvl.parent = *parent;
        } else {
          lvl.mode = VecLevel::kMaterialized;
          if (!CompileFrag(ex_.inner(), &ll.source, r.source, j, nullptr)) {
            return false;
          }
          lvl.has_source = true;
        }
        break;
      }
      case RangeKind::kOpaque:
        return false;  // never marked vectorizable; defensive
    }
    if (r.pred != nullptr) {
      if (!CompileFrag(ex_.inner(), &ll.pred, r.pred, j, &r.var)) return false;
      lvl.has_pred = true;
      if (lvl.mode == VecLevel::kShared && opts.use_hash_joins &&
          opts.join_algorithm != JoinAlgorithm::kNestedLoop) {
        lvl.split = SplitEquiPred(r);
        if (!lvl.split.scan_keys.empty()) {
          if (opts.join_algorithm == JoinAlgorithm::kSortMerge) {
            // Sort-merge stays a scalar-engine feature; refusing keeps
            // its behavior (and joins_sortmerge accounting) intact.
            return false;
          }
          lvl.try_hash = true;
          if (lvl.split.scan_keys.size() == 1 && lvl.extent != nullptr) {
            const ExprPtr& e = lvl.split.scan_keys[0];
            if (e->kind() == ExprKind::kFieldAccess &&
                e->child(0)->kind() == ExprKind::kVar &&
                e->child(0)->name() == r.var) {
              lvl.key_col = lvl.extent->Column(e->name());
            }
          }
          if (lvl.key_col == nullptr) {
            if (!CompileKeyFrag(ex_.inner(), &ll.scan_key, lvl.split.scan_keys,
                                0, &r.var)) {
              lvl.try_hash = false;
            } else {
              lvl.has_scan_key = true;
            }
          }
          if (lvl.try_hash &&
              !CompileKeyFrag(ex_.inner(), &ll.probe_key, lvl.split.probe_keys,
                              j, nullptr)) {
            lvl.try_hash = false;
          }
          if (lvl.try_hash && !lvl.split.residual.empty()) {
            lvl.residual_all = Expr::AndAll(lvl.split.residual);
            if (!CompileFrag(ex_.inner(), &ll.residual, lvl.residual_all, j,
                             &r.var)) {
              lvl.try_hash = false;
            } else {
              lvl.has_residual = true;
            }
          }
          // A hash-side compile failure is not a node refusal: the fused
          // nested-loop path below still runs the full predicate.
        }
      }
    }
  }
  return CompileLaneOutputs(lane0_, node_.out);
}

VBatch VecPipeline::MakeCtxBatch(size_t lo, size_t hi) const {
  VBatch b;
  b.n = hi - lo;
  b.idx.resize(nlevels_);
  b.vals.resize(nlevels_);
  b.ctx.reserve(b.n);
  for (size_t i = lo; i < hi; ++i) b.ctx.push_back(static_cast<uint32_t>(i));
  return b;
}

Status VecPipeline::ExpandFrom(VecLane& ln, size_t j, VBatch& b,
                               VBatch* sink) {
  if (b.n == 0) return Status::OK();
  if (j == nlevels_) {
    AppendTo(sink, std::move(b));
    return Status::OK();
  }
  VecLevel& lvl = levels_[j];
  switch (lvl.mode) {
    case VecLevel::kShared:
      N2J_RETURN_IF_ERROR(EnsureShared(ln, j, lvl, b));
      if (lvl.try_hash) {
        EnsureBuild(ln, j, lvl, /*allow_trace=*/!mt_);
        if (lvl.hash_ok) return HashExpand(ln, j, lvl, b, sink);
      }
      return NLExpand(ln, j, lvl, b, sink);
    case VecLevel::kCsr:
      return CsrExpand(ln, j, lvl, b, sink);
    case VecLevel::kMaterialized:
      return MatExpand(ln, j, lvl, b, sink);
  }
  return Status::Internal("unreachable range mode");
}

Status VecPipeline::FlushChunk(VecLane& ln, size_t j, const VBatch& b,
                               CandChunk& chunk, Frag* pred, VBatch* sink) {
  const size_t m = chunk.size();
  if (m == 0) return Status::OK();
  std::vector<uint32_t> keep;
  keep.reserve(m);
  if (pred != nullptr) {
    BindFrag(*pred, b, m, 0, &chunk, j);
    ln.stats().predicate_evals += m;
    if (!pred->prog.vm().Run(m)) return pred->prog.status();
    const std::vector<Value>& res = pred->prog.vm().ResultColumn();
    for (uint32_t t = 0; t < m; ++t) {
      if (!res[t].is_bool()) {
        return Status::RuntimeError("selection predicate not boolean");
      }
      if (res[t].bool_value()) keep.push_back(t);
    }
  } else {
    for (uint32_t t = 0; t < m; ++t) keep.push_back(t);
  }
  if (keep.empty()) return Status::OK();

  VBatch nb;
  nb.n = keep.size();
  nb.idx.resize(nlevels_);
  nb.vals.resize(nlevels_);
  nb.ctx.reserve(nb.n);
  for (uint32_t t : keep) nb.ctx.push_back(b.ctx[chunk.rows[t]]);
  for (size_t l = 0; l < j; ++l) {
    if (levels_[l].mode == VecLevel::kMaterialized) {
      nb.vals[l].reserve(nb.n);
      for (uint32_t t : keep) nb.vals[l].push_back(b.vals[l][chunk.rows[t]]);
    } else {
      nb.idx[l].reserve(nb.n);
      for (uint32_t t : keep) nb.idx[l].push_back(b.idx[l][chunk.rows[t]]);
    }
  }
  if (levels_[j].mode == VecLevel::kMaterialized) {
    nb.vals[j].reserve(nb.n);
    for (uint32_t t : keep) nb.vals[j].push_back(std::move(chunk.elem_vals[t]));
  } else {
    nb.idx[j].reserve(nb.n);
    for (uint32_t t : keep) nb.idx[j].push_back(chunk.elems[t]);
  }
  return ExpandFrom(ln, j + 1, nb, sink);
}

Status VecPipeline::EnsureShared(VecLane& ln, size_t j, VecLevel& lvl,
                                 const VBatch& b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lvl.shared_ready) return Status::OK();
  // Constant set, evaluated once under the first surviving row's
  // bindings — the same row (and at-least-once condition) as the scalar
  // engine's PushRow(work, 0). Const-sets are uncorrelated by
  // classification, so which lane's surviving row supplies the bindings
  // cannot change the value; under mt_ the first-arriving lane builds
  // and everyone else reuses the cached base.
  Environment env;
  for (const Col& c : ctx_.cols) env.Push(c.var, c.vals[b.ctx[0]]);
  for (size_t l = 0; l < j; ++l) {
    env.Push(node_.ranges[l].var, LevelVal(b, l, 0));
  }
  Result<Value> v = ln.ev->Eval(lvl.r->source, env);
  if (!v.ok()) return v.status();
  if (!v->is_set()) {
    return Status::RuntimeError("shredded range over non-set");
  }
  lvl.shared_holder = std::move(*v);
  lvl.shared = &lvl.shared_holder.elements();
  lvl.shared_ready = true;
  return Status::OK();
}

void VecPipeline::EnsureBuckets(VecLevel& lvl) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBucketsLocked(lvl);
}

void VecPipeline::EnsureBucketsLocked(VecLevel& lvl) {
  if (lvl.buckets_ready) return;
  const std::vector<Value>& keys = *lvl.keys_view;
  lvl.buckets.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    lvl.buckets[keys[i]].push_back(static_cast<uint32_t>(i));
  }
  lvl.buckets_ready = true;
}

void VecPipeline::EnsureBuild(VecLane& ln, size_t j, VecLevel& lvl,
                              bool allow_trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lvl.hash_decided) return;
  lvl.hash_decided = true;
  const std::vector<Value>& base = *lvl.shared;
  const size_t n = base.size();
  if (lvl.key_col != nullptr) {
    lvl.keys_view = lvl.key_col;
  } else {
    // Key evaluation may touch elements the predicate would have
    // short-circuited past, so any error abandons the join — the fused
    // nested-loop path reproduces the scalar engine's behavior exactly.
    lvl.keys_own.reserve(n);
    Frag& sk = ln.lv[j].scan_key;
    for (size_t lo = 0; lo < n; lo += batch_) {
      const size_t m = std::min(batch_, n - lo);
      std::vector<Value>& col = sk.prog.vm().ParamColumn(0);
      col.resize(m);
      for (size_t t = 0; t < m; ++t) col[t] = base[lo + t];
      if (!sk.prog.vm().Run(m)) return;  // hash_ok stays false
      std::vector<Value>& res = sk.prog.vm().ResultColumn();
      for (size_t t = 0; t < m; ++t) {
        lvl.keys_own.push_back(std::move(res[t]));
      }
    }
    lvl.keys_view = &lvl.keys_own;
  }

  const std::vector<Value>& keys = *lvl.keys_view;
  bool all_int = true, all_oid = true;
  for (const Value& k : keys) {
    all_int = all_int && k.is_int();
    all_oid = all_oid && k.is_oid();
    if (!all_int && !all_oid) break;
  }
  size_t table_size;
  if ((all_int || all_oid) && !keys.empty()) {
    lvl.key_mode = all_int ? VecLevel::kIntKeys : VecLevel::kOidKeys;
    lvl.raw_keys.reserve(keys.size());
    for (const Value& k : keys) {
      lvl.raw_keys.push_back(all_int ? static_cast<uint64_t>(k.int_value())
                                     : k.oid_value());
    }
    lvl.raw.Build(lvl.raw_keys);
    table_size = lvl.raw.distinct;
  } else {
    lvl.key_mode = VecLevel::kGeneric;
    EnsureBucketsLocked(lvl);
    table_size = lvl.buckets.size();
  }

  ln.stats().joins_hash += 1;
  ln.stats().hash_inserts += n;
  ln.stats().tuples_scanned += n;
  // Worker lanes skip the annotation: the trace collector's span stack
  // is coordinator-only. Level-0 builds (the common case) run eagerly on
  // the coordinator before any morsel launches, so parallel runs only
  // lose the annotation for hash levels deeper in the pipeline.
  if (allow_trace && ex_.opts().trace != nullptr) {
    ex_.opts().trace->AnnotateOpen(
        StrFormat(" vec-hash keys=%zu residual=%zu",
                  lvl.split.scan_keys.size(), lvl.split.residual.size()));
    ex_.opts().trace->NotePeakHash(table_size);
  }
  lvl.hash_ok = true;
}

Status VecPipeline::HashExpand(VecLane& ln, size_t j, VecLevel& lvl,
                               const VBatch& b, VBatch* sink) {
  Frag& pk = ln.lv[j].probe_key;
  BindFrag(pk, b, b.n, 0, nullptr, j);
  if (!pk.prog.vm().Run(b.n)) {
    // Probe-key error: fall back to the nested loop for THIS batch only
    // and let the full predicate decide — erroring only where the
    // interpreter does. hash_ok stays set: which batches fall back must
    // not depend on the order lanes reach them, and a per-batch
    // probe-key error is deterministic, so every execution (serial or
    // parallel) downgrades exactly the same batches.
    return NLExpand(ln, j, lvl, b, sink);
  }
  const std::vector<Value>& kc = pk.prog.vm().ResultColumn();
  ln.stats().hash_probes += b.n;

  CandChunk chunk;
  Frag* res_pred = ln.lv[j].residual.present ? &ln.lv[j].residual : nullptr;
  auto add = [&](uint32_t row, uint32_t elem) -> Status {
    chunk.rows.push_back(row);
    chunk.elems.push_back(elem);
    if (chunk.size() >= batch_) {
      N2J_RETURN_IF_ERROR(FlushChunk(ln, j, b, chunk, res_pred, sink));
      chunk.clear();
    }
    return Status::OK();
  };

  if (lvl.key_mode != VecLevel::kGeneric) {
    // Two passes: hash every lane's key and prefetch its slot line,
    // then walk the chains. cls: 0 = no match possible, 1 = raw probe,
    // 2 = Value buckets (int domain probed by a double — int/double
    // compare numerically, so raw equality would miss).
    ln.probe_u64.resize(b.n);
    ln.probe_slot.resize(b.n);
    ln.probe_cls.resize(b.n);
    const bool int_mode = lvl.key_mode == VecLevel::kIntKeys;
    for (size_t i = 0; i < b.n; ++i) {
      const Value& v = kc[i];
      uint8_t cls = 0;
      if (int_mode && v.is_int()) {
        ln.probe_u64[i] = static_cast<uint64_t>(v.int_value());
        cls = 1;
      } else if (!int_mode && v.is_oid()) {
        ln.probe_u64[i] = v.oid_value();
        cls = 1;
      } else if (int_mode && v.is_double()) {
        cls = 2;
      }
      ln.probe_cls[i] = cls;
      if (cls == 1) {
        ln.probe_slot[i] = lvl.raw.StartSlot(ln.probe_u64[i]);
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&lvl.raw.slot_key[ln.probe_slot[i]]);
        __builtin_prefetch(&lvl.raw.slot_head[ln.probe_slot[i]]);
#endif
      }
    }
    for (size_t i = 0; i < b.n; ++i) {
      if (ln.probe_cls[i] == 1) {
        for (int32_t e = lvl.raw.FindFrom(ln.probe_slot[i], ln.probe_u64[i]);
             e != -1; e = lvl.raw.next[static_cast<size_t>(e)]) {
          N2J_RETURN_IF_ERROR(
              add(static_cast<uint32_t>(i), static_cast<uint32_t>(e)));
        }
      } else if (ln.probe_cls[i] == 2) {
        EnsureBuckets(lvl);
        auto it = lvl.buckets.find(kc[i]);
        if (it != lvl.buckets.end()) {
          for (uint32_t e : it->second) {
            N2J_RETURN_IF_ERROR(add(static_cast<uint32_t>(i), e));
          }
        }
      }
    }
  } else {
    for (size_t i = 0; i < b.n; ++i) {
      auto it = lvl.buckets.find(kc[i]);
      if (it != lvl.buckets.end()) {
        for (uint32_t e : it->second) {
          N2J_RETURN_IF_ERROR(add(static_cast<uint32_t>(i), e));
        }
      }
    }
  }
  return FlushChunk(ln, j, b, chunk, res_pred, sink);
}

Status VecPipeline::NLExpand(VecLane& ln, size_t j, VecLevel& lvl,
                             const VBatch& b, VBatch* sink) {
  const std::vector<Value>& base = *lvl.shared;
  Frag* pred = ln.lv[j].pred.present ? &ln.lv[j].pred : nullptr;
  CandChunk chunk;
  for (uint32_t i = 0; i < b.n; ++i) {
    for (size_t e = 0; e < base.size(); ++e) {
      chunk.rows.push_back(i);
      chunk.elems.push_back(static_cast<uint32_t>(e));
      if (chunk.size() >= batch_) {
        ln.stats().tuples_scanned += chunk.size();
        N2J_RETURN_IF_ERROR(FlushChunk(ln, j, b, chunk, pred, sink));
        chunk.clear();
      }
    }
  }
  ln.stats().tuples_scanned += chunk.size();
  return FlushChunk(ln, j, b, chunk, pred, sink);
}

Status VecPipeline::CsrExpand(VecLane& ln, size_t j, VecLevel& lvl,
                              const VBatch& b, VBatch* sink) {
  Frag* pred = ln.lv[j].pred.present ? &ln.lv[j].pred : nullptr;
  CandChunk chunk;
  for (uint32_t i = 0; i < b.n; ++i) {
    const uint32_t rid = ParentRowId(b, lvl.parent, i);
    const uint32_t lo = lvl.csr->begin(rid);
    const uint32_t hi = lvl.csr->end(rid);
    for (uint32_t e = lo; e < hi; ++e) {
      chunk.rows.push_back(i);
      chunk.elems.push_back(e);  // global index into csr->elems
      if (chunk.size() >= batch_) {
        ln.stats().tuples_scanned += chunk.size();
        N2J_RETURN_IF_ERROR(FlushChunk(ln, j, b, chunk, pred, sink));
        chunk.clear();
      }
    }
  }
  ln.stats().tuples_scanned += chunk.size();
  return FlushChunk(ln, j, b, chunk, pred, sink);
}

Status VecPipeline::MatExpand(VecLane& ln, size_t j, VecLevel& lvl,
                              const VBatch& b, VBatch* sink) {
  Frag& src = ln.lv[j].source;
  BindFrag(src, b, b.n, 0, nullptr, j);
  if (!src.prog.vm().Run(b.n)) return src.prog.status();
  std::vector<Value>& res = src.prog.vm().ResultColumn();
  std::vector<Value> sets;
  sets.reserve(b.n);
  for (size_t i = 0; i < b.n; ++i) sets.push_back(std::move(res[i]));

  Frag* pred = ln.lv[j].pred.present ? &ln.lv[j].pred : nullptr;
  CandChunk chunk;
  for (uint32_t i = 0; i < b.n; ++i) {
    if (!sets[i].is_set()) {
      return Status::RuntimeError("shredded range over non-set");
    }
    for (const Value& elem : sets[i].elements()) {
      chunk.rows.push_back(i);
      chunk.elem_vals.push_back(elem);
      if (chunk.size() >= batch_) {
        ln.stats().tuples_scanned += chunk.size();
        N2J_RETURN_IF_ERROR(FlushChunk(ln, j, b, chunk, pred, sink));
        chunk.clear();
      }
    }
  }
  ln.stats().tuples_scanned += chunk.size();
  return FlushChunk(ln, j, b, chunk, pred, sink);
}

// One morsel of the parallel expansion. Non-windowed units run a whole
// context batch through the full pipeline; windowed units (nested-loop
// and CSR level 0) carve one serial-chunk-sized window out of the
// flattened (row × element) candidate sequence, which parallelizes even
// a single-context-row node over a large scan.
Status VecPipeline::RunUnit(VecLane& ln, const Unit& u, VBatch* sink) {
  VBatch b = MakeCtxBatch(u.lo, u.hi);
  if (!u.windowed) return ExpandFrom(ln, 0, b, sink);
  VecLevel& lvl = levels_[0];
  CandChunk chunk;
  if (lvl.mode == VecLevel::kShared) {
    const size_t S = lvl.shared->size();
    for (size_t pos = u.cand_lo; pos < u.cand_hi; ++pos) {
      chunk.rows.push_back(static_cast<uint32_t>(pos / S));
      chunk.elems.push_back(static_cast<uint32_t>(pos % S));
    }
  } else {  // kCsr
    size_t pos = 0;
    for (uint32_t i = 0; i < b.n && pos < u.cand_hi; ++i) {
      const uint32_t rid = ParentRowId(b, lvl.parent, i);
      const size_t lo0 = lvl.csr->begin(rid);
      const size_t n_i = lvl.csr->fanout(rid);
      const size_t from = std::max(u.cand_lo, pos);
      const size_t to = std::min(u.cand_hi, pos + n_i);
      for (size_t k = from; k < to; ++k) {
        chunk.rows.push_back(i);
        chunk.elems.push_back(static_cast<uint32_t>(lo0 + (k - pos)));
      }
      pos += n_i;
    }
  }
  ln.stats().tuples_scanned += chunk.size();
  Frag* pred = ln.lv[0].pred.present ? &ln.lv[0].pred : nullptr;
  return FlushChunk(ln, 0, b, chunk, pred, sink);
}

void VecPipeline::AppendTo(VBatch* dst, VBatch b) {
  dst->n += b.n;
  dst->ctx.insert(dst->ctx.end(), b.ctx.begin(), b.ctx.end());
  for (size_t l = 0; l < nlevels_; ++l) {
    if (levels_[l].mode == VecLevel::kMaterialized) {
      for (Value& v : b.vals[l]) dst->vals[l].push_back(std::move(v));
    } else {
      dst->idx[l].insert(dst->idx[l].end(), b.idx[l].begin(), b.idx[l].end());
    }
  }
}

Result<std::vector<Value>> VecPipeline::EvalOut(const OutputSpec& out) {
  const size_t n = final_.n;
  switch (out.kind) {
    case OutputSpec::Kind::kScalar: {
      std::vector<Value> vals(n);
      if (mt_ && n > batch_) {
        // The serial windows [lo, lo + batch_) are independent, and each
        // writes a disjoint slice of vals — the batch boundaries (and so
        // the per-batch counters) stay exactly the serial ones.
        ThreadPool& tp = ex_.pool();
        tp.set_morsel_phase("vec-out");
        const size_t nwin = (n + batch_ - 1) / batch_;
        Status s = tp.RunMorsels(nwin, [&](int w, size_t m) -> Status {
          const size_t lo = m * batch_;
          const size_t mm = std::min(batch_, n - lo);
          VecLane& ln = wl_[static_cast<size_t>(w)];
          Frag& f = ln.out_frags[&out];
          BindFrag(f, final_, mm, lo, nullptr, 0);
          if (!f.prog.vm().Run(mm)) return f.prog.status();
          std::vector<Value>& res = f.prog.vm().ResultColumn();
          for (size_t t = 0; t < mm; ++t) vals[lo + t] = std::move(res[t]);
          return Status::OK();
        });
        ex_.MergeWorkerStats();
        N2J_RETURN_IF_ERROR(s);
        return vals;
      }
      Frag& f = lane0_.out_frags[&out];
      for (size_t lo = 0; lo < n; lo += batch_) {
        const size_t m = std::min(batch_, n - lo);
        BindFrag(f, final_, m, lo, nullptr, 0);
        if (!f.prog.vm().Run(m)) return f.prog.status();
        std::vector<Value>& res = f.prog.vm().ResultColumn();
        for (size_t t = 0; t < m; ++t) vals[lo + t] = std::move(res[t]);
      }
      return vals;
    }
    case OutputSpec::Kind::kChild: {
      const FlatNode& child =
          ex_.plan().nodes[static_cast<size_t>(out.child)];
      if (child.ctx_vars.empty()) {
        // Uncorrelated subquery: one execution, broadcast — but only
        // when at least one work row exists (laziness, as scalar).
        if (n == 0) return std::vector<Value>{};
        Rel unit;
        unit.ctx = {0};
        N2J_ASSIGN_OR_RETURN(std::vector<Value> one,
                             ex_.ExecNode(child, std::move(unit)));
        return std::vector<Value>(n, one[0]);
      }
      Rel cctx;
      cctx.cols.reserve(child.ctx_vars.size());
      for (const std::string& v : child.ctx_vars) {
        std::optional<Bind> bd = ResolveVar(v, nlevels_);
        if (!bd.has_value()) continue;  // scalar skips unknown vars too
        Col col;
        col.var = v;
        col.vals.reserve(n);
        if (bd->kind == Bind::kLevel) {
          const size_t l = static_cast<size_t>(bd->index);
          for (size_t i = 0; i < n; ++i) {
            col.vals.push_back(LevelVal(final_, l, static_cast<uint32_t>(i)));
          }
          // Extent provenance flows to the child exactly as the scalar
          // engine's Skeleton/Emit propagate it.
          if (levels_[l].extent != nullptr) {
            col.extent = levels_[l].extent;
            col.row_ids = final_.idx[l];
          }
        } else {
          const Col& cc = ctx_.cols[static_cast<size_t>(bd->index)];
          for (size_t i = 0; i < n; ++i) {
            col.vals.push_back(cc.vals[final_.ctx[i]]);
          }
          if (cc.extent != nullptr) {
            col.extent = cc.extent;
            col.row_ids.reserve(n);
            for (size_t i = 0; i < n; ++i) {
              col.row_ids.push_back(cc.row_ids[final_.ctx[i]]);
            }
          }
        }
        cctx.cols.push_back(std::move(col));
      }
      cctx.ctx.resize(n);
      for (size_t i = 0; i < n; ++i) cctx.ctx[i] = static_cast<uint32_t>(i);
      return ex_.ExecNode(child, std::move(cctx));
    }
    case OutputSpec::Kind::kTuple: {
      std::vector<std::vector<Value>> field_vals;
      field_vals.reserve(out.fields.size());
      for (const OutputSpec& f : out.fields) {
        N2J_ASSIGN_OR_RETURN(std::vector<Value> fv, EvalOut(f));
        field_vals.push_back(std::move(fv));
      }
      std::vector<Value> vals;
      vals.reserve(n);
      for (size_t row = 0; row < n; ++row) {
        std::vector<Field> fields;
        fields.reserve(out.fields.size());
        for (size_t f = 0; f < out.fields.size(); ++f) {
          fields.emplace_back(out.field_names[f],
                              std::move(field_vals[f][row]));
        }
        vals.push_back(Value::Tuple(std::move(fields)));
      }
      return vals;
    }
  }
  return Status::Internal("unreachable output kind");
}

Result<std::vector<Value>> VecPipeline::Execute() {
  ++ex_.inner().stats().vec_pipelines;
  final_.idx.resize(nlevels_);
  final_.vals.resize(nlevels_);
  const size_t nctx = ctx_.size();

  mt_ = ex_.parallel() && nctx > 0;
  if (mt_) {
    // Level-0 lazy state is built eagerly on the coordinator — exactly
    // what the serial engine does at its first batch, before any other
    // work, so the build's evaluations, counters, and trace annotations
    // land identically. (Deeper levels stay lazy behind the pipeline
    // mutex; reaching them at all requires surviving rows, which the
    // coordinator cannot know without evaluating.)
    VecLevel& l0 = levels_[0];
    if (l0.mode == VecLevel::kShared) {
      VBatch first = MakeCtxBatch(0, std::min(nctx, batch_));
      N2J_RETURN_IF_ERROR(EnsureShared(lane0_, 0, l0, first));
      if (l0.try_hash) EnsureBuild(lane0_, 0, l0, /*allow_trace=*/true);
    }
    std::vector<std::unique_ptr<Evaluator>>& ws = ex_.workers();
    wl_.resize(ws.size());
    for (size_t w = 0; w < ws.size() && mt_; ++w) {
      if (!CompileLane(wl_[w], *ws[w])) mt_ = false;
    }
  }

  if (!mt_) {
    for (size_t lo = 0; lo < nctx; lo += batch_) {
      VBatch b = MakeCtxBatch(lo, std::min(nctx, lo + batch_));
      N2J_RETURN_IF_ERROR(ExpandFrom(lane0_, 0, b, &final_));
    }
  } else {
    const VecLevel& l0 = levels_[0];
    std::vector<Unit> units;
    for (size_t lo = 0; lo < nctx; lo += batch_) {
      const size_t hi = std::min(nctx, lo + batch_);
      if (l0.mode == VecLevel::kShared && !(l0.try_hash && l0.hash_ok)) {
        const size_t total = (hi - lo) * l0.shared->size();
        for (size_t c = 0; c < total; c += batch_) {
          units.push_back(Unit{lo, hi, c, std::min(total, c + batch_), true});
        }
      } else if (l0.mode == VecLevel::kCsr) {
        const Col& cc = ctx_.cols[static_cast<size_t>(l0.parent.index)];
        size_t total = 0;
        for (size_t i = lo; i < hi; ++i) total += l0.csr->fanout(cc.row_ids[i]);
        for (size_t c = 0; c < total; c += batch_) {
          units.push_back(Unit{lo, hi, c, std::min(total, c + batch_), true});
        }
      } else {
        units.push_back(Unit{lo, hi, 0, 0, false});
      }
    }
    if (!units.empty()) {
      ThreadPool& tp = ex_.pool();
      tp.set_morsel_phase("vec-expand");
      std::vector<VBatch> sinks(units.size());
      for (VBatch& s : sinks) {
        s.idx.resize(nlevels_);
        s.vals.resize(nlevels_);
      }
      Status s = tp.RunMorsels(units.size(), [&](int w, size_t m) -> Status {
        return RunUnit(wl_[static_cast<size_t>(w)], units[m], &sinks[m]);
      });
      // Merge even on error: the caller rolls the whole attempt back
      // before the scalar rerun, and the worker-stats-are-zero invariant
      // must hold either way.
      ex_.MergeWorkerStats();
      N2J_RETURN_IF_ERROR(s);
      // Units concatenate in plan order, which is the serial engine's
      // generation order — row order is bit-identical, and the ctx
      // column stays non-decreasing for single-pass stitching.
      for (VBatch& sk : sinks) AppendTo(&final_, std::move(sk));
    }
  }

  N2J_ASSIGN_OR_RETURN(std::vector<Value> outs, EvalOut(node_.out));
  span_.Annotate("vec");
  span_.RowsOut(final_.n);
  return ShredExecutor::StitchByCtx(std::move(outs), final_.ctx, nctx);
}

Result<std::optional<std::vector<Value>>> ShredExecutor::TryExecNodeVectorized(
    const FlatNode& node, const Rel& ctx, OpSpan& span) {
  VecPipeline p(*this, node, ctx, span);
  if (!p.Setup()) return std::optional<std::vector<Value>>();
  N2J_ASSIGN_OR_RETURN(std::vector<Value> stitched, p.Execute());
  return std::optional<std::vector<Value>>(std::move(stitched));
}

}  // namespace shred
}  // namespace n2j
