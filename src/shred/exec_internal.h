#ifndef N2J_SHRED_EXEC_INTERNAL_H_
#define N2J_SHRED_EXEC_INTERNAL_H_

// Internals shared by the two engines of the shredded executor: the
// row-wise scalar engine (exec.cc) and the vectorized batch engine
// (vexec.cc). Both are member-function families of one ShredExecutor so
// they share the working-relation representation, the row-wise delegate
// evaluator (and with it ONE EvalStats struct — the span-sum invariant
// depends on every counter bump landing there), and the per-node
// dispatch: ExecNode tries the batch pipeline when the node qualifies
// and falls back to the scalar path otherwise. Not part of the public
// shred API — include shred.h instead.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adl/expr.h"
#include "adl/value.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/eval.h"
#include "obs/trace.h"
#include "shred/shred.h"
#include "storage/columnar.h"

namespace n2j {
namespace shred {

// One column of the working relation. `extent`/`row_ids` are provenance:
// set when the column's values are rows of a columnar extent, so a later
// kChildAttr range can slice the CSR child relation instead of
// re-evaluating the field access per row.
struct Col {
  std::string var;
  std::vector<Value> vals;
  std::shared_ptr<const ColumnarExtent> extent;
  std::vector<uint32_t> row_ids;
};

// The working relation of one DAG node: context columns plus one column
// per expanded range. `ctx[i]` is row i's synthetic parent id — the
// index of the context row it descends from. Rows stay sorted by ctx,
// which makes stitching a single linear pass.
struct Rel {
  std::vector<Col> cols;
  std::vector<uint32_t> ctx;
  size_t size() const { return ctx.size(); }
};

inline void PushRow(Environment* env, const Rel& rel, size_t row) {
  for (const Col& c : rel.cols) env->Push(c.var, c.vals[row]);
}

inline void PopRow(Environment* env, const Rel& rel) {
  for (size_t i = 0; i < rel.cols.size(); ++i) env->Pop();
}

// A range predicate split into equi-join keys and residual conjuncts:
// scan_keys[i] is a function of the range variable alone, probe_keys[i]
// of the outer bindings alone. Shared by the scalar TryJoinExpand and
// the vectorized batch hash join so both engines agree on when a range
// is a join.
struct EquiSplit {
  std::vector<ExprPtr> scan_keys;
  std::vector<ExprPtr> probe_keys;
  std::vector<ExprPtr> residual;
};

/// Splits r.pred (non-null) by r.var. scan_keys empty = not a join.
EquiSplit SplitEquiPred(const RangeSpec& r);

class ShredExecutor {
 public:
  ShredExecutor(const Database& db, const ShredPlan& plan,
                const EvalOptions& opts)
      : db_(db), plan_(plan), opts_(opts), inner_(db, InnerOpts(opts)) {}

  Result<Value> Run();
  EvalStats& stats() { return inner_.stats(); }

  // Accessors for the batch pipeline (vexec.cc builds a helper object
  // around the executor rather than friending into it).
  const Database& db() const { return db_; }
  const ShredPlan& plan() const { return plan_; }
  const EvalOptions& opts() const { return opts_; }
  Evaluator& inner() { return inner_; }

  // ---- Morsel parallelism (shared by both engines) -------------------
  // Both engines parallelize the same way: the coordinator partitions
  // row ranges (scalar) or candidate windows (vec) into morsels, each
  // worker runs its morsels with a private row-wise delegate and a
  // private output slot, and the coordinator concatenates the slots in
  // morsel order — so output row order, and with it stitching and set
  // semantics, is bit-identical to the serial engine.

  /// True when EvalOptions asks for intra-query parallelism.
  bool parallel() const { return opts_.num_threads > 1; }
  /// The executor's pool (lazy; sink wired to the trace collector's
  /// thread-safe worker-span timeline, like Evaluator::pool()).
  ThreadPool& pool();
  /// Per-worker row-wise delegates, forked lazily from inner_ and
  /// reused across parallel sections. Invariant: their stats are zero
  /// outside a parallel section — every section ends in
  /// MergeWorkerStats() or ResetWorkerStats().
  std::vector<std::unique_ptr<Evaluator>>& workers();
  /// Folds every worker's counters into inner_.stats() — before the
  /// enclosing span closes, so span exclusive deltas keep summing to
  /// the globals — then zeroes the workers for the next section.
  void MergeWorkerStats();
  /// Zeroes worker stats without merging (the join-abandon ledger merges
  /// a per-morsel prefix itself and discards the rest).
  void ResetWorkerStats();

  /// Executes one DAG node over its context rows: dispatches to the
  /// vectorized pipeline when the node qualifies, else (or on any
  /// mid-batch error, for exact first-error order) to the scalar
  /// engine. Returns one stitched set per context row.
  Result<std::vector<Value>> ExecNode(const FlatNode& node, Rel ctx);

  /// Folds per-work-row outputs into one set per context row. `ctx` must
  /// be non-decreasing (work rows stay sorted by context id).
  static std::vector<Value> StitchByCtx(std::vector<Value> outs,
                                        const std::vector<uint32_t>& ctx,
                                        size_t nctx);

 private:
  // The row-wise delegate shares opts (threads, compiled, tracing) but
  // never re-dispatches to the shredded backend. Every counter this
  // executor bumps goes through inner_.stats(), so all trace spans —
  // the per-node spans here and the operator spans the delegate opens —
  // measure deltas of ONE stats struct and their exclusive sums match
  // the global counters by construction.
  static EvalOptions InnerOpts(EvalOptions o) {
    o.backend = Backend::kNested;
    o.plan = nullptr;
    return o;
  }

  // ---- Scalar engine (exec.cc) --------------------------------------
  Result<std::vector<Value>> ExecNodeScalar(const FlatNode& node, Rel ctx,
                                            OpSpan& span);
  Result<Rel> ExpandRange(const RangeSpec& r, Rel work);
  Result<std::optional<Rel>> TryJoinExpand(
      const RangeSpec& r, const Rel& work, const std::vector<Value>& elems,
      const std::shared_ptr<const ColumnarExtent>& columnar);
  Result<std::vector<Value>> EvalOutputs(const OutputSpec& out,
                                         const Rel& work);

  // Row-range loop bodies, shared verbatim by the serial whole-range
  // calls (delegate = inner_) and the parallel per-morsel calls
  // (delegate = one worker, emitting into a private slot).
  Status NlScanRows(Evaluator& ev, const RangeSpec& r, const Rel& work,
                    const std::vector<Value>& elems, size_t row_begin,
                    size_t row_end, Rel* out);
  Status PerRowExpandRows(Evaluator& ev, const RangeSpec& r, const Rel& work,
                          const ColumnarChild* csr, const Col* parent,
                          size_t row_begin, size_t row_end, Rel* out);
  /// The probe half of the scalar hash / sort-merge join. Sets
  /// *abandoned (with an OK status) when a probe-key evaluation fails:
  /// the caller falls back to the nested-loop scan, which reproduces
  /// the interpreter's behavior exactly. Residual errors propagate.
  Status ProbeRows(Evaluator& ev, const RangeSpec& r, const Rel& work,
                   const std::vector<Value>& elems, const EquiSplit& split,
                   bool sort_merge,
                   const std::unordered_map<Value, std::vector<uint32_t>,
                                            ValueHash>* buckets,
                   const std::vector<std::pair<Value, uint32_t>>* sorted,
                   size_t row_begin, size_t row_end, Rel* out,
                   bool* abandoned);
  /// Runs `body(worker_delegate, row_begin, row_end, slot)` over morsels
  /// of [0, nrows), each slot a copy of the (empty) skeleton `*out`,
  /// merges worker stats, and appends the slots to `out` in morsel
  /// order. Returns the lowest-numbered failing morsel's error.
  Status ParallelRows(
      size_t nrows, const char* phase,
      const std::function<Status(Evaluator&, size_t, size_t, Rel*)>& body,
      Rel* out);

  Rel Skeleton(const Rel& work, const RangeSpec& r,
               const std::shared_ptr<const ColumnarExtent>& columnar);
  static void Emit(const Rel& work, size_t row, const Value& elem,
                   uint32_t elem_row_id, Rel* out);

  // ---- Vectorized engine (vexec.cc) ---------------------------------
  // Fused batch pipeline over the node's ranges. Three-way outcome:
  //   ok + value    — the node ran vectorized; stitched sets returned.
  //   ok + nullopt  — the node refused vectorization (a lambda did not
  //                   compile, an extent has no columnar projection);
  //                   nothing was evaluated, run the scalar engine.
  //   error         — the pipeline hit an evaluation error. Every
  //                   evaluation the pipeline performs, the scalar
  //                   engine also performs (unless it errors earlier),
  //                   so the caller reruns scalar to surface the
  //                   row-order first error the fidelity contract
  //                   promises. The query aborts either way.
  Result<std::optional<std::vector<Value>>> TryExecNodeVectorized(
      const FlatNode& node, const Rel& ctx, OpSpan& span);

  const Database& db_;
  const ShredPlan& plan_;
  EvalOptions opts_;
  Evaluator inner_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Evaluator>> workers_;
};

}  // namespace shred
}  // namespace n2j

#endif  // N2J_SHRED_EXEC_INTERNAL_H_
