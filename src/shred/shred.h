#ifndef N2J_SHRED_SHRED_H_
#define N2J_SHRED_SHRED_H_

// Query shredding: evaluating nested OOSQL over flat columnar relations.
//
// The paper pushes nested-loop evaluation toward join queries one
// rewrite at a time; shredding (Cheney/Lindley/Wadler "Query Shredding",
// Grust et al. "XQuery Join Graph Isolation") goes all the way in one
// step. The translator lowers a typechecked ADL query into a DAG of
// *flat nodes*. Each node is a flat query: a working relation seeded
// from the parent's context rows, widened by a sequence of range
// expansions (extent scans over columnar projections, CSR child-
// relation lookups for set-valued attributes, constant sets, or opaque
// per-row subqueries), filtered by predicates that may run as hash or
// sort-merge joins, and finished by an output spec. The *stitching*
// phase reassembles the nested result: a work row's context pointer is
// its synthetic parent id, and a node's result for one context row is
// the set of its work-row outputs — Map, Select and Flatten all
// collapse onto this single invariant because ADL sets deduplicate.
//
// Fidelity contract (pinned by the differential fuzzer): when the
// nested-loop interpreter evaluates the same query successfully, the
// shredded backend returns a bit-equal Value; the shredded backend may
// only fail when the interpreter also fails. Everything in exec.cc that
// looks conservative — lazy constant-set evaluation, abandoning a hash
// join on any key-evaluation error, evaluating residual conjuncts in
// source order — exists to uphold the second half of that contract.
// See docs/SHREDDING.md for the full design.

#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"
#include "common/result.h"
#include "exec/eval.h"
#include "storage/database.h"

namespace n2j {
namespace shred {

/// How one range expansion gets its elements.
enum class RangeKind {
  kExtent,     // base-table scan over the columnar projection
  kChildAttr,  // CSR child relation of a set-valued attribute (or the
               // row-wise field access it stands for)
  kConstSet,   // uncorrelated subquery: evaluated lazily, once
  kOpaque,     // correlated subquery: evaluated per work row
};

const char* RangeKindName(RangeKind k);

/// One range expansion of a flat node: binds `var` to each element of
/// the source, filtered by `pred` (a conjunction combining every Select
/// collapsed into this range, innermost first).
struct RangeSpec {
  std::string var;
  RangeKind kind = RangeKind::kOpaque;
  std::string table;       // kExtent
  std::string parent_var;  // kChildAttr
  std::string attr;        // kChildAttr
  ExprPtr source;          // kConstSet / kOpaque (also kept for fallbacks)
  ExprPtr pred;            // nullptr = unfiltered
};

/// How a flat node turns one work row into one output value.
struct OutputSpec {
  enum class Kind {
    kScalar,  // evaluate `scalar` row-wise through the interpreter
    kChild,   // the stitched set of DAG node `child`
    kTuple,   // tuple of named sub-outputs
  };
  Kind kind = Kind::kScalar;
  ExprPtr scalar;
  int child = -1;
  std::vector<std::string> field_names;
  std::vector<OutputSpec> fields;
};

/// One flat query in the DAG.
struct FlatNode {
  int id = 0;
  /// Context variables this node actually reads, in the parent's binding
  /// order. Empty = uncorrelated: executed once and broadcast.
  std::vector<std::string> ctx_vars;
  std::vector<RangeSpec> ranges;
  OutputSpec out;
  std::string label;  // trace-span / plan label ("node0 ranges=2")
  /// Translate-time vectorization mark: every range is structural
  /// (kExtent/kChildAttr) or a constant set, so the whole node can run
  /// as one fused batch pipeline (vexec.cc) — survivor indices flow
  /// between ranges, values materialize only at the outputs. A kOpaque
  /// range (correlated subquery per work row) pins the node to the
  /// row-wise engine. Runtime adds its own gates (every predicate and
  /// scalar output must batch-compile, extents need a columnar
  /// projection); a node that fails those falls back per node and
  /// counts EvalStats::vec_fallbacks.
  bool vectorizable = false;
};

/// A shredded query: root-level let bindings (evaluated in order before
/// node 0 runs), the DAG (node 0 is the root; children have higher ids),
/// and whether the root is a comprehension at all. A non-comprehension
/// root (`scalar_root`) evaluates row-wise under the let bindings — the
/// translation is total, it just degenerates to the interpreter.
struct ShredPlan {
  std::vector<std::pair<std::string, ExprPtr>> lets;
  std::vector<FlatNode> nodes;
  bool scalar_root = false;
  ExprPtr scalar_root_expr;  // set iff scalar_root
  int structural_ranges = 0;  // kExtent + kChildAttr
  int other_ranges = 0;       // kConstSet + kOpaque

  /// Multi-line plan description (EXPLAIN's "shredded plan" section).
  std::string Describe() const;
};

/// Lowers a typechecked query into a shredded plan. Total: every query
/// shreds (worst case, to a scalar root).
ShredPlan ShredQuery(const ExprPtr& query);

/// Evaluates `query` with the shredded backend. `stats` (required)
/// receives the executor's counters — every counter bump, including the
/// row-wise interpreter evals the executor delegates, lands in this one
/// struct, so trace spans' exclusive deltas sum to it exactly. When
/// `plan_text` is non-null it receives ShredPlan::Describe().
Result<Value> EvalShredded(const Database& db, const ExprPtr& query,
                           const EvalOptions& opts, EvalStats* stats,
                           std::string* plan_text = nullptr);

/// Dispatches on `opts.backend`: kShredded runs EvalShredded, kNested
/// runs a plain Evaluator. The single entry point QueryEngine and the
/// fuzzer share.
Result<Value> EvalWithBackend(const Database& db, const ExprPtr& query,
                              const EvalOptions& opts, EvalStats* stats,
                              std::string* plan_text = nullptr);

}  // namespace shred
}  // namespace n2j

#endif  // N2J_SHRED_SHRED_H_
