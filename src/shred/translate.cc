#include <algorithm>
#include <set>

#include "adl/analysis.h"
#include "adl/printer.h"
#include "common/str_util.h"
#include "shred/shred.h"

namespace n2j {
namespace shred {

const char* RangeKindName(RangeKind k) {
  switch (k) {
    case RangeKind::kExtent: return "extent";
    case RangeKind::kChildAttr: return "child";
    case RangeKind::kConstSet: return "const-set";
    case RangeKind::kOpaque: return "opaque";
  }
  return "?";
}

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

bool ContainsQuantifier(const ExprPtr& e) {
  bool found = false;
  VisitPreOrder(e, [&found](const ExprPtr& x) {
    if (x->kind() == ExprKind::kQuantifier) found = true;
  });
  return found;
}

/// Builds the DAG bottom-up from the query's comprehension spine.
class Translator {
 public:
  ShredPlan Build(const ExprPtr& query) {
    ExprPtr cur = query;
    std::vector<std::string> available;
    // Root-level let prefix (the hoisting rewrite produces these):
    // evaluated once, bound as context of every node.
    while (cur->kind() == ExprKind::kLet) {
      plan_.lets.emplace_back(cur->var(), cur->child(0));
      if (!Contains(available, cur->var())) available.push_back(cur->var());
      cur = cur->child(1);
    }
    if (IsComprehensionShaped(cur)) {
      BuildNode(cur, available);
    } else {
      plan_.scalar_root = true;
      plan_.scalar_root_expr = cur;
    }
    for (const FlatNode& n : plan_.nodes) {
      for (const RangeSpec& r : n.ranges) {
        if (r.kind == RangeKind::kExtent || r.kind == RangeKind::kChildAttr) {
          ++plan_.structural_ranges;
        } else {
          ++plan_.other_ranges;
        }
      }
    }
    return std::move(plan_);
  }

 private:
  /// Variable names the source query cannot contain ('$' is not an
  /// identifier character in OOSQL), so no capture checks are needed.
  std::string Fresh() { return StrFormat("$s%d", next_var_++); }

  static OutputSpec ScalarOut(ExprPtr e) {
    OutputSpec o;
    o.kind = OutputSpec::Kind::kScalar;
    o.scalar = std::move(e);
    return o;
  }

  /// Classifies the source of a range bound to `var`. Select layers
  /// whose binder is the same `var` collapse into the range predicate —
  /// innermost select first, matching the interpreter's evaluation
  /// order. (A select with a *different* binder is left intact and
  /// classified as a const-set or opaque subquery; collapsing it would
  /// need capture-avoiding renaming for no structural gain.)
  RangeSpec ClassifyRange(const std::string& var, ExprPtr src,
                          const std::vector<std::string>& bound) {
    RangeSpec r;
    r.var = var;
    std::vector<ExprPtr> preds;  // collected outermost-first
    while (src->kind() == ExprKind::kSelect && src->var() == var) {
      preds.push_back(src->body());
      src = src->input();
    }
    if (!preds.empty()) {
      std::reverse(preds.begin(), preds.end());  // innermost first
      r.pred = Expr::AndAll(preds);
    }
    r.source = src;
    if (src->kind() == ExprKind::kGetTable) {
      r.kind = RangeKind::kExtent;
      r.table = src->name();
    } else if (src->kind() == ExprKind::kFieldAccess &&
               src->child(0)->kind() == ExprKind::kVar &&
               Contains(bound, src->child(0)->name())) {
      r.kind = RangeKind::kChildAttr;
      r.parent_var = src->child(0)->name();
      r.attr = src->name();
    } else if (IsUncorrelated(src, std::set<std::string>(bound.begin(),
                                                         bound.end()))) {
      r.kind = RangeKind::kConstSet;
    } else {
      r.kind = RangeKind::kOpaque;
    }
    return r;
  }

  /// Classifies a map/select body. Tuple construction recurses per
  /// field; a comprehension-shaped body becomes a child DAG node; any
  /// other body stays a row-wise scalar (always correct — the
  /// translation is total because of this default).
  OutputSpec BuildOutput(const ExprPtr& body,
                         const std::vector<std::string>& available) {
    if (body->kind() == ExprKind::kTupleConstruct) {
      OutputSpec o;
      o.kind = OutputSpec::Kind::kTuple;
      o.field_names = body->names();
      o.fields.reserve(body->num_children());
      for (const ExprPtr& c : body->children()) {
        o.fields.push_back(BuildOutput(c, available));
      }
      return o;
    }
    if (IsComprehensionShaped(body)) {
      OutputSpec o;
      o.kind = OutputSpec::Kind::kChild;
      o.child = BuildNode(body, available);
      return o;
    }
    return ScalarOut(body);
  }

  /// Peels the comprehension spine of `e` into one flat node; returns
  /// its id. `available` lists the bindings the parent can provide
  /// (outermost first).
  int BuildNode(const ExprPtr& e, const std::vector<std::string>& available) {
    int id = static_cast<int>(plan_.nodes.size());
    plan_.nodes.emplace_back();  // reserve the slot; children get higher ids
    FlatNode node;
    node.id = id;
    // Context = the bindings this subtree actually reads.
    std::set<std::string> fv = FreeVars(e);
    for (const std::string& v : available) {
      if (fv.count(v) > 0 && !Contains(node.ctx_vars, v)) {
        node.ctx_vars.push_back(v);
      }
    }

    std::vector<std::string> bound = node.ctx_vars;
    ExprPtr cur = e;
    bool done = false;
    while (!done) {
      switch (cur->kind()) {
        case ExprKind::kMap: {
          node.ranges.push_back(ClassifyRange(cur->var(), cur->input(), bound));
          bound.push_back(cur->var());
          node.out = BuildOutput(cur->body(), bound);
          done = true;
          break;
        }
        case ExprKind::kSelect: {
          // The whole select collapses into one filtered range; the
          // output is the surviving binding itself.
          node.ranges.push_back(ClassifyRange(cur->var(), cur, bound));
          bound.push_back(cur->var());
          node.out = ScalarOut(Expr::Var(cur->var()));
          done = true;
          break;
        }
        case ExprKind::kFlatten: {
          const ExprPtr& inner = cur->input();
          if (inner->kind() == ExprKind::kMap) {
            // ⋃(α[v : body](in)): range over in, keep peeling body.
            // Stitching collects *all* work-row outputs into one set, so
            // the union needs no operator of its own.
            node.ranges.push_back(
                ClassifyRange(inner->var(), inner->input(), bound));
            bound.push_back(inner->var());
            cur = inner->body();
            break;
          }
          // Generic ⋃(x): bind the element sets, then their elements.
          std::string sv;
          if (inner->kind() == ExprKind::kSelect) {
            sv = inner->var();  // reuse the select's own binder
          } else {
            sv = Fresh();
          }
          node.ranges.push_back(ClassifyRange(sv, inner, bound));
          bound.push_back(sv);
          std::string ev = Fresh();
          node.ranges.push_back(ClassifyRange(ev, Expr::Var(sv), bound));
          bound.push_back(ev);
          node.out = ScalarOut(Expr::Var(ev));
          done = true;
          break;
        }
        case ExprKind::kGetTable: {
          std::string v = Fresh();
          node.ranges.push_back(ClassifyRange(v, cur, bound));
          bound.push_back(v);
          node.out = ScalarOut(Expr::Var(v));
          done = true;
          break;
        }
        default: {
          // Only reachable through the flatten-of-map continuation: the
          // remaining body contributes a *set* per work row whose
          // elements all land in the stitched union.
          std::string v = Fresh();
          node.ranges.push_back(ClassifyRange(v, cur, bound));
          bound.push_back(v);
          node.out = ScalarOut(Expr::Var(v));
          done = true;
          break;
        }
      }
    }
    node.label = StrFormat("node%d", id);
    node.vectorizable = !node.ranges.empty();
    for (const RangeSpec& r : node.ranges) {
      // Opaque ranges re-enter the interpreter per work row; batching
      // buys nothing and the subquery rarely compiles anyway.
      if (r.kind == RangeKind::kOpaque) node.vectorizable = false;
      // Quantifier-dominated predicates: each lane's kQuant walks a
      // whole inner set, so the per-tuple work dwarfs what batching
      // saves, and materializing every (row, element) candidate first
      // costs more than the scalar path's short-circuit scan (measured:
      // the paper's dangling-supplier query ran ~25% slower vectorized).
      if (r.pred != nullptr && ContainsQuantifier(r.pred)) {
        node.vectorizable = false;
      }
    }
    plan_.nodes[static_cast<size_t>(id)] = std::move(node);
    return id;
  }

  ShredPlan plan_;
  int next_var_ = 0;
};

void DescribeOutput(const OutputSpec& o, std::string* out) {
  switch (o.kind) {
    case OutputSpec::Kind::kScalar:
      *out += AlgebraStr(o.scalar);
      break;
    case OutputSpec::Kind::kChild:
      *out += StrFormat("node%d", o.child);
      break;
    case OutputSpec::Kind::kTuple:
      *out += "(";
      for (size_t i = 0; i < o.fields.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += o.field_names[i] + " = ";
        DescribeOutput(o.fields[i], out);
      }
      *out += ")";
      break;
  }
}

}  // namespace

ShredPlan ShredQuery(const ExprPtr& query) {
  Translator t;
  return t.Build(query);
}

std::string ShredPlan::Describe() const {
  std::string out = StrFormat(
      "shredded plan: %zu node%s, %zu let%s, %d structural range%s, "
      "%d other\n",
      nodes.size(), nodes.size() == 1 ? "" : "s", lets.size(),
      lets.size() == 1 ? "" : "s", structural_ranges,
      structural_ranges == 1 ? "" : "s", other_ranges);
  for (const auto& [var, def] : lets) {
    out += StrFormat("  let %s = %s\n", var.c_str(), AlgebraStr(def).c_str());
  }
  if (scalar_root) {
    out += StrFormat("  scalar root: %s\n",
                     AlgebraStr(scalar_root_expr).c_str());
    return out;
  }
  for (const FlatNode& n : nodes) {
    out += StrFormat("  node%d", n.id);
    if (!n.ctx_vars.empty()) {
      out += StrFormat(" [ctx: %s]", Join(n.ctx_vars, ", ").c_str());
    }
    if (n.vectorizable) out += " [vec]";
    out += "\n";
    for (const RangeSpec& r : n.ranges) {
      out += StrFormat("    %s in %s", r.var.c_str(), RangeKindName(r.kind));
      switch (r.kind) {
        case RangeKind::kExtent:
          out += " " + r.table;
          break;
        case RangeKind::kChildAttr:
          out += StrFormat(" %s.%s", r.parent_var.c_str(), r.attr.c_str());
          break;
        default:
          out += " " + AlgebraStr(r.source);
          break;
      }
      if (r.pred != nullptr) {
        out += " where " + AlgebraStr(r.pred);
      }
      out += "\n";
    }
    out += "    out: ";
    DescribeOutput(n.out, &out);
    out += "\n";
  }
  return out;
}

}  // namespace shred
}  // namespace n2j
