#include "oosql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/str_util.h"

namespace n2j {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer literal";
    case TokenKind::kDouble: return "double literal";
    case TokenKind::kString: return "string literal";
    case TokenKind::kSelect: return "'select'";
    case TokenKind::kFrom: return "'from'";
    case TokenKind::kWhere: return "'where'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kExists: return "'exists'";
    case TokenKind::kForall: return "'forall'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kUnion: return "'union'";
    case TokenKind::kIntersect: return "'intersect'";
    case TokenKind::kMinus: return "'minus'";
    case TokenKind::kContains: return "'contains'";
    case TokenKind::kSubset: return "'subset'";
    case TokenKind::kSubsetEq: return "'subseteq'";
    case TokenKind::kSupset: return "'supset'";
    case TokenKind::kSupsetEq: return "'supseteq'";
    case TokenKind::kCount: return "'count'";
    case TokenKind::kSum: return "'sum'";
    case TokenKind::kAvg: return "'avg'";
    case TokenKind::kMin: return "'min'";
    case TokenKind::kMax: return "'max'";
    case TokenKind::kClass: return "'class'";
    case TokenKind::kWith: return "'with'";
    case TokenKind::kExtension: return "'extension'";
    case TokenKind::kAttributes: return "'attributes'";
    case TokenKind::kEnd: return "'end'";
    case TokenKind::kOid: return "'oid'";
    case TokenKind::kIsEmpty: return "'isempty'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kDash: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdent) return "identifier '" + text + "'";
  if (kind == TokenKind::kString) return "string \"" + text + "\"";
  if (kind == TokenKind::kInt || kind == TokenKind::kDouble) {
    return "number '" + text + "'";
  }
  return TokenKindName(kind);
}

namespace {

TokenKind KeywordKind(const std::string& lower) {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"select", TokenKind::kSelect},
      {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},
      {"in", TokenKind::kIn},
      {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
      {"exists", TokenKind::kExists},
      {"forall", TokenKind::kForall},
      {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
      {"union", TokenKind::kUnion},
      {"intersect", TokenKind::kIntersect},
      {"minus", TokenKind::kMinus},
      {"contains", TokenKind::kContains},
      {"subset", TokenKind::kSubset},
      {"subseteq", TokenKind::kSubsetEq},
      {"supset", TokenKind::kSupset},
      {"supseteq", TokenKind::kSupsetEq},
      {"count", TokenKind::kCount},
      {"sum", TokenKind::kSum},
      {"avg", TokenKind::kAvg},
      {"min", TokenKind::kMin},
      {"max", TokenKind::kMax},
      {"class", TokenKind::kClass},
      {"with", TokenKind::kWith},
      {"extension", TokenKind::kExtension},
      {"attributes", TokenKind::kAttributes},
      {"end", TokenKind::kEnd},
      {"oid", TokenKind::kOid},
      {"isempty", TokenKind::kIsEmpty},
  };
  auto it = kKeywords.find(lower);
  return it == kKeywords.end() ? TokenKind::kIdent : it->second;
}

}  // namespace

char Lexer::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  return p < source_.size() ? source_[p] : '\0';
}

char Lexer::Advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Status Lexer::ErrorAt(int line, int col, const std::string& msg) const {
  return Status::ParseError(
      StrFormat("%d:%d: %s", line, col, msg.c_str()));
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (AtEnd()) {
    tok.kind = TokenKind::kEof;
    return tok;
  }
  char c = Advance();

  // Identifiers and keywords.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string text(1, c);
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      text.push_back(Advance());
    }
    std::string lower = text;
    for (char& ch : lower) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    tok.kind = KeywordKind(lower);
    tok.text = std::move(text);
    return tok;
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string text(1, c);
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    tok.text = text;
    if (is_double) {
      tok.kind = TokenKind::kDouble;
      tok.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.kind = TokenKind::kInt;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return tok;
  }

  // Strings.
  if (c == '"') {
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char ch = Advance();
      if (ch == '\\' && !AtEnd()) {
        char esc = Advance();
        switch (esc) {
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          case '"': text.push_back('"'); break;
          case '\\': text.push_back('\\'); break;
          default:
            return ErrorAt(tok.line, tok.column,
                           StrFormat("bad escape '\\%c'", esc));
        }
      } else {
        text.push_back(ch);
      }
    }
    if (AtEnd()) {
      return ErrorAt(tok.line, tok.column, "unterminated string literal");
    }
    Advance();  // closing quote
    tok.kind = TokenKind::kString;
    tok.text = std::move(text);
    return tok;
  }

  switch (c) {
    case '(': tok.kind = TokenKind::kLParen; return tok;
    case ')': tok.kind = TokenKind::kRParen; return tok;
    case '{': tok.kind = TokenKind::kLBrace; return tok;
    case '}': tok.kind = TokenKind::kRBrace; return tok;
    case '[': tok.kind = TokenKind::kLBracket; return tok;
    case ']': tok.kind = TokenKind::kRBracket; return tok;
    case ',': tok.kind = TokenKind::kComma; return tok;
    case '.': tok.kind = TokenKind::kDot; return tok;
    case ':': tok.kind = TokenKind::kColon; return tok;
    case ';': tok.kind = TokenKind::kSemicolon; return tok;
    case '=': tok.kind = TokenKind::kEq; return tok;
    case '+': tok.kind = TokenKind::kPlus; return tok;
    case '-': tok.kind = TokenKind::kDash; return tok;
    case '*': tok.kind = TokenKind::kStar; return tok;
    case '/': tok.kind = TokenKind::kSlash; return tok;
    case '%': tok.kind = TokenKind::kPercent; return tok;
    case '<':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kLe;
      } else if (Peek() == '>') {
        Advance();
        tok.kind = TokenKind::kNe;
      } else {
        tok.kind = TokenKind::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kGe;
      } else {
        tok.kind = TokenKind::kGt;
      }
      return tok;
    default:
      return ErrorAt(tok.line, tok.column,
                     StrFormat("unexpected character '%c'", c));
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  for (;;) {
    N2J_ASSIGN_OR_RETURN(Token tok, Next());
    bool eof = tok.kind == TokenKind::kEof;
    out.push_back(std::move(tok));
    if (eof) return out;
  }
}

}  // namespace n2j
