#ifndef N2J_OOSQL_TOKEN_H_
#define N2J_OOSQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace n2j {

/// Token kinds of the OOSQL surface language. Keywords are matched
/// case-insensitively; identifiers are case-sensitive.
enum class TokenKind : uint8_t {
  kEof,
  kIdent,
  kInt,
  kDouble,
  kString,
  // Keywords.
  kSelect, kFrom, kWhere, kIn, kAnd, kOr, kNot, kExists, kForall,
  kTrue, kFalse, kUnion, kIntersect, kMinus, kContains, kSubset,
  kSubsetEq, kSupset, kSupsetEq, kCount, kSum, kAvg, kMin, kMax,
  kClass, kWith, kExtension, kAttributes, kEnd, kOid, kIsEmpty,
  // (kWith doubles as the query-level `with` construct keyword.)
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kDot, kColon, kSemicolon,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kDash, kStar, kSlash, kPercent,
};

/// Token name for diagnostics ("'select'", "identifier", ...).
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier / string contents / raw number text
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace n2j

#endif  // N2J_OOSQL_TOKEN_H_
