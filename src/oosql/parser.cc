#include "oosql/parser.h"

#include "common/str_util.h"
#include "oosql/lexer.h"

namespace n2j {

namespace {

std::shared_ptr<QExpr> NewNode(QExpr::Kind kind, const Token& at) {
  auto node = std::make_shared<QExpr>();
  node->kind = kind;
  node->line = at.line;
  node->column = at.column;
  return node;
}

}  // namespace

const Token& Parser::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  if (p >= tokens_.size()) return tokens_.back();
  return tokens_[p];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenKind kind, const char* context) {
  if (Check(kind)) return Advance();
  return Status::ParseError(StrFormat(
      "%d:%d: expected %s %s, found %s", Peek().line, Peek().column,
      TokenKindName(kind), context, Peek().Describe().c_str()));
}

Status Parser::ErrorHere(const std::string& msg) const {
  return Status::ParseError(StrFormat("%d:%d: %s (found %s)", Peek().line,
                                      Peek().column, msg.c_str(),
                                      Peek().Describe().c_str()));
}

Result<QExprPtr> Parser::ParseQuery() {
  N2J_ASSIGN_OR_RETURN(QExprPtr e, ParseExpr());
  Match(TokenKind::kSemicolon);
  if (!Check(TokenKind::kEof)) {
    return ErrorHere("trailing input after query");
  }
  return e;
}

Result<QExprPtr> Parser::ParseExpr() {
  N2J_ASSIGN_OR_RETURN(QExprPtr l, ParseAnd());
  while (Check(TokenKind::kOr)) {
    Token op = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr r, ParseAnd());
    auto node = NewNode(QExpr::Kind::kBinary, op);
    node->bop = BinOp::kOr;
    node->kids = {l, r};
    l = node;
  }
  return l;
}

Result<QExprPtr> Parser::ParseAnd() {
  N2J_ASSIGN_OR_RETURN(QExprPtr l, ParseNot());
  while (Check(TokenKind::kAnd)) {
    Token op = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr r, ParseNot());
    auto node = NewNode(QExpr::Kind::kBinary, op);
    node->bop = BinOp::kAnd;
    node->kids = {l, r};
    l = node;
  }
  return l;
}

Result<QExprPtr> Parser::ParseNot() {
  if (Check(TokenKind::kNot)) {
    Token op = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr e, ParseNot());
    auto node = NewNode(QExpr::Kind::kUnary, op);
    node->uop = UnOp::kNot;
    node->kids = {e};
    return QExprPtr(node);
  }
  return ParseComparison();
}

Result<QExprPtr> Parser::ParseComparison() {
  N2J_ASSIGN_OR_RETURN(QExprPtr l, ParseAdditive());
  BinOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = BinOp::kEq; break;
    case TokenKind::kNe: op = BinOp::kNe; break;
    case TokenKind::kLt: op = BinOp::kLt; break;
    case TokenKind::kLe: op = BinOp::kLe; break;
    case TokenKind::kGt: op = BinOp::kGt; break;
    case TokenKind::kGe: op = BinOp::kGe; break;
    case TokenKind::kIn: op = BinOp::kIn; break;
    case TokenKind::kContains: op = BinOp::kContains; break;
    case TokenKind::kSubset: op = BinOp::kSubset; break;
    case TokenKind::kSubsetEq: op = BinOp::kSubsetEq; break;
    case TokenKind::kSupset: op = BinOp::kSupset; break;
    case TokenKind::kSupsetEq: op = BinOp::kSupsetEq; break;
    default:
      return l;
  }
  Token tok = Advance();
  N2J_ASSIGN_OR_RETURN(QExprPtr r, ParseAdditive());
  auto node = NewNode(QExpr::Kind::kBinary, tok);
  node->bop = op;
  node->kids = {l, r};
  return QExprPtr(node);
}

Result<QExprPtr> Parser::ParseAdditive() {
  N2J_ASSIGN_OR_RETURN(QExprPtr l, ParseMultiplicative());
  for (;;) {
    BinOp op;
    if (Check(TokenKind::kPlus)) {
      op = BinOp::kAdd;
    } else if (Check(TokenKind::kDash)) {
      op = BinOp::kSub;
    } else if (Check(TokenKind::kUnion)) {
      op = BinOp::kUnionOp;
    } else if (Check(TokenKind::kMinus)) {
      op = BinOp::kDifferenceOp;
    } else {
      return l;
    }
    Token tok = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr r, ParseMultiplicative());
    auto node = NewNode(QExpr::Kind::kBinary, tok);
    node->bop = op;
    node->kids = {l, r};
    l = node;
  }
}

Result<QExprPtr> Parser::ParseMultiplicative() {
  N2J_ASSIGN_OR_RETURN(QExprPtr l, ParseUnary());
  for (;;) {
    BinOp op;
    if (Check(TokenKind::kStar)) {
      op = BinOp::kMul;
    } else if (Check(TokenKind::kSlash)) {
      op = BinOp::kDiv;
    } else if (Check(TokenKind::kPercent)) {
      op = BinOp::kMod;
    } else if (Check(TokenKind::kIntersect)) {
      op = BinOp::kIntersectOp;
    } else {
      return l;
    }
    Token tok = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr r, ParseUnary());
    auto node = NewNode(QExpr::Kind::kBinary, tok);
    node->bop = op;
    node->kids = {l, r};
    l = node;
  }
}

Result<QExprPtr> Parser::ParseUnary() {
  if (Check(TokenKind::kDash)) {
    Token tok = Advance();
    N2J_ASSIGN_OR_RETURN(QExprPtr e, ParseUnary());
    auto node = NewNode(QExpr::Kind::kUnary, tok);
    node->uop = UnOp::kNeg;
    node->kids = {e};
    return QExprPtr(node);
  }
  return ParsePostfix();
}

Result<QExprPtr> Parser::ParsePostfix() {
  N2J_ASSIGN_OR_RETURN(QExprPtr e, ParsePrimary());
  for (;;) {
    if (Check(TokenKind::kDot)) {
      Token tok = Advance();
      N2J_ASSIGN_OR_RETURN(Token field, Expect(TokenKind::kIdent,
                                               "after '.'"));
      auto node = NewNode(QExpr::Kind::kField, tok);
      node->str = field.text;
      node->kids = {e};
      e = node;
    } else if (Check(TokenKind::kLBracket)) {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kTupleProject, tok);
      do {
        N2J_ASSIGN_OR_RETURN(
            Token name, Expect(TokenKind::kIdent, "in tuple projection"));
        node->names.push_back(name.text);
      } while (Match(TokenKind::kComma));
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kRBracket, "closing tuple projection").status());
      node->kids = {e};
      e = node;
    } else {
      return e;
    }
  }
}

Result<QExprPtr> Parser::ParseSelect() {
  Token tok = Advance();  // 'select'
  N2J_ASSIGN_OR_RETURN(QExprPtr body, ParseExpr());
  N2J_RETURN_IF_ERROR(
      Expect(TokenKind::kFrom, "after select expression").status());
  auto node = NewNode(QExpr::Kind::kSelect, tok);
  node->kids.push_back(body);
  do {
    N2J_ASSIGN_OR_RETURN(Token var,
                         Expect(TokenKind::kIdent, "as range variable"));
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kIn, "after range variable").status());
    N2J_ASSIGN_OR_RETURN(QExprPtr range, ParseExpr());
    node->names.push_back(var.text);
    node->kids.push_back(range);
  } while (Match(TokenKind::kComma));
  if (Match(TokenKind::kWhere)) {
    N2J_ASSIGN_OR_RETURN(QExprPtr where, ParseExpr());
    node->has_where = true;
    node->kids.push_back(where);
  }
  // The paper's `with` construct: local subquery definitions, e.g.
  //   select F(x) from x in X where P(x, Yp) with Yp = select ...
  // Definitions are macro-expanded into the block (they may reference
  // the range variables and earlier definitions).
  QExprPtr result = node;
  if (Match(TokenKind::kWith)) {
    std::vector<std::pair<std::string, QExprPtr>> defs;
    do {
      N2J_ASSIGN_OR_RETURN(
          Token name, Expect(TokenKind::kIdent, "as with-definition name"));
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kEq, "after with-definition name").status());
      N2J_ASSIGN_OR_RETURN(QExprPtr def, ParseExpr());
      defs.emplace_back(name.text, def);
    } while (Match(TokenKind::kComma));
    for (auto it = defs.rbegin(); it != defs.rend(); ++it) {
      result = SubstituteIdent(result, it->first, it->second);
    }
  }
  return result;
}

Result<QExprPtr> Parser::ParseQuantifier() {
  Token tok = Advance();  // 'exists' | 'forall'
  auto node = NewNode(QExpr::Kind::kQuant, tok);
  node->quant = tok.kind == TokenKind::kExists ? QuantKind::kExists
                                               : QuantKind::kForall;
  N2J_ASSIGN_OR_RETURN(Token var,
                       Expect(TokenKind::kIdent, "as quantifier variable"));
  node->names.push_back(var.text);
  N2J_RETURN_IF_ERROR(
      Expect(TokenKind::kIn, "after quantifier variable").status());
  // The range binds tightly (a path or parenthesized expression); the
  // optional ': pred' extends as far as possible.
  N2J_ASSIGN_OR_RETURN(QExprPtr range, ParsePostfix());
  node->kids.push_back(range);
  if (Match(TokenKind::kColon)) {
    N2J_ASSIGN_OR_RETURN(QExprPtr pred, ParseExpr());
    node->kids.push_back(pred);
  }
  return QExprPtr(node);
}

Result<QExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInt: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kIntLit, tok);
      node->int_value = tok.int_value;
      return QExprPtr(node);
    }
    case TokenKind::kDouble: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kDoubleLit, tok);
      node->double_value = tok.double_value;
      return QExprPtr(node);
    }
    case TokenKind::kString: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kStringLit, tok);
      node->str = tok.text;
      return QExprPtr(node);
    }
    case TokenKind::kTrue:
    case TokenKind::kFalse: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kBoolLit, tok);
      node->bool_value = tok.kind == TokenKind::kTrue;
      return QExprPtr(node);
    }
    case TokenKind::kSelect:
      return ParseSelect();
    case TokenKind::kExists:
    case TokenKind::kForall:
      return ParseQuantifier();
    case TokenKind::kCount:
    case TokenKind::kSum:
    case TokenKind::kAvg:
    case TokenKind::kMin:
    case TokenKind::kMax: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kAgg, tok);
      switch (tok.kind) {
        case TokenKind::kCount: node->agg = AggKind::kCount; break;
        case TokenKind::kSum: node->agg = AggKind::kSum; break;
        case TokenKind::kAvg: node->agg = AggKind::kAvg; break;
        case TokenKind::kMin: node->agg = AggKind::kMin; break;
        default: node->agg = AggKind::kMax; break;
      }
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kLParen, "after aggregate").status());
      N2J_ASSIGN_OR_RETURN(QExprPtr arg, ParseExpr());
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "closing aggregate").status());
      node->kids = {arg};
      return QExprPtr(node);
    }
    case TokenKind::kIsEmpty: {
      Token tok = Advance();
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kLParen, "after isempty").status());
      N2J_ASSIGN_OR_RETURN(QExprPtr arg, ParseExpr());
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "closing isempty").status());
      auto node = NewNode(QExpr::Kind::kIsEmptyCall, tok);
      node->kids = {arg};
      return QExprPtr(node);
    }
    case TokenKind::kIdent: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kIdent, tok);
      node->str = tok.text;
      return QExprPtr(node);
    }
    case TokenKind::kLParen: {
      Token tok = Advance();
      // Disambiguate tuple constructor "(name = e, ...)" from grouping.
      if (Check(TokenKind::kIdent) && Peek(1).kind == TokenKind::kEq) {
        auto node = NewNode(QExpr::Kind::kTupleLit, tok);
        do {
          N2J_ASSIGN_OR_RETURN(
              Token name, Expect(TokenKind::kIdent, "as tuple field"));
          N2J_RETURN_IF_ERROR(
              Expect(TokenKind::kEq, "after tuple field name").status());
          N2J_ASSIGN_OR_RETURN(QExprPtr v, ParseExpr());
          node->names.push_back(name.text);
          node->kids.push_back(v);
        } while (Match(TokenKind::kComma));
        N2J_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "closing tuple").status());
        return QExprPtr(node);
      }
      N2J_ASSIGN_OR_RETURN(QExprPtr e, ParseExpr());
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "closing parenthesis").status());
      return e;
    }
    case TokenKind::kLBrace: {
      Token tok = Advance();
      auto node = NewNode(QExpr::Kind::kSetLit, tok);
      if (!Check(TokenKind::kRBrace)) {
        do {
          N2J_ASSIGN_OR_RETURN(QExprPtr e, ParseExpr());
          node->kids.push_back(e);
        } while (Match(TokenKind::kComma));
      }
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kRBrace, "closing set literal").status());
      return QExprPtr(node);
    }
    default:
      return ErrorHere("expected an expression");
  }
}

Result<TypePtr> Parser::ParseType() {
  if (Match(TokenKind::kLBrace)) {
    N2J_ASSIGN_OR_RETURN(TypePtr elem, ParseType());
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kRBrace, "closing set type").status());
    return Type::Set(std::move(elem));
  }
  if (Match(TokenKind::kLParen)) {
    std::vector<TypeField> fields;
    do {
      N2J_ASSIGN_OR_RETURN(Token name,
                           Expect(TokenKind::kIdent, "as attribute name"));
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kColon, "after attribute name").status());
      N2J_ASSIGN_OR_RETURN(TypePtr ft, ParseType());
      fields.push_back({name.text, std::move(ft)});
    } while (Match(TokenKind::kComma));
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "closing tuple type").status());
    return Type::Tuple(std::move(fields));
  }
  if (Match(TokenKind::kOid)) return Type::OidType();
  N2J_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "as type"));
  if (name.text == "string") return Type::String();
  if (name.text == "int" || name.text == "date") return Type::Int();
  if (name.text == "double" || name.text == "real") return Type::Double();
  if (name.text == "bool") return Type::Bool();
  // Explicit reference syntax Ref(Class) — what Type::ToString prints.
  if (name.text == "Ref" && Match(TokenKind::kLParen)) {
    N2J_ASSIGN_OR_RETURN(Token cls,
                         Expect(TokenKind::kIdent, "as referenced class"));
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "closing Ref(...)").status());
    return Type::Ref(cls.text);
  }
  // Any other identifier is a class reference.
  return Type::Ref(name.text);
}

Result<Schema> Parser::ParseSchema() {
  Schema schema;
  while (!Check(TokenKind::kEof)) {
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kClass, "to start a class definition").status());
    ClassDef def;
    N2J_ASSIGN_OR_RETURN(Token name,
                         Expect(TokenKind::kIdent, "as class name"));
    def.name = name.text;
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kWith, "after class name").status());
    N2J_RETURN_IF_ERROR(Expect(TokenKind::kExtension, "").status());
    N2J_ASSIGN_OR_RETURN(Token ext,
                         Expect(TokenKind::kIdent, "as extension name"));
    def.extent = ext.text;
    def.oid_field = "oid";
    if (Match(TokenKind::kOid)) {
      N2J_ASSIGN_OR_RETURN(Token of,
                           Expect(TokenKind::kIdent, "as oid field name"));
      def.oid_field = of.text;
    }
    Match(TokenKind::kComma);
    N2J_RETURN_IF_ERROR(Expect(TokenKind::kAttributes, "").status());
    do {
      N2J_ASSIGN_OR_RETURN(Token attr,
                           Expect(TokenKind::kIdent, "as attribute name"));
      N2J_RETURN_IF_ERROR(
          Expect(TokenKind::kColon, "after attribute name").status());
      N2J_ASSIGN_OR_RETURN(TypePtr t, ParseType());
      def.attributes.push_back({attr.text, std::move(t)});
    } while (Match(TokenKind::kComma));
    N2J_RETURN_IF_ERROR(
        Expect(TokenKind::kEnd, "to close class definition").status());
    // Optional repeated class name after 'end'.
    if (Check(TokenKind::kIdent)) Advance();
    N2J_RETURN_IF_ERROR(schema.AddClass(std::move(def)));
  }
  return schema;
}

Result<QExprPtr> Parser::ParseQueryString(const std::string& text) {
  Lexer lexer(text);
  N2J_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<Schema> Parser::ParseSchemaString(const std::string& text) {
  Lexer lexer(text);
  N2J_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSchema();
}

}  // namespace n2j
