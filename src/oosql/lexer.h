#ifndef N2J_OOSQL_LEXER_H_
#define N2J_OOSQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "oosql/token.h"

namespace n2j {

/// Tokenizes OOSQL source text. Comments run from "--" to end of line.
class Lexer {
 public:
  explicit Lexer(std::string source) : source_(std::move(source)) {}

  /// Tokenizes the whole input (the final token is kEof).
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  void SkipWhitespaceAndComments();
  Status ErrorAt(int line, int col, const std::string& msg) const;

  std::string source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace n2j

#endif  // N2J_OOSQL_LEXER_H_
