#include "oosql/ast.h"

#include "common/str_util.h"

namespace n2j {

std::string QExprToString(const QExprPtr& e) {
  switch (e->kind) {
    case QExpr::Kind::kIntLit:
      return std::to_string(e->int_value);
    case QExpr::Kind::kDoubleLit:
      return StrFormat("%g", e->double_value);
    case QExpr::Kind::kStringLit:
      return "\"" + e->str + "\"";
    case QExpr::Kind::kBoolLit:
      return e->bool_value ? "true" : "false";
    case QExpr::Kind::kIdent:
      return e->str;
    case QExpr::Kind::kField:
      return QExprToString(e->kids[0]) + "." + e->str;
    case QExpr::Kind::kTupleProject:
      return QExprToString(e->kids[0]) + "[" + Join(e->names, ", ") + "]";
    case QExpr::Kind::kTupleLit: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < e->names.size(); ++i) {
        parts.push_back(e->names[i] + " = " + QExprToString(e->kids[i]));
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case QExpr::Kind::kSetLit: {
      std::vector<std::string> parts;
      for (const QExprPtr& k : e->kids) parts.push_back(QExprToString(k));
      return "{" + Join(parts, ", ") + "}";
    }
    case QExpr::Kind::kUnary:
      if (e->uop == UnOp::kNot) return "not (" + QExprToString(e->kids[0]) + ")";
      return "-(" + QExprToString(e->kids[0]) + ")";
    case QExpr::Kind::kBinary:
      return "(" + QExprToString(e->kids[0]) + " " + BinOpName(e->bop) +
             " " + QExprToString(e->kids[1]) + ")";
    case QExpr::Kind::kQuant: {
      std::string out = e->quant == QuantKind::kExists ? "exists " : "forall ";
      out += e->names[0] + " in " + QExprToString(e->kids[0]);
      if (e->kids.size() > 1) out += " : " + QExprToString(e->kids[1]);
      return out;
    }
    case QExpr::Kind::kAgg:
      return std::string(AggKindName(e->agg)) + "(" +
             QExprToString(e->kids[0]) + ")";
    case QExpr::Kind::kIsEmptyCall:
      return "isempty(" + QExprToString(e->kids[0]) + ")";
    case QExpr::Kind::kSelect: {
      std::string out = "select " + QExprToString(e->SelectBody()) + " from ";
      std::vector<std::string> ranges;
      for (size_t i = 0; i < e->NumRanges(); ++i) {
        ranges.push_back(e->names[i] + " in " + QExprToString(e->Range(i)));
      }
      out += Join(ranges, ", ");
      if (e->has_where) out += " where " + QExprToString(e->Where());
      return out;
    }
  }
  return "?";
}

QExprPtr SubstituteIdent(const QExprPtr& e, const std::string& name,
                         const QExprPtr& replacement) {
  if (e->kind == QExpr::Kind::kIdent) {
    return e->str == name ? replacement : e;
  }
  auto copy_with_kids = [&](std::vector<QExprPtr> kids) {
    auto node = std::make_shared<QExpr>(*e);
    node->kids = std::move(kids);
    return QExprPtr(node);
  };

  if (e->kind == QExpr::Kind::kQuant) {
    // The quantifier variable shadows `name` in the predicate only.
    std::vector<QExprPtr> kids = e->kids;
    kids[0] = SubstituteIdent(kids[0], name, replacement);
    if (e->names[0] != name && kids.size() > 1) {
      kids[1] = SubstituteIdent(kids[1], name, replacement);
    }
    return copy_with_kids(std::move(kids));
  }

  if (e->kind == QExpr::Kind::kSelect) {
    // Range i sees bindings of ranges 0..i-1; body and where see all.
    std::vector<QExprPtr> kids = e->kids;
    bool shadowed = false;
    for (size_t i = 0; i < e->NumRanges(); ++i) {
      if (!shadowed) {
        kids[1 + i] = SubstituteIdent(kids[1 + i], name, replacement);
      }
      if (e->names[i] == name) shadowed = true;
    }
    if (!shadowed) {
      kids[0] = SubstituteIdent(kids[0], name, replacement);
      if (e->has_where) {
        kids.back() = SubstituteIdent(kids.back(), name, replacement);
      }
    }
    return copy_with_kids(std::move(kids));
  }

  std::vector<QExprPtr> kids;
  kids.reserve(e->kids.size());
  bool changed = false;
  for (const QExprPtr& k : e->kids) {
    QExprPtr nk = SubstituteIdent(k, name, replacement);
    if (nk != k) changed = true;
    kids.push_back(std::move(nk));
  }
  if (!changed) return e;
  return copy_with_kids(std::move(kids));
}

}  // namespace n2j
