#include "oosql/translate.h"

#include "common/str_util.h"
#include "oosql/parser.h"

namespace n2j {

Status Translator::ErrorAt(const QExpr& q, const std::string& msg) const {
  return Status::TypeError(
      StrFormat("%d:%d: %s", q.line, q.column, msg.c_str()));
}

Result<TypedExpr> Translator::Translate(const QExprPtr& query) {
  Scope scope;
  return Tr(query, scope);
}

Result<TypedExpr> Translator::TranslateString(const std::string& text) {
  N2J_ASSIGN_OR_RETURN(QExprPtr q, Parser::ParseQueryString(text));
  return Translate(q);
}

Result<TypedExpr> Translator::Tr(const QExprPtr& qp, Scope& scope) {
  const QExpr& q = *qp;
  switch (q.kind) {
    case QExpr::Kind::kIntLit:
      return TypedExpr{Expr::Const(Value::Int(q.int_value)), Type::Int()};
    case QExpr::Kind::kDoubleLit:
      return TypedExpr{Expr::Const(Value::Double(q.double_value)),
                       Type::Double()};
    case QExpr::Kind::kStringLit:
      return TypedExpr{Expr::Const(Value::String(q.str)), Type::String()};
    case QExpr::Kind::kBoolLit:
      return TypedExpr{Expr::Const(Value::Bool(q.bool_value)), Type::Bool()};

    case QExpr::Kind::kIdent: {
      // Variables shadow tables.
      for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
        if (it->name == q.str) {
          return TypedExpr{Expr::Var(q.str), it->type};
        }
      }
      if (const ClassDef* cls = schema_.FindClassByExtent(q.str)) {
        return TypedExpr{Expr::Table(q.str), cls->ExtentType()};
      }
      if (db_ != nullptr) {
        if (const Table* t = db_->FindTable(q.str)) {
          return TypedExpr{Expr::Table(q.str), Type::Set(t->row_type())};
        }
      }
      return ErrorAt(q, "unknown identifier '" + q.str +
                            "' (not a variable, extent, or table)");
    }

    case QExpr::Kind::kField:
      return TrField(q, scope);

    case QExpr::Kind::kTupleProject: {
      N2J_ASSIGN_OR_RETURN(TypedExpr base, Tr(q.kids[0], scope));
      if (!base.type->is_tuple()) {
        return ErrorAt(q, "tuple projection on non-tuple of type " +
                              base.type->ToString());
      }
      std::vector<TypeField> fields;
      for (const std::string& n : q.names) {
        TypePtr ft = base.type->FindField(n);
        if (ft == nullptr) {
          return ErrorAt(q, "no attribute '" + n + "' in " +
                                base.type->ToString());
        }
        fields.push_back({n, ft});
      }
      return TypedExpr{Expr::TupleProject(base.expr, q.names),
                       Type::Tuple(std::move(fields))};
    }

    case QExpr::Kind::kTupleLit: {
      std::vector<ExprPtr> values;
      std::vector<TypeField> fields;
      for (size_t i = 0; i < q.names.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
          if (q.names[i] == q.names[j]) {
            return ErrorAt(q, "duplicate tuple field '" + q.names[i] + "'");
          }
        }
        N2J_ASSIGN_OR_RETURN(TypedExpr v, Tr(q.kids[i], scope));
        values.push_back(v.expr);
        fields.push_back({q.names[i], v.type});
      }
      return TypedExpr{Expr::TupleConstruct(q.names, std::move(values)),
                       Type::Tuple(std::move(fields))};
    }

    case QExpr::Kind::kSetLit: {
      std::vector<ExprPtr> elems;
      TypePtr elem_type = Type::Any();
      for (const QExprPtr& k : q.kids) {
        N2J_ASSIGN_OR_RETURN(TypedExpr v, Tr(k, scope));
        if (elem_type->is_any()) {
          elem_type = v.type;
        } else if (!elem_type->Equals(*v.type)) {
          return ErrorAt(q, "mixed element types in set literal: " +
                                elem_type->ToString() + " vs " +
                                v.type->ToString());
        }
        elems.push_back(v.expr);
      }
      return TypedExpr{Expr::SetConstruct(std::move(elems)),
                       Type::Set(elem_type)};
    }

    case QExpr::Kind::kUnary: {
      N2J_ASSIGN_OR_RETURN(TypedExpr v, Tr(q.kids[0], scope));
      if (q.uop == UnOp::kNot) {
        if (!v.type->is_bool() && !v.type->is_any()) {
          return ErrorAt(q, "'not' on " + v.type->ToString());
        }
        return TypedExpr{Expr::Not(v.expr), Type::Bool()};
      }
      if (!v.type->is_numeric() && !v.type->is_any()) {
        return ErrorAt(q, "negation of " + v.type->ToString());
      }
      return TypedExpr{Expr::Un(UnOp::kNeg, v.expr), v.type};
    }

    case QExpr::Kind::kIsEmptyCall: {
      N2J_ASSIGN_OR_RETURN(TypedExpr v, Tr(q.kids[0], scope));
      if (!v.type->is_set() && !v.type->is_any()) {
        return ErrorAt(q, "isempty on " + v.type->ToString());
      }
      return TypedExpr{Expr::Un(UnOp::kIsEmpty, v.expr), Type::Bool()};
    }

    case QExpr::Kind::kBinary:
      return TrBinary(q, scope);

    case QExpr::Kind::kQuant: {
      N2J_ASSIGN_OR_RETURN(TypedExpr range, Tr(q.kids[0], scope));
      if (!range.type->is_set()) {
        return ErrorAt(q, "quantifier range must be a set, got " +
                              range.type->ToString());
      }
      scope.push_back({q.names[0], range.type->element()});
      Result<TypedExpr> pred_result =
          q.kids.size() > 1
              ? Tr(q.kids[1], scope)
              : Result<TypedExpr>(TypedExpr{Expr::True(), Type::Bool()});
      scope.pop_back();
      if (!pred_result.ok()) return pred_result.status();
      if (!pred_result->type->is_bool() && !pred_result->type->is_any()) {
        return ErrorAt(q, "quantifier predicate must be boolean, got " +
                              pred_result->type->ToString());
      }
      return TypedExpr{Expr::Quant(q.quant, q.names[0], range.expr,
                                   pred_result->expr),
                       Type::Bool()};
    }

    case QExpr::Kind::kAgg: {
      N2J_ASSIGN_OR_RETURN(TypedExpr v, Tr(q.kids[0], scope));
      if (!v.type->is_set() && !v.type->is_any()) {
        return ErrorAt(q, std::string(AggKindName(q.agg)) + " over " +
                              v.type->ToString());
      }
      TypePtr elem =
          v.type->is_set() ? v.type->element() : Type::Any();
      switch (q.agg) {
        case AggKind::kCount:
          return TypedExpr{Expr::Agg(q.agg, v.expr), Type::Int()};
        case AggKind::kAvg:
          if (!elem->is_numeric() && !elem->is_any()) {
            return ErrorAt(q, "avg over non-numeric set");
          }
          return TypedExpr{Expr::Agg(q.agg, v.expr), Type::Double()};
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          if (q.agg == AggKind::kSum && !elem->is_numeric() &&
              !elem->is_any()) {
            return ErrorAt(q, "sum over non-numeric set");
          }
          return TypedExpr{Expr::Agg(q.agg, v.expr), elem};
      }
      return Status::Internal("bad aggregate");
    }

    case QExpr::Kind::kSelect:
      return TrSelect(q, scope);
  }
  return Status::Internal("unhandled OOSQL AST kind");
}

Result<TypedExpr> Translator::TrField(const QExpr& q, Scope& scope) {
  N2J_ASSIGN_OR_RETURN(TypedExpr base, Tr(q.kids[0], scope));
  TypePtr t = base.type;
  ExprPtr e = base.expr;
  // Implicit dereference through object references: e.supplier.sname
  // lowers to deref<Supplier>(e.supplier).sname.
  if (t->is_ref()) {
    const ClassDef* cls = schema_.FindClass(t->class_name());
    if (cls == nullptr) {
      return ErrorAt(q, "reference to unknown class " + t->class_name());
    }
    e = Expr::Deref(e, cls->name);
    t = cls->ObjectType();
  }
  if (!t->is_tuple()) {
    return ErrorAt(q, "field access '." + q.str + "' on " + t->ToString());
  }
  TypePtr ft = t->FindField(q.str);
  if (ft == nullptr) {
    return ErrorAt(q, "no attribute '" + q.str + "' in " + t->ToString());
  }
  return TypedExpr{Expr::Access(e, q.str), ft};
}

Result<TypedExpr> Translator::TrBinary(const QExpr& q, Scope& scope) {
  N2J_ASSIGN_OR_RETURN(TypedExpr l, Tr(q.kids[0], scope));
  N2J_ASSIGN_OR_RETURN(TypedExpr r, Tr(q.kids[1], scope));
  BinOp op = q.bop;
  ExprPtr e = Expr::Bin(op, l.expr, r.expr);

  auto type_err = [&](const char* what) {
    return ErrorAt(q, StrFormat("%s not applicable to %s and %s", what,
                                l.type->ToString().c_str(),
                                r.type->ToString().c_str()));
  };

  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      bool ok = (l.type->is_numeric() || l.type->is_any()) &&
                (r.type->is_numeric() || r.type->is_any());
      if (!ok) return type_err("arithmetic");
      TypePtr t = (l.type->is_double() || r.type->is_double())
                      ? Type::Double()
                      : (l.type->is_any() ? r.type : l.type);
      return TypedExpr{e, t};
    }
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      if (!l.type->ComparableWith(*r.type)) return type_err("comparison");
      return TypedExpr{e, Type::Bool()};
    case BinOp::kIn: {
      if (!r.type->is_set() && !r.type->is_any()) return type_err("'in'");
      if (r.type->is_set() &&
          !l.type->ComparableWith(*r.type->element())) {
        return type_err("'in'");
      }
      return TypedExpr{e, Type::Bool()};
    }
    case BinOp::kContains: {
      if (!l.type->is_set() && !l.type->is_any()) {
        return type_err("'contains'");
      }
      if (l.type->is_set() &&
          !r.type->ComparableWith(*l.type->element())) {
        return type_err("'contains'");
      }
      return TypedExpr{e, Type::Bool()};
    }
    case BinOp::kSubset:
    case BinOp::kSubsetEq:
    case BinOp::kSupset:
    case BinOp::kSupsetEq: {
      bool sets = (l.type->is_set() || l.type->is_any()) &&
                  (r.type->is_set() || r.type->is_any());
      if (!sets) return type_err("set comparison");
      if (l.type->is_set() && r.type->is_set() &&
          !l.type->element()->ComparableWith(*r.type->element())) {
        return type_err("set comparison");
      }
      return TypedExpr{e, Type::Bool()};
    }
    case BinOp::kAnd:
    case BinOp::kOr: {
      bool ok = (l.type->is_bool() || l.type->is_any()) &&
                (r.type->is_bool() || r.type->is_any());
      if (!ok) return type_err("boolean connective");
      return TypedExpr{e, Type::Bool()};
    }
    case BinOp::kUnionOp:
    case BinOp::kIntersectOp:
    case BinOp::kDifferenceOp: {
      bool sets = (l.type->is_set() || l.type->is_any()) &&
                  (r.type->is_set() || r.type->is_any());
      if (!sets) return type_err("set operator");
      TypePtr t = l.type->is_set() ? l.type : r.type;
      return TypedExpr{e, t};
    }
  }
  return Status::Internal("unhandled binary operator");
}

Result<TypedExpr> Translator::TrSelect(const QExpr& q, Scope& scope) {
  size_t n = q.NumRanges();
  N2J_CHECK(n >= 1);

  // Translate ranges left to right, accumulating scope: later ranges may
  // use earlier variables (dependent iteration over set-valued
  // attributes, e.g. `from s in SUPPLIER, x in s.parts`).
  std::vector<TypedExpr> ranges;
  size_t scope_base = scope.size();
  for (size_t i = 0; i < n; ++i) {
    Result<TypedExpr> range = Tr(q.Range(i), scope);
    if (!range.ok()) {
      scope.resize(scope_base);
      return range.status();
    }
    if (!range->type->is_set()) {
      Status st = ErrorAt(q, "from-clause operand of '" + q.names[i] +
                                 "' is not a set: " +
                                 range->type->ToString());
      scope.resize(scope_base);
      return st;
    }
    ranges.push_back(*range);
    scope.push_back({q.names[i], range->type->element()});
  }

  Result<TypedExpr> where =
      q.has_where ? Tr(q.Where(), scope)
                  : Result<TypedExpr>(TypedExpr{nullptr, Type::Bool()});
  if (!where.ok()) {
    scope.resize(scope_base);
    return where.status();
  }
  if (q.has_where && !where->type->is_bool() && !where->type->is_any()) {
    Status st = ErrorAt(q, "where-clause must be boolean, got " +
                               where->type->ToString());
    scope.resize(scope_base);
    return st;
  }

  Result<TypedExpr> body = Tr(q.SelectBody(), scope);
  scope.resize(scope_base);
  if (!body.ok()) return body.status();

  // Innermost: α[vn : body](σ[vn : where](Rn)); the σ is emitted only
  // when a where-clause is present (the paper's α∘σ translation).
  ExprPtr core = ranges[n - 1].expr;
  if (q.has_where) {
    core = Expr::Select(q.names[n - 1], where->expr, core);
  }
  core = Expr::Map(q.names[n - 1], body->expr, core);
  // Enclosing ranges: each adds a map producing a set of sets, flattened.
  for (size_t i = n - 1; i-- > 0;) {
    core = Expr::Flatten(Expr::Map(q.names[i], core, ranges[i].expr));
  }
  return TypedExpr{core, Type::Set(body->type)};
}

}  // namespace n2j
