#ifndef N2J_OOSQL_PARSER_H_
#define N2J_OOSQL_PARSER_H_

#include <string>
#include <vector>

#include "adl/schema.h"
#include "common/result.h"
#include "oosql/ast.h"
#include "oosql/token.h"

namespace n2j {

/// Recursive-descent parser for OOSQL queries and the paper's class
/// definition language:
///
///   select <expr> from <v> in <expr> (, <v> in <expr>)*
///     [where <expr>] [with <name> = <expr> (, <name> = <expr>)*]
///
/// The `with` construct (the paper's local-definition notation) is
/// macro-expanded into the block at parse time.
///
///   class Part with extension PART [oid pid]
///     attributes pname : string, price : int, color : string
///   end [Part]
///
/// The expression grammar (loosest to tightest): or, and, not,
/// comparison (=, <>, <, <=, >, >=, in, contains, subset[eq],
/// supset[eq]), additive (+, -, union, minus), multiplicative
/// (*, /, %, intersect), unary minus, postfix (.field, [a, b]
/// tuple projection), primary (literals, tuple/set constructors,
/// quantifiers, aggregates, select blocks, parenthesized expressions).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses a single query expression; fails if trailing tokens remain
  /// (a trailing ';' is allowed).
  Result<QExprPtr> ParseQuery();

  /// Parses a sequence of class definitions into a Schema. The optional
  /// `oid <name>` clause names the implicit oid field (default "oid").
  /// Class-typed attributes become Ref types; `{ ClassName }` becomes a
  /// set of unary (ref) tuples only when written as a tuple type — a bare
  /// class name inside braces is a set of references.
  Result<Schema> ParseSchema();

  /// Convenience one-shot helpers (tokenize + parse).
  static Result<QExprPtr> ParseQueryString(const std::string& text);
  static Result<Schema> ParseSchemaString(const std::string& text);

 private:
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Result<Token> Expect(TokenKind kind, const char* context);
  Status ErrorHere(const std::string& msg) const;

  Result<QExprPtr> ParseExpr();        // or-level
  Result<QExprPtr> ParseAnd();
  Result<QExprPtr> ParseNot();
  Result<QExprPtr> ParseComparison();
  Result<QExprPtr> ParseAdditive();
  Result<QExprPtr> ParseMultiplicative();
  Result<QExprPtr> ParseUnary();
  Result<QExprPtr> ParsePostfix();
  Result<QExprPtr> ParsePrimary();
  Result<QExprPtr> ParseSelect();
  Result<QExprPtr> ParseQuantifier();

  Result<TypePtr> ParseType();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace n2j

#endif  // N2J_OOSQL_PARSER_H_
