#ifndef N2J_OOSQL_AST_H_
#define N2J_OOSQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"  // reuses BinOp / UnOp / AggKind / QuantKind

namespace n2j {

struct QExpr;
using QExprPtr = std::shared_ptr<const QExpr>;

/// OOSQL surface-syntax AST. Deliberately close to the grammar; the
/// translator (translate.h) type-checks it against a Schema and lowers it
/// to the ADL algebra.
struct QExpr {
  enum class Kind : uint8_t {
    kIntLit,
    kDoubleLit,
    kStringLit,
    kBoolLit,
    kIdent,     // variable or base-table name (resolved by the translator)
    kField,     // kids[0].name
    kTupleProject,  // kids[0][names...]
    kTupleLit,  // (n1 = kids[0], ...)
    kSetLit,    // {kids...}
    kUnary,     // uop kids[0]
    kBinary,    // kids[0] bop kids[1]
    kQuant,     // exists/forall names[0] in kids[0] (: kids[1])
    kAgg,       // agg(kids[0])
    kIsEmptyCall,  // isempty(kids[0])
    kSelect,    // select kids[0] from names[i] in kids[1+i]
                //   (where kids.back() iff has_where)
  };

  Kind kind;
  int line = 0;
  int column = 0;

  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string str;                  // literal text / ident / field name
  std::vector<std::string> names;   // tuple fields / from-vars / projection
  BinOp bop = BinOp::kEq;
  UnOp uop = UnOp::kNot;
  AggKind agg = AggKind::kCount;
  QuantKind quant = QuantKind::kExists;
  bool has_where = false;
  std::vector<QExprPtr> kids;

  /// For kSelect: number of from-clause (var, range) pairs.
  size_t NumRanges() const {
    return kids.size() - 1 - (has_where ? 1 : 0);
  }
  const QExprPtr& SelectBody() const { return kids[0]; }
  const QExprPtr& Range(size_t i) const { return kids[1 + i]; }
  const QExprPtr& Where() const { return kids.back(); }
};

/// Renders the AST back to (normalized) OOSQL text, mainly for error
/// messages and tests.
std::string QExprToString(const QExprPtr& e);

/// Capture-naive substitution of `replacement` for free occurrences of
/// the identifier `name` in `e`, respecting shadowing by from-clause and
/// quantifier variables. Used to expand the paper's `with` construct
/// ("select F(x) ... where P(x, Y') with Y' = select ...") before
/// translation — with-definitions are macro-like local names.
QExprPtr SubstituteIdent(const QExprPtr& e, const std::string& name,
                         const QExprPtr& replacement);

}  // namespace n2j

#endif  // N2J_OOSQL_AST_H_
