#ifndef N2J_OOSQL_TRANSLATE_H_
#define N2J_OOSQL_TRANSLATE_H_

#include <string>
#include <vector>

#include "adl/expr.h"
#include "adl/schema.h"
#include "adl/type.h"
#include "common/result.h"
#include "oosql/ast.h"
#include "storage/database.h"

namespace n2j {

/// An ADL expression together with its inferred type.
struct TypedExpr {
  ExprPtr expr;
  TypePtr type;
};

/// Type-checks an OOSQL AST against a schema and lowers it to ADL.
///
/// The lowering follows Section 3 of the paper and is deliberately naive
/// ("translation of OOSQL queries into the algebra is done in a simple,
/// almost one-to-one way"):
///
///   select e1 from x in e2 where e3  ≡  α[x : e1](σ[x : e3](e2))
///
/// Multiple range variables lower to nested map/select with a flatten per
/// extra variable. Optimization happens afterwards, in the rewriter.
///
/// Path expressions through Ref-typed attributes get explicit Deref
/// (materialize) nodes, so pointer traversals are visible to the
/// optimizer (Section 6.2, [BlMG93]).
class Translator {
 public:
  /// `db` is optional; when given, plain (class-less) tables are also
  /// resolvable as range expressions.
  explicit Translator(const Schema& schema, const Database* db = nullptr)
      : schema_(schema), db_(db) {}

  /// Translates a closed query.
  Result<TypedExpr> Translate(const QExprPtr& query);

  /// Parses and translates in one step.
  Result<TypedExpr> TranslateString(const std::string& query_text);

 private:
  struct Binding {
    std::string name;
    TypePtr type;
  };
  using Scope = std::vector<Binding>;

  Result<TypedExpr> Tr(const QExprPtr& q, Scope& scope);
  Result<TypedExpr> TrSelect(const QExpr& q, Scope& scope);
  Result<TypedExpr> TrBinary(const QExpr& q, Scope& scope);
  Result<TypedExpr> TrField(const QExpr& q, Scope& scope);

  Status ErrorAt(const QExpr& q, const std::string& msg) const;

  const Schema& schema_;
  const Database* db_;
};

}  // namespace n2j

#endif  // N2J_OOSQL_TRANSLATE_H_
