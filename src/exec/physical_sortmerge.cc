// Sort-merge implementation of the join family. Both operands are
// sorted on their evaluated equi keys and merged; equal-key runs pair up
// and the residual predicate filters within a run. The nestjoin adapts
// naturally: each left tuple's group is the filtered right run —
// "common join implementation methods like the sort-merge join ... can
// be adapted" (Section 6.1).

#include <algorithm>

#include "adl/analysis.h"
#include "exec/compile.h"
#include "exec/equi_join.h"
#include "exec/eval.h"
#include "obs/trace.h"

namespace n2j {

namespace {

struct Keyed {
  Value key;
  const Value* row;
};

}  // namespace

Result<Value> Evaluator::SortMergeJoin(const Expr& e, const Value& l,
                                       const Value& r, Environment& env) {
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (!keys.usable()) {
    return Status::Unsupported("no equi keys in join predicate");
  }
  // Committed: no kUnsupported return past the key extraction.
  if (opts_.trace != nullptr) opts_.trace->AnnotateOpen(keys.Describe());

  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  JoinLambdas jl;
  if (opts_.compiled) {
    if (r.set_size() > 0) {
      jl.right_key.CompileKey(*this, keys.right_keys, e.var2(), env,
                              FirstElemShape(r));
    }
    if (l.set_size() > 0) {
      jl.left_key.CompileKey(*this, keys.left_keys, e.var(), env,
                             FirstElemShape(l));
      if (!trivial_residual) {
        jl.residual.Compile(*this, *residual, {e.var(), e.var2()}, env,
                            FirstElemShape(l));
      }
      if (e.kind() == ExprKind::kNestJoin) {
        jl.inner.Compile(*this, *e.inner(), {e.var(), e.var2()}, env,
                         FirstElemShape(l));
      }
    }
  }

  auto build_keyed = [&](const Value& operand, const std::string& var,
                         const std::vector<ExprPtr>& key_exprs,
                         CompiledLambda& key_cl,
                         std::vector<Keyed>* out) -> Status {
    out->reserve(operand.set_size());
    for (const Value& row : operand.elements()) {
      ++stats_.tuples_scanned;
      if (key_cl.ok()) {
        Value* k = key_cl.Run(row);
        if (k == nullptr) return key_cl.status();
        out->push_back({std::move(*k), &row});
        continue;
      }
      if (key_cl.fallback()) ++stats_.interp_fallback_evals;
      env.Push(var, row);
      std::vector<Value> parts;
      parts.reserve(key_exprs.size());
      for (size_t i = 0; i < key_exprs.size(); ++i) {
        Result<Value> kv = EvalNode(*key_exprs[i], env);
        if (!kv.ok()) {
          env.Pop();
          return kv.status();
        }
        parts.push_back(std::move(*kv));
      }
      env.Pop();
      out->push_back({JoinKeyFromParts(std::move(parts)), &row});
    }
    stats_.rows_sorted += out->size();
    std::sort(out->begin(), out->end(),
              [](const Keyed& a, const Keyed& b) {
                return a.key.Compare(b.key) < 0;
              });
    return Status::OK();
  };

  std::vector<Keyed> left;
  std::vector<Keyed> right;
  N2J_RETURN_IF_ERROR(
      build_keyed(l, e.var(), keys.left_keys, jl.left_key, &left));
  N2J_RETURN_IF_ERROR(
      build_keyed(r, e.var2(), keys.right_keys, jl.right_key, &right));

  std::vector<Value> out;
  size_t i = 0;
  size_t j = 0;
  while (i < left.size()) {
    // Advance the right cursor to the left key.
    int cmp = -1;
    while (j < right.size() &&
           (cmp = right[j].key.Compare(left[i].key)) < 0) {
      ++j;
    }
    // The right run matching this key: [j, run_end).
    size_t run_end = j;
    if (j < right.size() && cmp == 0) {
      while (run_end < right.size() &&
             right[run_end].key == left[i].key) {
        ++run_end;
      }
    }
    // Every left tuple with this key pairs against the same run.
    const Value& key = left[i].key;
    while (i < left.size() && left[i].key == key) {
      const Value& x = *left[i].row;
      std::vector<const Value*> matches;
      if (run_end > j) {
        if (trivial_residual) {
          for (size_t k = j; k < run_end; ++k) {
            matches.push_back(right[k].row);
          }
        } else if (jl.residual.ok()) {
          for (size_t k = j; k < run_end; ++k) {
            ++stats_.predicate_evals;
            Value* p = jl.residual.Run(x, *right[k].row);
            if (p == nullptr) return jl.residual.status();
            if (!p->is_bool()) {
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) matches.push_back(right[k].row);
          }
        } else {
          bool count_fallback = jl.residual.fallback();
          env.Push(e.var(), x);
          for (size_t k = j; k < run_end; ++k) {
            ++stats_.predicate_evals;
            if (count_fallback) ++stats_.interp_fallback_evals;
            env.Push(e.var2(), *right[k].row);
            Result<Value> p = EvalNode(*residual, env);
            env.Pop();
            if (!p.ok()) {
              env.Pop();
              return p.status();
            }
            if (!p->is_bool()) {
              env.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) matches.push_back(right[k].row);
          }
          env.Pop();
        }
      }
      N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out, &jl.inner));
      ++i;
    }
    j = run_end;
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
