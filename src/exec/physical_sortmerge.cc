// Sort-merge implementation of the join family. Both operands are
// sorted on their evaluated equi keys and merged; equal-key runs pair up
// and the residual predicate filters within a run. The nestjoin adapts
// naturally: each left tuple's group is the filtered right run —
// "common join implementation methods like the sort-merge join ... can
// be adapted" (Section 6.1).

#include <algorithm>

#include "adl/analysis.h"
#include "exec/equi_join.h"
#include "exec/eval.h"

namespace n2j {

namespace {

struct Keyed {
  Value key;
  const Value* row;
};

}  // namespace

Result<Value> Evaluator::SortMergeJoin(const Expr& e, const Value& l,
                                       const Value& r, Environment& env) {
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (!keys.usable()) {
    return Status::Unsupported("no equi keys in join predicate");
  }

  auto build_keyed = [&](const Value& operand, const std::string& var,
                         const std::vector<ExprPtr>& key_exprs,
                         std::vector<Keyed>* out) -> Status {
    out->reserve(operand.set_size());
    for (const Value& row : operand.elements()) {
      ++stats_.tuples_scanned;
      env.Push(var, row);
      std::vector<Value> parts;
      parts.reserve(key_exprs.size());
      for (size_t i = 0; i < key_exprs.size(); ++i) {
        Result<Value> kv = EvalNode(*key_exprs[i], env);
        if (!kv.ok()) {
          env.Pop();
          return kv.status();
        }
        parts.push_back(std::move(*kv));
      }
      env.Pop();
      out->push_back({JoinKeyFromParts(std::move(parts)), &row});
    }
    stats_.rows_sorted += out->size();
    std::sort(out->begin(), out->end(),
              [](const Keyed& a, const Keyed& b) {
                return a.key.Compare(b.key) < 0;
              });
    return Status::OK();
  };

  std::vector<Keyed> left;
  std::vector<Keyed> right;
  N2J_RETURN_IF_ERROR(build_keyed(l, e.var(), keys.left_keys, &left));
  N2J_RETURN_IF_ERROR(build_keyed(r, e.var2(), keys.right_keys, &right));

  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();

  std::vector<Value> out;
  size_t i = 0;
  size_t j = 0;
  while (i < left.size()) {
    // Advance the right cursor to the left key.
    int cmp = -1;
    while (j < right.size() &&
           (cmp = right[j].key.Compare(left[i].key)) < 0) {
      ++j;
    }
    // The right run matching this key: [j, run_end).
    size_t run_end = j;
    if (j < right.size() && cmp == 0) {
      while (run_end < right.size() &&
             right[run_end].key == left[i].key) {
        ++run_end;
      }
    }
    // Every left tuple with this key pairs against the same run.
    const Value& key = left[i].key;
    while (i < left.size() && left[i].key == key) {
      const Value& x = *left[i].row;
      std::vector<const Value*> matches;
      if (run_end > j) {
        if (trivial_residual) {
          for (size_t k = j; k < run_end; ++k) {
            matches.push_back(right[k].row);
          }
        } else {
          env.Push(e.var(), x);
          for (size_t k = j; k < run_end; ++k) {
            ++stats_.predicate_evals;
            env.Push(e.var2(), *right[k].row);
            Result<Value> p = EvalNode(*residual, env);
            env.Pop();
            if (!p.ok()) {
              env.Pop();
              return p.status();
            }
            if (!p->is_bool()) {
              env.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) matches.push_back(right[k].row);
          }
          env.Pop();
        }
      }
      N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out));
      ++i;
    }
    j = run_end;
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
