#include "exec/compile.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "exec/equi_join.h"
#include "exec/eval.h"
#include "obs/metrics.h"

namespace n2j {
namespace {

constexpr uint32_t kNoReg = 0xffffffffu;

/// RAII metrics probe around one lambda compilation. References into the
/// process-wide registry are resolved once (instruments live forever).
template <typename Lambda>
class CompileProbe {
 public:
  explicit CompileProbe(const Lambda& lambda)
      : lambda_(lambda), t0_ns_(MonotonicNanos()) {}
  ~CompileProbe() {
    static obs::Counter& compiles =
        obs::MetricsRegistry::Global().GetCounter("n2j_lambda_compiles_total");
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::Global().GetCounter(
            "n2j_lambda_compile_fallbacks_total");
    static obs::Histogram& latency =
        obs::MetricsRegistry::Global().GetHistogram("n2j_lambda_compile_ms");
    compiles.Add();
    if (lambda_.fallback()) fallbacks.Add();
    latency.Observe(static_cast<double>(MonotonicNanos() - t0_ns_) / 1e6);
  }

 private:
  const Lambda& lambda_;
  int64_t t0_ns_;
};

class Compiler {
 public:
  Compiler(Evaluator& ev, const Environment& env) : ev_(ev), env_(env) {}

  Program prog;

  uint32_t AddParam(const std::string& name, const TupleShape* shape) {
    uint32_t slot = AllocReg(shape);
    scope_.emplace_back(name, slot);
    ++prog.num_params;
    return slot;
  }

  bool failed() const { return failed_; }

  uint32_t AllocReg(const TupleShape* shape = nullptr) {
    reg_shape_.push_back(shape);
    return prog.num_regs++;
  }

  size_t Emit(OpCode op, uint32_t dst, uint32_t a = 0, uint32_t b = 0,
              uint32_t c = 0, uint32_t d = 0, uint8_t flag = 0) {
    Instr ins;
    ins.op = op;
    ins.flag = flag;
    ins.dst = static_cast<uint16_t>(dst);
    ins.a = a;
    ins.b = b;
    ins.c = c;
    ins.d = d;
    prog.code.push_back(ins);
    return prog.code.size() - 1;
  }

  uint32_t AddConst(Value v) {
    prog.consts.push_back(std::move(v));
    return static_cast<uint32_t>(prog.consts.size() - 1);
  }
  uint32_t AddName(const std::string& n) {
    prog.names.push_back(n);
    return static_cast<uint32_t>(prog.names.size() - 1);
  }
  uint32_t AddNameList(const std::vector<std::string>& ns) {
    prog.name_lists.push_back(ns);
    return static_cast<uint32_t>(prog.name_lists.size() - 1);
  }
  uint32_t AddShape(const TupleShape* s) {
    prog.shapes.push_back(s);
    return static_cast<uint32_t>(prog.shapes.size() - 1);
  }
  uint32_t AddShapeCache() {
    prog.shape_caches.emplace_back();
    return static_cast<uint32_t>(prog.shape_caches.size() - 1);
  }
  uint32_t AddOperands(const std::vector<uint32_t>& regs) {
    uint32_t off = static_cast<uint32_t>(prog.operands.size());
    prog.operands.insert(prog.operands.end(), regs.begin(), regs.end());
    return off;
  }

  const TupleShape* ShapeOf(uint32_t reg) const { return reg_shape_[reg]; }

  uint32_t CompileNode(const Expr& e);

 private:
  uint32_t Fail() {
    failed_ = true;
    return kNoReg;
  }

  Evaluator& ev_;
  const Environment& env_;
  bool failed_ = false;
  std::vector<std::pair<std::string, uint32_t>> scope_;  // innermost last
  // Statically known tuple shape per register (nullptr = unknown). Used
  // to seed kField inline caches so shape-stable inputs never take a
  // cache miss, and to propagate shapes through project/construct.
  std::vector<const TupleShape*> reg_shape_;
};

uint32_t Compiler::CompileNode(const Expr& e) {
  if (failed_) return kNoReg;
  switch (e.kind()) {
    case ExprKind::kConst: {
      const Value& v = e.const_value();
      uint32_t dst = AllocReg(v.is_tuple() ? v.tuple_shape() : nullptr);
      Emit(OpCode::kLoadConst, dst, AddConst(v));
      return dst;
    }

    case ExprKind::kVar: {
      for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
        if (it->first == e.name()) return it->second;
      }
      // Free variable: loop-invariant during this operator invocation,
      // so capture the current binding by value. Unbound names fail the
      // compile; the interpreter then reproduces the "unbound variable"
      // error (or never reaches it under short-circuiting).
      const Value* v = env_.Lookup(e.name());
      if (v == nullptr) return Fail();
      uint32_t dst = AllocReg(v->is_tuple() ? v->tuple_shape() : nullptr);
      Emit(OpCode::kLoadConst, dst, AddConst(*v));
      return dst;
    }

    case ExprKind::kGetTable: {
      // Resolved through the evaluator's per-query table cache, so the
      // captured set shares the cached payload.
      Result<Value> t = ev_.ResolveTable(e.name());
      if (!t.ok()) return Fail();
      uint32_t dst = AllocReg();
      Emit(OpCode::kLoadConst, dst, AddConst(std::move(*t)));
      return dst;
    }

    case ExprKind::kLet: {
      uint32_t def = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      scope_.emplace_back(e.var(), def);
      uint32_t body = CompileNode(*e.child(1));
      scope_.pop_back();
      return body;
    }

    case ExprKind::kFieldAccess: {
      uint32_t src = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      size_t at = Emit(OpCode::kField, dst, src, AddName(e.name()));
      const TupleShape* s = ShapeOf(src);
      if (s != nullptr) {
        prog.code[at].cache_shape = s;
        prog.code[at].cache_index = s->IndexOf(e.name());
      }
      return dst;
    }

    case ExprKind::kTupleProject: {
      uint32_t src = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg(TupleShape::Intern(e.names()));
      Emit(OpCode::kProject, dst, src, AddNameList(e.names()),
           AddShapeCache());
      return dst;
    }

    case ExprKind::kTupleConstruct: {
      std::vector<uint32_t> ops;
      ops.reserve(e.num_children());
      for (const ExprPtr& c : e.children()) {
        ops.push_back(CompileNode(*c));
        if (failed_) return kNoReg;
      }
      const TupleShape* shape = TupleShape::Intern(e.names());
      uint32_t dst = AllocReg(shape);
      Emit(OpCode::kMakeTuple, dst, AddOperands(ops),
           static_cast<uint32_t>(ops.size()), AddShape(shape));
      return dst;
    }

    case ExprKind::kTupleConcat: {
      uint32_t l = CompileNode(*e.child(0));
      uint32_t r = CompileNode(*e.child(1));
      if (failed_) return kNoReg;
      const TupleShape* ls = ShapeOf(l);
      const TupleShape* rs = ShapeOf(r);
      uint32_t dst = AllocReg(
          ls != nullptr && rs != nullptr ? ls->ConcatWith(rs) : nullptr);
      Emit(OpCode::kConcat, dst, l, r);
      return dst;
    }

    case ExprKind::kExcept: {
      uint32_t base = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      // The interpreter rejects a non-tuple base before evaluating any
      // update expression; the guard preserves that order.
      Emit(OpCode::kGuard, 0, base);
      std::vector<uint32_t> ops;
      ops.reserve(e.names().size());
      for (size_t i = 0; i < e.names().size(); ++i) {
        ops.push_back(CompileNode(*e.child(i + 1)));
        if (failed_) return kNoReg;
      }
      const TupleShape* out_shape = nullptr;
      if (const TupleShape* bs = ShapeOf(base)) {
        out_shape = bs;
        for (const std::string& n : e.names()) {
          if (out_shape->IndexOf(n) < 0) {
            out_shape = out_shape->ExtendedWith(n);
          }
        }
      }
      uint32_t dst = AllocReg(out_shape);
      Emit(OpCode::kExcept, dst, base, AddOperands(ops), AddShapeCache(),
           AddNameList(e.names()));
      return dst;
    }

    case ExprKind::kSetConstruct: {
      std::vector<uint32_t> ops;
      ops.reserve(e.num_children());
      for (const ExprPtr& c : e.children()) {
        ops.push_back(CompileNode(*c));
        if (failed_) return kNoReg;
      }
      uint32_t dst = AllocReg();
      Emit(OpCode::kMakeSet, dst, AddOperands(ops),
           static_cast<uint32_t>(ops.size()));
      return dst;
    }

    case ExprKind::kDeref: {
      uint32_t src = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      Emit(OpCode::kDeref, dst, src);
      return dst;
    }

    case ExprKind::kUnary: {
      uint32_t src = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      Emit(OpCode::kUnary, dst, src, 0, 0, 0,
           static_cast<uint8_t>(e.un_op()));
      return dst;
    }

    case ExprKind::kBinary: {
      BinOp op = e.bin_op();
      if (op == BinOp::kAnd || op == BinOp::kOr) {
        uint32_t l = CompileNode(*e.child(0));
        if (failed_) return kNoReg;
        uint32_t dst = AllocReg();
        size_t probe = Emit(
            op == BinOp::kAnd ? OpCode::kAndProbe : OpCode::kOrProbe, dst,
            l);
        uint32_t r = CompileNode(*e.child(1));
        if (failed_) return kNoReg;
        Emit(OpCode::kBoolMove, dst, r);
        // Short-circuit jumps past the rhs code and the final move.
        prog.code[probe].b = static_cast<uint32_t>(prog.code.size());
        return dst;
      }
      uint32_t l = CompileNode(*e.child(0));
      uint32_t r = CompileNode(*e.child(1));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      Emit(OpCode::kBinary, dst, l, r, 0, 0, static_cast<uint8_t>(op));
      return dst;
    }

    case ExprKind::kQuantifier: {
      uint32_t range = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      uint32_t elem = AllocReg();
      size_t q =
          Emit(OpCode::kQuant, dst, range, elem, 0, 0,
               e.quant_kind() == QuantKind::kExists ? uint8_t{1}
                                                    : uint8_t{0});
      scope_.emplace_back(e.var(), elem);
      uint32_t pred = CompileNode(*e.child(1));
      scope_.pop_back();
      if (failed_) return kNoReg;
      prog.code[q].c = static_cast<uint32_t>(prog.code.size() - (q + 1));
      prog.code[q].d = pred;
      return dst;
    }

    case ExprKind::kAggregate: {
      uint32_t src = CompileNode(*e.child(0));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      Emit(OpCode::kAggregate, dst, src, 0, 0, 0,
           static_cast<uint8_t>(e.agg_kind()));
      return dst;
    }

    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      uint32_t l = CompileNode(*e.child(0));
      uint32_t r = CompileNode(*e.child(1));
      if (failed_) return kNoReg;
      uint32_t dst = AllocReg();
      uint8_t which = e.kind() == ExprKind::kUnion       ? 0
                      : e.kind() == ExprKind::kIntersect ? 1
                                                         : 2;
      Emit(OpCode::kSetOp, dst, l, r, 0, 0, which);
      return dst;
    }

    // Set iterators fall back to the interpreter: they carry their own
    // operator-level machinery (PNHL, parallel morsels, physical join
    // selection) that straight-line code cannot replicate.
    case ExprKind::kMap:
    case ExprKind::kSelect:
    case ExprKind::kProject:
    case ExprKind::kFlatten:
    case ExprKind::kNest:
    case ExprKind::kUnnest:
    case ExprKind::kProduct:
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
    case ExprKind::kDivide:
      return Fail();
  }
  return Fail();
}

/// Compiles the key expressions and combines them exactly like
/// JoinKeyFromParts (shared by the scalar and batch key compilers).
/// Returns the result slot, or kNoReg when any key failed to compile.
uint32_t CompileKeyParts(Compiler& c, const std::vector<ExprPtr>& keys) {
  std::vector<uint32_t> parts;
  parts.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    parts.push_back(c.CompileNode(*k));
    if (c.failed()) return kNoReg;
  }
  if (parts.size() == 1) return parts[0];
  // kMakeKey moves its operands out of their registers, so operands
  // must be distinct non-parameter slots (two bare-variable keys both
  // compile to the parameter slot).
  std::vector<uint32_t> ops;
  ops.reserve(parts.size());
  for (uint32_t p : parts) {
    if (p < c.prog.num_params ||
        std::find(ops.begin(), ops.end(), p) != ops.end()) {
      uint32_t m = c.AllocReg();
      c.Emit(OpCode::kMove, m, p);
      p = m;
    }
    ops.push_back(p);
  }
  uint32_t ret = c.AllocReg();
  c.Emit(OpCode::kMakeKey, ret, c.AddOperands(ops),
         static_cast<uint32_t>(ops.size()),
         c.AddShape(JoinKeyShape(ops.size())));
  return ret;
}

}  // namespace

void CompiledLambda::Finish(Evaluator& ev, Program prog, uint32_t ret_slot) {
  // dst is a 16-bit field; any body big enough to overflow it is no
  // longer a per-tuple lambda worth compiling.
  if (prog.num_regs > 0xffff) {
    state_ = State::kFallback;
    return;
  }
  prog.ret_slot = ret_slot;
  prog_ = std::make_unique<Program>(std::move(prog));
  vm_ = std::make_unique<Vm>(prog_.get(), &ev.db(), &ev.stats());
  state_ = State::kOk;
}

void CompiledLambda::Compile(Evaluator& ev, const Expr& body,
                             const std::vector<std::string>& params,
                             const Environment& env,
                             const TupleShape* param0_shape) {
  CompileProbe probe(*this);
  Compiler c(ev, env);
  for (size_t i = 0; i < params.size(); ++i) {
    c.AddParam(params[i], i == 0 ? param0_shape : nullptr);
  }
  uint32_t ret = c.CompileNode(body);
  if (c.failed()) {
    state_ = State::kFallback;
    return;
  }
  Finish(ev, std::move(c.prog), ret);
}

void CompiledLambda::CompileKey(Evaluator& ev,
                                const std::vector<ExprPtr>& keys,
                                const std::string& var,
                                const Environment& env,
                                const TupleShape* param0_shape) {
  CompileProbe probe(*this);
  Compiler c(ev, env);
  c.AddParam(var, param0_shape);
  uint32_t ret = CompileKeyParts(c, keys);
  if (c.failed()) {
    state_ = State::kFallback;
    return;
  }
  Finish(ev, std::move(c.prog), ret);
}

void CompiledBatchLambda::Finish(Evaluator& ev, Program prog,
                                 uint32_t ret_slot) {
  if (prog.num_regs > 0xffff) {
    state_ = State::kFallback;
    return;
  }
  prog.ret_slot = ret_slot;
  prog_ = std::make_unique<Program>(std::move(prog));
  vm_ = std::make_unique<BatchVm>(prog_.get(), &ev.db(), &ev.stats());
  state_ = State::kOk;
}

void CompiledBatchLambda::Compile(Evaluator& ev, const Expr& body,
                                  const std::vector<std::string>& params,
                                  const Environment& env,
                                  const TupleShape* param0_shape) {
  CompileProbe probe(*this);
  Compiler c(ev, env);
  for (size_t i = 0; i < params.size(); ++i) {
    c.AddParam(params[i], i == 0 ? param0_shape : nullptr);
  }
  uint32_t ret = c.CompileNode(body);
  if (c.failed()) {
    state_ = State::kFallback;
    return;
  }
  Finish(ev, std::move(c.prog), ret);
}

void CompiledBatchLambda::CompileKey(Evaluator& ev,
                                     const std::vector<ExprPtr>& keys,
                                     const std::vector<std::string>& params,
                                     const Environment& env,
                                     const TupleShape* param0_shape) {
  CompileProbe probe(*this);
  Compiler c(ev, env);
  for (size_t i = 0; i < params.size(); ++i) {
    c.AddParam(params[i], i == 0 ? param0_shape : nullptr);
  }
  uint32_t ret = CompileKeyParts(c, keys);
  if (c.failed()) {
    state_ = State::kFallback;
    return;
  }
  Finish(ev, std::move(c.prog), ret);
}

const TupleShape* FirstElemShape(const Value& set) {
  if (!set.is_set() || set.set_size() == 0) return nullptr;
  const Value& first = set.elements()[0];
  return first.is_tuple() ? first.tuple_shape() : nullptr;
}

}  // namespace n2j
