#include "exec/materialize.h"

#include <algorithm>
#include <map>

#include "common/status.h"
#include "obs/trace.h"

namespace n2j {

namespace {

Result<Value> GetRef(const Value& x, const std::string& ref_attr) {
  if (!x.is_tuple()) {
    return Status::InvalidArgument("materialize input element not a tuple");
  }
  const Value* ref = x.FindField(ref_attr);
  if (ref == nullptr || !ref->is_oid()) {
    return Status::InvalidArgument("attribute '" + ref_attr +
                                   "' is not an oid");
  }
  return *ref;
}

}  // namespace

Result<Value> Materialize(const Database& db, const Value& input,
                          const std::string& ref_attr,
                          const std::string& result_attr,
                          MaterializeStrategy strategy, bool drop_dangling,
                          TraceCollector* trace) {
  if (!input.is_set()) {
    return Status::InvalidArgument("materialize input must be a set");
  }
  OpSpan span(trace, "materialize");
  span.Annotate(strategy == MaterializeStrategy::kNaive ? "naive"
                                                        : "assembly");
  span.RowsIn(input.set_size());

  if (strategy == MaterializeStrategy::kNaive) {
    std::vector<Value> out;
    out.reserve(input.set_size());
    for (const Value& x : input.elements()) {
      N2J_ASSIGN_OR_RETURN(Value ref, GetRef(x, ref_attr));
      Result<Value> obj = db.Deref(ref.oid_value());
      if (!obj.ok()) {
        if (drop_dangling && obj.status().code() == StatusCode::kNotFound) {
          continue;
        }
        return obj.status();
      }
      out.push_back(x.ExceptUpdate({Field(result_attr, *obj)}));
    }
    span.RowsOut(static_cast<uint64_t>(out.size()));
    return Value::Set(std::move(out));
  }

  // Assembly: gather the needed oids, dereference them in oid order
  // (each page faulted once), then assemble the output tuples.
  std::vector<Oid> oids;
  oids.reserve(input.set_size());
  for (const Value& x : input.elements()) {
    N2J_ASSIGN_OR_RETURN(Value ref, GetRef(x, ref_attr));
    oids.push_back(ref.oid_value());
  }
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());

  std::map<Oid, Value> objects;
  for (Oid oid : oids) {
    Result<Value> obj = db.Deref(oid);
    if (!obj.ok()) {
      if (drop_dangling && obj.status().code() == StatusCode::kNotFound) {
        continue;
      }
      return obj.status();
    }
    objects.emplace(oid, std::move(*obj));
  }

  std::vector<Value> out;
  out.reserve(input.set_size());
  for (const Value& x : input.elements()) {
    Oid oid = x.FindField(ref_attr)->oid_value();
    auto it = objects.find(oid);
    if (it == objects.end()) continue;  // dropped dangling reference
    out.push_back(x.ExceptUpdate({Field(result_attr, it->second)}));
  }
  span.RowsOut(static_cast<uint64_t>(out.size()));
  return Value::Set(std::move(out));
}

}  // namespace n2j
