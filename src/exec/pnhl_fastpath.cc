// Recognition of the paper's Section 6.2 pattern as a physical fast
// path — its open question made concrete: "the question is whether it is
// useful to define new logical operators for algorithms such as that of
// [DeLa92]". We keep the *logical* plan in plain ADL,
//
//   α[z : z except (a = z.a ⋈_{v,w : v.k = w.k'} T)](e)
//
// and let the evaluator recognize it and run the PNHL algorithm, so the
// algebra stays small while the access method is available.
//
// When the two key attributes share a name (the paper's natural-join
// formulation `z.parts * PART`), the plain ADL join would fail on the
// attribute-name conflict; the fast path gives the expression the
// natural-join semantics (key kept once), exactly as in the paper.

#include "adl/analysis.h"
#include "common/str_util.h"
#include "exec/eval.h"
#include "exec/pnhl.h"
#include "obs/trace.h"

namespace n2j {

Result<Value> Evaluator::TryPnhlMap(const Expr& e, Environment& env) {
  N2J_CHECK(e.kind() == ExprKind::kMap);
  const std::string& z = e.var();
  const ExprPtr& body = e.child(1);

  // body = z except (attr = join)
  if (body->kind() != ExprKind::kExcept || body->names().size() != 1) {
    return Status::Unsupported("not an except-update body");
  }
  if (!(body->child(0)->kind() == ExprKind::kVar &&
        body->child(0)->name() == z)) {
    return Status::Unsupported("except base is not the map variable");
  }
  const std::string& attr = body->names()[0];
  const ExprPtr& update = body->child(1);
  if (update->kind() != ExprKind::kJoin) {
    return Status::Unsupported("update is not a join");
  }
  // join = z.attr ⋈ TABLE
  const ExprPtr& jl = update->child(0);
  const ExprPtr& jr = update->child(1);
  if (!(jl->kind() == ExprKind::kFieldAccess && jl->name() == attr &&
        jl->child(0)->kind() == ExprKind::kVar &&
        jl->child(0)->name() == z)) {
    return Status::Unsupported("join left is not the updated attribute");
  }
  if (jr->kind() != ExprKind::kGetTable) {
    return Status::Unsupported("join right is not a base table");
  }
  // pred = v.k = w.k' (single equality on plain attributes).
  const ExprPtr& pred = update->pred();
  if (pred->kind() != ExprKind::kBinary || pred->bin_op() != BinOp::kEq) {
    return Status::Unsupported("join predicate is not a single equality");
  }
  auto plain_attr = [](const ExprPtr& side, const std::string& var)
      -> const std::string* {
    if (side->kind() == ExprKind::kFieldAccess &&
        side->child(0)->kind() == ExprKind::kVar &&
        side->child(0)->name() == var) {
      return &side->name();
    }
    return nullptr;
  };
  const std::string* elem_key = plain_attr(pred->child(0), update->var());
  const std::string* inner_key = plain_attr(pred->child(1), update->var2());
  if (elem_key == nullptr || inner_key == nullptr) {
    elem_key = plain_attr(pred->child(1), update->var());
    inner_key = plain_attr(pred->child(0), update->var2());
  }
  if (elem_key == nullptr || inner_key == nullptr) {
    return Status::Unsupported("join keys are not plain attributes");
  }
  if (IsFreeIn(z, pred)) {
    return Status::Unsupported("join predicate uses the map variable");
  }

  // Structural checks passed — from here the span records the attempt
  // even if a runtime shape mismatch sends it back to the generic path
  // (the span is annotated "fallback" then, and its stats delta is still
  // exactly the work done).
  OpSpan span(opts_.trace, stats_, "pnhl");
  span.Annotate(jr->name() + "." + *inner_key);

  N2J_ASSIGN_OR_RETURN(Value outer, EvalNode(*e.child(0), env));
  if (!outer.is_set()) {
    return Status::RuntimeError("map over non-set");
  }
  N2J_ASSIGN_OR_RETURN(Value inner, TableValue(jr->name()));
  span.RowsIn(outer.set_size());
  span.RowsBuild(inner.set_size());

  PnhlParams params;
  params.set_attr = attr;
  params.elem_key = *elem_key;
  params.inner_key = *inner_key;
  // Same-named keys: the paper's natural join (key appears once);
  // different names: keep both, matching what the plain join would do.
  params.drop_inner_key = *elem_key == *inner_key;
  params.memory_budget = opts_.pnhl_memory_budget;
  params.num_threads = opts_.num_threads;
  params.trace = opts_.trace;

  PnhlStats pnhl_stats;
  Result<Value> out = PnhlJoin(outer, inner, params, &pnhl_stats);
  if (!out.ok()) {
    // Shape mismatches at runtime (e.g. the attribute is not a set of
    // tuples) fall back to the generic evaluation path.
    span.Annotate("fallback");
    return Status::Unsupported(out.status().message());
  }
  stats_.pnhl_partitions += pnhl_stats.partitions;
  stats_.hash_inserts += pnhl_stats.build_inserts;
  stats_.hash_probes += pnhl_stats.probe_elements;
  stats_.tuples_scanned += pnhl_stats.probe_tuples;
  if (span.on()) {
    span.Annotate(StrFormat("segments=%u", pnhl_stats.partitions));
    opts_.trace->NotePeakHash(pnhl_stats.peak_table_entries);
    span.RowsOut(out);
  }
  return out;
}

}  // namespace n2j
