#ifndef N2J_EXEC_EVAL_H_
#define N2J_EXEC_EVAL_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"
#include "adl/value.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/database.h"

namespace n2j {

class CompiledLambda;
struct JoinLambdas;
class TraceCollector;
struct PlanAnnotations;

/// Operator cost counters. The benchmarks use these (in addition to wall
/// time) to show *why* set-oriented plans win: nested-loop plans evaluate
/// predicates |X|·|Y| times while hash-based joins probe once per tuple.
struct EvalStats {
  uint64_t tuples_scanned = 0;   // elements iterated by any iterator
  uint64_t predicate_evals = 0;  // lambda predicate evaluations
  uint64_t hash_inserts = 0;     // hash-table build inserts
  uint64_t hash_probes = 0;      // hash-table probes
  uint64_t rows_sorted = 0;      // rows sorted by sort-merge joins
  uint64_t index_probes = 0;     // pre-built index lookups
  uint64_t pnhl_partitions = 0;  // PNHL fast-path segments (0 = unused)
  uint64_t derefs = 0;           // oid dereferences
  uint64_t nodes_evaluated = 0;  // expression nodes evaluated (interp)
  uint64_t compiled_evals = 0;   // bytecode program runs (one per tuple)
  // Per-tuple interpreter evaluations taken because a lambda's compile
  // fell back (EvalOptions::compiled on, body not covered). Always 0
  // when compiled evaluation is off.
  uint64_t interp_fallback_evals = 0;
  // Join-family invocations by the physical algorithm that actually ran
  // (one bump per EvalJoinLike call, on the coordinating evaluator, so
  // serial and parallel runs count identically).
  uint64_t joins_nested_loop = 0;
  uint64_t joins_hash = 0;
  uint64_t joins_sortmerge = 0;
  uint64_t joins_index = 0;
  uint64_t joins_membership = 0;
  // Vectorized (batch-at-a-time) execution in the shredded backend.
  uint64_t vec_batches = 0;    // column batches run through the batch VM
  uint64_t vec_pipelines = 0;  // fused range pipelines executed
  // Flat-DAG nodes that refused vectorization (opaque range, a lambda
  // the compiler does not cover, missing columnar projection) or hit an
  // error mid-batch and reran row-wise for exact first-error order.
  uint64_t vec_fallbacks = 0;

  void Reset() { *this = EvalStats(); }
  /// Adds another (per-worker) counter set into this one. Parallel
  /// operators give every worker its own EvalStats and merge afterwards,
  /// so totals are exact — equal to a serial run's counters.
  void Merge(const EvalStats& other);
  /// Subtracts counter-wise (for span deltas: counters-at-end minus
  /// counters-at-begin). Callers guarantee other <= *this per counter.
  void Subtract(const EvalStats& other);
  bool operator==(const EvalStats& other) const = default;
  /// Multi-line aligned table in declaration order, omitting counters
  /// that are zero. "(all counters zero)" when nothing fired.
  std::string ToString() const;
  /// One-line short-key form ("scanned=12 preds=4 ..."), zero counters
  /// omitted; empty string when all are zero. Used for per-span stats in
  /// profiled explain output and trace files.
  std::string Compact() const;
};

/// One row of the EvalStats counter table: declaration name, compact
/// short key, and the member it addresses.
struct EvalStatsField {
  const char* name;
  const char* short_name;
  uint64_t EvalStats::*member;
};

/// The declaration-order counter table Merge/Subtract/ToString/Compact
/// iterate. Exposed so external serializers (the query-log JSONL
/// writer) stay automatically in sync when a counter is added.
const EvalStatsField* EvalStatsFields(size_t* count);

/// Physical implementation for the logical join family — "the join can
/// be implemented as an index nested-loop join, a sort-merge join, a
/// hash join, etc." (Section 6). Every algorithm needs extractable
/// equi-join keys; a join without them always runs as a nested loop.
enum class JoinAlgorithm {
  kAuto,        // index when one exists on the right key, else hash
  kHash,        // build a hash table on the right operand, probe left
  kSortMerge,   // sort both operands on their keys and merge
  kIndex,       // probe a pre-built index on the right base table
                // (falls back to hash if there is none)
  kNestedLoop,  // tuple-at-a-time (the paper's naive baseline)
};

/// Which evaluation backend runs the query. Orthogonal to PlanStrategy
/// and to every knob below: kNested is the classic tuple-at-a-time
/// Evaluator; kShredded lowers the query to a DAG of flat queries over
/// columnar relations (shred/shred.h) and stitches the nested result
/// back together. The Evaluator itself ignores this field — dispatch
/// happens in QueryEngine / shred::EvalWithBackend, so an Evaluator
/// constructed directly always runs nested.
enum class Backend {
  kNested,
  kShredded,
};

/// Execution options.
struct EvalOptions {
  /// Evaluation backend (see Backend). Honored by QueryEngine::Execute
  /// and shred::EvalWithBackend; plain Evaluator use runs kNested.
  Backend backend = Backend::kNested;
  /// Use set-oriented implementations for join/semijoin/antijoin/
  /// nestjoin when the predicate contains extractable equi-join keys;
  /// when false, all joins run as nested loops.
  bool use_hash_joins = true;
  /// Which set-oriented implementation to use when enabled.
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  /// Recognize the paper's Section 6.2 pattern
  ///   α[z : z except (a = z.a ⋈ TABLE)](e)
  /// and execute it with the PNHL algorithm of [DeLa92] instead of
  /// per-tuple nested joins.
  bool enable_pnhl = true;
  /// Memory budget (bytes) for one PNHL hash segment.
  size_t pnhl_memory_budget = SIZE_MAX;
  /// Worker threads for the set-oriented operators: hash-join build and
  /// probe, map/select morsels, PNHL segment processing. 1 (the default)
  /// runs the serial code paths byte-identically to the pre-parallel
  /// engine; any value > 1 produces value-identical results and exact
  /// (merged per-worker) EvalStats. Morsels are merged in input order,
  /// so output is deterministic regardless of scheduling.
  int num_threads = 1;
  /// Compile lambda bodies (map/select/quantifier predicates, join keys
  /// and residuals, nestjoin inner functions) to bytecode once per
  /// operator invocation and evaluate tuples through the VM
  /// (bytecode.h). Bodies the compiler does not cover automatically
  /// fall back to the tree interpreter per operator; results and errors
  /// are identical either way (the differential fuzzer pins this).
  bool compiled = true;
  /// When set, the evaluator records one span per operator invocation
  /// into this collector (see obs/trace.h): wall time, cardinalities,
  /// and exact per-span EvalStats deltas. Tracing never changes results
  /// or the global stats; off (nullptr) costs one branch per operator.
  /// The collector is borrowed, not owned, and must outlive the
  /// evaluation; worker evaluator clones run with tracing off.
  TraceCollector* trace = nullptr;
  /// Per-node physical plan annotations from the cost-based planner
  /// (exec/plan.h; filled by opt/optimizer.h). When set, a join-family
  /// node with an annotated algorithm overrides `join_algorithm` for
  /// that node only, and estimated cardinalities are attached to trace
  /// spans (EXPLAIN's est-vs-actual column). Borrowed, not owned; must
  /// outlive the evaluation. nullptr = heuristic dispatch, exactly the
  /// pre-planner behavior.
  const PlanAnnotations* plan = nullptr;
  /// Vectorized batch execution for the shredded backend: flat-DAG
  /// nodes whose ranges and outputs all compile run as fused pipelines
  /// over column batches (shred/vexec.cc) instead of tuple-at-a-time;
  /// nodes that do not qualify fall back per node, and any mid-batch
  /// error reruns the node row-wise so first-error order is identical.
  /// Results are bit-equal either way (fuzzer-pinned). Ignored by the
  /// kNested backend.
  bool vectorized = true;
  /// Rows per column batch in the vectorized executor. The default
  /// balances cache residency against per-batch overhead; tests vary it
  /// (1, 1023, 1024, 1025) to pin batch-boundary semantics. Values < 1
  /// are clamped to 1.
  int vector_batch_size = 1024;
};

/// Variable bindings during evaluation, innermost last.
class Environment {
 public:
  void Push(const std::string& name, Value v) {
    bindings_.push_back(Binding{name, name.data(), std::move(v)});
  }
  void Pop() { bindings_.pop_back(); }
  /// Innermost binding of `name`, or nullptr.
  const Value* Lookup(const std::string& name) const {
    // One-entry memo for the hot tuple-at-a-time pattern: per row the
    // evaluator pops and re-pushes the same loop variable (the same
    // source std::string each time) and the predicate re-resolves the
    // same Var node's name string. When the query string, the stack
    // depth, and the innermost binding's Push-source pointer all match
    // the previous resolution, the innermost binding is still the
    // answer — no character comparison at all. Source pointers are
    // Expr-owned strings that outlive the evaluation, so pointer
    // identity implies name identity here.
    if (!bindings_.empty() && memo_query_ == name.data() &&
        memo_depth_ == bindings_.size() &&
        memo_src_ == bindings_.back().src) {
      return &bindings_.back().value;
    }
    const size_t len = name.size();
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      // Length first: unequal-length names (the common mismatch) are
      // rejected without touching the characters.
      if (it->name.size() == len &&
          std::memcmp(it->name.data(), name.data(), len) == 0) {
        if (it == bindings_.rbegin()) {
          memo_query_ = name.data();
          memo_src_ = it->src;
          memo_depth_ = bindings_.size();
        }
        return &it->value;
      }
    }
    return nullptr;
  }
  size_t size() const { return bindings_.size(); }

 private:
  struct Binding {
    std::string name;
    const char* src;  // data() of the string object passed to Push
    Value value;
  };
  std::vector<Binding> bindings_;
  // Only innermost hits are memoized — a deeper hit could be shadowed
  // by a later Push at the same depth, which the src check can't see.
  mutable const char* memo_query_ = nullptr;
  mutable const char* memo_src_ = nullptr;
  mutable size_t memo_depth_ = 0;
};

/// Evaluates ADL expressions against a Database. The evaluator is the
/// operational semantics of the algebra: nested expressions evaluate as
/// nested loops (tuple-oriented processing); the join operators may use
/// set-oriented hash implementations (physical.cc), which is exactly the
/// performance gap the paper's rewrites exist to exploit.
class Evaluator {
 public:
  explicit Evaluator(const Database& db, EvalOptions opts = EvalOptions())
      : db_(db), opts_(opts) {}

  /// Evaluates a closed expression.
  Result<Value> Eval(const ExprPtr& e);
  /// Evaluates with initial bindings.
  Result<Value> Eval(const ExprPtr& e, Environment& env);

  EvalStats& stats() { return stats_; }
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  const Database& db() const { return db_; }

  /// Resolves a base table through the per-query cache. Used by the
  /// bytecode compiler (compile.cc) to capture table extents into a
  /// program's constant pool at compile time.
  Result<Value> ResolveTable(const std::string& name) {
    return TableValue(name);
  }

  /// One per-worker clone for an external morsel driver (the shredded
  /// executor): same options with num_threads forced to 1 and tracing
  /// off, a snapshot of the table cache, fresh stats. The caller owns
  /// merging the clone's stats back before its enclosing span closes.
  std::unique_ptr<Evaluator> ForkWorker() const;

 private:
  Result<Value> EvalNode(const Expr& e, Environment& env);
  Result<Value> EvalBinary(const Expr& e, Environment& env);
  Result<Value> EvalQuantifier(const Expr& e, Environment& env);
  Result<Value> EvalAggregate(const Expr& e, Environment& env);
  Result<Value> EvalNest(const Expr& e, Environment& env);
  Result<Value> EvalUnnest(const Expr& e, Environment& env);
  Result<Value> EvalDivide(const Expr& e, Environment& env);
  Result<Value> EvalJoinLike(const Expr& e, Environment& env);

  // Nested-loop implementations (physical baseline).
  Result<Value> NestedLoopJoin(const Expr& e, const Value& l, const Value& r,
                               Environment& env);
  // Set-oriented implementations (physical.cc / physical_sortmerge.cc).
  // Each returns kUnsupported when its preconditions fail (no equi keys,
  // no matching index, ...); the dispatcher then falls back.
  Result<Value> HashJoin(const Expr& e, const Value& l, const Value& r,
                         Environment& env);
  Result<Value> SortMergeJoin(const Expr& e, const Value& l, const Value& r,
                              Environment& env);
  Result<Value> IndexJoin(const Expr& e, const Value& l, Environment& env);
  /// Hash implementation for membership predicates f(y) ∈ x.c: builds on
  /// the right key and probes with the left tuple's set elements — the
  /// access pattern behind the paper's Query 6 nestjoin.
  Result<Value> MembershipJoin(const Expr& e, const Value& l,
                               const Value& r, Environment& env);

  /// Fast path for the Section 6.2 set-valued-attribute join (PNHL);
  /// returns kUnsupported when `e` is not that map pattern.
  Result<Value> TryPnhlMap(const Expr& e, Environment& env);

  // ---- Morsel-driven parallel execution (num_threads > 1) -----------
  // Each parallel operator forks per-worker evaluator clones (own stats
  // and table cache, num_threads forced to 1 so nested operators stay
  // serial), runs morsels over the materialized input, and merges both
  // the per-morsel outputs (in morsel order — deterministic) and the
  // per-worker stats (sums — exact).

  /// The lazily created pool backing this evaluator's parallel
  /// operators; opts_.num_threads workers.
  ThreadPool& pool();
  /// Per-worker evaluator clones sharing the database and the current
  /// table cache snapshot.
  std::vector<std::unique_ptr<Evaluator>> ForkWorkers(int count);
  /// Adds every worker's counters into stats_.
  void MergeWorkerStats(
      const std::vector<std::unique_ptr<Evaluator>>& workers);

  /// Parallel morsels for map/select over a materialized set.
  Result<Value> ParallelMapSelect(const Expr& e, const Value& in,
                                  Environment& env, bool is_select);
  /// Partitioned parallel hash join: parallel build-key evaluation,
  /// hash-partitioned build (one partition per worker, scan order
  /// preserved inside buckets), then parallel probe morsels.
  Result<Value> ParallelHashJoin(const Expr& e, const Value& l,
                                 const Value& r, Environment& env,
                                 const struct EquiJoinKeys& keys);
  /// Parallel probe morsels for the membership join (build stays
  /// serial; the probe side dominates). `compile_worker` populates one
  /// JoinLambdas per worker frame (compiled via that worker's evaluator
  /// and environment) before the morsels run; `probe_one` receives the
  /// worker's frame.
  Result<Value> ParallelMembershipProbe(
      const Expr& e, const Value& l, Environment& env,
      const std::function<void(Evaluator& worker, Environment& wenv,
                               JoinLambdas* jl)>& compile_worker,
      const std::function<Status(Evaluator& worker, Environment& wenv,
                                 const Value& x, JoinLambdas& jl,
                                 std::vector<const Value*>* matches)>&
          probe_one);

  /// Shared per-left-tuple result assembly for the join family: given
  /// the matching right tuples (post-residual), appends the appropriate
  /// output to `out`. Used by the hash/sort-merge/index variants. The
  /// nestjoin inner function runs compiled when `inner` is ok.
  Status EmitJoinResult(const Expr& e, const Value& x,
                        const std::vector<const Value*>& matches,
                        Environment& env, std::vector<Value>* out,
                        CompiledLambda* inner = nullptr);

  Result<Value> TableValue(const std::string& name);

  /// Tuple concatenation surfacing attribute-name conflicts as a
  /// RuntimeError (Value::ConcatTuple treats them as internal errors).
  static Result<Value> ConcatTuples(const Value& l, const Value& r);

  const Database& db_;
  EvalOptions opts_;
  EvalStats stats_;
  std::map<std::string, Value> table_cache_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Convenience: evaluate a closed expression against `db` with default
/// options, aborting on error (for tests/examples where failure is a bug).
Value EvalOrDie(const Database& db, const ExprPtr& e);

}  // namespace n2j

#endif  // N2J_EXEC_EVAL_H_
