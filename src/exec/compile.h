#ifndef N2J_EXEC_COMPILE_H_
#define N2J_EXEC_COMPILE_H_

// One-pass compiler from ADL lambda bodies to the bytecode of
// bytecode.h. Each iterating operator compiles its lambda(s) once per
// invocation (per worker frame under morsel parallelism), then runs
// the program once per tuple. Compilation either covers the whole body
// or refuses it: a CompiledLambda in the fallback state makes the
// caller use the tree interpreter for that operator, so a partially
// supported body never mixes the two engines inside one evaluation.
//
// Covered forms: const, var, table, let, field access, tuple
// project/construct/concat/except, set construct, deref, unary, binary
// (with and/or short-circuit jumps), quantifiers, aggregates, and the
// expression-level set operators. Set iterators (map/select/project/
// nest/joins/...) nested inside a lambda body fall back — they carry
// their own operator-level machinery (PNHL recognition, parallelism,
// physical join choice) that a straight-line program cannot replicate.
//
// Free variables are captured by value at compile time: during one
// operator's loop the enclosing Environment only grows by the
// operator's own loop variables (which are compiled as parameters), so
// every other binding is loop-invariant. Unresolvable variables or
// tables fail the compile and the interpreter reproduces the exact
// runtime error (or lack of one, under short-circuiting) lazily.

#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"
#include "exec/bytecode.h"

namespace n2j {

class Environment;
class Evaluator;

/// Shape of the first element when it is a tuple — the compile-time
/// seed for a lambda parameter's field-access inline caches.
const TupleShape* FirstElemShape(const Value& set);

/// A lambda compiled for one operator invocation. Tri-state:
///   off      — Compile was never called (compiled evaluation disabled
///              or the operator input was empty); Run must not be used.
///   ok       — the body lowered fully; Run evaluates it.
///   fallback — the body contains a form the compiler does not cover;
///              the caller runs the interpreter per tuple and counts
///              EvalStats::interp_fallback_evals.
class CompiledLambda {
 public:
  /// Compiles `body` with `params` bound to slots 0..n-1. When the
  /// caller statically knows the tuple shape of the first parameter
  /// (e.g. from the first element of the input set), passing it seeds
  /// the field-access inline caches at compile time.
  void Compile(Evaluator& ev, const Expr& body,
               const std::vector<std::string>& params,
               const Environment& env,
               const TupleShape* param0_shape = nullptr);

  /// Compiles a join-key extractor: every key expression evaluated with
  /// `var` bound to the row, combined exactly like JoinKeyFromParts.
  void CompileKey(Evaluator& ev, const std::vector<ExprPtr>& keys,
                  const std::string& var, const Environment& env,
                  const TupleShape* param0_shape = nullptr);

  bool ok() const { return state_ == State::kOk; }
  bool fallback() const { return state_ == State::kFallback; }

  /// Evaluates over one tuple (two for join lambdas). Returns the
  /// result slot — the caller may move from it; it is rewritten by the
  /// next Run — or nullptr with the error in status(). Precondition:
  /// ok().
  Value* Run(const Value& p0) {
    vm_->BindParam(0, p0);
    return vm_->Run();
  }
  Value* Run(const Value& p0, const Value& p1) {
    vm_->BindParam(0, p0);
    vm_->BindParam(1, p1);
    return vm_->Run();
  }
  const Status& status() const { return vm_->status(); }

  const Program* program() const { return prog_.get(); }

 private:
  enum class State { kOff, kOk, kFallback };

  void Finish(Evaluator& ev, Program prog, uint32_t ret_slot);

  State state_ = State::kOff;
  std::unique_ptr<Program> prog_;
  std::unique_ptr<Vm> vm_;
};

/// A lambda compiled for column-batch evaluation: the same Program a
/// CompiledLambda would build, executed by the BatchVm over parameter
/// columns instead of one register frame per tuple. Same tri-state and
/// whole-body-or-refuse discipline; a fallback makes the caller run
/// that operator tuple-at-a-time. The vectorized shredded executor
/// compiles every range predicate, join key, and scalar output of a
/// flat node through this before committing to the batch pipeline.
class CompiledBatchLambda {
 public:
  /// Batch sibling of CompiledLambda::Compile; params occupy parameter
  /// columns 0..n-1.
  void Compile(Evaluator& ev, const Expr& body,
               const std::vector<std::string>& params,
               const Environment& env,
               const TupleShape* param0_shape = nullptr);

  /// Batch sibling of CompiledLambda::CompileKey, generalized to
  /// multi-variable key expressions (probe keys reference any bound
  /// variable of the pipeline, not just the range variable).
  void CompileKey(Evaluator& ev, const std::vector<ExprPtr>& keys,
                  const std::vector<std::string>& params,
                  const Environment& env,
                  const TupleShape* param0_shape = nullptr);

  bool ok() const { return state_ == State::kOk; }
  bool fallback() const { return state_ == State::kFallback; }

  /// The column frame. Fill ParamColumn(0..n-1), Run(n), read
  /// ResultColumn(). Precondition: ok().
  BatchVm& vm() { return *vm_; }
  const Status& status() const { return vm_->status(); }
  const Program* program() const { return prog_.get(); }

 private:
  enum class State { kOff, kOk, kFallback };

  void Finish(Evaluator& ev, Program prog, uint32_t ret_slot);

  State state_ = State::kOff;
  std::unique_ptr<Program> prog_;
  std::unique_ptr<BatchVm> vm_;
};

/// The compiled fragments one join-family operator invocation can use.
/// Parallel join operators build one per worker frame so every worker
/// owns its programs (register frames and inline caches are not
/// shareable across threads).
struct JoinLambdas {
  CompiledLambda left_key;   // key over the left/probe variable
  CompiledLambda right_key;  // key over the right/build variable
  CompiledLambda elem_key;   // membership-join element key k(v)
  CompiledLambda residual;   // residual conjunction p(x, y)
  CompiledLambda inner;      // nestjoin inner function f(x, y)
};

}  // namespace n2j

#endif  // N2J_EXEC_COMPILE_H_
