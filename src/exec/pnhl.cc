#include "exec/pnhl.h"

#include <unordered_map>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/bytecode.h"
#include "obs/trace.h"

namespace n2j {

namespace {

/// Drops the (duplicated) join key field of an inner tuple before
/// concatenating it to a set element — natural-join convention, as in the
/// paper's `x.parts * PART` example where pid appears once. When the key
/// names differ (params.drop_inner_key == false) the tuple is kept whole.
Value InnerPayload(const Value& t, const PnhlParams& params) {
  if (!params.drop_inner_key) return t;
  return t.WithoutField(params.inner_key);
}

Status CheckOperands(const Value& outer, const Value& inner,
                     const PnhlParams& params) {
  if (!outer.is_set() || !inner.is_set()) {
    return Status::InvalidArgument("PNHL operands must be sets");
  }
  for (const Value& x : outer.elements()) {
    if (!x.is_tuple()) {
      return Status::InvalidArgument("outer element is not a tuple");
    }
    const Value* attr = x.FindField(params.set_attr);
    if (attr == nullptr || !attr->is_set()) {
      return Status::InvalidArgument("outer tuples need set attribute '" +
                                     params.set_attr + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Value> PnhlJoin(const Value& outer, const Value& inner,
                       const PnhlParams& params, PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  // Phase 0: split the inner (build) table into segments that fit the
  // memory budget. In PNHL only the flat table can be the build table.
  // A row is admitted while the running total stays within budget; the
  // comparison is phrased subtraction-side so `bytes + sz` can never
  // overflow size_t. A row larger than the whole budget still gets a
  // (singleton) segment — segments are never empty.
  const std::vector<Value>& build = inner.elements();
  std::vector<std::pair<size_t, size_t>> segments;  // [begin, end)
  size_t begin = 0;
  size_t bytes = 0;
  for (size_t i = 0; i < build.size(); ++i) {
    size_t sz = build[i].ApproxBytes();
    if (bytes > 0 && (bytes >= params.memory_budget ||
                      sz > params.memory_budget - bytes)) {
      segments.emplace_back(begin, i);
      begin = i;
      bytes = 0;
    }
    bytes += sz;
  }
  segments.emplace_back(begin, build.size());
  st.partitions = static_cast<uint32_t>(segments.size());

  // Per-segment pass: build a hash table over the segment, probe every
  // outer tuple's set elements against it. Segments are independent, so
  // with num_threads > 1 they run as parallel tasks; each writes its own
  // partial-result and stats slots, merged in segment order below, which
  // makes the output and counters identical to the serial loop.
  const std::vector<Value>& xs = outer.elements();
  std::vector<std::vector<std::vector<Value>>> partial(
      segments.size(), std::vector<std::vector<Value>>(xs.size()));
  std::vector<PnhlStats> seg_stats(segments.size());

  auto run_segment = [&](size_t s) -> Status {
    const auto& [seg_begin, seg_end] = segments[s];
    PnhlStats& sst = seg_stats[s];
    // One-entry field caches (bytecode.h): rows of one operand share an
    // interned shape, so the name lookup resolves to an index once per
    // shape instead of once per row. Per-segment, so each parallel task
    // owns its cursors.
    FieldCursor inner_key_at;
    FieldCursor set_attr_at;
    FieldCursor elem_key_at;
    std::unordered_map<Value, std::vector<size_t>, ValueHash> table;
    table.reserve(seg_end - seg_begin);
    for (size_t i = seg_begin; i < seg_end; ++i) {
      const Value* key = inner_key_at.Find(build[i], params.inner_key);
      if (key == nullptr) {
        return Status::InvalidArgument("inner tuples need key field '" +
                                       params.inner_key + "'");
      }
      ++sst.build_inserts;
      table[*key].push_back(i);
    }
    if (table.size() > sst.peak_table_entries) {
      sst.peak_table_entries = table.size();
    }
    // Probe the outer operand (its clustered set elements) against the
    // segment, producing partial results that are merged positionally.
    for (size_t xi = 0; xi < xs.size(); ++xi) {
      ++sst.probe_tuples;
      const Value& attr = *set_attr_at.Find(xs[xi], params.set_attr);
      for (const Value& e : attr.elements()) {
        ++sst.probe_elements;
        if (!e.is_tuple()) {
          return Status::InvalidArgument("set element is not a tuple");
        }
        const Value* key = elem_key_at.Find(e, params.elem_key);
        if (key == nullptr) {
          return Status::InvalidArgument("set elements need key field '" +
                                         params.elem_key + "'");
        }
        auto it = table.find(*key);
        if (it == table.end()) continue;
        for (size_t bi : it->second) {
          ++sst.matches;
          partial[s][xi].push_back(
              e.ConcatTuple(InnerPayload(build[bi], params)));
        }
      }
    }
    return Status::OK();
  };

  if (params.num_threads > 1 && segments.size() > 1) {
    ThreadPool tp(params.num_threads);
    if (params.trace != nullptr) {
      TraceCollector* tc = params.trace;
      tp.set_morsel_sink([tc](int w, size_t m, const char* phase,
                              int64_t t0, int64_t t1) {
        tc->AddWorkerSpan(w, m, phase, t0, t1);
      });
    }
    tp.set_morsel_phase("pnhl/segment");
    N2J_RETURN_IF_ERROR(tp.RunMorsels(
        segments.size(),
        [&](int /*worker*/, size_t s) { return run_segment(s); }));
  } else {
    for (size_t s = 0; s < segments.size(); ++s) {
      int64_t t0 = params.trace != nullptr ? MonotonicNanos() : 0;
      N2J_RETURN_IF_ERROR(run_segment(s));
      if (params.trace != nullptr) {
        params.trace->AddWorkerSpan(0, s, "pnhl/segment", t0,
                                    MonotonicNanos());
      }
    }
  }
  for (const PnhlStats& sst : seg_stats) {
    st.build_inserts += sst.build_inserts;
    st.probe_tuples += sst.probe_tuples;
    st.probe_elements += sst.probe_elements;
    st.matches += sst.matches;
    if (sst.peak_table_entries > st.peak_table_entries) {
      st.peak_table_entries = sst.peak_table_entries;
    }
  }

  // Phase 2: merge partial results (in segment order) into the final
  // nested relation.
  std::vector<Value> out;
  out.reserve(xs.size());
  for (size_t xi = 0; xi < xs.size(); ++xi) {
    std::vector<Value> joined;
    for (size_t s = 0; s < segments.size(); ++s) {
      for (Value& v : partial[s][xi]) joined.push_back(std::move(v));
    }
    out.push_back(xs[xi].ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(joined)))}));
  }
  return Value::Set(std::move(out));
}

Result<Value> UnnestJoinNest(const Value& outer, const Value& inner,
                             const PnhlParams& params, bool keep_dangling,
                             PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  // Build a hash table over the whole inner table.
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> table;
  table.reserve(inner.set_size());
  for (const Value& t : inner.elements()) {
    const Value* key = t.FindField(params.inner_key);
    if (key == nullptr) {
      return Status::InvalidArgument("inner tuples need key field '" +
                                     params.inner_key + "'");
    }
    ++st.build_inserts;
    table[*key].push_back(&t);
  }

  // Unnest + probe: every (x, element) pair carries a full copy of x's
  // flat attributes — this duplication is the cost the paper's
  // "unnest-join-nest processing method" pays and PNHL avoids.
  const std::vector<Value>& xs = outer.elements();
  std::unordered_map<Value, std::vector<Value>, ValueHash> groups;
  std::vector<const Value*> order;
  order.reserve(xs.size());
  std::unordered_map<Value, const Value*, ValueHash> originals;
  for (const Value& x : xs) {
    Value key = x.WithoutField(params.set_attr);
    auto [it, inserted] = originals.try_emplace(key, &x);
    (void)it;
    if (inserted && keep_dangling) order.push_back(&x);
    const Value& attr = *x.FindField(params.set_attr);
    for (const Value& e : attr.elements()) {
      ++st.probe_elements;
      const Value* ekey = e.FindField(params.elem_key);
      if (ekey == nullptr) {
        return Status::InvalidArgument("set elements need key field '" +
                                       params.elem_key + "'");
      }
      auto hit = table.find(*ekey);
      if (hit == table.end()) continue;
      for (const Value* t : hit->second) {
        ++st.matches;
        groups[key].push_back(
            e.ConcatTuple(InnerPayload(*t, params)));
        if (!keep_dangling && groups[key].size() == 1) {
          order.push_back(&x);
        }
      }
    }
    ++st.probe_tuples;
  }

  // Nest phase: regroup per outer tuple.
  std::vector<Value> out;
  out.reserve(order.size());
  for (const Value* x : order) {
    Value key = x->WithoutField(params.set_attr);
    auto it = groups.find(key);
    std::vector<Value> members =
        it == groups.end() ? std::vector<Value>() : it->second;
    out.push_back(x->ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(members)))}));
  }
  return Value::Set(std::move(out));
}

Result<Value> NestedLoopSetJoin(const Value& outer, const Value& inner,
                                const PnhlParams& params, PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  std::vector<Value> out;
  out.reserve(outer.set_size());
  FieldCursor set_attr_at;
  FieldCursor elem_key_at;
  FieldCursor inner_key_at;
  for (const Value& x : outer.elements()) {
    ++st.probe_tuples;
    const Value& attr = *set_attr_at.Find(x, params.set_attr);
    std::vector<Value> joined;
    for (const Value& e : attr.elements()) {
      ++st.probe_elements;
      const Value* ekey = elem_key_at.Find(e, params.elem_key);
      if (ekey == nullptr) {
        return Status::InvalidArgument("set elements need key field '" +
                                       params.elem_key + "'");
      }
      for (const Value& t : inner.elements()) {
        const Value* tkey = inner_key_at.Find(t, params.inner_key);
        if (tkey == nullptr) {
          return Status::InvalidArgument("inner tuples need key field '" +
                                         params.inner_key + "'");
        }
        if (*ekey == *tkey) {
          ++st.matches;
          joined.push_back(e.ConcatTuple(InnerPayload(t, params)));
        }
      }
    }
    out.push_back(x.ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(joined)))}));
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
