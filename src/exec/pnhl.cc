#include "exec/pnhl.h"

#include <unordered_map>

#include "common/status.h"

namespace n2j {

namespace {

/// Drops the (duplicated) join key field of an inner tuple before
/// concatenating it to a set element — natural-join convention, as in the
/// paper's `x.parts * PART` example where pid appears once. When the key
/// names differ (params.drop_inner_key == false) the tuple is kept whole.
Value InnerPayload(const Value& t, const PnhlParams& params) {
  if (!params.drop_inner_key) return t;
  std::vector<std::string> keep;
  for (const Field& f : t.fields()) {
    if (f.name != params.inner_key) keep.push_back(f.name);
  }
  return t.ProjectTuple(keep);
}

Status CheckOperands(const Value& outer, const Value& inner,
                     const PnhlParams& params) {
  if (!outer.is_set() || !inner.is_set()) {
    return Status::InvalidArgument("PNHL operands must be sets");
  }
  for (const Value& x : outer.elements()) {
    if (!x.is_tuple()) {
      return Status::InvalidArgument("outer element is not a tuple");
    }
    const Value* attr = x.FindField(params.set_attr);
    if (attr == nullptr || !attr->is_set()) {
      return Status::InvalidArgument("outer tuples need set attribute '" +
                                     params.set_attr + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Value> PnhlJoin(const Value& outer, const Value& inner,
                       const PnhlParams& params, PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  // Phase 0: split the inner (build) table into segments that fit the
  // memory budget. In PNHL only the flat table can be the build table.
  const std::vector<Value>& build = inner.elements();
  std::vector<std::pair<size_t, size_t>> segments;  // [begin, end)
  size_t begin = 0;
  size_t bytes = 0;
  for (size_t i = 0; i < build.size(); ++i) {
    size_t sz = build[i].ApproxBytes();
    if (bytes > 0 && bytes + sz > params.memory_budget) {
      segments.emplace_back(begin, i);
      begin = i;
      bytes = 0;
    }
    bytes += sz;
  }
  segments.emplace_back(begin, build.size());
  st.partitions = static_cast<uint32_t>(segments.size());

  // Partial results: per outer tuple, the accumulating joined set.
  const std::vector<Value>& xs = outer.elements();
  std::vector<std::vector<Value>> partial(xs.size());

  for (const auto& [seg_begin, seg_end] : segments) {
    // Build a hash table over this segment of the flat table.
    std::unordered_map<Value, std::vector<size_t>, ValueHash> table;
    for (size_t i = seg_begin; i < seg_end; ++i) {
      const Value* key = build[i].FindField(params.inner_key);
      if (key == nullptr) {
        return Status::InvalidArgument("inner tuples need key field '" +
                                       params.inner_key + "'");
      }
      ++st.build_inserts;
      table[*key].push_back(i);
    }
    // Probe the outer operand (its clustered set elements) against the
    // segment, producing partial results that are merged positionally.
    for (size_t xi = 0; xi < xs.size(); ++xi) {
      ++st.probe_tuples;
      const Value& attr = *xs[xi].FindField(params.set_attr);
      for (const Value& e : attr.elements()) {
        ++st.probe_elements;
        if (!e.is_tuple()) {
          return Status::InvalidArgument("set element is not a tuple");
        }
        const Value* key = e.FindField(params.elem_key);
        if (key == nullptr) {
          return Status::InvalidArgument("set elements need key field '" +
                                         params.elem_key + "'");
        }
        auto it = table.find(*key);
        if (it == table.end()) continue;
        for (size_t bi : it->second) {
          ++st.matches;
          partial[xi].push_back(
              e.ConcatTuple(InnerPayload(build[bi], params)));
        }
      }
    }
  }

  // Phase 2: merge partial results into the final nested relation.
  std::vector<Value> out;
  out.reserve(xs.size());
  for (size_t xi = 0; xi < xs.size(); ++xi) {
    out.push_back(xs[xi].ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(partial[xi])))}));
  }
  return Value::Set(std::move(out));
}

Result<Value> UnnestJoinNest(const Value& outer, const Value& inner,
                             const PnhlParams& params, bool keep_dangling,
                             PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  // Build a hash table over the whole inner table.
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> table;
  for (const Value& t : inner.elements()) {
    const Value* key = t.FindField(params.inner_key);
    if (key == nullptr) {
      return Status::InvalidArgument("inner tuples need key field '" +
                                     params.inner_key + "'");
    }
    ++st.build_inserts;
    table[*key].push_back(&t);
  }

  // Unnest + probe: every (x, element) pair carries a full copy of x's
  // flat attributes — this duplication is the cost the paper's
  // "unnest-join-nest processing method" pays and PNHL avoids.
  const std::vector<Value>& xs = outer.elements();
  std::unordered_map<Value, std::vector<Value>, ValueHash> groups;
  std::vector<const Value*> order;
  order.reserve(xs.size());
  std::unordered_map<Value, const Value*, ValueHash> originals;
  for (const Value& x : xs) {
    std::vector<std::string> rest;
    for (const Field& f : x.fields()) {
      if (f.name != params.set_attr) rest.push_back(f.name);
    }
    Value key = x.ProjectTuple(rest);
    auto [it, inserted] = originals.try_emplace(key, &x);
    (void)it;
    if (inserted && keep_dangling) order.push_back(&x);
    const Value& attr = *x.FindField(params.set_attr);
    for (const Value& e : attr.elements()) {
      ++st.probe_elements;
      const Value* ekey = e.FindField(params.elem_key);
      if (ekey == nullptr) {
        return Status::InvalidArgument("set elements need key field '" +
                                       params.elem_key + "'");
      }
      auto hit = table.find(*ekey);
      if (hit == table.end()) continue;
      for (const Value* t : hit->second) {
        ++st.matches;
        groups[key].push_back(
            e.ConcatTuple(InnerPayload(*t, params)));
        if (!keep_dangling && groups[key].size() == 1) {
          order.push_back(&x);
        }
      }
    }
    ++st.probe_tuples;
  }

  // Nest phase: regroup per outer tuple.
  std::vector<Value> out;
  out.reserve(order.size());
  for (const Value* x : order) {
    std::vector<std::string> rest;
    for (const Field& f : x->fields()) {
      if (f.name != params.set_attr) rest.push_back(f.name);
    }
    Value key = x->ProjectTuple(rest);
    auto it = groups.find(key);
    std::vector<Value> members =
        it == groups.end() ? std::vector<Value>() : it->second;
    out.push_back(x->ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(members)))}));
  }
  return Value::Set(std::move(out));
}

Result<Value> NestedLoopSetJoin(const Value& outer, const Value& inner,
                                const PnhlParams& params, PnhlStats* stats) {
  N2J_RETURN_IF_ERROR(CheckOperands(outer, inner, params));
  PnhlStats local;
  PnhlStats& st = stats != nullptr ? *stats : local;
  st = PnhlStats();

  std::vector<Value> out;
  out.reserve(outer.set_size());
  for (const Value& x : outer.elements()) {
    ++st.probe_tuples;
    const Value& attr = *x.FindField(params.set_attr);
    std::vector<Value> joined;
    for (const Value& e : attr.elements()) {
      ++st.probe_elements;
      const Value* ekey = e.FindField(params.elem_key);
      if (ekey == nullptr) {
        return Status::InvalidArgument("set elements need key field '" +
                                       params.elem_key + "'");
      }
      for (const Value& t : inner.elements()) {
        const Value* tkey = t.FindField(params.inner_key);
        if (tkey == nullptr) {
          return Status::InvalidArgument("inner tuples need key field '" +
                                         params.inner_key + "'");
        }
        if (*ekey == *tkey) {
          ++st.matches;
          joined.push_back(e.ConcatTuple(InnerPayload(t, params)));
        }
      }
    }
    out.push_back(x.ExceptUpdate(
        {Field(params.set_attr, Value::Set(std::move(joined)))}));
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
