#include "exec/eval.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/str_util.h"
#include "exec/bytecode.h"
#include "exec/compile.h"
#include "exec/plan.h"
#include "obs/trace.h"

namespace n2j {

namespace {

// Index-gather tuple projection for per-shape cached index vectors.
Value GatherTuple(const TupleShape* target, const std::vector<int>& idx,
                  const Value& x) {
  std::vector<Value> vals;
  vals.reserve(idx.size());
  const std::vector<Value>& src = x.tuple_values();
  for (int i : idx) vals.push_back(src[static_cast<size_t>(i)]);
  return Value::TupleFromShape(target, std::move(vals));
}

// One row per EvalStats counter, in declaration order. Merge, Subtract,
// ToString, Compact, and the query-log serializer (via EvalStatsFields)
// all iterate this table so a counter added here is automatically
// merged, diffed, printed, and logged.
using StatField = EvalStatsField;
constexpr StatField kStatFields[] = {
    {"tuples_scanned", "scanned", &EvalStats::tuples_scanned},
    {"predicate_evals", "preds", &EvalStats::predicate_evals},
    {"hash_inserts", "h_ins", &EvalStats::hash_inserts},
    {"hash_probes", "h_probe", &EvalStats::hash_probes},
    {"rows_sorted", "sorted", &EvalStats::rows_sorted},
    {"index_probes", "idx", &EvalStats::index_probes},
    {"pnhl_partitions", "pnhl", &EvalStats::pnhl_partitions},
    {"derefs", "derefs", &EvalStats::derefs},
    {"nodes_evaluated", "nodes", &EvalStats::nodes_evaluated},
    {"compiled_evals", "compiled", &EvalStats::compiled_evals},
    {"interp_fallback_evals", "fallback", &EvalStats::interp_fallback_evals},
    {"joins_nested_loop", "nl_joins", &EvalStats::joins_nested_loop},
    {"joins_hash", "hash_joins", &EvalStats::joins_hash},
    {"joins_sortmerge", "sm_joins", &EvalStats::joins_sortmerge},
    {"joins_index", "idx_joins", &EvalStats::joins_index},
    {"joins_membership", "mem_joins", &EvalStats::joins_membership},
    {"vec_batches", "v_batch", &EvalStats::vec_batches},
    {"vec_pipelines", "v_pipe", &EvalStats::vec_pipelines},
    {"vec_fallbacks", "v_fall", &EvalStats::vec_fallbacks},
};

}  // namespace

const EvalStatsField* EvalStatsFields(size_t* count) {
  *count = sizeof(kStatFields) / sizeof(kStatFields[0]);
  return kStatFields;
}

void EvalStats::Merge(const EvalStats& other) {
  for (const StatField& f : kStatFields) this->*f.member += other.*f.member;
}

void EvalStats::Subtract(const EvalStats& other) {
  for (const StatField& f : kStatFields) this->*f.member -= other.*f.member;
}

std::string EvalStats::ToString() const {
  size_t width = 0;
  for (const StatField& f : kStatFields) {
    if (this->*f.member != 0) width = std::max(width, std::strlen(f.name));
  }
  if (width == 0) return "(all counters zero)";
  std::string out;
  for (const StatField& f : kStatFields) {
    uint64_t v = this->*f.member;
    if (v == 0) continue;
    out += f.name;
    out.append(width + 2 - std::strlen(f.name), ' ');
    out += StrFormat("%llu\n", static_cast<unsigned long long>(v));
  }
  return out;
}

std::string EvalStats::Compact() const {
  std::string out;
  for (const StatField& f : kStatFields) {
    uint64_t v = this->*f.member;
    if (v == 0) continue;
    if (!out.empty()) out += ' ';
    out += StrFormat("%s=%llu", f.short_name,
                     static_cast<unsigned long long>(v));
  }
  return out;
}

Result<Value> Evaluator::Eval(const ExprPtr& e) {
  Environment env;
  return Eval(e, env);
}

Result<Value> Evaluator::Eval(const ExprPtr& e, Environment& env) {
  // The root span opens only at the outermost entry — physical join
  // operators re-enter Eval for key expressions, and those evaluations
  // belong to the already-open join span.
  if (opts_.trace != nullptr && !opts_.trace->InSpan()) {
    OpSpan span(opts_.trace, stats_, "query");
    Result<Value> r = EvalNode(*e, env);
    span.RowsOut(r);
    return r;
  }
  return EvalNode(*e, env);
}

Result<Value> Evaluator::ConcatTuples(const Value& l, const Value& r) {
  return ConcatTuplesChecked(l, r);
}

ThreadPool& Evaluator::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
    if (opts_.trace != nullptr) {
      TraceCollector* tc = opts_.trace;
      pool_->set_morsel_sink([tc](int w, size_t m, const char* phase,
                                  int64_t t0, int64_t t1) {
        tc->AddWorkerSpan(w, m, phase, t0, t1);
      });
    }
  }
  return *pool_;
}

std::unique_ptr<Evaluator> Evaluator::ForkWorker() const {
  EvalOptions worker_opts = opts_;
  worker_opts.num_threads = 1;  // nested operators stay serial
  worker_opts.trace = nullptr;  // counters merge into the coordinator span
  auto w = std::make_unique<Evaluator>(db_, worker_opts);
  w->table_cache_ = table_cache_;
  return w;
}

std::vector<std::unique_ptr<Evaluator>> Evaluator::ForkWorkers(int count) {
  std::vector<std::unique_ptr<Evaluator>> workers;
  workers.reserve(static_cast<size_t>(count));
  EvalOptions worker_opts = opts_;
  worker_opts.num_threads = 1;  // nested operators stay serial
  // Workers never record spans: the collector is single-threaded and
  // their counters reach the coordinator's span via MergeWorkerStats,
  // which every parallel operator calls before its span closes.
  worker_opts.trace = nullptr;
  for (int i = 0; i < count; ++i) {
    auto w = std::make_unique<Evaluator>(db_, worker_opts);
    w->table_cache_ = table_cache_;
    workers.push_back(std::move(w));
  }
  return workers;
}

void Evaluator::MergeWorkerStats(
    const std::vector<std::unique_ptr<Evaluator>>& workers) {
  for (const auto& w : workers) stats_.Merge(w->stats_);
}

Result<Value> Evaluator::ParallelMapSelect(const Expr& e, const Value& in,
                                           Environment& env,
                                           bool is_select) {
  const std::vector<Value>& xs = in.elements();
  const size_t n = xs.size();
  ThreadPool& tp = pool();
  tp.set_morsel_phase(is_select ? "select" : "map");
  const int num_workers = tp.num_workers();
  std::vector<std::unique_ptr<Evaluator>> workers = ForkWorkers(num_workers);
  std::vector<Environment> envs(static_cast<size_t>(num_workers), env);
  // One compiled frame per worker: programs own mutable register files
  // and inline caches, so workers never share one.
  std::vector<CompiledLambda> lambdas(static_cast<size_t>(num_workers));
  if (opts_.compiled && n > 0) {
    const TupleShape* shape0 = FirstElemShape(in);
    for (int w = 0; w < num_workers; ++w) {
      lambdas[static_cast<size_t>(w)].Compile(
          *workers[static_cast<size_t>(w)], *e.child(1), {e.var()},
          envs[static_cast<size_t>(w)], shape0);
    }
  }

  size_t morsel_size = PickMorselSize(n, num_workers);
  std::vector<Value> out(n);   // map results, slot per input element
  std::vector<char> keep(n, 0);  // select verdicts
  Status s = tp.RunMorsels(
      NumMorsels(n, morsel_size), [&](int w, size_t m) -> Status {
        Evaluator& ev = *workers[static_cast<size_t>(w)];
        Environment& wenv = envs[static_cast<size_t>(w)];
        CompiledLambda& cl = lambdas[static_cast<size_t>(w)];
        MorselRange range = MorselAt(n, morsel_size, m);
        for (size_t i = range.begin; i < range.end; ++i) {
          ++ev.stats_.tuples_scanned;
          if (is_select) ++ev.stats_.predicate_evals;
          if (cl.ok()) {
            Value* r = cl.Run(xs[i]);
            if (r == nullptr) return cl.status();
            if (is_select) {
              if (!r->is_bool()) {
                return Status::RuntimeError(
                    "selection predicate not boolean");
              }
              keep[i] = r->bool_value() ? 1 : 0;
            } else {
              out[i] = std::move(*r);
            }
            continue;
          }
          if (cl.fallback()) ++ev.stats_.interp_fallback_evals;
          wenv.Push(e.var(), xs[i]);
          Result<Value> r = ev.EvalNode(*e.child(1), wenv);
          wenv.Pop();
          if (!r.ok()) return r.status();
          if (is_select) {
            if (!r->is_bool()) {
              return Status::RuntimeError("selection predicate not boolean");
            }
            keep[i] = r->bool_value() ? 1 : 0;
          } else {
            out[i] = std::move(*r);
          }
        }
        return Status::OK();
      });
  MergeWorkerStats(workers);
  N2J_RETURN_IF_ERROR(s);
  if (is_select) {
    std::vector<Value> selected;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) selected.push_back(xs[i]);
    }
    // Input order is canonical and selection preserves it.
    return Value::SetFromCanonical(std::move(selected));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::TableValue(const std::string& name) {
  auto it = table_cache_.find(name);
  if (it != table_cache_.end()) return it->second;
  const Table* t = db_.FindTable(name);
  if (t == nullptr) return Status::NotFound("no such table: " + name);
  Value v = t->AsSetValue();
  table_cache_.emplace(name, v);
  return v;
}

Result<Value> Evaluator::EvalNode(const Expr& e, Environment& env) {
  ++stats_.nodes_evaluated;
  switch (e.kind()) {
    case ExprKind::kConst:
      return e.const_value();

    case ExprKind::kVar: {
      const Value* v = env.Lookup(e.name());
      if (v == nullptr) {
        return Status::RuntimeError("unbound variable: " + e.name());
      }
      return *v;
    }

    case ExprKind::kGetTable:
      return TableValue(e.name());

    case ExprKind::kLet: {
      N2J_ASSIGN_OR_RETURN(Value def, EvalNode(*e.child(0), env));
      env.Push(e.var(), std::move(def));
      Result<Value> body = EvalNode(*e.child(1), env);
      env.Pop();
      return body;
    }

    case ExprKind::kFieldAccess: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      // Implicit pointer traversal: accessing a field through a reference
      // dereferences the oid first (path expressions, Section 6.2).
      if (in.is_oid()) {
        ++stats_.derefs;
        N2J_ASSIGN_OR_RETURN(in, db_.Deref(in.oid_value()));
      }
      if (!in.is_tuple()) {
        return Status::RuntimeError("field access '" + e.name() +
                                    "' on non-tuple value");
      }
      const Value* f = in.FindField(e.name());
      if (f == nullptr) {
        return Status::RuntimeError("no field '" + e.name() + "' in " +
                                    in.ToString());
      }
      return *f;
    }

    case ExprKind::kTupleProject: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_tuple()) {
        return Status::RuntimeError("tuple projection on non-tuple");
      }
      for (const std::string& n : e.names()) {
        if (in.FindField(n) == nullptr) {
          return Status::RuntimeError("no field '" + n + "' in tuple");
        }
      }
      return in.ProjectTuple(e.names());
    }

    case ExprKind::kTupleConstruct: {
      std::vector<Field> fields;
      fields.reserve(e.names().size());
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*e.child(i), env));
        fields.emplace_back(e.names()[i], std::move(v));
      }
      return Value::Tuple(std::move(fields));
    }

    case ExprKind::kTupleConcat: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      return ConcatTuples(l, r);
    }

    case ExprKind::kExcept: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_tuple()) {
        return Status::RuntimeError("except on non-tuple");
      }
      std::vector<Field> updates;
      updates.reserve(e.names().size());
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*e.child(i + 1), env));
        updates.emplace_back(e.names()[i], std::move(v));
      }
      return in.ExceptUpdate(updates);
    }

    case ExprKind::kSetConstruct: {
      std::vector<Value> elems;
      elems.reserve(e.num_children());
      for (const ExprPtr& c : e.children()) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*c, env));
        elems.push_back(std::move(v));
      }
      return Value::Set(std::move(elems));
    }

    case ExprKind::kDeref: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_oid()) {
        return Status::RuntimeError("deref on non-oid value");
      }
      ++stats_.derefs;
      return db_.Deref(in.oid_value());
    }

    case ExprKind::kUnary: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      return ApplyUnOp(e.un_op(), in);
    }

    case ExprKind::kBinary:
      return EvalBinary(e, env);

    case ExprKind::kQuantifier:
      return EvalQuantifier(e, env);

    case ExprKind::kAggregate:
      return EvalAggregate(e, env);

    case ExprKind::kMap: {
      if (opts_.enable_pnhl) {
        Result<Value> fast = TryPnhlMap(e, env);
        if (fast.ok()) return fast;
        if (fast.status().code() != StatusCode::kUnsupported) {
          return fast.status();
        }
      }
      OpSpan span(opts_.trace, stats_, "map");
      AnnotateEstRows(opts_.plan, e, &span);
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("map over non-set");
      span.RowsIn(in.set_size());
      Result<Value> result = [&]() -> Result<Value> {
        if (opts_.num_threads > 1 && in.set_size() > 1) {
          return ParallelMapSelect(e, in, env, /*is_select=*/false);
        }
        CompiledLambda body;
        if (opts_.compiled && in.set_size() > 0) {
          body.Compile(*this, *e.child(1), {e.var()}, env,
                       FirstElemShape(in));
        }
        std::vector<Value> out;
        out.reserve(in.set_size());
        if (body.ok()) {
          for (const Value& x : in.elements()) {
            ++stats_.tuples_scanned;
            Value* r = body.Run(x);
            if (r == nullptr) return body.status();
            out.push_back(std::move(*r));
          }
          return Value::Set(std::move(out));
        }
        for (const Value& x : in.elements()) {
          ++stats_.tuples_scanned;
          if (body.fallback()) ++stats_.interp_fallback_evals;
          env.Push(e.var(), x);
          Result<Value> r = EvalNode(*e.child(1), env);
          env.Pop();
          if (!r.ok()) return r.status();
          out.push_back(std::move(r).value());
        }
        return Value::Set(std::move(out));
      }();
      span.RowsOut(result);
      return result;
    }

    case ExprKind::kSelect: {
      OpSpan span(opts_.trace, stats_, "select");
      AnnotateEstRows(opts_.plan, e, &span);
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("select over non-set");
      span.RowsIn(in.set_size());
      Result<Value> result = [&]() -> Result<Value> {
        if (opts_.num_threads > 1 && in.set_size() > 1) {
          return ParallelMapSelect(e, in, env, /*is_select=*/true);
        }
        CompiledLambda pred;
        if (opts_.compiled && in.set_size() > 0) {
          pred.Compile(*this, *e.child(1), {e.var()}, env,
                       FirstElemShape(in));
        }
        std::vector<Value> out;
        if (pred.ok()) {
          for (const Value& x : in.elements()) {
            ++stats_.tuples_scanned;
            ++stats_.predicate_evals;
            Value* r = pred.Run(x);
            if (r == nullptr) return pred.status();
            if (!r->is_bool()) {
              return Status::RuntimeError("selection predicate not boolean");
            }
            if (r->bool_value()) out.push_back(x);
          }
          return Value::SetFromCanonical(std::move(out));
        }
        for (const Value& x : in.elements()) {
          ++stats_.tuples_scanned;
          ++stats_.predicate_evals;
          if (pred.fallback()) ++stats_.interp_fallback_evals;
          env.Push(e.var(), x);
          Result<Value> r = EvalNode(*e.child(1), env);
          env.Pop();
          if (!r.ok()) return r.status();
          if (!r->is_bool()) {
            return Status::RuntimeError("selection predicate not boolean");
          }
          if (r->bool_value()) out.push_back(x);
        }
        return Value::SetFromCanonical(std::move(out));
      }();
      span.RowsOut(result);
      return result;
    }

    case ExprKind::kProject: {
      OpSpan span(opts_.trace, stats_, "project");
      AnnotateEstRows(opts_.plan, e, &span);
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("project over non-set");
      span.RowsIn(in.set_size());
      std::vector<Value> out;
      out.reserve(in.set_size());
      // Per-shape projection cache: the name list resolves to source
      // indices once per observed input shape, not per row. Semantics
      // (including the identity fast path and the first-missing-field
      // error) mirror the per-row FindField + ProjectTuple loop.
      const TupleShape* target = nullptr;
      const TupleShape* last_shape = nullptr;
      std::vector<int> idx;
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        if (!x.is_tuple()) {
          return Status::RuntimeError("projection element not a tuple");
        }
        if (x.tuple_shape() != last_shape) {
          last_shape = x.tuple_shape();
          if (target == nullptr) target = TupleShape::Intern(e.names());
          idx.clear();
          for (const std::string& n : e.names()) {
            int i = last_shape->IndexOf(n);
            if (i < 0) {
              return Status::RuntimeError("no field '" + n +
                                          "' in projection input");
            }
            idx.push_back(i);
          }
        }
        if (last_shape == target) {
          out.push_back(x);
        } else {
          out.push_back(GatherTuple(target, idx, x));
        }
      }
      span.RowsOut(static_cast<uint64_t>(out.size()));
      return Value::Set(std::move(out));
    }

    case ExprKind::kFlatten: {
      OpSpan span(opts_.trace, stats_, "flatten");
      AnnotateEstRows(opts_.plan, e, &span);
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("flatten over non-set");
      span.RowsIn(in.set_size());
      std::vector<Value> out;
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        if (!x.is_set()) {
          return Status::RuntimeError("flatten element not a set");
        }
        for (const Value& y : x.elements()) out.push_back(y);
      }
      span.RowsOut(static_cast<uint64_t>(out.size()));
      return Value::Set(std::move(out));
    }

    case ExprKind::kNest:
      return EvalNest(e, env);

    case ExprKind::kUnnest:
      return EvalUnnest(e, env);

    case ExprKind::kProduct: {
      OpSpan span(opts_.trace, stats_, "product");
      AnnotateEstRows(opts_.plan, e, &span);
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("product over non-sets");
      }
      span.RowsIn(l.set_size());
      span.RowsBuild(r.set_size());
      std::vector<Value> out;
      out.reserve(l.set_size() * r.set_size());
      for (const Value& x : l.elements()) {
        for (const Value& y : r.elements()) {
          ++stats_.tuples_scanned;
          N2J_ASSIGN_OR_RETURN(Value combined, ConcatTuples(x, y));
          out.push_back(std::move(combined));
        }
      }
      span.RowsOut(static_cast<uint64_t>(out.size()));
      return Value::Set(std::move(out));
    }

    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      return EvalJoinLike(e, env);

    case ExprKind::kDivide:
      return EvalDivide(e, env);

    case ExprKind::kUnion: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("union over non-sets");
      }
      return l.SetUnion(r);
    }
    case ExprKind::kIntersect: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("intersect over non-sets");
      }
      return l.SetIntersect(r);
    }
    case ExprKind::kDifference: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("difference over non-sets");
      }
      return l.SetDifference(r);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> Evaluator::EvalBinary(const Expr& e, Environment& env) {
  BinOp op = e.bin_op();
  // Short-circuit boolean connectives.
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
    if (!l.is_bool()) return Status::RuntimeError("and/or on non-bool");
    if (op == BinOp::kAnd && !l.bool_value()) return Value::Bool(false);
    if (op == BinOp::kOr && l.bool_value()) return Value::Bool(true);
    N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
    if (!r.is_bool()) return Status::RuntimeError("and/or on non-bool");
    return r;
  }

  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
  // Shared with the bytecode VM (bytecode.cc) so both engines agree
  // bit-for-bit on results and error strings.
  return ApplyBinOp(op, l, r);
}

Result<Value> Evaluator::EvalQuantifier(const Expr& e, Environment& env) {
  bool exists = e.quant_kind() == QuantKind::kExists;
  OpSpan span(opts_.trace, stats_, exists ? "exists" : "forall");
  N2J_ASSIGN_OR_RETURN(Value range, EvalNode(*e.child(0), env));
  if (!range.is_set()) {
    return Status::RuntimeError("quantifier range not a set");
  }
  span.RowsIn(range.set_size());
  CompiledLambda pred;
  if (opts_.compiled && range.set_size() > 0) {
    pred.Compile(*this, *e.child(1), {e.var()}, env, FirstElemShape(range));
  }
  if (pred.ok()) {
    for (const Value& x : range.elements()) {
      ++stats_.tuples_scanned;
      ++stats_.predicate_evals;
      Value* r = pred.Run(x);
      if (r == nullptr) return pred.status();
      if (!r->is_bool()) {
        return Status::RuntimeError("quantifier predicate not boolean");
      }
      if (exists && r->bool_value()) return Value::Bool(true);
      if (!exists && !r->bool_value()) return Value::Bool(false);
    }
    return Value::Bool(!exists);
  }
  for (const Value& x : range.elements()) {
    ++stats_.tuples_scanned;
    ++stats_.predicate_evals;
    if (pred.fallback()) ++stats_.interp_fallback_evals;
    env.Push(e.var(), x);
    Result<Value> r = EvalNode(*e.child(1), env);
    env.Pop();
    if (!r.ok()) return r.status();
    if (!r->is_bool()) {
      return Status::RuntimeError("quantifier predicate not boolean");
    }
    if (exists && r->bool_value()) return Value::Bool(true);
    if (!exists && !r->bool_value()) return Value::Bool(false);
  }
  // Existential quantification over the empty set delivers false;
  // universal delivers true (Section 4, Example Query 4).
  return Value::Bool(!exists);
}

Result<Value> Evaluator::EvalAggregate(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  // Shared with the bytecode VM (bytecode.cc), including the
  // "aggregate over non-set" check.
  return ApplyAggregate(e.agg_kind(), in);
}

Result<Value> Evaluator::EvalNest(const Expr& e, Environment& env) {
  OpSpan span(opts_.trace, stats_, "nest");
      AnnotateEstRows(opts_.plan, e, &span);
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  if (!in.is_set()) return Status::RuntimeError("nest over non-set");
  span.RowsIn(in.set_size());
  // ν_{A→a}: group on B = SCH − A; collect A-projections into `a`.
  const std::vector<std::string>& grouped = e.names();
  std::unordered_map<Value, std::vector<Value>, ValueHash> groups;
  groups.reserve(in.set_size());
  std::vector<Value> group_order;  // deterministic output
  // Rows of one input almost always share one interned shape, so the
  // "rest" attribute split — and the source index gathers for both
  // projections — are computed once per shape, not per row.
  const TupleShape* last_shape = nullptr;
  const TupleShape* grouped_target = TupleShape::Intern(grouped);
  const TupleShape* rest_target = nullptr;
  std::vector<std::string> rest;
  std::vector<int> rest_idx;
  std::vector<int> grouped_idx;
  for (const Value& x : in.elements()) {
    ++stats_.tuples_scanned;
    if (!x.is_tuple()) return Status::RuntimeError("nest element not tuple");
    if (x.tuple_shape() != last_shape) {
      last_shape = x.tuple_shape();
      rest.clear();
      for (const std::string& n : last_shape->names()) {
        bool is_grouped = false;
        for (const std::string& g : grouped) {
          if (n == g) {
            is_grouped = true;
            break;
          }
        }
        if (!is_grouped) rest.push_back(n);
      }
      for (const std::string& g : grouped) {
        if (last_shape->IndexOf(g) < 0) {
          return Status::RuntimeError("nest: no attribute '" + g + "'");
        }
      }
      rest_target = TupleShape::Intern(rest);
      rest_idx.clear();
      for (const std::string& n : rest) {
        rest_idx.push_back(last_shape->IndexOf(n));
      }
      grouped_idx.clear();
      for (const std::string& g : grouped) {
        grouped_idx.push_back(last_shape->IndexOf(g));
      }
    }
    Value key = (rest_target == last_shape)
                    ? x
                    : GatherTuple(rest_target, rest_idx, x);
    Value proj = (grouped_target == last_shape)
                     ? x
                     : GatherTuple(grouped_target, grouped_idx, x);
    ++stats_.hash_inserts;
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) group_order.push_back(key);
    it->second.push_back(std::move(proj));
  }
  if (opts_.trace != nullptr) opts_.trace->NotePeakHash(groups.size());
  span.RowsOut(static_cast<uint64_t>(group_order.size()));
  std::vector<Value> out;
  out.reserve(group_order.size());
  for (const Value& key : group_order) {
    const TupleShape* shape = key.tuple_shape()->ExtendedWith(e.name());
    std::vector<Value> values = key.tuple_values();
    values.push_back(Value::Set(std::move(groups[key])));
    out.push_back(Value::TupleFromShape(shape, std::move(values)));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalUnnest(const Expr& e, Environment& env) {
  OpSpan span(opts_.trace, stats_, "unnest");
      AnnotateEstRows(opts_.plan, e, &span);
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  if (!in.is_set()) return Status::RuntimeError("unnest over non-set");
  span.RowsIn(in.set_size());
  std::vector<Value> out;
  for (const Value& x : in.elements()) {
    ++stats_.tuples_scanned;
    if (!x.is_tuple()) {
      return Status::RuntimeError("unnest element not tuple");
    }
    const Value* attr = x.FindField(e.name());
    if (attr == nullptr) {
      return Status::RuntimeError("unnest: no attribute '" + e.name() + "'");
    }
    if (!attr->is_set()) {
      return Status::RuntimeError("unnest: attribute '" + e.name() +
                                  "' not a set");
    }
    Value rest_tuple = x.WithoutField(e.name());
    for (const Value& elem : attr->elements()) {
      if (!elem.is_tuple()) {
        return Status::RuntimeError(
            "unnest: set elements must be tuples (NF2)");
      }
      // µ_a(e) = { x' o x[b1..bm] | x ∈ e ∧ x' ∈ x.a }
      out.push_back(elem.ConcatTuple(rest_tuple));
    }
  }
  span.RowsOut(static_cast<uint64_t>(out.size()));
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalDivide(const Expr& e, Environment& env) {
  OpSpan span(opts_.trace, stats_, "divide");
      AnnotateEstRows(opts_.plan, e, &span);
  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
  if (!l.is_set() || !r.is_set()) {
    return Status::RuntimeError("division over non-sets");
  }
  span.RowsIn(l.set_size());
  span.RowsBuild(r.set_size());
  if (l.set_size() == 0) return Value::EmptySet();
  if (r.set_size() == 0) {
    // The divisor schema is unknowable from an empty set at runtime;
    // classical division by the empty relation yields π_A(l) with A all
    // attributes of l (every tuple trivially satisfies ∀).
    return l;
  }
  const Value& first_r = r.elements()[0];
  if (!first_r.is_tuple() || !l.elements()[0].is_tuple()) {
    return Status::RuntimeError("division elements must be tuples");
  }
  std::vector<std::string> b_attrs = first_r.FieldNames();
  std::vector<std::string> a_attrs;
  for (const std::string& n : l.elements()[0].tuple_shape()->names()) {
    bool in_b = false;
    for (const std::string& b : b_attrs) {
      if (n == b) {
        in_b = true;
        break;
      }
    }
    if (!in_b) a_attrs.push_back(n);
  }
  // Index l by its A-projection.
  std::unordered_map<Value, std::vector<Value>, ValueHash> by_a;
  by_a.reserve(l.set_size());
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    ++stats_.hash_inserts;
    by_a[x.ProjectTuple(a_attrs)].push_back(x.ProjectTuple(b_attrs));
  }
  if (opts_.trace != nullptr) opts_.trace->NotePeakHash(by_a.size());
  std::vector<Value> out;
  for (auto& [a, bs] : by_a) {
    Value b_set = Value::Set(bs);
    ++stats_.hash_probes;
    if (r.IsSubsetOf(b_set, false)) out.push_back(a);
  }
  span.RowsOut(static_cast<uint64_t>(out.size()));
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalJoinLike(const Expr& e, Environment& env) {
  const char* op = "join";
  switch (e.kind()) {
    case ExprKind::kSemiJoin:
      op = "semijoin";
      break;
    case ExprKind::kAntiJoin:
      op = "antijoin";
      break;
    case ExprKind::kNestJoin:
      op = "nestjoin";
      break;
    default:
      break;
  }
  OpSpan span(opts_.trace, stats_, op);
  AnnotateEstRows(opts_.plan, e, &span);
  // The cost-based planner (opt/optimizer.h) can pin a physical
  // algorithm on this specific node; kAuto annotations and heuristic
  // runs keep the engine-wide setting.
  JoinAlgorithm algorithm = opts_.join_algorithm;
  if (opts_.plan != nullptr) {
    const PlanAnnotation* pa = opts_.plan->Find(&e);
    if (pa != nullptr && pa->algorithm != JoinAlgorithm::kAuto) {
      algorithm = pa->algorithm;
    }
  }
  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
  if (!l.is_set() || !r.is_set()) {
    return Status::RuntimeError("join over non-sets");
  }
  span.RowsIn(l.set_size());
  span.RowsBuild(r.set_size());
  if (opts_.use_hash_joins && algorithm != JoinAlgorithm::kNestedLoop) {
    Result<Value> result = Status::Unsupported("");
    uint64_t* algo_counter = nullptr;
    const char* algo = "";
    switch (algorithm) {
      case JoinAlgorithm::kAuto:
      case JoinAlgorithm::kIndex:
        // Prefer a prebuilt index; with no usable index, a hash join is
        // the next-best set-oriented plan before giving up to nested
        // loops.
        result = IndexJoin(e, l, env);
        algo_counter = &stats_.joins_index;
        algo = "index";
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnsupported) {
          result = HashJoin(e, l, r, env);
          algo_counter = &stats_.joins_hash;
          algo = "hash";
        }
        break;
      case JoinAlgorithm::kSortMerge:
        result = SortMergeJoin(e, l, r, env);
        algo_counter = &stats_.joins_sortmerge;
        algo = "sort-merge";
        break;
      case JoinAlgorithm::kHash:
        result = HashJoin(e, l, r, env);
        algo_counter = &stats_.joins_hash;
        algo = "hash";
        break;
      case JoinAlgorithm::kNestedLoop:
        break;
    }
    if (!result.ok() &&
        result.status().code() == StatusCode::kUnsupported) {
      // No equi keys — a membership predicate f(y) ∈ x.c is still
      // hashable (build on f(y), probe with the set elements).
      result = MembershipJoin(e, l, r, env);
      algo_counter = &stats_.joins_membership;
      algo = "membership";
    }
    if (result.ok()) {
      ++*algo_counter;
      span.Label(algo);
      span.RowsOut(result);
      return result;
    }
    if (result.status().code() != StatusCode::kUnsupported) {
      return result.status();
    }
    // Nothing hashable: fall through to nested loop.
  }
  ++stats_.joins_nested_loop;
  span.Label("nested-loop");
  Result<Value> result = NestedLoopJoin(e, l, r, env);
  span.RowsOut(result);
  return result;
}

Result<Value> Evaluator::NestedLoopJoin(const Expr& e, const Value& l,
                                        const Value& r, Environment& env) {
  std::vector<Value> out;
  CompiledLambda pred_cl;
  CompiledLambda inner_cl;
  if (opts_.compiled && l.set_size() > 0 && r.set_size() > 0) {
    pred_cl.Compile(*this, *e.pred(), {e.var(), e.var2()}, env,
                    FirstElemShape(l));
    if (e.kind() == ExprKind::kNestJoin) {
      inner_cl.Compile(*this, *e.inner(), {e.var(), e.var2()}, env,
                       FirstElemShape(l));
    }
  }
  // Per-left-tuple result assembly, shared by both engines.
  auto finish_row = [&](const Value& x, bool matched,
                        std::vector<Value>&& group) -> Status {
    switch (e.kind()) {
      case ExprKind::kSemiJoin:
        if (matched) out.push_back(x);
        break;
      case ExprKind::kAntiJoin:
        if (!matched) out.push_back(x);
        break;
      case ExprKind::kNestJoin: {
        if (!x.is_tuple()) {
          return Status::RuntimeError("nestjoin element not a tuple");
        }
        if (x.FindField(e.name()) != nullptr) {
          return Status::RuntimeError("nestjoin result attribute '" +
                                      e.name() + "' collides");
        }
        const TupleShape* shape = x.tuple_shape()->ExtendedWith(e.name());
        std::vector<Value> values = x.tuple_values();
        values.push_back(Value::Set(std::move(group)));
        out.push_back(Value::TupleFromShape(shape, std::move(values)));
        break;
      }
      default:
        break;
    }
    return Status();
  };
  if (pred_cl.ok()) {
    for (const Value& x : l.elements()) {
      ++stats_.tuples_scanned;
      bool matched = false;
      std::vector<Value> group;  // nestjoin inner results
      for (const Value& y : r.elements()) {
        ++stats_.predicate_evals;
        Value* p = pred_cl.Run(x, y);
        if (p == nullptr) return pred_cl.status();
        if (!p->is_bool()) {
          return Status::RuntimeError("join predicate not boolean");
        }
        if (p->bool_value()) {
          switch (e.kind()) {
            case ExprKind::kJoin: {
              N2J_ASSIGN_OR_RETURN(Value combined, ConcatTuples(x, y));
              out.push_back(std::move(combined));
              break;
            }
            case ExprKind::kNestJoin: {
              if (inner_cl.ok()) {
                Value* iv = inner_cl.Run(x, y);
                if (iv == nullptr) return inner_cl.status();
                group.push_back(std::move(*iv));
              } else {
                if (inner_cl.fallback()) ++stats_.interp_fallback_evals;
                env.Push(e.var(), x);
                env.Push(e.var2(), y);
                Result<Value> iv = EvalNode(*e.inner(), env);
                env.Pop();
                env.Pop();
                if (!iv.ok()) return iv.status();
                group.push_back(std::move(iv).value());
              }
              break;
            }
            default:
              matched = true;
              break;
          }
        }
        if (matched && e.kind() == ExprKind::kSemiJoin) break;
      }
      N2J_RETURN_IF_ERROR(finish_row(x, matched, std::move(group)));
    }
    return Value::Set(std::move(out));
  }
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    bool matched = false;
    std::vector<Value> group;  // nestjoin inner results
    for (const Value& y : r.elements()) {
      ++stats_.predicate_evals;
      if (pred_cl.fallback()) ++stats_.interp_fallback_evals;
      env.Push(e.var(), x);
      env.Push(e.var2(), y);
      Result<Value> p = EvalNode(*e.pred(), env);
      if (p.ok() && p->is_bool() && p->bool_value()) {
        switch (e.kind()) {
          case ExprKind::kJoin: {
            Result<Value> combined = ConcatTuples(x, y);
            if (!combined.ok()) {
              env.Pop();
              env.Pop();
              return combined.status();
            }
            out.push_back(std::move(*combined));
            break;
          }
          case ExprKind::kNestJoin: {
            Result<Value> iv = EvalNode(*e.inner(), env);
            if (!iv.ok()) {
              env.Pop();
              env.Pop();
              return iv.status();
            }
            group.push_back(std::move(iv).value());
            break;
          }
          default:
            matched = true;
            break;
        }
      }
      env.Pop();
      env.Pop();
      if (!p.ok()) return p.status();
      if (p.ok() && !p->is_bool()) {
        return Status::RuntimeError("join predicate not boolean");
      }
      if (matched && e.kind() == ExprKind::kSemiJoin) break;
    }
    N2J_RETURN_IF_ERROR(finish_row(x, matched, std::move(group)));
  }
  return Value::Set(std::move(out));
}

Value EvalOrDie(const Database& db, const ExprPtr& e) {
  Evaluator ev(db);
  Result<Value> r = ev.Eval(e);
  if (!r.ok()) {
    std::fprintf(stderr, "EvalOrDie failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace n2j
