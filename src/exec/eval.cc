#include "exec/eval.h"

#include <unordered_map>

#include "common/str_util.h"

namespace n2j {

void EvalStats::Merge(const EvalStats& other) {
  tuples_scanned += other.tuples_scanned;
  predicate_evals += other.predicate_evals;
  hash_inserts += other.hash_inserts;
  hash_probes += other.hash_probes;
  rows_sorted += other.rows_sorted;
  index_probes += other.index_probes;
  pnhl_partitions += other.pnhl_partitions;
  derefs += other.derefs;
  nodes_evaluated += other.nodes_evaluated;
}

std::string EvalStats::ToString() const {
  return StrFormat(
      "scanned=%llu preds=%llu h_ins=%llu h_probe=%llu sorted=%llu "
      "idx=%llu derefs=%llu nodes=%llu",
      static_cast<unsigned long long>(tuples_scanned),
      static_cast<unsigned long long>(predicate_evals),
      static_cast<unsigned long long>(hash_inserts),
      static_cast<unsigned long long>(hash_probes),
      static_cast<unsigned long long>(rows_sorted),
      static_cast<unsigned long long>(index_probes),
      static_cast<unsigned long long>(derefs),
      static_cast<unsigned long long>(nodes_evaluated));
}

Result<Value> Evaluator::Eval(const ExprPtr& e) {
  Environment env;
  return Eval(e, env);
}

Result<Value> Evaluator::Eval(const ExprPtr& e, Environment& env) {
  return EvalNode(*e, env);
}

Result<Value> Evaluator::ConcatTuples(const Value& l, const Value& r) {
  if (!l.is_tuple() || !r.is_tuple()) {
    return Status::RuntimeError("tuple concatenation on non-tuples");
  }
  const TupleShape* combined = l.tuple_shape()->ConcatWith(r.tuple_shape());
  if (combined == nullptr) {
    for (const std::string& n : r.tuple_shape()->names()) {
      if (l.FindField(n) != nullptr) {
        return Status::RuntimeError("attribute naming conflict: " + n);
      }
    }
    return Status::RuntimeError("attribute naming conflict");
  }
  std::vector<Value> values;
  values.reserve(l.tuple_size() + r.tuple_size());
  values.insert(values.end(), l.tuple_values().begin(),
                l.tuple_values().end());
  values.insert(values.end(), r.tuple_values().begin(),
                r.tuple_values().end());
  return Value::TupleFromShape(combined, std::move(values));
}

ThreadPool& Evaluator::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  }
  return *pool_;
}

std::vector<std::unique_ptr<Evaluator>> Evaluator::ForkWorkers(int count) {
  std::vector<std::unique_ptr<Evaluator>> workers;
  workers.reserve(static_cast<size_t>(count));
  EvalOptions worker_opts = opts_;
  worker_opts.num_threads = 1;  // nested operators stay serial
  for (int i = 0; i < count; ++i) {
    auto w = std::make_unique<Evaluator>(db_, worker_opts);
    w->table_cache_ = table_cache_;
    workers.push_back(std::move(w));
  }
  return workers;
}

void Evaluator::MergeWorkerStats(
    const std::vector<std::unique_ptr<Evaluator>>& workers) {
  for (const auto& w : workers) stats_.Merge(w->stats_);
}

Result<Value> Evaluator::ParallelMapSelect(const Expr& e, const Value& in,
                                           Environment& env,
                                           bool is_select) {
  const std::vector<Value>& xs = in.elements();
  const size_t n = xs.size();
  ThreadPool& tp = pool();
  const int num_workers = tp.num_workers();
  std::vector<std::unique_ptr<Evaluator>> workers = ForkWorkers(num_workers);
  std::vector<Environment> envs(static_cast<size_t>(num_workers), env);

  size_t morsel_size = PickMorselSize(n, num_workers);
  std::vector<Value> out(n);   // map results, slot per input element
  std::vector<char> keep(n, 0);  // select verdicts
  Status s = tp.RunMorsels(
      NumMorsels(n, morsel_size), [&](int w, size_t m) -> Status {
        Evaluator& ev = *workers[static_cast<size_t>(w)];
        Environment& wenv = envs[static_cast<size_t>(w)];
        MorselRange range = MorselAt(n, morsel_size, m);
        for (size_t i = range.begin; i < range.end; ++i) {
          ++ev.stats_.tuples_scanned;
          if (is_select) ++ev.stats_.predicate_evals;
          wenv.Push(e.var(), xs[i]);
          Result<Value> r = ev.EvalNode(*e.child(1), wenv);
          wenv.Pop();
          if (!r.ok()) return r.status();
          if (is_select) {
            if (!r->is_bool()) {
              return Status::RuntimeError("selection predicate not boolean");
            }
            keep[i] = r->bool_value() ? 1 : 0;
          } else {
            out[i] = std::move(*r);
          }
        }
        return Status::OK();
      });
  MergeWorkerStats(workers);
  N2J_RETURN_IF_ERROR(s);
  if (is_select) {
    std::vector<Value> selected;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) selected.push_back(xs[i]);
    }
    // Input order is canonical and selection preserves it.
    return Value::SetFromCanonical(std::move(selected));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::TableValue(const std::string& name) {
  auto it = table_cache_.find(name);
  if (it != table_cache_.end()) return it->second;
  const Table* t = db_.FindTable(name);
  if (t == nullptr) return Status::NotFound("no such table: " + name);
  Value v = t->AsSetValue();
  table_cache_.emplace(name, v);
  return v;
}

Result<Value> Evaluator::EvalNode(const Expr& e, Environment& env) {
  ++stats_.nodes_evaluated;
  switch (e.kind()) {
    case ExprKind::kConst:
      return e.const_value();

    case ExprKind::kVar: {
      const Value* v = env.Lookup(e.name());
      if (v == nullptr) {
        return Status::RuntimeError("unbound variable: " + e.name());
      }
      return *v;
    }

    case ExprKind::kGetTable:
      return TableValue(e.name());

    case ExprKind::kLet: {
      N2J_ASSIGN_OR_RETURN(Value def, EvalNode(*e.child(0), env));
      env.Push(e.var(), std::move(def));
      Result<Value> body = EvalNode(*e.child(1), env);
      env.Pop();
      return body;
    }

    case ExprKind::kFieldAccess: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      // Implicit pointer traversal: accessing a field through a reference
      // dereferences the oid first (path expressions, Section 6.2).
      if (in.is_oid()) {
        ++stats_.derefs;
        N2J_ASSIGN_OR_RETURN(in, db_.Deref(in.oid_value()));
      }
      if (!in.is_tuple()) {
        return Status::RuntimeError("field access '" + e.name() +
                                    "' on non-tuple value");
      }
      const Value* f = in.FindField(e.name());
      if (f == nullptr) {
        return Status::RuntimeError("no field '" + e.name() + "' in " +
                                    in.ToString());
      }
      return *f;
    }

    case ExprKind::kTupleProject: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_tuple()) {
        return Status::RuntimeError("tuple projection on non-tuple");
      }
      for (const std::string& n : e.names()) {
        if (in.FindField(n) == nullptr) {
          return Status::RuntimeError("no field '" + n + "' in tuple");
        }
      }
      return in.ProjectTuple(e.names());
    }

    case ExprKind::kTupleConstruct: {
      std::vector<Field> fields;
      fields.reserve(e.names().size());
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*e.child(i), env));
        fields.emplace_back(e.names()[i], std::move(v));
      }
      return Value::Tuple(std::move(fields));
    }

    case ExprKind::kTupleConcat: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      return ConcatTuples(l, r);
    }

    case ExprKind::kExcept: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_tuple()) {
        return Status::RuntimeError("except on non-tuple");
      }
      std::vector<Field> updates;
      updates.reserve(e.names().size());
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*e.child(i + 1), env));
        updates.emplace_back(e.names()[i], std::move(v));
      }
      return in.ExceptUpdate(updates);
    }

    case ExprKind::kSetConstruct: {
      std::vector<Value> elems;
      elems.reserve(e.num_children());
      for (const ExprPtr& c : e.children()) {
        N2J_ASSIGN_OR_RETURN(Value v, EvalNode(*c, env));
        elems.push_back(std::move(v));
      }
      return Value::Set(std::move(elems));
    }

    case ExprKind::kDeref: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_oid()) {
        return Status::RuntimeError("deref on non-oid value");
      }
      ++stats_.derefs;
      return db_.Deref(in.oid_value());
    }

    case ExprKind::kUnary: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      switch (e.un_op()) {
        case UnOp::kNot:
          if (!in.is_bool()) {
            return Status::RuntimeError("not on non-bool");
          }
          return Value::Bool(!in.bool_value());
        case UnOp::kNeg:
          if (in.is_int()) return Value::Int(-in.int_value());
          if (in.is_double()) return Value::Double(-in.double_value());
          return Status::RuntimeError("negation on non-numeric");
        case UnOp::kIsEmpty:
          if (!in.is_set()) {
            return Status::RuntimeError("isempty on non-set");
          }
          return Value::Bool(in.set_size() == 0);
      }
      return Status::Internal("bad unary op");
    }

    case ExprKind::kBinary:
      return EvalBinary(e, env);

    case ExprKind::kQuantifier:
      return EvalQuantifier(e, env);

    case ExprKind::kAggregate:
      return EvalAggregate(e, env);

    case ExprKind::kMap: {
      if (opts_.enable_pnhl) {
        Result<Value> fast = TryPnhlMap(e, env);
        if (fast.ok()) return fast;
        if (fast.status().code() != StatusCode::kUnsupported) {
          return fast.status();
        }
      }
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("map over non-set");
      if (opts_.num_threads > 1 && in.set_size() > 1) {
        return ParallelMapSelect(e, in, env, /*is_select=*/false);
      }
      std::vector<Value> out;
      out.reserve(in.set_size());
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        env.Push(e.var(), x);
        Result<Value> r = EvalNode(*e.child(1), env);
        env.Pop();
        if (!r.ok()) return r.status();
        out.push_back(std::move(r).value());
      }
      return Value::Set(std::move(out));
    }

    case ExprKind::kSelect: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("select over non-set");
      if (opts_.num_threads > 1 && in.set_size() > 1) {
        return ParallelMapSelect(e, in, env, /*is_select=*/true);
      }
      std::vector<Value> out;
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        ++stats_.predicate_evals;
        env.Push(e.var(), x);
        Result<Value> r = EvalNode(*e.child(1), env);
        env.Pop();
        if (!r.ok()) return r.status();
        if (!r->is_bool()) {
          return Status::RuntimeError("selection predicate not boolean");
        }
        if (r->bool_value()) out.push_back(x);
      }
      return Value::SetFromCanonical(std::move(out));
    }

    case ExprKind::kProject: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("project over non-set");
      std::vector<Value> out;
      out.reserve(in.set_size());
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        if (!x.is_tuple()) {
          return Status::RuntimeError("projection element not a tuple");
        }
        for (const std::string& n : e.names()) {
          if (x.FindField(n) == nullptr) {
            return Status::RuntimeError("no field '" + n +
                                        "' in projection input");
          }
        }
        out.push_back(x.ProjectTuple(e.names()));
      }
      return Value::Set(std::move(out));
    }

    case ExprKind::kFlatten: {
      N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
      if (!in.is_set()) return Status::RuntimeError("flatten over non-set");
      std::vector<Value> out;
      for (const Value& x : in.elements()) {
        ++stats_.tuples_scanned;
        if (!x.is_set()) {
          return Status::RuntimeError("flatten element not a set");
        }
        for (const Value& y : x.elements()) out.push_back(y);
      }
      return Value::Set(std::move(out));
    }

    case ExprKind::kNest:
      return EvalNest(e, env);

    case ExprKind::kUnnest:
      return EvalUnnest(e, env);

    case ExprKind::kProduct: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("product over non-sets");
      }
      std::vector<Value> out;
      out.reserve(l.set_size() * r.set_size());
      for (const Value& x : l.elements()) {
        for (const Value& y : r.elements()) {
          ++stats_.tuples_scanned;
          N2J_ASSIGN_OR_RETURN(Value combined, ConcatTuples(x, y));
          out.push_back(std::move(combined));
        }
      }
      return Value::Set(std::move(out));
    }

    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      return EvalJoinLike(e, env);

    case ExprKind::kDivide:
      return EvalDivide(e, env);

    case ExprKind::kUnion: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("union over non-sets");
      }
      return l.SetUnion(r);
    }
    case ExprKind::kIntersect: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("intersect over non-sets");
      }
      return l.SetIntersect(r);
    }
    case ExprKind::kDifference: {
      N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
      N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("difference over non-sets");
      }
      return l.SetDifference(r);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> Evaluator::EvalBinary(const Expr& e, Environment& env) {
  BinOp op = e.bin_op();
  // Short-circuit boolean connectives.
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
    if (!l.is_bool()) return Status::RuntimeError("and/or on non-bool");
    if (op == BinOp::kAnd && !l.bool_value()) return Value::Bool(false);
    if (op == BinOp::kOr && l.bool_value()) return Value::Bool(true);
    N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
    if (!r.is_bool()) return Status::RuntimeError("and/or on non-bool");
    return r;
  }

  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));

  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::RuntimeError("arithmetic on non-numeric values");
      }
      if (l.is_int() && r.is_int()) {
        int64_t a = l.int_value(), b = r.int_value();
        switch (op) {
          case BinOp::kAdd: return Value::Int(a + b);
          case BinOp::kSub: return Value::Int(a - b);
          case BinOp::kMul: return Value::Int(a * b);
          case BinOp::kDiv:
            if (b == 0) return Status::RuntimeError("division by zero");
            return Value::Int(a / b);
          case BinOp::kMod:
            if (b == 0) return Status::RuntimeError("modulo by zero");
            return Value::Int(a % b);
          default: break;
        }
      }
      double a = l.as_double(), b = r.as_double();
      switch (op) {
        case BinOp::kAdd: return Value::Double(a + b);
        case BinOp::kSub: return Value::Double(a - b);
        case BinOp::kMul: return Value::Double(a * b);
        case BinOp::kDiv:
          if (b == 0.0) return Status::RuntimeError("division by zero");
          return Value::Double(a / b);
        case BinOp::kMod:
          return Status::RuntimeError("modulo on non-integers");
        default: break;
      }
      return Status::Internal("bad arithmetic op");
    }

    case BinOp::kEq: return Value::Bool(l == r);
    case BinOp::kNe: return Value::Bool(l != r);
    case BinOp::kLt: return Value::Bool(l.Compare(r) < 0);
    case BinOp::kLe: return Value::Bool(l.Compare(r) <= 0);
    case BinOp::kGt: return Value::Bool(l.Compare(r) > 0);
    case BinOp::kGe: return Value::Bool(l.Compare(r) >= 0);

    case BinOp::kIn:
      if (!r.is_set()) return Status::RuntimeError("in: rhs not a set");
      return Value::Bool(r.SetContains(l));
    case BinOp::kContains:
      if (!l.is_set()) {
        return Status::RuntimeError("contains: lhs not a set");
      }
      return Value::Bool(l.SetContains(r));
    case BinOp::kSubset:
    case BinOp::kSubsetEq:
    case BinOp::kSupset:
    case BinOp::kSupsetEq: {
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("set comparison on non-sets");
      }
      switch (op) {
        case BinOp::kSubset: return Value::Bool(l.IsSubsetOf(r, true));
        case BinOp::kSubsetEq: return Value::Bool(l.IsSubsetOf(r, false));
        case BinOp::kSupset: return Value::Bool(r.IsSubsetOf(l, true));
        case BinOp::kSupsetEq: return Value::Bool(r.IsSubsetOf(l, false));
        default: break;
      }
      return Status::Internal("bad set comparison");
    }

    case BinOp::kUnionOp:
    case BinOp::kIntersectOp:
    case BinOp::kDifferenceOp: {
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("set operator on non-sets");
      }
      if (op == BinOp::kUnionOp) return l.SetUnion(r);
      if (op == BinOp::kIntersectOp) return l.SetIntersect(r);
      return l.SetDifference(r);
    }

    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // handled above
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> Evaluator::EvalQuantifier(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value range, EvalNode(*e.child(0), env));
  if (!range.is_set()) {
    return Status::RuntimeError("quantifier range not a set");
  }
  bool exists = e.quant_kind() == QuantKind::kExists;
  for (const Value& x : range.elements()) {
    ++stats_.tuples_scanned;
    ++stats_.predicate_evals;
    env.Push(e.var(), x);
    Result<Value> r = EvalNode(*e.child(1), env);
    env.Pop();
    if (!r.ok()) return r.status();
    if (!r->is_bool()) {
      return Status::RuntimeError("quantifier predicate not boolean");
    }
    if (exists && r->bool_value()) return Value::Bool(true);
    if (!exists && !r->bool_value()) return Value::Bool(false);
  }
  // Existential quantification over the empty set delivers false;
  // universal delivers true (Section 4, Example Query 4).
  return Value::Bool(!exists);
}

Result<Value> Evaluator::EvalAggregate(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  if (!in.is_set()) return Status::RuntimeError("aggregate over non-set");
  const std::vector<Value>& es = in.elements();
  switch (e.agg_kind()) {
    case AggKind::kCount:
      return Value::Int(static_cast<int64_t>(es.size()));
    case AggKind::kSum: {
      bool any_double = false;
      int64_t isum = 0;
      double dsum = 0;
      for (const Value& v : es) {
        if (!v.is_numeric()) {
          return Status::RuntimeError("sum over non-numeric set");
        }
        if (v.is_double()) any_double = true;
        dsum += v.as_double();
        if (v.is_int()) isum += v.int_value();
      }
      return any_double ? Value::Double(dsum) : Value::Int(isum);
    }
    case AggKind::kAvg: {
      if (es.empty()) return Value::Null();
      double dsum = 0;
      for (const Value& v : es) {
        if (!v.is_numeric()) {
          return Status::RuntimeError("avg over non-numeric set");
        }
        dsum += v.as_double();
      }
      return Value::Double(dsum / static_cast<double>(es.size()));
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      if (es.empty()) return Value::Null();
      // Canonical sets are sorted, so min/max are the endpoints.
      return e.agg_kind() == AggKind::kMin ? es.front() : es.back();
    }
  }
  return Status::Internal("bad aggregate kind");
}

Result<Value> Evaluator::EvalNest(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  if (!in.is_set()) return Status::RuntimeError("nest over non-set");
  // ν_{A→a}: group on B = SCH − A; collect A-projections into `a`.
  const std::vector<std::string>& grouped = e.names();
  std::unordered_map<Value, std::vector<Value>, ValueHash> groups;
  groups.reserve(in.set_size());
  std::vector<Value> group_order;  // deterministic output
  // Rows of one input almost always share one interned shape, so the
  // "rest" attribute split is computed once per shape, not per row.
  const TupleShape* last_shape = nullptr;
  std::vector<std::string> rest;
  for (const Value& x : in.elements()) {
    ++stats_.tuples_scanned;
    if (!x.is_tuple()) return Status::RuntimeError("nest element not tuple");
    if (x.tuple_shape() != last_shape) {
      last_shape = x.tuple_shape();
      rest.clear();
      for (const std::string& n : last_shape->names()) {
        bool is_grouped = false;
        for (const std::string& g : grouped) {
          if (n == g) {
            is_grouped = true;
            break;
          }
        }
        if (!is_grouped) rest.push_back(n);
      }
      for (const std::string& g : grouped) {
        if (last_shape->IndexOf(g) < 0) {
          return Status::RuntimeError("nest: no attribute '" + g + "'");
        }
      }
    }
    Value key = x.ProjectTuple(rest);
    Value proj = x.ProjectTuple(grouped);
    ++stats_.hash_inserts;
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) group_order.push_back(key);
    it->second.push_back(std::move(proj));
  }
  std::vector<Value> out;
  out.reserve(group_order.size());
  for (const Value& key : group_order) {
    const TupleShape* shape = key.tuple_shape()->ExtendedWith(e.name());
    std::vector<Value> values = key.tuple_values();
    values.push_back(Value::Set(std::move(groups[key])));
    out.push_back(Value::TupleFromShape(shape, std::move(values)));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalUnnest(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value in, EvalNode(*e.child(0), env));
  if (!in.is_set()) return Status::RuntimeError("unnest over non-set");
  std::vector<Value> out;
  for (const Value& x : in.elements()) {
    ++stats_.tuples_scanned;
    if (!x.is_tuple()) {
      return Status::RuntimeError("unnest element not tuple");
    }
    const Value* attr = x.FindField(e.name());
    if (attr == nullptr) {
      return Status::RuntimeError("unnest: no attribute '" + e.name() + "'");
    }
    if (!attr->is_set()) {
      return Status::RuntimeError("unnest: attribute '" + e.name() +
                                  "' not a set");
    }
    Value rest_tuple = x.WithoutField(e.name());
    for (const Value& elem : attr->elements()) {
      if (!elem.is_tuple()) {
        return Status::RuntimeError(
            "unnest: set elements must be tuples (NF2)");
      }
      // µ_a(e) = { x' o x[b1..bm] | x ∈ e ∧ x' ∈ x.a }
      out.push_back(elem.ConcatTuple(rest_tuple));
    }
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalDivide(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
  if (!l.is_set() || !r.is_set()) {
    return Status::RuntimeError("division over non-sets");
  }
  if (l.set_size() == 0) return Value::EmptySet();
  if (r.set_size() == 0) {
    // The divisor schema is unknowable from an empty set at runtime;
    // classical division by the empty relation yields π_A(l) with A all
    // attributes of l (every tuple trivially satisfies ∀).
    return l;
  }
  const Value& first_r = r.elements()[0];
  if (!first_r.is_tuple() || !l.elements()[0].is_tuple()) {
    return Status::RuntimeError("division elements must be tuples");
  }
  std::vector<std::string> b_attrs = first_r.FieldNames();
  std::vector<std::string> a_attrs;
  for (const std::string& n : l.elements()[0].tuple_shape()->names()) {
    bool in_b = false;
    for (const std::string& b : b_attrs) {
      if (n == b) {
        in_b = true;
        break;
      }
    }
    if (!in_b) a_attrs.push_back(n);
  }
  // Index l by its A-projection.
  std::unordered_map<Value, std::vector<Value>, ValueHash> by_a;
  by_a.reserve(l.set_size());
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    ++stats_.hash_inserts;
    by_a[x.ProjectTuple(a_attrs)].push_back(x.ProjectTuple(b_attrs));
  }
  std::vector<Value> out;
  for (auto& [a, bs] : by_a) {
    Value b_set = Value::Set(bs);
    ++stats_.hash_probes;
    if (r.IsSubsetOf(b_set, false)) out.push_back(a);
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::EvalJoinLike(const Expr& e, Environment& env) {
  N2J_ASSIGN_OR_RETURN(Value l, EvalNode(*e.child(0), env));
  N2J_ASSIGN_OR_RETURN(Value r, EvalNode(*e.child(1), env));
  if (!l.is_set() || !r.is_set()) {
    return Status::RuntimeError("join over non-sets");
  }
  if (opts_.use_hash_joins &&
      opts_.join_algorithm != JoinAlgorithm::kNestedLoop) {
    Result<Value> result = Status::Unsupported("");
    switch (opts_.join_algorithm) {
      case JoinAlgorithm::kAuto:
        // Prefer a prebuilt index; otherwise hash.
        result = IndexJoin(e, l, env);
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnsupported) {
          result = HashJoin(e, l, r, env);
        }
        break;
      case JoinAlgorithm::kSortMerge:
        result = SortMergeJoin(e, l, r, env);
        break;
      case JoinAlgorithm::kIndex:
        result = IndexJoin(e, l, env);
        // No usable index: a hash join is the next-best set-oriented
        // plan before giving up to nested loops.
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnsupported) {
          result = HashJoin(e, l, r, env);
        }
        break;
      case JoinAlgorithm::kHash:
        result = HashJoin(e, l, r, env);
        break;
      case JoinAlgorithm::kNestedLoop:
        break;
    }
    if (!result.ok() &&
        result.status().code() == StatusCode::kUnsupported) {
      // No equi keys — a membership predicate f(y) ∈ x.c is still
      // hashable (build on f(y), probe with the set elements).
      result = MembershipJoin(e, l, r, env);
    }
    if (result.ok()) return result;
    if (result.status().code() != StatusCode::kUnsupported) {
      return result.status();
    }
    // Nothing hashable: fall through to nested loop.
  }
  return NestedLoopJoin(e, l, r, env);
}

Result<Value> Evaluator::NestedLoopJoin(const Expr& e, const Value& l,
                                        const Value& r, Environment& env) {
  std::vector<Value> out;
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    bool matched = false;
    std::vector<Value> group;  // nestjoin inner results
    for (const Value& y : r.elements()) {
      ++stats_.predicate_evals;
      env.Push(e.var(), x);
      env.Push(e.var2(), y);
      Result<Value> p = EvalNode(*e.pred(), env);
      if (p.ok() && p->is_bool() && p->bool_value()) {
        switch (e.kind()) {
          case ExprKind::kJoin: {
            Result<Value> combined = ConcatTuples(x, y);
            if (!combined.ok()) {
              env.Pop();
              env.Pop();
              return combined.status();
            }
            out.push_back(std::move(*combined));
            break;
          }
          case ExprKind::kNestJoin: {
            Result<Value> iv = EvalNode(*e.inner(), env);
            if (!iv.ok()) {
              env.Pop();
              env.Pop();
              return iv.status();
            }
            group.push_back(std::move(iv).value());
            break;
          }
          default:
            matched = true;
            break;
        }
      }
      env.Pop();
      env.Pop();
      if (!p.ok()) return p.status();
      if (p.ok() && !p->is_bool()) {
        return Status::RuntimeError("join predicate not boolean");
      }
      if (matched && e.kind() == ExprKind::kSemiJoin) break;
    }
    switch (e.kind()) {
      case ExprKind::kSemiJoin:
        if (matched) out.push_back(x);
        break;
      case ExprKind::kAntiJoin:
        if (!matched) out.push_back(x);
        break;
      case ExprKind::kNestJoin: {
        if (!x.is_tuple()) {
          return Status::RuntimeError("nestjoin element not a tuple");
        }
        if (x.FindField(e.name()) != nullptr) {
          return Status::RuntimeError("nestjoin result attribute '" +
                                      e.name() + "' collides");
        }
        const TupleShape* shape = x.tuple_shape()->ExtendedWith(e.name());
        std::vector<Value> values = x.tuple_values();
        values.push_back(Value::Set(std::move(group)));
        out.push_back(Value::TupleFromShape(shape, std::move(values)));
        break;
      }
      default:
        break;
    }
  }
  return Value::Set(std::move(out));
}

Value EvalOrDie(const Database& db, const ExprPtr& e) {
  Evaluator ev(db);
  Result<Value> r = ev.Eval(e);
  if (!r.ok()) {
    std::fprintf(stderr, "EvalOrDie failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace n2j
