#include "exec/bytecode.h"

#include "common/str_util.h"
#include "exec/eval.h"

namespace n2j {

Result<Value> ApplyBinOp(BinOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::RuntimeError("arithmetic on non-numeric values");
      }
      if (l.is_int() && r.is_int()) {
        int64_t a = l.int_value(), b = r.int_value();
        switch (op) {
          case BinOp::kAdd: return Value::Int(a + b);
          case BinOp::kSub: return Value::Int(a - b);
          case BinOp::kMul: return Value::Int(a * b);
          case BinOp::kDiv:
            if (b == 0) return Status::RuntimeError("division by zero");
            return Value::Int(a / b);
          case BinOp::kMod:
            if (b == 0) return Status::RuntimeError("modulo by zero");
            return Value::Int(a % b);
          default: break;
        }
      }
      double a = l.as_double(), b = r.as_double();
      switch (op) {
        case BinOp::kAdd: return Value::Double(a + b);
        case BinOp::kSub: return Value::Double(a - b);
        case BinOp::kMul: return Value::Double(a * b);
        case BinOp::kDiv:
          if (b == 0.0) return Status::RuntimeError("division by zero");
          return Value::Double(a / b);
        case BinOp::kMod:
          return Status::RuntimeError("modulo on non-integers");
        default: break;
      }
      return Status::Internal("bad arithmetic op");
    }

    case BinOp::kEq: return Value::Bool(l == r);
    case BinOp::kNe: return Value::Bool(l != r);
    case BinOp::kLt: return Value::Bool(l.Compare(r) < 0);
    case BinOp::kLe: return Value::Bool(l.Compare(r) <= 0);
    case BinOp::kGt: return Value::Bool(l.Compare(r) > 0);
    case BinOp::kGe: return Value::Bool(l.Compare(r) >= 0);

    case BinOp::kIn:
      if (!r.is_set()) return Status::RuntimeError("in: rhs not a set");
      return Value::Bool(r.SetContains(l));
    case BinOp::kContains:
      if (!l.is_set()) {
        return Status::RuntimeError("contains: lhs not a set");
      }
      return Value::Bool(l.SetContains(r));
    case BinOp::kSubset:
    case BinOp::kSubsetEq:
    case BinOp::kSupset:
    case BinOp::kSupsetEq: {
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("set comparison on non-sets");
      }
      switch (op) {
        case BinOp::kSubset: return Value::Bool(l.IsSubsetOf(r, true));
        case BinOp::kSubsetEq: return Value::Bool(l.IsSubsetOf(r, false));
        case BinOp::kSupset: return Value::Bool(r.IsSubsetOf(l, true));
        case BinOp::kSupsetEq: return Value::Bool(r.IsSubsetOf(l, false));
        default: break;
      }
      return Status::Internal("bad set comparison");
    }

    case BinOp::kUnionOp:
    case BinOp::kIntersectOp:
    case BinOp::kDifferenceOp: {
      if (!l.is_set() || !r.is_set()) {
        return Status::RuntimeError("set operator on non-sets");
      }
      if (op == BinOp::kUnionOp) return l.SetUnion(r);
      if (op == BinOp::kIntersectOp) return l.SetIntersect(r);
      return l.SetDifference(r);
    }

    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // short-circuited by the caller
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> ApplyUnOp(UnOp op, const Value& in) {
  switch (op) {
    case UnOp::kNot:
      if (!in.is_bool()) {
        return Status::RuntimeError("not on non-bool");
      }
      return Value::Bool(!in.bool_value());
    case UnOp::kNeg:
      if (in.is_int()) return Value::Int(-in.int_value());
      if (in.is_double()) return Value::Double(-in.double_value());
      return Status::RuntimeError("negation on non-numeric");
    case UnOp::kIsEmpty:
      if (!in.is_set()) {
        return Status::RuntimeError("isempty on non-set");
      }
      return Value::Bool(in.set_size() == 0);
  }
  return Status::Internal("bad unary op");
}

Result<Value> ApplyAggregate(AggKind kind, const Value& in) {
  if (!in.is_set()) return Status::RuntimeError("aggregate over non-set");
  const std::vector<Value>& es = in.elements();
  switch (kind) {
    case AggKind::kCount:
      return Value::Int(static_cast<int64_t>(es.size()));
    case AggKind::kSum: {
      bool any_double = false;
      int64_t isum = 0;
      double dsum = 0;
      for (const Value& v : es) {
        if (!v.is_numeric()) {
          return Status::RuntimeError("sum over non-numeric set");
        }
        if (v.is_double()) any_double = true;
        dsum += v.as_double();
        if (v.is_int()) isum += v.int_value();
      }
      return any_double ? Value::Double(dsum) : Value::Int(isum);
    }
    case AggKind::kAvg: {
      if (es.empty()) return Value::Null();
      double dsum = 0;
      for (const Value& v : es) {
        if (!v.is_numeric()) {
          return Status::RuntimeError("avg over non-numeric set");
        }
        dsum += v.as_double();
      }
      return Value::Double(dsum / static_cast<double>(es.size()));
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      if (es.empty()) return Value::Null();
      // Canonical sets are sorted, so min/max are the endpoints.
      return kind == AggKind::kMin ? es.front() : es.back();
    }
  }
  return Status::Internal("bad aggregate kind");
}

Result<Value> ConcatTuplesChecked(const Value& l, const Value& r) {
  if (!l.is_tuple() || !r.is_tuple()) {
    return Status::RuntimeError("tuple concatenation on non-tuples");
  }
  const TupleShape* combined = l.tuple_shape()->ConcatWith(r.tuple_shape());
  if (combined == nullptr) {
    for (const std::string& n : r.tuple_shape()->names()) {
      if (l.FindField(n) != nullptr) {
        return Status::RuntimeError("attribute naming conflict: " + n);
      }
    }
    return Status::RuntimeError("attribute naming conflict");
  }
  std::vector<Value> values;
  values.reserve(l.tuple_size() + r.tuple_size());
  values.insert(values.end(), l.tuple_values().begin(),
                l.tuple_values().end());
  values.insert(values.end(), r.tuple_values().begin(),
                r.tuple_values().end());
  return Value::TupleFromShape(combined, std::move(values));
}

Vm::Vm(const Program* prog, const Database* db, EvalStats* stats)
    : prog_(prog), db_(db), stats_(stats) {
  regs_.resize(prog->num_regs);
}

Value* Vm::Run() {
  ++stats_->compiled_evals;
  if (!RunRange(0, prog_->code.size())) return nullptr;
  return &regs_[prog_->ret_slot];
}

bool Vm::RunRange(size_t begin, size_t end) {
  const Instr* code = prog_->code.data();
  Value* regs = regs_.data();
  size_t pc = begin;
  while (pc < end) {
    const Instr& ins = code[pc];
    switch (ins.op) {
      case OpCode::kLoadConst:
        regs[ins.dst] = prog_->consts[ins.a];
        break;

      case OpCode::kMove:
        regs[ins.dst] = regs[ins.a];
        break;

      case OpCode::kField: {
        const Value* in = &regs[ins.a];
        Value derefed;
        if (in->is_oid()) {
          ++stats_->derefs;
          Result<Value> d = db_->Deref(in->oid_value());
          if (!d.ok()) return Fail(d.status());
          derefed = std::move(*d);
          in = &derefed;
        }
        const std::string& name = prog_->names[ins.b];
        if (!in->is_tuple()) {
          return Fail(Status::RuntimeError("field access '" + name +
                                           "' on non-tuple value"));
        }
        const TupleShape* shape = in->tuple_shape();
        if (shape != ins.cache_shape) {
          ins.cache_shape = shape;
          ins.cache_index = shape->IndexOf(name);
        }
        if (ins.cache_index < 0) {
          return Fail(Status::RuntimeError("no field '" + name + "' in " +
                                           in->ToString()));
        }
        regs[ins.dst] =
            in->tuple_values()[static_cast<size_t>(ins.cache_index)];
        break;
      }

      case OpCode::kProject: {
        const Value& in = regs[ins.a];
        if (!in.is_tuple()) {
          return Fail(Status::RuntimeError("tuple projection on non-tuple"));
        }
        const std::vector<std::string>& names = prog_->name_lists[ins.b];
        ShapeCache& sc = prog_->shape_caches[ins.c];
        if (in.tuple_shape() != sc.in) {
          sc.in = in.tuple_shape();
          sc.out = TupleShape::Intern(names);
          sc.index.clear();
          sc.complete = true;
          for (const std::string& n : names) {
            int i = sc.in->IndexOf(n);
            if (i < 0) sc.complete = false;
            sc.index.push_back(i);
          }
        }
        if (!sc.complete) {
          for (size_t k = 0; k < sc.index.size(); ++k) {
            if (sc.index[k] < 0) {
              return Fail(Status::RuntimeError("no field '" + names[k] +
                                               "' in tuple"));
            }
          }
        }
        if (sc.out == sc.in) {
          // Mirrors Value::ProjectTuple's identity fast path.
          regs[ins.dst] = in;
          break;
        }
        std::vector<Value> vals;
        vals.reserve(sc.index.size());
        const std::vector<Value>& src = in.tuple_values();
        for (int i : sc.index) {
          vals.push_back(src[static_cast<size_t>(i)]);
        }
        regs[ins.dst] = Value::TupleFromShape(sc.out, std::move(vals));
        break;
      }

      case OpCode::kMakeTuple: {
        std::vector<Value> vals;
        vals.reserve(ins.b);
        for (uint32_t i = 0; i < ins.b; ++i) {
          vals.push_back(regs[prog_->operands[ins.a + i]]);
        }
        regs[ins.dst] =
            Value::TupleFromShape(prog_->shapes[ins.c], std::move(vals));
        break;
      }

      case OpCode::kConcat: {
        Result<Value> c = ConcatTuplesChecked(regs[ins.a], regs[ins.b]);
        if (!c.ok()) return Fail(c.status());
        regs[ins.dst] = std::move(*c);
        break;
      }

      case OpCode::kGuard:
        // Emitted between the base and the update operands of `except`
        // so the non-tuple check fires before the updates evaluate,
        // exactly like the interpreter.
        if (!regs[ins.a].is_tuple()) {
          return Fail(Status::RuntimeError("except on non-tuple"));
        }
        break;

      case OpCode::kExcept: {
        const Value& base = regs[ins.a];
        const std::vector<std::string>& names = prog_->name_lists[ins.d];
        ShapeCache& sc = prog_->shape_caches[ins.c];
        if (base.tuple_shape() != sc.in) {
          // Replay ExceptUpdate's sequential replace-or-append once per
          // observed shape (later updates may hit earlier appends).
          sc.in = base.tuple_shape();
          const TupleShape* shape = sc.in;
          sc.index.clear();
          for (const std::string& n : names) {
            int i = shape->IndexOf(n);
            if (i < 0) {
              shape = shape->ExtendedWith(n);
              i = static_cast<int>(shape->size()) - 1;
            }
            sc.index.push_back(i);
          }
          sc.out = shape;
          sc.out_size = shape->size();
        }
        std::vector<Value> vals;
        vals.reserve(sc.out_size);
        const std::vector<Value>& src = base.tuple_values();
        vals.assign(src.begin(), src.end());
        vals.resize(sc.out_size);
        for (size_t k = 0; k < sc.index.size(); ++k) {
          vals[static_cast<size_t>(sc.index[k])] =
              regs[prog_->operands[ins.b + k]];
        }
        regs[ins.dst] = Value::TupleFromShape(sc.out, std::move(vals));
        break;
      }

      case OpCode::kMakeSet: {
        std::vector<Value> elems;
        elems.reserve(ins.b);
        for (uint32_t i = 0; i < ins.b; ++i) {
          elems.push_back(regs[prog_->operands[ins.a + i]]);
        }
        regs[ins.dst] = Value::Set(std::move(elems));
        break;
      }

      case OpCode::kDeref: {
        const Value& in = regs[ins.a];
        if (!in.is_oid()) {
          return Fail(Status::RuntimeError("deref on non-oid value"));
        }
        ++stats_->derefs;
        Result<Value> d = db_->Deref(in.oid_value());
        if (!d.ok()) return Fail(d.status());
        regs[ins.dst] = std::move(*d);
        break;
      }

      case OpCode::kUnary: {
        Result<Value> r =
            ApplyUnOp(static_cast<UnOp>(ins.flag), regs[ins.a]);
        if (!r.ok()) return Fail(r.status());
        regs[ins.dst] = std::move(*r);
        break;
      }

      case OpCode::kBinary: {
        const Value& l = regs[ins.a];
        const Value& r = regs[ins.b];
        BinOp op = static_cast<BinOp>(ins.flag);
        // Inline fast paths; everything else shares ApplyBinOp with the
        // interpreter (the fast paths are semantically identical).
        bool done = true;
        Value out;
        switch (op) {
          case BinOp::kEq: out = Value::Bool(l == r); break;
          case BinOp::kNe: out = Value::Bool(l != r); break;
          case BinOp::kLt: out = Value::Bool(l.Compare(r) < 0); break;
          case BinOp::kLe: out = Value::Bool(l.Compare(r) <= 0); break;
          case BinOp::kGt: out = Value::Bool(l.Compare(r) > 0); break;
          case BinOp::kGe: out = Value::Bool(l.Compare(r) >= 0); break;
          case BinOp::kAdd:
            if (l.is_int() && r.is_int()) {
              out = Value::Int(l.int_value() + r.int_value());
            } else {
              done = false;
            }
            break;
          case BinOp::kSub:
            if (l.is_int() && r.is_int()) {
              out = Value::Int(l.int_value() - r.int_value());
            } else {
              done = false;
            }
            break;
          case BinOp::kMul:
            if (l.is_int() && r.is_int()) {
              out = Value::Int(l.int_value() * r.int_value());
            } else {
              done = false;
            }
            break;
          default:
            done = false;
            break;
        }
        if (!done) {
          Result<Value> rv = ApplyBinOp(op, l, r);
          if (!rv.ok()) return Fail(rv.status());
          out = std::move(*rv);
        }
        regs[ins.dst] = std::move(out);
        break;
      }

      case OpCode::kAndProbe: {
        const Value& l = regs[ins.a];
        if (!l.is_bool()) {
          return Fail(Status::RuntimeError("and/or on non-bool"));
        }
        if (!l.bool_value()) {
          regs[ins.dst] = Value::Bool(false);
          pc = ins.b;
          continue;
        }
        break;
      }

      case OpCode::kOrProbe: {
        const Value& l = regs[ins.a];
        if (!l.is_bool()) {
          return Fail(Status::RuntimeError("and/or on non-bool"));
        }
        if (l.bool_value()) {
          regs[ins.dst] = Value::Bool(true);
          pc = ins.b;
          continue;
        }
        break;
      }

      case OpCode::kBoolMove: {
        const Value& r = regs[ins.a];
        if (!r.is_bool()) {
          return Fail(Status::RuntimeError("and/or on non-bool"));
        }
        regs[ins.dst] = r;
        break;
      }

      case OpCode::kQuant: {
        const Value& range = regs[ins.a];
        if (!range.is_set()) {
          return Fail(Status::RuntimeError("quantifier range not a set"));
        }
        const bool exists = ins.flag != 0;
        const size_t body_begin = pc + 1;
        const size_t body_end = body_begin + ins.c;
        bool result = !exists;
        for (const Value& x : range.elements()) {
          ++stats_->tuples_scanned;
          ++stats_->predicate_evals;
          regs[ins.b] = x;
          if (!RunRange(body_begin, body_end)) return false;
          const Value& p = regs[ins.d];
          if (!p.is_bool()) {
            return Fail(
                Status::RuntimeError("quantifier predicate not boolean"));
          }
          if (exists && p.bool_value()) {
            result = true;
            break;
          }
          if (!exists && !p.bool_value()) {
            result = false;
            break;
          }
        }
        regs[ins.dst] = Value::Bool(result);
        pc = body_end;
        continue;
      }

      case OpCode::kAggregate: {
        Result<Value> r =
            ApplyAggregate(static_cast<AggKind>(ins.flag), regs[ins.a]);
        if (!r.ok()) return Fail(r.status());
        regs[ins.dst] = std::move(*r);
        break;
      }

      case OpCode::kSetOp: {
        const Value& l = regs[ins.a];
        const Value& r = regs[ins.b];
        if (!l.is_set() || !r.is_set()) {
          static const char* kMsgs[] = {"union over non-sets",
                                        "intersect over non-sets",
                                        "difference over non-sets"};
          return Fail(Status::RuntimeError(kMsgs[ins.flag]));
        }
        regs[ins.dst] = ins.flag == 0   ? l.SetUnion(r)
                        : ins.flag == 1 ? l.SetIntersect(r)
                                        : l.SetDifference(r);
        break;
      }

      case OpCode::kMakeKey: {
        // Mirrors JoinKeyFromParts: a single part is the key itself; a
        // composite key is a tuple over the interned k0..kn-1 shape.
        if (ins.b == 1) {
          regs[ins.dst] = std::move(regs[prog_->operands[ins.a]]);
          break;
        }
        std::vector<Value> parts;
        parts.reserve(ins.b);
        for (uint32_t i = 0; i < ins.b; ++i) {
          parts.push_back(std::move(regs[prog_->operands[ins.a + i]]));
        }
        regs[ins.dst] =
            Value::TupleFromShape(prog_->shapes[ins.c], std::move(parts));
        break;
      }
    }
    ++pc;
  }
  return true;
}

BatchVm::BatchVm(const Program* prog, const Database* db, EvalStats* stats)
    : prog_(prog), db_(db), stats_(stats) {
  cols_.resize(prog->num_regs);
}

bool BatchVm::Run(size_t n) {
  ++stats_->vec_batches;
  // One program run per lane, same as the scalar Vm's one bump per
  // tuple — compiled_evals counts evaluations, not dispatches.
  stats_->compiled_evals += n;
  for (std::vector<Value>& col : cols_) {
    if (col.size() < n) col.resize(n);
  }
  if (all_lanes_.size() < n) {
    size_t old = all_lanes_.size();
    all_lanes_.resize(n);
    for (size_t i = old; i < n; ++i) {
      all_lanes_[i] = static_cast<uint32_t>(i);
    }
  }
  return RunRange(0, prog_->code.size(), all_lanes_.data(), n);
}

bool BatchVm::RunRange(size_t begin, size_t end, const uint32_t* sel,
                       size_t nsel) {
  const Instr* code = prog_->code.data();
  size_t pc = begin;
  while (pc < end) {
    const Instr& ins = code[pc];
    switch (ins.op) {
      case OpCode::kLoadConst: {
        const Value& v = prog_->consts[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) dst[sel[s]] = v;
        break;
      }

      case OpCode::kMove: {
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) dst[sel[s]] = src[sel[s]];
        break;
      }

      case OpCode::kField: {
        const std::string& name = prog_->names[ins.b];
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value* in = &src[l];
          Value derefed;
          if (in->is_oid()) {
            ++stats_->derefs;
            Result<Value> d = db_->Deref(in->oid_value());
            if (!d.ok()) return Fail(d.status());
            derefed = std::move(*d);
            in = &derefed;
          }
          if (!in->is_tuple()) {
            return Fail(Status::RuntimeError("field access '" + name +
                                             "' on non-tuple value"));
          }
          // The inline cache is shared across lanes; batches over one
          // columnar extent are monomorphic, so it hits every lane.
          const TupleShape* shape = in->tuple_shape();
          if (shape != ins.cache_shape) {
            ins.cache_shape = shape;
            ins.cache_index = shape->IndexOf(name);
          }
          if (ins.cache_index < 0) {
            return Fail(Status::RuntimeError("no field '" + name + "' in " +
                                             in->ToString()));
          }
          dst[l] = in->tuple_values()[static_cast<size_t>(ins.cache_index)];
        }
        break;
      }

      case OpCode::kProject: {
        const std::vector<std::string>& names = prog_->name_lists[ins.b];
        ShapeCache& sc = prog_->shape_caches[ins.c];
        const std::vector<Value>& src_col = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& in = src_col[l];
          if (!in.is_tuple()) {
            return Fail(
                Status::RuntimeError("tuple projection on non-tuple"));
          }
          if (in.tuple_shape() != sc.in) {
            sc.in = in.tuple_shape();
            sc.out = TupleShape::Intern(names);
            sc.index.clear();
            sc.complete = true;
            for (const std::string& n : names) {
              int i = sc.in->IndexOf(n);
              if (i < 0) sc.complete = false;
              sc.index.push_back(i);
            }
          }
          if (!sc.complete) {
            for (size_t k = 0; k < sc.index.size(); ++k) {
              if (sc.index[k] < 0) {
                return Fail(Status::RuntimeError("no field '" + names[k] +
                                                 "' in tuple"));
              }
            }
          }
          if (sc.out == sc.in) {
            dst[l] = in;
            continue;
          }
          std::vector<Value> vals;
          vals.reserve(sc.index.size());
          const std::vector<Value>& src = in.tuple_values();
          for (int i : sc.index) {
            vals.push_back(src[static_cast<size_t>(i)]);
          }
          dst[l] = Value::TupleFromShape(sc.out, std::move(vals));
        }
        break;
      }

      case OpCode::kMakeTuple: {
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          std::vector<Value> vals;
          vals.reserve(ins.b);
          for (uint32_t i = 0; i < ins.b; ++i) {
            vals.push_back(cols_[prog_->operands[ins.a + i]][l]);
          }
          dst[l] = Value::TupleFromShape(prog_->shapes[ins.c],
                                         std::move(vals));
        }
        break;
      }

      case OpCode::kConcat: {
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          Result<Value> c = ConcatTuplesChecked(cols_[ins.a][l],
                                                cols_[ins.b][l]);
          if (!c.ok()) return Fail(c.status());
          dst[l] = std::move(*c);
        }
        break;
      }

      case OpCode::kGuard: {
        const std::vector<Value>& src = cols_[ins.a];
        for (size_t s = 0; s < nsel; ++s) {
          if (!src[sel[s]].is_tuple()) {
            return Fail(Status::RuntimeError("except on non-tuple"));
          }
        }
        break;
      }

      case OpCode::kExcept: {
        const std::vector<std::string>& names = prog_->name_lists[ins.d];
        ShapeCache& sc = prog_->shape_caches[ins.c];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& base = cols_[ins.a][l];
          if (base.tuple_shape() != sc.in) {
            sc.in = base.tuple_shape();
            const TupleShape* shape = sc.in;
            sc.index.clear();
            for (const std::string& n : names) {
              int i = shape->IndexOf(n);
              if (i < 0) {
                shape = shape->ExtendedWith(n);
                i = static_cast<int>(shape->size()) - 1;
              }
              sc.index.push_back(i);
            }
            sc.out = shape;
            sc.out_size = shape->size();
          }
          std::vector<Value> vals;
          vals.reserve(sc.out_size);
          const std::vector<Value>& src = base.tuple_values();
          vals.assign(src.begin(), src.end());
          vals.resize(sc.out_size);
          for (size_t k = 0; k < sc.index.size(); ++k) {
            vals[static_cast<size_t>(sc.index[k])] =
                cols_[prog_->operands[ins.b + k]][l];
          }
          dst[l] = Value::TupleFromShape(sc.out, std::move(vals));
        }
        break;
      }

      case OpCode::kMakeSet: {
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          std::vector<Value> elems;
          elems.reserve(ins.b);
          for (uint32_t i = 0; i < ins.b; ++i) {
            elems.push_back(cols_[prog_->operands[ins.a + i]][l]);
          }
          dst[l] = Value::Set(std::move(elems));
        }
        break;
      }

      case OpCode::kDeref: {
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& in = src[l];
          if (!in.is_oid()) {
            return Fail(Status::RuntimeError("deref on non-oid value"));
          }
          ++stats_->derefs;
          Result<Value> d = db_->Deref(in.oid_value());
          if (!d.ok()) return Fail(d.status());
          dst[l] = std::move(*d);
        }
        break;
      }

      case OpCode::kUnary: {
        const UnOp op = static_cast<UnOp>(ins.flag);
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          Result<Value> r = ApplyUnOp(op, src[l]);
          if (!r.ok()) return Fail(r.status());
          dst[l] = std::move(*r);
        }
        break;
      }

      case OpCode::kBinary: {
        const BinOp op = static_cast<BinOp>(ins.flag);
        const std::vector<Value>& lc = cols_[ins.a];
        const std::vector<Value>& rc = cols_[ins.b];
        std::vector<Value>& dst = cols_[ins.dst];
        // Tight monomorphic loops for the comparison/arithmetic ops that
        // dominate predicate columns; per-lane dispatch for the rest.
        switch (op) {
          case BinOp::kEq:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l] == rc[l]);
            }
            break;
          case BinOp::kNe:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l] != rc[l]);
            }
            break;
          case BinOp::kLt:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l].Compare(rc[l]) < 0);
            }
            break;
          case BinOp::kLe:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l].Compare(rc[l]) <= 0);
            }
            break;
          case BinOp::kGt:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l].Compare(rc[l]) > 0);
            }
            break;
          case BinOp::kGe:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              dst[l] = Value::Bool(lc[l].Compare(rc[l]) >= 0);
            }
            break;
          default:
            for (size_t s = 0; s < nsel; ++s) {
              const uint32_t l = sel[s];
              const Value& lv = lc[l];
              const Value& rv = rc[l];
              if ((op == BinOp::kAdd || op == BinOp::kSub ||
                   op == BinOp::kMul) &&
                  lv.is_int() && rv.is_int()) {
                int64_t a = lv.int_value(), b = rv.int_value();
                dst[l] = Value::Int(op == BinOp::kAdd   ? a + b
                                    : op == BinOp::kSub ? a - b
                                                        : a * b);
                continue;
              }
              Result<Value> rr = ApplyBinOp(op, lv, rv);
              if (!rr.ok()) return Fail(rr.status());
              dst[l] = std::move(*rr);
            }
            break;
        }
        break;
      }

      case OpCode::kAndProbe:
      case OpCode::kOrProbe: {
        // Structured divergence: short-circuited lanes get their result
        // now, the rest run the rhs region (which ends with the
        // kBoolMove into dst) under a narrowed selection, and execution
        // rejoins at the jump target with the full selection.
        const bool is_and = ins.op == OpCode::kAndProbe;
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        std::vector<uint32_t> taken;
        taken.reserve(nsel);
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& v = src[l];
          if (!v.is_bool()) {
            return Fail(Status::RuntimeError("and/or on non-bool"));
          }
          if (v.bool_value() == is_and) {
            taken.push_back(l);
          } else {
            dst[l] = Value::Bool(!is_and);
          }
        }
        if (!taken.empty() &&
            !RunRange(pc + 1, ins.b, taken.data(), taken.size())) {
          return false;
        }
        pc = ins.b;
        continue;
      }

      case OpCode::kBoolMove: {
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& r = src[l];
          if (!r.is_bool()) {
            return Fail(Status::RuntimeError("and/or on non-bool"));
          }
          dst[l] = r;
        }
        break;
      }

      case OpCode::kQuant: {
        // The loop trip count is data-dependent, so the body runs per
        // lane with a one-lane selection — same element order, stats
        // bumps, and early exit as the scalar VM.
        const bool exists = ins.flag != 0;
        const size_t body_begin = pc + 1;
        const size_t body_end = body_begin + ins.c;
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value range = cols_[ins.a][l];
          if (!range.is_set()) {
            return Fail(Status::RuntimeError("quantifier range not a set"));
          }
          bool result = !exists;
          for (const Value& x : range.elements()) {
            ++stats_->tuples_scanned;
            ++stats_->predicate_evals;
            cols_[ins.b][l] = x;
            if (!RunRange(body_begin, body_end, &l, 1)) return false;
            const Value& p = cols_[ins.d][l];
            if (!p.is_bool()) {
              return Fail(
                  Status::RuntimeError("quantifier predicate not boolean"));
            }
            if (exists && p.bool_value()) {
              result = true;
              break;
            }
            if (!exists && !p.bool_value()) {
              result = false;
              break;
            }
          }
          cols_[ins.dst][l] = Value::Bool(result);
        }
        pc = body_end;
        continue;
      }

      case OpCode::kAggregate: {
        const AggKind kind = static_cast<AggKind>(ins.flag);
        const std::vector<Value>& src = cols_[ins.a];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          Result<Value> r = ApplyAggregate(kind, src[l]);
          if (!r.ok()) return Fail(r.status());
          dst[l] = std::move(*r);
        }
        break;
      }

      case OpCode::kSetOp: {
        const std::vector<Value>& lc = cols_[ins.a];
        const std::vector<Value>& rc = cols_[ins.b];
        std::vector<Value>& dst = cols_[ins.dst];
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          const Value& lv = lc[l];
          const Value& rv = rc[l];
          if (!lv.is_set() || !rv.is_set()) {
            static const char* kMsgs[] = {"union over non-sets",
                                          "intersect over non-sets",
                                          "difference over non-sets"};
            return Fail(Status::RuntimeError(kMsgs[ins.flag]));
          }
          dst[l] = ins.flag == 0   ? lv.SetUnion(rv)
                   : ins.flag == 1 ? lv.SetIntersect(rv)
                                   : lv.SetDifference(rv);
        }
        break;
      }

      case OpCode::kMakeKey: {
        std::vector<Value>& dst = cols_[ins.dst];
        if (ins.b == 1) {
          std::vector<Value>& src = cols_[prog_->operands[ins.a]];
          for (size_t s = 0; s < nsel; ++s) {
            const uint32_t l = sel[s];
            dst[l] = std::move(src[l]);
          }
          break;
        }
        for (size_t s = 0; s < nsel; ++s) {
          const uint32_t l = sel[s];
          std::vector<Value> parts;
          parts.reserve(ins.b);
          for (uint32_t i = 0; i < ins.b; ++i) {
            parts.push_back(std::move(cols_[prog_->operands[ins.a + i]][l]));
          }
          dst[l] = Value::TupleFromShape(prog_->shapes[ins.c],
                                         std::move(parts));
        }
        break;
      }
    }
    ++pc;
  }
  return true;
}

namespace {

std::string RegName(uint32_t r) { return StrFormat("r%u", r); }

}  // namespace

std::string Program::Disassemble() const {
  std::string out = StrFormat("program regs=%u params=%u\n", num_regs,
                              num_params);
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& ins = code[pc];
    out += StrFormat("%3zu: ", pc);
    switch (ins.op) {
      case OpCode::kLoadConst:
        out += StrFormat("const   %s <- %s", RegName(ins.dst).c_str(),
                         consts[ins.a].ToString().c_str());
        break;
      case OpCode::kMove:
        out += StrFormat("move    %s <- %s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str());
        break;
      case OpCode::kField:
        out += StrFormat("field   %s <- %s .%s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str(), names[ins.b].c_str());
        if (ins.cache_shape != nullptr && ins.cache_index >= 0) {
          out += StrFormat("@%d", ins.cache_index);
        }
        break;
      case OpCode::kProject: {
        out += StrFormat("project %s <- %s [", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str());
        const std::vector<std::string>& ns = name_lists[ins.b];
        for (size_t i = 0; i < ns.size(); ++i) {
          if (i > 0) out += ", ";
          out += ns[i];
        }
        out += "]";
        break;
      }
      case OpCode::kMakeTuple: {
        out += StrFormat("tuple   %s <- (", RegName(ins.dst).c_str());
        for (uint32_t i = 0; i < ins.b; ++i) {
          if (i > 0) out += ", ";
          out += shapes[ins.c]->name(i) + " = " +
                 RegName(operands[ins.a + i]);
        }
        out += ")";
        break;
      }
      case OpCode::kConcat:
        out += StrFormat("concat  %s <- %s o %s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str(), RegName(ins.b).c_str());
        break;
      case OpCode::kGuard:
        out += StrFormat("guard   %s is tuple", RegName(ins.a).c_str());
        break;
      case OpCode::kExcept: {
        out += StrFormat("except  %s <- %s (", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str());
        const std::vector<std::string>& ns = name_lists[ins.d];
        for (size_t i = 0; i < ns.size(); ++i) {
          if (i > 0) out += ", ";
          out += ns[i] + " = " + RegName(operands[ins.b + i]);
        }
        out += ")";
        break;
      }
      case OpCode::kMakeSet: {
        out += StrFormat("set     %s <- {", RegName(ins.dst).c_str());
        for (uint32_t i = 0; i < ins.b; ++i) {
          if (i > 0) out += ", ";
          out += RegName(operands[ins.a + i]);
        }
        out += "}";
        break;
      }
      case OpCode::kDeref:
        out += StrFormat("deref   %s <- *%s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str());
        break;
      case OpCode::kUnary:
        out += StrFormat("unary   %s <- %s %s", RegName(ins.dst).c_str(),
                         UnOpName(static_cast<UnOp>(ins.flag)),
                         RegName(ins.a).c_str());
        break;
      case OpCode::kBinary:
        out += StrFormat("binary  %s <- %s %s %s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str(),
                         BinOpName(static_cast<BinOp>(ins.flag)),
                         RegName(ins.b).c_str());
        break;
      case OpCode::kAndProbe:
        out += StrFormat("and?    %s <- %s else jump %u",
                         RegName(ins.dst).c_str(), RegName(ins.a).c_str(),
                         ins.b);
        break;
      case OpCode::kOrProbe:
        out += StrFormat("or?     %s <- %s else jump %u",
                         RegName(ins.dst).c_str(), RegName(ins.a).c_str(),
                         ins.b);
        break;
      case OpCode::kBoolMove:
        out += StrFormat("bool    %s <- %s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str());
        break;
      case OpCode::kQuant:
        out += StrFormat("%s %s <- %s in %s body=%u pred=%s",
                         ins.flag != 0 ? "exists " : "forall ",
                         RegName(ins.dst).c_str(), RegName(ins.b).c_str(),
                         RegName(ins.a).c_str(), ins.c,
                         RegName(ins.d).c_str());
        break;
      case OpCode::kAggregate:
        out += StrFormat("agg     %s <- %s(%s)", RegName(ins.dst).c_str(),
                         AggKindName(static_cast<AggKind>(ins.flag)),
                         RegName(ins.a).c_str());
        break;
      case OpCode::kSetOp: {
        static const char* kOps[] = {"union", "intersect", "minus"};
        out += StrFormat("setop   %s <- %s %s %s", RegName(ins.dst).c_str(),
                         RegName(ins.a).c_str(), kOps[ins.flag],
                         RegName(ins.b).c_str());
        break;
      }
      case OpCode::kMakeKey: {
        out += StrFormat("key     %s <- [", RegName(ins.dst).c_str());
        for (uint32_t i = 0; i < ins.b; ++i) {
          if (i > 0) out += ", ";
          out += RegName(operands[ins.a + i]);
        }
        out += "]";
        break;
      }
    }
    out += "\n";
  }
  out += StrFormat("ret %s\n", RegName(ret_slot).c_str());
  return out;
}

}  // namespace n2j
