#ifndef N2J_EXEC_PLAN_H_
#define N2J_EXEC_PLAN_H_

// Per-node physical plan annotations. The cost-based planner
// (opt/optimizer.h) fills one PlanAnnotations per query; the evaluator
// consults it through EvalOptions::plan. Expressions are immutable and
// shared, so `const Expr*` identity is a stable key for the lifetime of
// the plan.
//
// Annotations are advisory: a forced algorithm whose preconditions fail
// at runtime falls back through the same kUnsupported chain as the
// global EvalOptions::join_algorithm setting, so a wrong annotation can
// cost time but never correctness.

#include <map>
#include <string>

#include "exec/eval.h"
#include "obs/trace.h"

namespace n2j {

struct PlanAnnotation {
  /// Physical algorithm for a join-family node; kAuto = no override
  /// (the evaluator keeps its EvalOptions-wide setting).
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
  /// Estimated output cardinality; negative = not estimated. Rendered
  /// by trace spans as est= so EXPLAIN shows estimate vs. actual.
  double est_rows = -1.0;
  /// Estimated cost (calibrated ns, opt/cost.h); negative = not priced.
  double est_cost = -1.0;
  /// Planner's name for the chosen physical operator ("hash",
  /// "membership", "pnhl", ...), for plan description output.
  std::string label;
};

struct PlanAnnotations {
  std::map<const Expr*, PlanAnnotation> nodes;

  const PlanAnnotation* Find(const Expr* e) const {
    auto it = nodes.find(e);
    return it == nodes.end() ? nullptr : &it->second;
  }
};

/// Attaches the planner's estimated cardinality for `e` (if any) to an
/// operator span — the est= column of profiled explain output.
inline void AnnotateEstRows(const PlanAnnotations* plan, const Expr& e,
                            OpSpan* span) {
  if (plan == nullptr || !span->on()) return;
  const PlanAnnotation* pa = plan->Find(&e);
  if (pa != nullptr) span->EstRows(pa->est_rows);
}

}  // namespace n2j

#endif  // N2J_EXEC_PLAN_H_
