#ifndef N2J_EXEC_BYTECODE_H_
#define N2J_EXEC_BYTECODE_H_

// Slot-addressed bytecode for ADL lambda bodies.
//
// Every iterator of the algebra (map, select, the join family, the
// quantifiers) evaluates a lambda parameter once per tuple. The
// interpreter walks the ExprPtr tree and resolves every variable
// reference through a string-keyed Environment per evaluation; the
// bytecode path lowers the lambda body once per operator invocation
// (compile.h) into a flat program over a register frame:
//
//   * variable references become frame-slot reads resolved at compile
//     time (lambda parameters occupy slots 0..n-1, let-bound variables
//     get fresh slots, free variables are captured by value into the
//     constant pool);
//   * field accesses carry a one-entry inline cache mapping the
//     observed TupleShape to a field index, seeded at compile time when
//     the input shape is statically known;
//   * and/or lower to short-circuit jumps, quantifiers to a structured
//     loop opcode whose body is a pc range of the same program.
//
// The VM evaluates one tuple per Run() with a reusable register frame:
// the happy path moves Values between slots (one atomic refcount bump
// per copy) and touches no Result<>, no Environment and no heap beyond
// what the produced values themselves need. Errors are the slow path:
// they abort the whole query, so the VM just parks a Status and bails.
//
// A Program is single-consumer: it belongs to one operator invocation
// (and to one worker under morsel parallelism — workers compile their
// own copy), which is what lets the inline caches be plain mutable
// fields with no synchronization. The compiler mirrors the interpreter
// exactly — same checks, same evaluation order, same error messages —
// so compiled and interpreted evaluation are observably identical; the
// differential fuzzer holds this to bit-for-bit equality.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adl/expr.h"
#include "adl/value.h"
#include "common/result.h"
#include "storage/database.h"

namespace n2j {

struct EvalStats;

enum class OpCode : uint8_t {
  kLoadConst,  // dst = consts[a]
  kMove,       // dst = regs[a]
  kField,      // dst = regs[a].names[b]  (derefs oids; inline cache)
  kProject,    // dst = regs[a][name_lists[b]]  (shape_caches[c])
  kMakeTuple,  // dst = tuple(shapes[c]; operands[a..a+b))
  kConcat,     // dst = regs[a] o regs[b]
  kExcept,     // dst = regs[a] except name_lists[d] = operands[b..)
  kGuard,      // type check of regs[a] ahead of operand evaluation
  kMakeSet,    // dst = {operands[a..a+b)}
  kDeref,      // dst = *regs[a]
  kUnary,      // dst = UnOp(flag) regs[a]
  kBinary,     // dst = regs[a] BinOp(flag) regs[b]
  kAndProbe,   // if !regs[a] { dst = false; jump b }  (bool check)
  kOrProbe,    // if regs[a]  { dst = true;  jump b }  (bool check)
  kBoolMove,   // dst = regs[a], which must be bool
  kQuant,      // dst = exists/forall over regs[a]; body = next c instrs
  kAggregate,  // dst = AggKind(flag)(regs[a])
  kSetOp,      // dst = regs[a] ∪/∩/− regs[b]  (expr-level set operator)
  kMakeKey,    // dst = join key from operands[a..a+b)  (shapes[c])
};

/// One instruction. dst and the operand fields address registers or the
/// program's pools depending on the opcode (see OpCode). The cache
/// fields are the kField inline cache: programs are per-operator and
/// per-worker, so the cache is written without synchronization.
struct Instr {
  OpCode op;
  uint8_t flag = 0;  // BinOp / UnOp / AggKind / quantifier-exists / ...
  uint16_t dst = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t d = 0;
  mutable const TupleShape* cache_shape = nullptr;
  mutable int cache_index = -1;
};

/// Resolved projection/update plan for one observed input shape; the
/// per-instruction cache behind kProject and kExcept.
struct ShapeCache {
  const TupleShape* in = nullptr;
  const TupleShape* out = nullptr;
  // kProject: source index per output field (-1 = missing field).
  // kExcept: target index per update in the output value vector.
  std::vector<int> index;
  size_t out_size = 0;    // kExcept: output arity
  bool complete = false;  // kProject: every field present
};

/// A compiled lambda body: flat code plus the pools it addresses.
struct Program {
  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> name_lists;
  std::vector<const TupleShape*> shapes;
  std::vector<uint32_t> operands;  // gather lists (slot indices)
  // Indexed by Instr::c of kProject/kExcept; mutable per-instruction
  // caches (single-consumer, like the kField inline cache).
  mutable std::vector<ShapeCache> shape_caches;
  uint32_t num_regs = 0;
  uint32_t num_params = 0;
  uint32_t ret_slot = 0;

  /// Human-readable listing (stable format; golden-tested). Field
  /// accesses whose inline cache was seeded at compile time print the
  /// resolved index as `.name@index`.
  std::string Disassemble() const;
};

/// The evaluation frame: one register file bound to a program, reused
/// across Run() calls so per-tuple evaluation allocates nothing.
class Vm {
 public:
  Vm(const Program* prog, const Database* db, EvalStats* stats);

  void BindParam(size_t i, const Value& v) { regs_[i] = v; }
  /// Evaluates the program over the bound parameters. Returns the
  /// result slot — valid until the next Run(); the caller may move from
  /// it — or nullptr, in which case status() holds the error.
  Value* Run();
  const Status& status() const { return status_; }

 private:
  bool RunRange(size_t begin, size_t end);
  bool Fail(Status s) {
    status_ = std::move(s);
    return false;
  }

  const Program* prog_;
  const Database* db_;
  EvalStats* stats_;
  std::vector<Value> regs_;
  Status status_;
};

/// Column-batch evaluation of the same Program the scalar Vm runs: each
/// register holds a column of Values (one lane per input row) and each
/// instruction processes every *selected* lane before the next
/// instruction runs. Control flow stays structured, so divergence is a
/// selection-vector split, not a per-lane program counter:
///
///   * kAndProbe/kOrProbe partition the selection — short-circuited
///     lanes write their result immediately, the remaining lanes run
///     the rhs region with a narrowed selection, and all lanes rejoin
///     at the jump target;
///   * kQuant runs its body per lane with a one-lane selection (the
///     loop trip count is data-dependent), preserving the scalar VM's
///     per-element stats bumps and early exit.
///
/// Per-lane evaluation order within one instruction is selection order,
/// so across the whole program each lane performs exactly the
/// instruction sequence the scalar Vm would — same checks, same
/// short-circuits, same errors. Only the interleaving *across* lanes
/// differs, which is why any lane error makes the whole batch bail
/// (status() holds the first error in batch order, which may not be the
/// first in row order): callers that need exact first-error semantics
/// rerun the batch tuple-at-a-time. The vectorized shredded executor
/// (shred/vexec.cc) does exactly that.
///
/// Like the scalar Vm, a BatchVm is single-consumer and reuses its
/// column frame across Run() calls; lanes beyond the current count hold
/// stale values that are never read (the compiler's register allocation
/// is write-before-read for everything but parameters).
class BatchVm {
 public:
  BatchVm(const Program* prog, const Database* db, EvalStats* stats);

  /// Parameter column for slot i. Resize to the lane count and fill
  /// before Run (lanes beyond the filled prefix are undefined).
  std::vector<Value>& ParamColumn(size_t i) { return cols_[i]; }
  /// Evaluates all n lanes. False on any lane error — see status();
  /// column contents are then unspecified.
  bool Run(size_t n);
  /// The result column, valid until the next Run(); the caller may move
  /// from lanes [0, n).
  std::vector<Value>& ResultColumn() { return cols_[prog_->ret_slot]; }
  const Status& status() const { return status_; }

 private:
  bool RunRange(size_t begin, size_t end, const uint32_t* sel, size_t nsel);
  bool Fail(Status s) {
    status_ = std::move(s);
    return false;
  }

  const Program* prog_;
  const Database* db_;
  EvalStats* stats_;
  std::vector<std::vector<Value>> cols_;  // one column per register
  std::vector<uint32_t> all_lanes_;       // identity selection, reused
  Status status_;
};

/// Value-level semantics of the scalar operators, shared by the tree
/// interpreter and the VM so the two agree on results and error
/// messages by construction. And/or short-circuit before evaluation and
/// never reach ApplyBinOp.
Result<Value> ApplyBinOp(BinOp op, const Value& l, const Value& r);
Result<Value> ApplyUnOp(UnOp op, const Value& in);
/// Includes the "aggregate over non-set" check.
Result<Value> ApplyAggregate(AggKind kind, const Value& in);
/// Tuple concatenation surfacing attribute-name conflicts as a
/// RuntimeError (Value::ConcatTuple treats them as internal errors).
Result<Value> ConcatTuplesChecked(const Value& l, const Value& r);

/// One-entry inline cache for repeated FindField over rows that mostly
/// share one interned shape — the non-bytecode sibling of the kField
/// cache, used by fixed-attribute hot loops (PNHL build/probe).
struct FieldCursor {
  const TupleShape* shape = nullptr;
  int index = -1;

  const Value* Find(const Value& tuple, std::string_view name) {
    const TupleShape* s = tuple.tuple_shape();
    if (s != shape) {
      shape = s;
      index = s->IndexOf(name);
    }
    return index < 0 ? nullptr
                     : &tuple.tuple_values()[static_cast<size_t>(index)];
  }
};

}  // namespace n2j

#endif  // N2J_EXEC_BYTECODE_H_
