// Hash implementation for membership join predicates:
//
//   X ⊗_{x,y : f(y) ∈ x.c ∧ residual} Y            (⊗ any of ⋈, ⋉, ▷, ⊣)
//   X ⊗_{x,y : (∃v ∈ x.c · k(v) = f(y)) ∧ residual} Y
//
// Builds a hash table on f(y) over the right operand, then probes it
// once per *element* of each left tuple's set attribute — |X|·fanout
// probes instead of |X|·|Y| predicate evaluations. This is the access
// pattern of the paper's Example Query 6 (σ[p : p[pid] ∈ s.parts](PART)
// under the nestjoin) and of Example Query 5's semijoin
// (∃x ∈ s.parts · x.pid = p.pid).

#include <unordered_map>

#include "adl/analysis.h"
#include "exec/compile.h"
#include "exec/eval.h"
#include "obs/trace.h"

namespace n2j {

namespace {

/// The matched membership conjunct: either `f(y) ∈ x.attr` (elem_key
/// null — probe with the element itself) or `∃v ∈ x.attr · k(v) = f(y)`
/// (probe with k(element)).
struct MembershipKey {
  ExprPtr right_key;   // f(y)
  std::string attr;    // the left set-valued attribute c
  std::string elem_var;  // v (empty for the plain ∈ form)
  ExprPtr elem_key;    // k(v) (null for the plain ∈ form)
  bool found = false;
};

bool IsLeftAttr(const ExprPtr& e, const std::string& lvar) {
  return e->kind() == ExprKind::kFieldAccess &&
         e->child(0)->kind() == ExprKind::kVar &&
         e->child(0)->name() == lvar;
}

MembershipKey FindMembershipConjunct(const std::vector<ExprPtr>& conjuncts,
                                     const std::string& lvar,
                                     const std::string& rvar,
                                     std::vector<ExprPtr>* residual) {
  MembershipKey out;
  for (const ExprPtr& c : conjuncts) {
    if (!out.found && c->kind() == ExprKind::kBinary &&
        c->bin_op() == BinOp::kIn) {
      const ExprPtr& lhs = c->child(0);
      const ExprPtr& rhs = c->child(1);
      if (IsLeftAttr(rhs, lvar) && !IsFreeIn(lvar, lhs) &&
          IsFreeIn(rvar, lhs)) {
        out.right_key = lhs;
        out.attr = rhs->name();
        out.found = true;
        continue;
      }
    }
    // ∃v ∈ x.attr · k(v) = f(y)  (either orientation of the equality).
    if (!out.found && c->kind() == ExprKind::kQuantifier &&
        c->quant_kind() == QuantKind::kExists &&
        IsLeftAttr(c->child(0), lvar) &&
        c->child(1)->kind() == ExprKind::kBinary &&
        c->child(1)->bin_op() == BinOp::kEq) {
      const std::string& v = c->var();
      ExprPtr a = c->child(1)->child(0);
      ExprPtr b = c->child(1)->child(1);
      bool a_elem = IsFreeIn(v, a) && !IsFreeIn(rvar, a) &&
                    !IsFreeIn(lvar, a);
      bool b_right = IsFreeIn(rvar, b) && !IsFreeIn(v, b) &&
                     !IsFreeIn(lvar, b);
      if (!(a_elem && b_right)) {
        std::swap(a, b);
        a_elem = IsFreeIn(v, a) && !IsFreeIn(rvar, a) && !IsFreeIn(lvar, a);
        b_right = IsFreeIn(rvar, b) && !IsFreeIn(v, b) &&
                  !IsFreeIn(lvar, b);
      }
      if (a_elem && b_right) {
        out.elem_var = v;
        out.elem_key = a;
        out.right_key = b;
        out.attr = c->child(0)->name();
        out.found = true;
        continue;
      }
    }
    residual->push_back(c);
  }
  return out;
}

}  // namespace

Result<Value> Evaluator::MembershipJoin(const Expr& e, const Value& l,
                                        const Value& r, Environment& env) {
  std::vector<ExprPtr> residual_conjuncts;
  MembershipKey key = FindMembershipConjunct(
      SplitConjuncts(e.pred()), e.var(), e.var2(), &residual_conjuncts);
  if (!key.found) {
    return Status::Unsupported("no membership conjunct");
  }
  // Committed: no kUnsupported return past conjunct recognition.
  if (opts_.trace != nullptr) {
    opts_.trace->AnnotateOpen("attr=" + key.attr);
  }

  // Build: f(y) → matching right tuples. The build side runs on this
  // evaluator (serial even under morsel parallelism).
  CompiledLambda build_key;
  if (opts_.compiled && r.set_size() > 0) {
    build_key.Compile(*this, *key.right_key, {e.var2()}, env,
                      FirstElemShape(r));
  }
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> table;
  table.reserve(r.set_size());
  for (const Value& y : r.elements()) {
    ++stats_.tuples_scanned;
    Value kv;
    if (build_key.ok()) {
      Value* k = build_key.Run(y);
      if (k == nullptr) return build_key.status();
      kv = std::move(*k);
    } else {
      if (build_key.fallback()) ++stats_.interp_fallback_evals;
      env.Push(e.var2(), y);
      Result<Value> kr = EvalNode(*key.right_key, env);
      env.Pop();
      if (!kr.ok()) return kr.status();
      kv = std::move(*kr);
    }
    ++stats_.hash_inserts;
    table[std::move(kv)].push_back(&y);
  }
  if (opts_.trace != nullptr) opts_.trace->NotePeakHash(table.size());

  ExprPtr residual = Expr::AndAll(residual_conjuncts);
  bool trivial_residual = residual_conjuncts.empty();

  // Probe-side element shape: the elements of the first left tuple's
  // set attribute seed the element-key program's inline caches.
  const TupleShape* elem_shape = nullptr;
  if (l.set_size() > 0) {
    const Value& x0 = l.elements()[0];
    if (x0.is_tuple()) {
      const Value* a = x0.FindField(key.attr);
      if (a != nullptr && a->is_set()) elem_shape = FirstElemShape(*a);
    }
  }
  // Compiles one worker frame's probe-side lambdas; also invoked for
  // the serial path (with this evaluator as the single "worker").
  auto compile_probe = [&](Evaluator& ev, Environment& wenv,
                           JoinLambdas* jl) {
    if (!opts_.compiled || l.set_size() == 0) return;
    if (key.elem_key != nullptr) {
      jl->elem_key.Compile(ev, *key.elem_key, {key.elem_var}, wenv,
                           elem_shape);
    }
    if (!trivial_residual) {
      jl->residual.Compile(ev, *residual, {e.var(), e.var2()}, wenv,
                           FirstElemShape(l));
    }
    if (e.kind() == ExprKind::kNestJoin) {
      jl->inner.Compile(ev, *e.inner(), {e.var(), e.var2()}, wenv,
                        FirstElemShape(l));
    }
  };

  // Matches for one left tuple: probe the (shared, read-only) table once
  // per set element under the given worker evaluator. With an element
  // key k(v), two distinct elements can share a key, so right tuples are
  // deduplicated.
  auto probe_one = [&](Evaluator& ev, Environment& wenv, const Value& x,
                       JoinLambdas& jl,
                       std::vector<const Value*>* matches) -> Status {
    if (!x.is_tuple()) {
      return Status::RuntimeError("join element not a tuple");
    }
    const Value* attr = x.FindField(key.attr);
    if (attr == nullptr || !attr->is_set()) {
      return Status::RuntimeError("membership attribute '" + key.attr +
                                  "' is not a set");
    }
    std::unordered_map<const Value*, bool> seen;
    wenv.Push(e.var(), x);
    for (const Value& elem : attr->elements()) {
      ++ev.stats_.hash_probes;
      Value probe = elem;
      if (key.elem_key != nullptr) {
        if (jl.elem_key.ok()) {
          Value* kv = jl.elem_key.Run(elem);
          if (kv == nullptr) {
            wenv.Pop();
            return jl.elem_key.status();
          }
          probe = std::move(*kv);
        } else {
          if (jl.elem_key.fallback()) ++ev.stats_.interp_fallback_evals;
          wenv.Push(key.elem_var, elem);
          Result<Value> kv = ev.EvalNode(*key.elem_key, wenv);
          wenv.Pop();
          if (!kv.ok()) {
            wenv.Pop();
            return kv.status();
          }
          probe = std::move(*kv);
        }
      }
      auto it = table.find(probe);
      if (it == table.end()) continue;
      for (const Value* y : it->second) {
        if (key.elem_key != nullptr) {
          auto [_, inserted] = seen.try_emplace(y, true);
          if (!inserted) continue;
        }
        if (!trivial_residual) {
          ++ev.stats_.predicate_evals;
          if (jl.residual.ok()) {
            Value* p = jl.residual.Run(x, *y);
            if (p == nullptr) {
              wenv.Pop();
              return jl.residual.status();
            }
            if (!p->is_bool()) {
              wenv.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (!p->bool_value()) continue;
          } else {
            if (jl.residual.fallback()) ++ev.stats_.interp_fallback_evals;
            wenv.Push(e.var2(), *y);
            Result<Value> p = ev.EvalNode(*residual, wenv);
            wenv.Pop();
            if (!p.ok()) {
              wenv.Pop();
              return p.status();
            }
            if (!p->is_bool()) {
              wenv.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (!p->bool_value()) continue;
          }
        }
        matches->push_back(y);
      }
    }
    wenv.Pop();
    return Status::OK();
  };

  if (opts_.num_threads > 1 && l.set_size() > 1) {
    return ParallelMembershipProbe(e, l, env, compile_probe, probe_one);
  }

  JoinLambdas jl;
  compile_probe(*this, env, &jl);
  std::vector<Value> out;
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    std::vector<const Value*> matches;
    N2J_RETURN_IF_ERROR(probe_one(*this, env, x, jl, &matches));
    N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out, &jl.inner));
  }
  return Value::Set(std::move(out));
}

// Probe-side morsel parallelism: the build table is shared read-only;
// each morsel probes its left-tuple range with a per-worker evaluator
// and emits into its own output slot, concatenated in morsel order.
Result<Value> Evaluator::ParallelMembershipProbe(
    const Expr& e, const Value& l, Environment& env,
    const std::function<void(Evaluator& worker, Environment& wenv,
                             JoinLambdas* jl)>& compile_worker,
    const std::function<Status(Evaluator& worker, Environment& wenv,
                               const Value& x, JoinLambdas& jl,
                               std::vector<const Value*>* matches)>&
        probe_one) {
  const std::vector<Value>& probe = l.elements();
  ThreadPool& tp = pool();
  tp.set_morsel_phase("membership/probe");
  const int num_workers = tp.num_workers();
  std::vector<std::unique_ptr<Evaluator>> workers = ForkWorkers(num_workers);
  std::vector<Environment> envs(static_cast<size_t>(num_workers), env);
  // Per-worker compiled frames (register frames and inline caches are
  // single-consumer), built on the coordinating thread.
  std::vector<JoinLambdas> jls(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    compile_worker(*workers[static_cast<size_t>(w)],
                   envs[static_cast<size_t>(w)],
                   &jls[static_cast<size_t>(w)]);
  }

  size_t morsel_size = PickMorselSize(probe.size(), num_workers);
  size_t num_morsels = NumMorsels(probe.size(), morsel_size);
  std::vector<std::vector<Value>> outs(num_morsels);
  Status s = tp.RunMorsels(num_morsels, [&](int w, size_t m) -> Status {
    Evaluator& ev = *workers[static_cast<size_t>(w)];
    Environment& wenv = envs[static_cast<size_t>(w)];
    JoinLambdas& jl = jls[static_cast<size_t>(w)];
    MorselRange range = MorselAt(probe.size(), morsel_size, m);
    for (size_t i = range.begin; i < range.end; ++i) {
      const Value& x = probe[i];
      ++ev.stats_.tuples_scanned;
      std::vector<const Value*> matches;
      N2J_RETURN_IF_ERROR(probe_one(ev, wenv, x, jl, &matches));
      N2J_RETURN_IF_ERROR(
          ev.EmitJoinResult(e, x, matches, wenv, &outs[m], &jl.inner));
    }
    return Status::OK();
  });
  MergeWorkerStats(workers);
  N2J_RETURN_IF_ERROR(s);

  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Value> out;
  out.reserve(total);
  for (auto& o : outs) {
    for (Value& v : o) out.push_back(std::move(v));
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
