#ifndef N2J_EXEC_MATERIALIZE_H_
#define N2J_EXEC_MATERIALIZE_H_

#include <string>

#include "adl/value.h"
#include "common/result.h"
#include "storage/database.h"

namespace n2j {

class TraceCollector;

/// The materialize operator of [BlMG93] (Section 6.2): explicitly
/// replaces an oid-valued path attribute by the referenced object, i.e.
/// follows inter-object references. Two access algorithms:
///
///  - kNaive: dereference in input order (pointer chasing). Each deref
///    touches the page holding the object; with poor locality this
///    thrashes the buffer pool.
///  - kAssembly: collect all needed oids first, sort them, fault each
///    page once, then assemble results — the generalization of a
///    pointer-based join that [BlMG93] implements ("assembly").
///
/// Page traffic is observable through Database::store().stats().
enum class MaterializeStrategy { kNaive, kAssembly };

/// For each tuple x of `input` (a set of tuples), replaces the oid in
/// attribute `ref_attr` by the dereferenced object, producing
/// x except (result_attr = object). Dangling references drop the tuple
/// when `drop_dangling`, else fail. With `trace` set, records one
/// "materialize" span (wall time and cardinalities; materialize runs
/// outside an Evaluator, so the span carries no EvalStats delta).
Result<Value> Materialize(const Database& db, const Value& input,
                          const std::string& ref_attr,
                          const std::string& result_attr,
                          MaterializeStrategy strategy,
                          bool drop_dangling = false,
                          TraceCollector* trace = nullptr);

}  // namespace n2j

#endif  // N2J_EXEC_MATERIALIZE_H_
