#ifndef N2J_EXEC_PNHL_H_
#define N2J_EXEC_PNHL_H_

#include <cstdint>
#include <string>

#include "adl/value.h"
#include "common/result.h"

namespace n2j {

class TraceCollector;

/// Statistics of one PNHL execution.
struct PnhlStats {
  uint32_t partitions = 1;       // number of build-table segments
  uint64_t build_inserts = 0;    // hash inserts over all segments
  uint64_t probe_tuples = 0;     // outer tuples probed (per segment pass)
  uint64_t probe_elements = 0;   // set-attribute elements probed
  uint64_t matches = 0;
  uint64_t peak_table_entries = 0;  // largest single segment table
};

/// Parameters of the Partitioned Nested-Hashed-Loops algorithm
/// ([DeLa92], Section 6.2): joins the set-valued attribute `set_attr` of
/// each outer tuple with the flat inner table, replacing the attribute by
/// the set of matching inner tuples (a nested natural-join):
///
///   α[x : x except (set_attr = α[e : e ∘ match(e)](x.set_attr ⋈ inner))]
///
/// Concretely, for every element e of x.`set_attr` and every inner tuple
/// t with e.`elem_key` = t.`inner_key`, the result attribute contains
/// e ∘ t (minus the duplicated key attribute of t).
struct PnhlParams {
  std::string set_attr;   // the outer set-valued attribute
  std::string elem_key;   // key field inside the set elements
  std::string inner_key;  // key field of the inner (build) table
  /// Natural-join convention: drop the (duplicated) key field of the
  /// inner tuple before concatenation. Set false when the key fields
  /// have different names and both should be kept.
  bool drop_inner_key = true;
  /// Memory budget in bytes for one hash-table segment. The inner table
  /// is split into ceil(bytes(inner)/budget) segments; the outer operand
  /// is probed once per segment and partial results are merged — exactly
  /// the structure of [DeLa92] (only the flat table can be the build
  /// table).
  size_t memory_budget = SIZE_MAX;
  /// Worker threads for segment processing. Segments are independent —
  /// each builds its own hash table and probes the whole outer operand —
  /// so they run as parallel tasks; per-segment partial results and
  /// stats are merged in segment order, making the output and counters
  /// identical to a serial run. Note that up to num_threads segment
  /// tables are resident at once, so the effective memory ceiling is
  /// num_threads × memory_budget.
  int num_threads = 1;
  /// Optional trace collector (borrowed): per-segment timestamps are
  /// recorded as worker spans ("pnhl/segment"), serial and parallel.
  TraceCollector* trace = nullptr;
};

/// Runs PNHL over materialized operands. `outer` and `inner` are sets of
/// tuples. Returns the outer set with `set_attr` replaced by the joined
/// sets.
Result<Value> PnhlJoin(const Value& outer, const Value& inner,
                       const PnhlParams& params, PnhlStats* stats);

/// The baseline the paper compares PNHL against: unnest–join–nest.
/// Computes the same result by flattening the set attribute, hash-joining
/// the flat relations, and re-nesting. Loses outer tuples with empty
/// set-valued attributes unless `keep_dangling` re-adds them (the unnest
/// bug of Section 4 — exposed as a flag so benchmarks can show it).
Result<Value> UnnestJoinNest(const Value& outer, const Value& inner,
                             const PnhlParams& params, bool keep_dangling,
                             PnhlStats* stats);

/// Naive nested-loop version of the same operation (no hashing), the
/// tuple-oriented baseline.
Result<Value> NestedLoopSetJoin(const Value& outer, const Value& inner,
                                const PnhlParams& params, PnhlStats* stats);

}  // namespace n2j

#endif  // N2J_EXEC_PNHL_H_
