#ifndef N2J_EXEC_EQUI_JOIN_H_
#define N2J_EXEC_EQUI_JOIN_H_

#include <string>
#include <vector>

#include "adl/expr.h"

namespace n2j {

/// Decomposition of a join predicate p(x, y) into hashable equi-key pairs
/// plus a residual conjunction:
///
///   p  =  (k1_l(x) = k1_r(y)) ∧ ... ∧ residual(x, y)
///
/// This is what lets the logical join operators produced by the paper's
/// rewrites ("so that the optimizer may choose from a number of different
/// join processing strategies", Section 5.1) run as hash joins.
struct EquiJoinKeys {
  std::vector<ExprPtr> left_keys;   // functions of the left variable
  std::vector<ExprPtr> right_keys;  // functions of the right variable
  std::vector<ExprPtr> residual;    // remaining conjuncts (may be empty)

  /// True when at least one equi-key pair was extracted.
  bool usable() const { return !left_keys.empty(); }
};

/// Analyzes `pred` (with bound variables `lvar`, `rvar`). A conjunct
/// `e1 = e2` becomes a key pair when one side mentions only `lvar` (plus
/// outer variables) and the other only `rvar`. Everything else lands in
/// `residual`.
EquiJoinKeys ExtractEquiKeys(const ExprPtr& pred, const std::string& lvar,
                             const std::string& rvar);

}  // namespace n2j

#endif  // N2J_EXEC_EQUI_JOIN_H_
