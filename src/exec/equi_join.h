#ifndef N2J_EXEC_EQUI_JOIN_H_
#define N2J_EXEC_EQUI_JOIN_H_

#include <string>
#include <vector>

#include "adl/expr.h"
#include "adl/value.h"

namespace n2j {

/// Decomposition of a join predicate p(x, y) into hashable equi-key pairs
/// plus a residual conjunction:
///
///   p  =  (k1_l(x) = k1_r(y)) ∧ ... ∧ residual(x, y)
///
/// This is what lets the logical join operators produced by the paper's
/// rewrites ("so that the optimizer may choose from a number of different
/// join processing strategies", Section 5.1) run as hash joins.
struct EquiJoinKeys {
  std::vector<ExprPtr> left_keys;   // functions of the left variable
  std::vector<ExprPtr> right_keys;  // functions of the right variable
  std::vector<ExprPtr> residual;    // remaining conjuncts (may be empty)

  /// True when at least one equi-key pair was extracted.
  bool usable() const { return !left_keys.empty(); }

  /// Short annotation for trace spans: "keys=2 residual=1" (the residual
  /// part is omitted when empty).
  std::string Describe() const;
};

/// Analyzes `pred` (with bound variables `lvar`, `rvar`). A conjunct
/// `e1 = e2` becomes a key pair when one side mentions only `lvar` (plus
/// outer variables) and the other only `rvar`. Everything else lands in
/// `residual`.
EquiJoinKeys ExtractEquiKeys(const ExprPtr& pred, const std::string& lvar,
                             const std::string& rvar);

/// Hash/sort key built from evaluated equi-key expressions. A single key
/// is returned bare — no tuple wrap — since join keys only ever meet
/// keys built the same way from the matching key list; composite keys
/// share one interned "k0","k1",... shape per arity.
Value JoinKeyFromParts(std::vector<Value> parts);

/// The interned "k0","k1",...,"k<n-1>" shape composite join keys use,
/// cached per arity. Exposed so the bytecode compiler can lower key
/// construction to the exact tuple JoinKeyFromParts would build.
const TupleShape* JoinKeyShape(size_t n);

}  // namespace n2j

#endif  // N2J_EXEC_EQUI_JOIN_H_
