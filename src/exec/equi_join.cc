#include "exec/equi_join.h"

#include <array>
#include <atomic>

#include "adl/analysis.h"
#include "common/str_util.h"

namespace n2j {

std::string EquiJoinKeys::Describe() const {
  std::string out = StrFormat("keys=%zu", left_keys.size());
  if (!residual.empty()) {
    out += StrFormat(" residual=%zu", residual.size());
  }
  return out;
}

EquiJoinKeys ExtractEquiKeys(const ExprPtr& pred, const std::string& lvar,
                             const std::string& rvar) {
  EquiJoinKeys out;
  for (const ExprPtr& conjunct : SplitConjuncts(pred)) {
    if (conjunct->kind() == ExprKind::kBinary &&
        conjunct->bin_op() == BinOp::kEq) {
      const ExprPtr& a = conjunct->child(0);
      const ExprPtr& b = conjunct->child(1);
      bool a_has_l = IsFreeIn(lvar, a);
      bool a_has_r = IsFreeIn(rvar, a);
      bool b_has_l = IsFreeIn(lvar, b);
      bool b_has_r = IsFreeIn(rvar, b);
      if (a_has_l && !a_has_r && b_has_r && !b_has_l) {
        out.left_keys.push_back(a);
        out.right_keys.push_back(b);
        continue;
      }
      if (b_has_l && !b_has_r && a_has_r && !a_has_l) {
        out.left_keys.push_back(b);
        out.right_keys.push_back(a);
        continue;
      }
    }
    out.residual.push_back(conjunct);
  }
  return out;
}

// Cached per arity so the per-row path never rebuilds name strings.
const TupleShape* JoinKeyShape(size_t n) {
  constexpr size_t kMaxCached = 16;
  static std::array<std::atomic<const TupleShape*>, kMaxCached> cache{};
  if (n < kMaxCached) {
    const TupleShape* s = cache[n].load(std::memory_order_acquire);
    if (s != nullptr) return s;
  }
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.push_back("k" + std::to_string(i));
  const TupleShape* s = TupleShape::Intern(std::move(names));
  if (n < kMaxCached) cache[n].store(s, std::memory_order_release);
  return s;
}

Value JoinKeyFromParts(std::vector<Value> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  const TupleShape* shape = JoinKeyShape(parts.size());
  return Value::TupleFromShape(shape, std::move(parts));
}

}  // namespace n2j
