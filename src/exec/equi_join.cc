#include "exec/equi_join.h"

#include "adl/analysis.h"

namespace n2j {

EquiJoinKeys ExtractEquiKeys(const ExprPtr& pred, const std::string& lvar,
                             const std::string& rvar) {
  EquiJoinKeys out;
  for (const ExprPtr& conjunct : SplitConjuncts(pred)) {
    if (conjunct->kind() == ExprKind::kBinary &&
        conjunct->bin_op() == BinOp::kEq) {
      const ExprPtr& a = conjunct->child(0);
      const ExprPtr& b = conjunct->child(1);
      bool a_has_l = IsFreeIn(lvar, a);
      bool a_has_r = IsFreeIn(rvar, a);
      bool b_has_l = IsFreeIn(lvar, b);
      bool b_has_r = IsFreeIn(rvar, b);
      if (a_has_l && !a_has_r && b_has_r && !b_has_l) {
        out.left_keys.push_back(a);
        out.right_keys.push_back(b);
        continue;
      }
      if (b_has_l && !b_has_r && a_has_r && !a_has_l) {
        out.left_keys.push_back(b);
        out.right_keys.push_back(a);
        continue;
      }
    }
    out.residual.push_back(conjunct);
  }
  return out;
}

}  // namespace n2j
