// Hash-based and index-based physical implementations of the join
// family, including the nestjoin (Section 6.1: "To implement the
// nestjoin, common join implementation methods like the sort-merge
// join, or the hash join can be adapted"). The evaluator dispatches here
// when the join predicate contains extractable equi keys; otherwise
// joins run as nested loops. The sort-merge variant lives in
// physical_sortmerge.cc.

#include <unordered_map>

#include "adl/analysis.h"
#include "exec/compile.h"
#include "exec/equi_join.h"
#include "exec/eval.h"
#include "obs/trace.h"
#include "storage/index.h"

namespace n2j {

Status Evaluator::EmitJoinResult(const Expr& e, const Value& x,
                                 const std::vector<const Value*>& matches,
                                 Environment& env, std::vector<Value>* out,
                                 CompiledLambda* inner) {
  switch (e.kind()) {
    case ExprKind::kJoin:
      for (const Value* y : matches) {
        N2J_ASSIGN_OR_RETURN(Value combined, ConcatTuples(x, *y));
        out->push_back(std::move(combined));
      }
      return Status::OK();
    case ExprKind::kSemiJoin:
      if (!matches.empty()) out->push_back(x);
      return Status::OK();
    case ExprKind::kAntiJoin:
      if (matches.empty()) out->push_back(x);
      return Status::OK();
    case ExprKind::kNestJoin: {
      if (!x.is_tuple()) {
        return Status::RuntimeError("nestjoin element not a tuple");
      }
      if (x.FindField(e.name()) != nullptr) {
        return Status::RuntimeError("nestjoin result attribute '" +
                                    e.name() + "' collides");
      }
      std::vector<Value> group;
      group.reserve(matches.size());
      if (inner != nullptr && inner->ok()) {
        for (const Value* y : matches) {
          Value* iv = inner->Run(x, *y);
          if (iv == nullptr) return inner->status();
          group.push_back(std::move(*iv));
        }
      } else {
        bool count_fallback = inner != nullptr && inner->fallback();
        env.Push(e.var(), x);
        for (const Value* y : matches) {
          if (count_fallback) ++stats_.interp_fallback_evals;
          env.Push(e.var2(), *y);
          Result<Value> iv = EvalNode(*e.inner(), env);
          env.Pop();
          if (!iv.ok()) {
            env.Pop();
            return iv.status();
          }
          group.push_back(std::move(iv).value());
        }
        env.Pop();
      }
      const TupleShape* shape = x.tuple_shape()->ExtendedWith(e.name());
      std::vector<Value> values = x.tuple_values();
      values.push_back(Value::Set(std::move(group)));
      out->push_back(Value::TupleFromShape(shape, std::move(values)));
      return Status::OK();
    }
    default:
      return Status::Internal("EmitJoinResult on non-join node");
  }
}

namespace {

/// Evaluates the key expressions under a binding of `var` to `row`.
Result<Value> EvalKeyTuple(Evaluator* ev, const std::vector<ExprPtr>& keys,
                           const std::string& var, const Value& row,
                           Environment& env) {
  env.Push(var, row);
  std::vector<Value> parts;
  parts.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    Result<Value> kv = ev->Eval(k, env);
    if (!kv.ok()) {
      env.Pop();
      return kv.status();
    }
    parts.push_back(std::move(kv).value());
  }
  env.Pop();
  return JoinKeyFromParts(std::move(parts));
}

}  // namespace

Result<Value> Evaluator::HashJoin(const Expr& e, const Value& l,
                                  const Value& r, Environment& env) {
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (!keys.usable()) {
    return Status::Unsupported("no equi keys in join predicate");
  }
  // Committed from here on: no kUnsupported return below, so the
  // dispatcher's span keeps this annotation.
  if (opts_.trace != nullptr) opts_.trace->AnnotateOpen(keys.Describe());
  if (opts_.num_threads > 1 && (l.set_size() > 1 || r.set_size() > 1)) {
    return ParallelHashJoin(e, l, r, env, keys);
  }

  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  JoinLambdas jl;
  if (opts_.compiled) {
    if (r.set_size() > 0) {
      jl.right_key.CompileKey(*this, keys.right_keys, e.var2(), env,
                              FirstElemShape(r));
    }
    if (l.set_size() > 0) {
      jl.left_key.CompileKey(*this, keys.left_keys, e.var(), env,
                             FirstElemShape(l));
      if (!trivial_residual) {
        jl.residual.Compile(*this, *residual, {e.var(), e.var2()}, env,
                            FirstElemShape(l));
      }
      if (e.kind() == ExprKind::kNestJoin) {
        jl.inner.Compile(*this, *e.inner(), {e.var(), e.var2()}, env,
                         FirstElemShape(l));
      }
    }
  }

  // Build phase over the right operand.
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> table;
  table.reserve(r.set_size());
  for (const Value& y : r.elements()) {
    ++stats_.tuples_scanned;
    Value key;
    if (jl.right_key.ok()) {
      Value* k = jl.right_key.Run(y);
      if (k == nullptr) return jl.right_key.status();
      key = std::move(*k);
    } else {
      if (jl.right_key.fallback()) ++stats_.interp_fallback_evals;
      N2J_ASSIGN_OR_RETURN(
          key, EvalKeyTuple(this, keys.right_keys, e.var2(), y, env));
    }
    ++stats_.hash_inserts;
    table[std::move(key)].push_back(&y);
  }
  if (opts_.trace != nullptr) opts_.trace->NotePeakHash(table.size());

  // Probe phase over the left operand. When the residual is trivial the
  // bucket is passed to EmitJoinResult by pointer — no per-probe copy of
  // the match vector.
  std::vector<Value> out;
  const std::vector<const Value*> no_matches;
  std::vector<const Value*> filtered;
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    Value key;
    if (jl.left_key.ok()) {
      Value* k = jl.left_key.Run(x);
      if (k == nullptr) return jl.left_key.status();
      key = std::move(*k);
    } else {
      if (jl.left_key.fallback()) ++stats_.interp_fallback_evals;
      N2J_ASSIGN_OR_RETURN(
          key, EvalKeyTuple(this, keys.left_keys, e.var(), x, env));
    }
    ++stats_.hash_probes;
    auto it = table.find(key);

    const std::vector<const Value*>* matches = &no_matches;
    if (it != table.end()) {
      if (trivial_residual) {
        matches = &it->second;
      } else if (jl.residual.ok()) {
        filtered.clear();
        for (const Value* y : it->second) {
          ++stats_.predicate_evals;
          Value* p = jl.residual.Run(x, *y);
          if (p == nullptr) return jl.residual.status();
          if (!p->is_bool()) {
            return Status::RuntimeError("join residual not boolean");
          }
          if (p->bool_value()) filtered.push_back(y);
        }
        matches = &filtered;
      } else {
        filtered.clear();
        bool count_fallback = jl.residual.fallback();
        env.Push(e.var(), x);
        for (const Value* y : it->second) {
          ++stats_.predicate_evals;
          if (count_fallback) ++stats_.interp_fallback_evals;
          env.Push(e.var2(), *y);
          Result<Value> p = EvalNode(*residual, env);
          env.Pop();
          if (!p.ok()) {
            env.Pop();
            return p.status();
          }
          if (!p->is_bool()) {
            env.Pop();
            return Status::RuntimeError("join residual not boolean");
          }
          if (p->bool_value()) filtered.push_back(y);
        }
        env.Pop();
        matches = &filtered;
      }
    }
    N2J_RETURN_IF_ERROR(
        EmitJoinResult(e, x, *matches, env, &out, &jl.inner));
  }
  return Value::Set(std::move(out));
}

// Morsel-driven parallel hash join (num_threads > 1). Three passes:
//
//   1. build-key evaluation — parallel morsels over the right operand,
//      each key written to its input-index slot;
//   2. hash-partitioned build — partition p owns keys with
//      hash(key) % P == p; each partition task scans the key vector in
//      input order, so bucket contents keep the serial insertion order;
//   3. probe — parallel morsels over the left operand, each morsel
//      emitting into its own output slot; slots are concatenated in
//      morsel order.
//
// Every intermediate is indexed by input position, so the result (and,
// after the per-worker merge, every EvalStats counter) is independent
// of thread scheduling.
Result<Value> Evaluator::ParallelHashJoin(const Expr& e, const Value& l,
                                          const Value& r, Environment& env,
                                          const EquiJoinKeys& keys) {
  const std::vector<Value>& build = r.elements();
  const std::vector<Value>& probe = l.elements();
  ThreadPool& tp = pool();
  const int num_workers = tp.num_workers();
  std::vector<std::unique_ptr<Evaluator>> workers = ForkWorkers(num_workers);
  std::vector<Environment> envs(static_cast<size_t>(num_workers), env);

  // One JoinLambdas per worker frame: programs own mutable register
  // frames and inline caches, so they are never shared across threads.
  // Compilation happens on the coordinating thread before any morsel
  // runs (compile touches the worker's table cache).
  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  std::vector<JoinLambdas> jls(static_cast<size_t>(num_workers));
  if (opts_.compiled) {
    for (int w = 0; w < num_workers; ++w) {
      JoinLambdas& jl = jls[static_cast<size_t>(w)];
      Evaluator& ev = *workers[static_cast<size_t>(w)];
      Environment& wenv = envs[static_cast<size_t>(w)];
      if (r.set_size() > 0) {
        jl.right_key.CompileKey(ev, keys.right_keys, e.var2(), wenv,
                                FirstElemShape(r));
      }
      if (l.set_size() > 0) {
        jl.left_key.CompileKey(ev, keys.left_keys, e.var(), wenv,
                               FirstElemShape(l));
        if (!trivial_residual) {
          jl.residual.Compile(ev, *residual, {e.var(), e.var2()}, wenv,
                              FirstElemShape(l));
        }
        if (e.kind() == ExprKind::kNestJoin) {
          jl.inner.Compile(ev, *e.inner(), {e.var(), e.var2()}, wenv,
                           FirstElemShape(l));
        }
      }
    }
  }

  // Pass 1: evaluate build keys (and their partitions) slot-per-element.
  const size_t num_partitions = static_cast<size_t>(num_workers);
  std::vector<Value> build_keys(build.size());
  std::vector<size_t> partition_of(build.size());
  size_t build_morsel = PickMorselSize(build.size(), num_workers);
  tp.set_morsel_phase("join/build-keys");
  Status s = tp.RunMorsels(
      NumMorsels(build.size(), build_morsel), [&](int w, size_t m) -> Status {
        Evaluator& ev = *workers[static_cast<size_t>(w)];
        Environment& wenv = envs[static_cast<size_t>(w)];
        JoinLambdas& jl = jls[static_cast<size_t>(w)];
        MorselRange range = MorselAt(build.size(), build_morsel, m);
        for (size_t i = range.begin; i < range.end; ++i) {
          ++ev.stats_.tuples_scanned;
          Value key;
          if (jl.right_key.ok()) {
            Value* k = jl.right_key.Run(build[i]);
            if (k == nullptr) return jl.right_key.status();
            key = std::move(*k);
          } else {
            if (jl.right_key.fallback()) ++ev.stats_.interp_fallback_evals;
            Result<Value> kr = EvalKeyTuple(&ev, keys.right_keys, e.var2(),
                                            build[i], wenv);
            if (!kr.ok()) return kr.status();
            key = std::move(*kr);
          }
          partition_of[i] = key.Hash() % num_partitions;
          build_keys[i] = std::move(key);
        }
        return Status::OK();
      });
  if (!s.ok()) {
    MergeWorkerStats(workers);
    return s;
  }

  // Pass 2: one build task per partition; bucket order = input order.
  std::vector<
      std::unordered_map<Value, std::vector<const Value*>, ValueHash>>
      tables(num_partitions);
  tp.set_morsel_phase("join/partition");
  s = tp.RunMorsels(num_partitions, [&](int, size_t p) -> Status {
    auto& table = tables[p];
    table.reserve(build.size() / num_partitions + 1);
    for (size_t i = 0; i < build.size(); ++i) {
      if (partition_of[i] != p) continue;
      table[build_keys[i]].push_back(&build[i]);
    }
    return Status::OK();
  });
  stats_.hash_inserts += build.size();
  if (!s.ok()) {
    MergeWorkerStats(workers);
    return s;
  }
  if (opts_.trace != nullptr) {
    // The partitions are resident simultaneously; their combined entry
    // count is what the serial build would have held.
    uint64_t entries = 0;
    for (const auto& t : tables) entries += t.size();
    opts_.trace->NotePeakHash(entries);
  }

  // Pass 3: probe morsels, each with its own output slot.
  size_t probe_morsel = PickMorselSize(probe.size(), num_workers);
  size_t num_morsels = NumMorsels(probe.size(), probe_morsel);
  std::vector<std::vector<Value>> outs(num_morsels);
  tp.set_morsel_phase("join/probe");
  s = tp.RunMorsels(num_morsels, [&](int w, size_t m) -> Status {
    Evaluator& ev = *workers[static_cast<size_t>(w)];
    Environment& wenv = envs[static_cast<size_t>(w)];
    JoinLambdas& jl = jls[static_cast<size_t>(w)];
    MorselRange range = MorselAt(probe.size(), probe_morsel, m);
    const std::vector<const Value*> no_matches;
    std::vector<const Value*> filtered;
    for (size_t i = range.begin; i < range.end; ++i) {
      const Value& x = probe[i];
      ++ev.stats_.tuples_scanned;
      Value key;
      if (jl.left_key.ok()) {
        Value* k = jl.left_key.Run(x);
        if (k == nullptr) return jl.left_key.status();
        key = std::move(*k);
      } else {
        if (jl.left_key.fallback()) ++ev.stats_.interp_fallback_evals;
        Result<Value> kr = EvalKeyTuple(&ev, keys.left_keys, e.var(), x, wenv);
        if (!kr.ok()) return kr.status();
        key = std::move(*kr);
      }
      ++ev.stats_.hash_probes;
      const auto& table = tables[key.Hash() % num_partitions];
      auto it = table.find(key);

      const std::vector<const Value*>* matches = &no_matches;
      if (it != table.end()) {
        if (trivial_residual) {
          matches = &it->second;
        } else if (jl.residual.ok()) {
          filtered.clear();
          for (const Value* y : it->second) {
            ++ev.stats_.predicate_evals;
            Value* p = jl.residual.Run(x, *y);
            if (p == nullptr) return jl.residual.status();
            if (!p->is_bool()) {
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) filtered.push_back(y);
          }
          matches = &filtered;
        } else {
          filtered.clear();
          bool count_fallback = jl.residual.fallback();
          wenv.Push(e.var(), x);
          for (const Value* y : it->second) {
            ++ev.stats_.predicate_evals;
            if (count_fallback) ++ev.stats_.interp_fallback_evals;
            wenv.Push(e.var2(), *y);
            Result<Value> p = ev.EvalNode(*residual, wenv);
            wenv.Pop();
            if (!p.ok()) {
              wenv.Pop();
              return p.status();
            }
            if (!p->is_bool()) {
              wenv.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) filtered.push_back(y);
          }
          wenv.Pop();
          matches = &filtered;
        }
      }
      N2J_RETURN_IF_ERROR(
          ev.EmitJoinResult(e, x, *matches, wenv, &outs[m], &jl.inner));
    }
    return Status::OK();
  });
  MergeWorkerStats(workers);
  N2J_RETURN_IF_ERROR(s);

  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Value> out;
  out.reserve(total);
  for (auto& o : outs) {
    for (Value& v : o) out.push_back(std::move(v));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::IndexJoin(const Expr& e, const Value& l,
                                   Environment& env) {
  // Preconditions: the right operand is a base table with a prebuilt
  // index on the single right key attribute, i.e. the key expression is
  // exactly y.<field>.
  const ExprPtr& right = e.child(1);
  if (right->kind() != ExprKind::kGetTable) {
    return Status::Unsupported("index join needs a base-table right side");
  }
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (keys.left_keys.size() != 1) {
    return Status::Unsupported("index join needs exactly one equi key");
  }
  const ExprPtr& rk = keys.right_keys[0];
  if (!(rk->kind() == ExprKind::kFieldAccess &&
        rk->child(0)->kind() == ExprKind::kVar &&
        rk->child(0)->name() == e.var2())) {
    return Status::Unsupported("right key is not a plain attribute");
  }
  const HashIndex* index = db_.FindIndex(right->name(), rk->name());
  if (index == nullptr) {
    return Status::Unsupported("no index on " + right->name() + "." +
                               rk->name());
  }
  const Table* table = db_.FindTable(right->name());
  N2J_CHECK(table != nullptr);
  // Committed: every return below is a real result or a real error.
  if (opts_.trace != nullptr) {
    opts_.trace->AnnotateOpen("index=" + right->name() + "." + rk->name());
  }

  std::vector<Value> out;
  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  JoinLambdas jl;
  if (opts_.compiled && l.set_size() > 0) {
    jl.left_key.CompileKey(*this, keys.left_keys, e.var(), env,
                           FirstElemShape(l));
    if (!trivial_residual) {
      jl.residual.Compile(*this, *residual, {e.var(), e.var2()}, env,
                          FirstElemShape(l));
    }
    if (e.kind() == ExprKind::kNestJoin) {
      jl.inner.Compile(*this, *e.inner(), {e.var(), e.var2()}, env,
                       FirstElemShape(l));
    }
  }
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    Value key;
    if (jl.left_key.ok()) {
      Value* k = jl.left_key.Run(x);
      if (k == nullptr) return jl.left_key.status();
      key = std::move(*k);
    } else {
      if (jl.left_key.fallback()) ++stats_.interp_fallback_evals;
      env.Push(e.var(), x);
      Result<Value> kr = EvalNode(*keys.left_keys[0], env);
      env.Pop();
      if (!kr.ok()) return kr.status();
      key = std::move(*kr);
    }
    ++stats_.index_probes;
    const std::vector<size_t>* rows = index->Lookup(key);
    std::vector<const Value*> matches;
    if (rows != nullptr) {
      for (size_t row : *rows) {
        const Value& y = table->rows()[row];
        if (!trivial_residual) {
          ++stats_.predicate_evals;
          if (jl.residual.ok()) {
            Value* p = jl.residual.Run(x, y);
            if (p == nullptr) return jl.residual.status();
            if (!p->is_bool()) {
              return Status::RuntimeError("join residual not boolean");
            }
            if (!p->bool_value()) continue;
          } else {
            if (jl.residual.fallback()) ++stats_.interp_fallback_evals;
            env.Push(e.var(), x);
            env.Push(e.var2(), y);
            Result<Value> p = EvalNode(*residual, env);
            env.Pop();
            env.Pop();
            if (!p.ok()) return p.status();
            if (!p->is_bool()) {
              return Status::RuntimeError("join residual not boolean");
            }
            if (!p->bool_value()) continue;
          }
        }
        matches.push_back(&y);
      }
    }
    N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out, &jl.inner));
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
