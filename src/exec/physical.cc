// Hash-based and index-based physical implementations of the join
// family, including the nestjoin (Section 6.1: "To implement the
// nestjoin, common join implementation methods like the sort-merge
// join, or the hash join can be adapted"). The evaluator dispatches here
// when the join predicate contains extractable equi keys; otherwise
// joins run as nested loops. The sort-merge variant lives in
// physical_sortmerge.cc.

#include <unordered_map>

#include "adl/analysis.h"
#include "exec/equi_join.h"
#include "exec/eval.h"
#include "storage/index.h"

namespace n2j {

Status Evaluator::EmitJoinResult(const Expr& e, const Value& x,
                                 const std::vector<const Value*>& matches,
                                 Environment& env, std::vector<Value>* out) {
  switch (e.kind()) {
    case ExprKind::kJoin:
      for (const Value* y : matches) {
        N2J_ASSIGN_OR_RETURN(Value combined, ConcatTuples(x, *y));
        out->push_back(std::move(combined));
      }
      return Status::OK();
    case ExprKind::kSemiJoin:
      if (!matches.empty()) out->push_back(x);
      return Status::OK();
    case ExprKind::kAntiJoin:
      if (matches.empty()) out->push_back(x);
      return Status::OK();
    case ExprKind::kNestJoin: {
      if (!x.is_tuple()) {
        return Status::RuntimeError("nestjoin element not a tuple");
      }
      if (x.FindField(e.name()) != nullptr) {
        return Status::RuntimeError("nestjoin result attribute '" +
                                    e.name() + "' collides");
      }
      std::vector<Value> group;
      group.reserve(matches.size());
      env.Push(e.var(), x);
      for (const Value* y : matches) {
        env.Push(e.var2(), *y);
        Result<Value> iv = EvalNode(*e.inner(), env);
        env.Pop();
        if (!iv.ok()) {
          env.Pop();
          return iv.status();
        }
        group.push_back(std::move(iv).value());
      }
      env.Pop();
      const TupleShape* shape = x.tuple_shape()->ExtendedWith(e.name());
      std::vector<Value> values = x.tuple_values();
      values.push_back(Value::Set(std::move(group)));
      out->push_back(Value::TupleFromShape(shape, std::move(values)));
      return Status::OK();
    }
    default:
      return Status::Internal("EmitJoinResult on non-join node");
  }
}

namespace {

/// Evaluates the key expressions under a binding of `var` to `row`.
Result<Value> EvalKeyTuple(Evaluator* ev, const std::vector<ExprPtr>& keys,
                           const std::string& var, const Value& row,
                           Environment& env) {
  env.Push(var, row);
  std::vector<Value> parts;
  parts.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    Result<Value> kv = ev->Eval(k, env);
    if (!kv.ok()) {
      env.Pop();
      return kv.status();
    }
    parts.push_back(std::move(kv).value());
  }
  env.Pop();
  return JoinKeyFromParts(std::move(parts));
}

}  // namespace

Result<Value> Evaluator::HashJoin(const Expr& e, const Value& l,
                                  const Value& r, Environment& env) {
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (!keys.usable()) {
    return Status::Unsupported("no equi keys in join predicate");
  }
  if (opts_.num_threads > 1 && (l.set_size() > 1 || r.set_size() > 1)) {
    return ParallelHashJoin(e, l, r, env, keys);
  }

  // Build phase over the right operand.
  std::unordered_map<Value, std::vector<const Value*>, ValueHash> table;
  table.reserve(r.set_size());
  for (const Value& y : r.elements()) {
    ++stats_.tuples_scanned;
    N2J_ASSIGN_OR_RETURN(
        Value key, EvalKeyTuple(this, keys.right_keys, e.var2(), y, env));
    ++stats_.hash_inserts;
    table[std::move(key)].push_back(&y);
  }

  // Probe phase over the left operand.
  std::vector<Value> out;
  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    N2J_ASSIGN_OR_RETURN(
        Value key, EvalKeyTuple(this, keys.left_keys, e.var(), x, env));
    ++stats_.hash_probes;
    auto it = table.find(key);

    std::vector<const Value*> matches;
    if (it != table.end()) {
      if (trivial_residual) {
        matches = it->second;
      } else {
        env.Push(e.var(), x);
        for (const Value* y : it->second) {
          ++stats_.predicate_evals;
          env.Push(e.var2(), *y);
          Result<Value> p = EvalNode(*residual, env);
          env.Pop();
          if (!p.ok()) {
            env.Pop();
            return p.status();
          }
          if (!p->is_bool()) {
            env.Pop();
            return Status::RuntimeError("join residual not boolean");
          }
          if (p->bool_value()) matches.push_back(y);
        }
        env.Pop();
      }
    }
    N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out));
  }
  return Value::Set(std::move(out));
}

// Morsel-driven parallel hash join (num_threads > 1). Three passes:
//
//   1. build-key evaluation — parallel morsels over the right operand,
//      each key written to its input-index slot;
//   2. hash-partitioned build — partition p owns keys with
//      hash(key) % P == p; each partition task scans the key vector in
//      input order, so bucket contents keep the serial insertion order;
//   3. probe — parallel morsels over the left operand, each morsel
//      emitting into its own output slot; slots are concatenated in
//      morsel order.
//
// Every intermediate is indexed by input position, so the result (and,
// after the per-worker merge, every EvalStats counter) is independent
// of thread scheduling.
Result<Value> Evaluator::ParallelHashJoin(const Expr& e, const Value& l,
                                          const Value& r, Environment& env,
                                          const EquiJoinKeys& keys) {
  const std::vector<Value>& build = r.elements();
  const std::vector<Value>& probe = l.elements();
  ThreadPool& tp = pool();
  const int num_workers = tp.num_workers();
  std::vector<std::unique_ptr<Evaluator>> workers = ForkWorkers(num_workers);
  std::vector<Environment> envs(static_cast<size_t>(num_workers), env);

  // Pass 1: evaluate build keys (and their partitions) slot-per-element.
  const size_t num_partitions = static_cast<size_t>(num_workers);
  std::vector<Value> build_keys(build.size());
  std::vector<size_t> partition_of(build.size());
  size_t build_morsel = PickMorselSize(build.size(), num_workers);
  Status s = tp.RunMorsels(
      NumMorsels(build.size(), build_morsel), [&](int w, size_t m) -> Status {
        Evaluator& ev = *workers[static_cast<size_t>(w)];
        Environment& wenv = envs[static_cast<size_t>(w)];
        MorselRange range = MorselAt(build.size(), build_morsel, m);
        for (size_t i = range.begin; i < range.end; ++i) {
          ++ev.stats_.tuples_scanned;
          Result<Value> key = EvalKeyTuple(&ev, keys.right_keys, e.var2(),
                                           build[i], wenv);
          if (!key.ok()) return key.status();
          partition_of[i] = key->Hash() % num_partitions;
          build_keys[i] = std::move(*key);
        }
        return Status::OK();
      });
  if (!s.ok()) {
    MergeWorkerStats(workers);
    return s;
  }

  // Pass 2: one build task per partition; bucket order = input order.
  std::vector<
      std::unordered_map<Value, std::vector<const Value*>, ValueHash>>
      tables(num_partitions);
  s = tp.RunMorsels(num_partitions, [&](int, size_t p) -> Status {
    auto& table = tables[p];
    table.reserve(build.size() / num_partitions + 1);
    for (size_t i = 0; i < build.size(); ++i) {
      if (partition_of[i] != p) continue;
      table[build_keys[i]].push_back(&build[i]);
    }
    return Status::OK();
  });
  stats_.hash_inserts += build.size();
  if (!s.ok()) {
    MergeWorkerStats(workers);
    return s;
  }

  // Pass 3: probe morsels, each with its own output slot.
  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  size_t probe_morsel = PickMorselSize(probe.size(), num_workers);
  size_t num_morsels = NumMorsels(probe.size(), probe_morsel);
  std::vector<std::vector<Value>> outs(num_morsels);
  s = tp.RunMorsels(num_morsels, [&](int w, size_t m) -> Status {
    Evaluator& ev = *workers[static_cast<size_t>(w)];
    Environment& wenv = envs[static_cast<size_t>(w)];
    MorselRange range = MorselAt(probe.size(), probe_morsel, m);
    for (size_t i = range.begin; i < range.end; ++i) {
      const Value& x = probe[i];
      ++ev.stats_.tuples_scanned;
      Result<Value> key =
          EvalKeyTuple(&ev, keys.left_keys, e.var(), x, wenv);
      if (!key.ok()) return key.status();
      ++ev.stats_.hash_probes;
      const auto& table = tables[key->Hash() % num_partitions];
      auto it = table.find(*key);

      std::vector<const Value*> matches;
      if (it != table.end()) {
        if (trivial_residual) {
          matches = it->second;
        } else {
          wenv.Push(e.var(), x);
          for (const Value* y : it->second) {
            ++ev.stats_.predicate_evals;
            wenv.Push(e.var2(), *y);
            Result<Value> p = ev.EvalNode(*residual, wenv);
            wenv.Pop();
            if (!p.ok()) {
              wenv.Pop();
              return p.status();
            }
            if (!p->is_bool()) {
              wenv.Pop();
              return Status::RuntimeError("join residual not boolean");
            }
            if (p->bool_value()) matches.push_back(y);
          }
          wenv.Pop();
        }
      }
      N2J_RETURN_IF_ERROR(ev.EmitJoinResult(e, x, matches, wenv, &outs[m]));
    }
    return Status::OK();
  });
  MergeWorkerStats(workers);
  N2J_RETURN_IF_ERROR(s);

  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Value> out;
  out.reserve(total);
  for (auto& o : outs) {
    for (Value& v : o) out.push_back(std::move(v));
  }
  return Value::Set(std::move(out));
}

Result<Value> Evaluator::IndexJoin(const Expr& e, const Value& l,
                                   Environment& env) {
  // Preconditions: the right operand is a base table with a prebuilt
  // index on the single right key attribute, i.e. the key expression is
  // exactly y.<field>.
  const ExprPtr& right = e.child(1);
  if (right->kind() != ExprKind::kGetTable) {
    return Status::Unsupported("index join needs a base-table right side");
  }
  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (keys.left_keys.size() != 1) {
    return Status::Unsupported("index join needs exactly one equi key");
  }
  const ExprPtr& rk = keys.right_keys[0];
  if (!(rk->kind() == ExprKind::kFieldAccess &&
        rk->child(0)->kind() == ExprKind::kVar &&
        rk->child(0)->name() == e.var2())) {
    return Status::Unsupported("right key is not a plain attribute");
  }
  const HashIndex* index = db_.FindIndex(right->name(), rk->name());
  if (index == nullptr) {
    return Status::Unsupported("no index on " + right->name() + "." +
                               rk->name());
  }
  const Table* table = db_.FindTable(right->name());
  N2J_CHECK(table != nullptr);

  std::vector<Value> out;
  ExprPtr residual = Expr::AndAll(keys.residual);
  bool trivial_residual = keys.residual.empty();
  for (const Value& x : l.elements()) {
    ++stats_.tuples_scanned;
    env.Push(e.var(), x);
    Result<Value> key = EvalNode(*keys.left_keys[0], env);
    if (!key.ok()) {
      env.Pop();
      return key.status();
    }
    ++stats_.index_probes;
    const std::vector<size_t>* rows = index->Lookup(*key);
    std::vector<const Value*> matches;
    if (rows != nullptr) {
      for (size_t row : *rows) {
        const Value& y = table->rows()[row];
        if (!trivial_residual) {
          ++stats_.predicate_evals;
          env.Push(e.var2(), y);
          Result<Value> p = EvalNode(*residual, env);
          env.Pop();
          if (!p.ok()) {
            env.Pop();
            return p.status();
          }
          if (!p->is_bool()) {
            env.Pop();
            return Status::RuntimeError("join residual not boolean");
          }
          if (!p->bool_value()) continue;
        }
        matches.push_back(&y);
      }
    }
    env.Pop();
    N2J_RETURN_IF_ERROR(EmitJoinResult(e, x, matches, env, &out));
  }
  return Value::Set(std::move(out));
}

}  // namespace n2j
