#include "core/engine.h"

#include "adl/printer.h"
#include "oosql/translate.h"

namespace n2j {

std::string QueryReport::Explain() const {
  std::string out;
  if (!oosql.empty()) {
    out += "OOSQL:      " + oosql + "\n";
  }
  if (translated != nullptr) {
    out += "translated: " + AlgebraStr(translated) + "\n";
  }
  if (type != nullptr) {
    out += "type:       " + type->ToString() + "\n";
  }
  if (optimized != nullptr) {
    out += "optimized:  " + AlgebraStr(optimized) + "\n";
    PrintOptions pretty;
    pretty.pretty = true;
    out += "plan:\n" + ToAlgebraString(optimized, pretty) + "\n";
  }
  if (!trace.empty()) {
    out += "rules:\n";
    for (const RuleApplication& a : trace) {
      out += "  [" + a.rule + "] " + a.detail + "\n";
    }
  }
  out += "stats:      " + exec_stats.ToString() + "\n";
  return out;
}

Result<QueryReport> QueryEngine::Translate(const std::string& oosql) const {
  QueryReport report;
  report.oosql = oosql;
  Translator translator(db_->schema(), db_);
  N2J_ASSIGN_OR_RETURN(TypedExpr typed, translator.TranslateString(oosql));
  report.translated = typed.expr;
  report.type = typed.type;
  return report;
}

Result<RewriteResult> QueryEngine::Optimize(const ExprPtr& adl) const {
  Rewriter rewriter(db_->schema(), db_, rewrite_options_);
  return rewriter.Rewrite(adl);
}

Result<QueryReport> QueryEngine::Run(const std::string& oosql) const {
  N2J_ASSIGN_OR_RETURN(QueryReport report, Translate(oosql));
  N2J_ASSIGN_OR_RETURN(RewriteResult rewritten,
                       Optimize(report.translated));
  report.optimized = rewritten.expr;
  report.trace = std::move(rewritten.trace);
  Evaluator ev(*db_, eval_options_);
  N2J_ASSIGN_OR_RETURN(report.result, ev.Eval(report.optimized));
  report.exec_stats = ev.stats();
  return report;
}

Result<QueryReport> QueryEngine::RunAdl(const ExprPtr& adl) const {
  QueryReport report;
  report.translated = adl;
  N2J_ASSIGN_OR_RETURN(RewriteResult rewritten, Optimize(adl));
  report.optimized = rewritten.expr;
  report.trace = std::move(rewritten.trace);
  Evaluator ev(*db_, eval_options_);
  N2J_ASSIGN_OR_RETURN(report.result, ev.Eval(report.optimized));
  report.exec_stats = ev.stats();
  return report;
}

}  // namespace n2j
