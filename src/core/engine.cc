#include "core/engine.h"

#include "adl/printer.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oosql/translate.h"
#include "shred/shred.h"

namespace n2j {

namespace {

double MsSince(int64_t t0_ns) {
  return static_cast<double>(MonotonicNanos() - t0_ns) / 1e6;
}

/// Records one finished query (success or error) into the process-wide
/// registry. The per-algorithm join counters are fed with Add(0) too, so
/// every instrument exists after the first query and Render() output is
/// stable across workloads.
void RecordQueryOutcome(const Result<QueryReport>& r, int64_t t_start_ns) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("n2j_queries_total").Add();
  reg.GetHistogram("n2j_query_ms").Observe(MsSince(t_start_ns));
  if (!r.ok()) {
    reg.GetCounter("n2j_query_errors_total").Add();
    return;
  }
  const EvalStats& s = r->exec_stats;
  reg.GetCounter("n2j_joins_nested_loop_total").Add(s.joins_nested_loop);
  reg.GetCounter("n2j_joins_hash_total").Add(s.joins_hash);
  reg.GetCounter("n2j_joins_sortmerge_total").Add(s.joins_sortmerge);
  reg.GetCounter("n2j_joins_index_total").Add(s.joins_index);
  reg.GetCounter("n2j_joins_membership_total").Add(s.joins_membership);
}

}  // namespace

std::string QueryReport::Explain() const {
  std::string out;
  if (!oosql.empty()) {
    out += "OOSQL:      " + oosql + "\n";
  }
  if (translated != nullptr) {
    out += "translated: " + AlgebraStr(translated) + "\n";
  }
  if (type != nullptr) {
    out += "type:       " + type->ToString() + "\n";
  }
  if (optimized != nullptr) {
    out += "optimized:  " + AlgebraStr(optimized) + "\n";
    PrintOptions pretty;
    pretty.pretty = true;
    out += "plan:\n" + ToAlgebraString(optimized, pretty) + "\n";
  }
  if (plan != nullptr) {
    out += "planner:    strategy=cost " + plan->Describe();
  }
  if (!shred_plan.empty()) {
    out += "backend:    shredded\n" + shred_plan;
  }
  if (!trace.empty()) {
    out += "rules:\n";
    for (const RuleApplication& a : trace) {
      out += "  [" + a.rule + "] " + a.detail + "\n";
    }
  }
  std::string compact = exec_stats.Compact();
  out += "stats:      " + (compact.empty() ? "(none)" : compact) + "\n";
  if (profile != nullptr && !profile->spans().empty()) {
    out += "profile:\n" + profile->Render();
  }
  return out;
}

Result<QueryReport> QueryEngine::Translate(const std::string& oosql) const {
  QueryReport report;
  report.oosql = oosql;
  Translator translator(db_->schema(), db_);
  N2J_ASSIGN_OR_RETURN(TypedExpr typed, translator.TranslateString(oosql));
  report.translated = typed.expr;
  report.type = typed.type;
  return report;
}

Result<RewriteResult> QueryEngine::Optimize(const ExprPtr& adl) const {
  Rewriter rewriter(db_->schema(), db_, rewrite_options_);
  int64_t t0 = MonotonicNanos();
  Result<RewriteResult> r = rewriter.Rewrite(adl);
  obs::MetricsRegistry::Global()
      .GetHistogram("n2j_rewrite_ms")
      .Observe(MsSince(t0));
  return r;
}

Status QueryEngine::Execute(QueryReport* report) const {
  if (eval_options_.trace != nullptr) {
    eval_options_.trace->Clear();
  }
  // Under the cost strategy, plan first: the evaluator executes the
  // planner's (possibly join-reordered) tree and dispatches each
  // join-family node on its pinned algorithm annotation.
  ExprPtr to_run = report->optimized;
  EvalOptions opts = eval_options_;
  if (planner_options_.strategy == PlanStrategy::kCost) {
    Planner planner(*db_, planner_options_);
    N2J_ASSIGN_OR_RETURN(PhysicalPlan plan,
                         planner.Plan(report->optimized));
    report->plan = std::make_shared<const PhysicalPlan>(std::move(plan));
    to_run = report->plan->root;
    opts.plan = &report->plan->annotations;
  }
  int64_t t0 = MonotonicNanos();
  // Backend dispatch is strategy-orthogonal: the shredded backend runs
  // whatever expression the rewriter/planner produced, through its own
  // flat-DAG executor (shred/shred.h).
  N2J_ASSIGN_OR_RETURN(
      report->result,
      shred::EvalWithBackend(*db_, to_run, opts, &report->exec_stats,
                             &report->shred_plan));
  obs::MetricsRegistry::Global()
      .GetHistogram("n2j_eval_ms")
      .Observe(MsSince(t0));
  report->profile = eval_options_.trace;
  return Status::OK();
}

Result<QueryReport> QueryEngine::Run(const std::string& oosql) const {
  int64_t t_start = MonotonicNanos();
  Result<QueryReport> out = [&]() -> Result<QueryReport> {
    N2J_ASSIGN_OR_RETURN(QueryReport report, Translate(oosql));
    N2J_ASSIGN_OR_RETURN(RewriteResult rewritten,
                         Optimize(report.translated));
    report.optimized = rewritten.expr;
    report.trace = std::move(rewritten.trace);
    N2J_RETURN_IF_ERROR(Execute(&report));
    return report;
  }();
  RecordQueryOutcome(out, t_start);
  return out;
}

Result<QueryReport> QueryEngine::RunAdl(const ExprPtr& adl) const {
  int64_t t_start = MonotonicNanos();
  Result<QueryReport> out = [&]() -> Result<QueryReport> {
    QueryReport report;
    report.translated = adl;
    N2J_ASSIGN_OR_RETURN(RewriteResult rewritten, Optimize(adl));
    report.optimized = rewritten.expr;
    report.trace = std::move(rewritten.trace);
    N2J_RETURN_IF_ERROR(Execute(&report));
    return report;
  }();
  RecordQueryOutcome(out, t_start);
  return out;
}

}  // namespace n2j
