#include "core/engine.h"

#include <algorithm>
#include <set>

#include "adl/printer.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/trace.h"
#include "oosql/translate.h"
#include "shred/shred.h"
#include "stats/stats.h"

namespace n2j {

namespace {

double MsSince(int64_t t0_ns) {
  return static_cast<double>(MonotonicNanos() - t0_ns) / 1e6;
}

/// Collects the names of every base extent the expression scans.
void CollectExtents(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kGetTable) out->insert(e->name());
  for (size_t i = 0; i < e->num_children(); ++i) {
    CollectExtents(e->child(i), out);
  }
}

// Estimated spans dominate the record size; a pathological plan with
// hundreds of annotated nodes should not bloat one ring slot.
constexpr size_t kMaxRecordedRoots = 16;

/// Records one finished query (success or error) into the process-wide
/// registry and the flight recorder. The per-algorithm join counters are
/// fed with Add(0) too, so every instrument exists after the first query
/// and Render() output is stable across workloads.
void RecordQueryOutcome(const Result<QueryReport>& r, int64_t t_start_ns,
                        const std::string& query_text, const Database& db,
                        const EvalOptions& eval_options,
                        const PlannerOptions& planner_options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("n2j_queries_total").Add();
  reg.GetHistogram("n2j_query_ms").Observe(MsSince(t_start_ns));
  if (r.ok()) {
    const EvalStats& s = r->exec_stats;
    reg.GetCounter("n2j_joins_nested_loop_total").Add(s.joins_nested_loop);
    reg.GetCounter("n2j_joins_hash_total").Add(s.joins_hash);
    reg.GetCounter("n2j_joins_sortmerge_total").Add(s.joins_sortmerge);
    reg.GetCounter("n2j_joins_index_total").Add(s.joins_index);
    reg.GetCounter("n2j_joins_membership_total").Add(s.joins_membership);
    reg.GetCounter("n2j_compiled_evals_total").Add(s.compiled_evals);
    reg.GetCounter("n2j_interp_fallback_evals_total")
        .Add(s.interp_fallback_evals);
    reg.GetCounter("n2j_vec_batches_total").Add(s.vec_batches);
    reg.GetCounter("n2j_vec_pipelines_total").Add(s.vec_pipelines);
    reg.GetCounter("n2j_vec_fallbacks_total").Add(s.vec_fallbacks);
  } else {
    reg.GetCounter("n2j_query_errors_total").Add();
  }

  obs::QueryLog& qlog = obs::QueryLog::Global();
  if (!qlog.enabled()) return;
  obs::QueryLogRecord rec;
  rec.query = query_text;
  rec.strategy = PlanStrategyName(planner_options.strategy);
  rec.backend =
      eval_options.backend == Backend::kShredded ? "shredded" : "nested";
  rec.threads = eval_options.num_threads;
  rec.batch_size = eval_options.vector_batch_size;
  rec.compiled = eval_options.compiled;
  rec.vectorized = eval_options.vectorized;
  rec.wall_ms = MsSince(t_start_ns);
  if (!r.ok()) {
    rec.error = r.status().ToString();
    // No translation to normalize over — hash the raw text.
    rec.query_hash = Fnv1a(query_text.data(), query_text.size());
    qlog.Append(std::move(rec));
    return;
  }

  const QueryReport& rep = *r;
  rec.rewrite_ms = rep.rewrite_ms;
  rec.eval_ms = rep.eval_ms;
  rec.stats = rep.exec_stats;
  if (rep.result.is_set()) rec.rows_out = rep.result.set_size();
  // Hash the translated algebra, not the text: two queries that differ
  // only in OOSQL formatting hash identically.
  std::string normalized =
      rep.translated != nullptr ? AlgebraStr(rep.translated) : query_text;
  rec.query_hash = Fnv1a(normalized.data(), normalized.size());

  if (rep.profile != nullptr) {
    for (const TraceSpan& s : rep.profile->spans()) {
      if (s.est_rows < 0.0) continue;
      obs::RootEstimate e;
      e.op = s.detail.empty() ? s.op : s.op + " [" + s.detail + "]";
      e.est = s.est_rows;
      e.actual = s.rows_out;
      e.q = obs::QError(s.est_rows, static_cast<double>(s.rows_out));
      rec.max_q = std::max(rec.max_q, e.q);
      rec.roots.push_back(std::move(e));
      if (rec.roots.size() >= kMaxRecordedRoots) break;
    }
  }

  // Per-extent drift: the stats snapshot the planner would price with
  // (Peek — never forces a collection scan) against the live extent
  // size. Only extents that have been analyzed at least once can drift.
  std::set<std::string> extent_names;
  CollectExtents(rep.translated, &extent_names);
  obs::DriftMonitor& drift = obs::DriftMonitor::Global();
  for (const std::string& name : extent_names) {
    std::shared_ptr<const ExtentStats> snap = db.stats().Peek(name);
    const Table* t = db.FindTable(name);
    if (snap == nullptr || t == nullptr) continue;
    obs::ExtentEstimate e;
    e.extent = name;
    e.est = snap->row_count;
    e.actual = t->size();
    e.q = obs::QError(static_cast<double>(e.est),
                      static_cast<double>(e.actual));
    rec.max_q = std::max(rec.max_q, e.q);
    drift.Observe(name, snap->version, e.q);
    rec.extents.push_back(std::move(e));
  }
  qlog.Append(std::move(rec));
}

}  // namespace

std::string QueryReport::Explain() const {
  std::string out;
  if (!oosql.empty()) {
    out += "OOSQL:      " + oosql + "\n";
  }
  if (translated != nullptr) {
    out += "translated: " + AlgebraStr(translated) + "\n";
  }
  if (type != nullptr) {
    out += "type:       " + type->ToString() + "\n";
  }
  if (optimized != nullptr) {
    out += "optimized:  " + AlgebraStr(optimized) + "\n";
    PrintOptions pretty;
    pretty.pretty = true;
    out += "plan:\n" + ToAlgebraString(optimized, pretty) + "\n";
  }
  if (plan != nullptr) {
    out += "planner:    strategy=cost " + plan->Describe();
  }
  if (!shred_plan.empty()) {
    out += "backend:    shredded\n" + shred_plan;
  }
  if (!trace.empty()) {
    out += "rules:\n";
    for (const RuleApplication& a : trace) {
      out += "  [" + a.rule + "] " + a.detail + "\n";
    }
  }
  std::string compact = exec_stats.Compact();
  out += "stats:      " + (compact.empty() ? "(none)" : compact) + "\n";
  if (profile != nullptr) {
    // One est-vs-actual audit line per planner-estimated span — the
    // EXPLAIN ANALYZE view of the same Q-errors the flight recorder
    // logs and the drift monitor aggregates.
    for (const TraceSpan& s : profile->spans()) {
      if (s.est_rows < 0.0) continue;
      std::string op = s.detail.empty() ? s.op : s.op + " [" + s.detail + "]";
      out += StrFormat("qerror:     %s est=%.0f actual=%llu q=%.2f\n",
                       op.c_str(), s.est_rows,
                       static_cast<unsigned long long>(s.rows_out),
                       obs::QError(s.est_rows,
                                   static_cast<double>(s.rows_out)));
    }
  }
  if (profile != nullptr && !profile->spans().empty()) {
    out += "profile:\n" + profile->Render();
  }
  return out;
}

Result<QueryReport> QueryEngine::Translate(const std::string& oosql) const {
  QueryReport report;
  report.oosql = oosql;
  Translator translator(db_->schema(), db_);
  N2J_ASSIGN_OR_RETURN(TypedExpr typed, translator.TranslateString(oosql));
  report.translated = typed.expr;
  report.type = typed.type;
  return report;
}

Result<RewriteResult> QueryEngine::Optimize(const ExprPtr& adl) const {
  Rewriter rewriter(db_->schema(), db_, rewrite_options_);
  int64_t t0 = MonotonicNanos();
  Result<RewriteResult> r = rewriter.Rewrite(adl);
  obs::MetricsRegistry::Global()
      .GetHistogram("n2j_rewrite_ms")
      .Observe(MsSince(t0));
  return r;
}

Status QueryEngine::Execute(QueryReport* report) const {
  if (eval_options_.trace != nullptr) {
    eval_options_.trace->Clear();
  }
  // Under the cost strategy, plan first: the evaluator executes the
  // planner's (possibly join-reordered) tree and dispatches each
  // join-family node on its pinned algorithm annotation.
  ExprPtr to_run = report->optimized;
  EvalOptions opts = eval_options_;
  if (planner_options_.strategy == PlanStrategy::kCost) {
    Planner planner(*db_, planner_options_);
    N2J_ASSIGN_OR_RETURN(PhysicalPlan plan,
                         planner.Plan(report->optimized));
    report->plan = std::make_shared<const PhysicalPlan>(std::move(plan));
    to_run = report->plan->root;
    opts.plan = &report->plan->annotations;
  }
  int64_t t0 = MonotonicNanos();
  // Backend dispatch is strategy-orthogonal: the shredded backend runs
  // whatever expression the rewriter/planner produced, through its own
  // flat-DAG executor (shred/shred.h).
  N2J_ASSIGN_OR_RETURN(
      report->result,
      shred::EvalWithBackend(*db_, to_run, opts, &report->exec_stats,
                             &report->shred_plan));
  report->eval_ms = MsSince(t0);
  obs::MetricsRegistry::Global()
      .GetHistogram("n2j_eval_ms")
      .Observe(report->eval_ms);
  report->profile = eval_options_.trace;
  return Status::OK();
}

Result<QueryReport> QueryEngine::Run(const std::string& oosql) const {
  int64_t t_start = MonotonicNanos();
  Result<QueryReport> out = [&]() -> Result<QueryReport> {
    N2J_ASSIGN_OR_RETURN(QueryReport report, Translate(oosql));
    int64_t t_rewrite = MonotonicNanos();
    N2J_ASSIGN_OR_RETURN(RewriteResult rewritten,
                         Optimize(report.translated));
    report.rewrite_ms = MsSince(t_rewrite);
    report.optimized = rewritten.expr;
    report.trace = std::move(rewritten.trace);
    N2J_RETURN_IF_ERROR(Execute(&report));
    return report;
  }();
  RecordQueryOutcome(out, t_start, oosql, *db_, eval_options_,
                     planner_options_);
  return out;
}

Result<QueryReport> QueryEngine::RunAdl(const ExprPtr& adl) const {
  int64_t t_start = MonotonicNanos();
  Result<QueryReport> out = [&]() -> Result<QueryReport> {
    QueryReport report;
    report.translated = adl;
    int64_t t_rewrite = MonotonicNanos();
    N2J_ASSIGN_OR_RETURN(RewriteResult rewritten, Optimize(adl));
    report.rewrite_ms = MsSince(t_rewrite);
    report.optimized = rewritten.expr;
    report.trace = std::move(rewritten.trace);
    N2J_RETURN_IF_ERROR(Execute(&report));
    return report;
  }();
  RecordQueryOutcome(out, t_start, AlgebraStr(adl), *db_, eval_options_,
                     planner_options_);
  return out;
}

}  // namespace n2j
