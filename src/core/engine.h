#ifndef N2J_CORE_ENGINE_H_
#define N2J_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "adl/expr.h"
#include "adl/type.h"
#include "common/result.h"
#include "exec/eval.h"
#include "opt/optimizer.h"
#include "rewrite/rewriter.h"
#include "storage/database.h"

namespace n2j {

class TraceCollector;

/// Everything the engine knows about one executed query, for explain
/// output and experiments.
struct QueryReport {
  std::string oosql;          // original query text (if it came from text)
  ExprPtr translated;         // naive ADL translation (nested loops)
  TypePtr type;               // inferred result type
  ExprPtr optimized;          // after the rewriter
  std::vector<RuleApplication> trace;  // fired rules
  /// Cost-based physical plan (PlanStrategy::kCost only; null under the
  /// paper's heuristic strategy). Owns the per-node annotations the
  /// evaluator dispatched on, plus the executed (possibly join-
  /// reordered) expression in plan->root.
  std::shared_ptr<const PhysicalPlan> plan;
  /// Shredded-backend plan description (EvalOptions::backend ==
  /// Backend::kShredded only; empty otherwise). The DAG of flat nodes
  /// the stitching executor ran — EXPLAIN's counterpart to `plan` above.
  std::string shred_plan;
  Value result;               // query result
  EvalStats exec_stats;       // operator counters of the final execution
  double rewrite_ms = 0.0;    // rewriter phase latency
  double eval_ms = 0.0;       // evaluation phase latency
  /// Operator span tree of the execution (borrowed from the engine's
  /// EvalOptions::trace collector; null when tracing was off). Makes
  /// Explain() an EXPLAIN ANALYZE: per-operator wall time,
  /// cardinalities, and stats deltas.
  const TraceCollector* profile = nullptr;

  /// Human-readable explain block.
  std::string Explain() const;
};

/// The public façade: parse OOSQL → type-check/translate to ADL →
/// rewrite per the paper's strategy → evaluate.
class QueryEngine {
 public:
  explicit QueryEngine(const Database* db,
                       RewriteOptions rewrite_options = RewriteOptions(),
                       EvalOptions eval_options = EvalOptions(),
                       PlannerOptions planner_options = PlannerOptions())
      : db_(db),
        rewrite_options_(rewrite_options),
        eval_options_(eval_options),
        planner_options_(planner_options) {}

  /// Runs an OOSQL query end to end.
  Result<QueryReport> Run(const std::string& oosql) const;

  /// Runs a hand-built ADL expression (skipping the front end).
  Result<QueryReport> RunAdl(const ExprPtr& adl) const;

  /// Translation only (parse + typecheck + lower, no rewrite/execute).
  Result<QueryReport> Translate(const std::string& oosql) const;

  /// Rewrite only.
  Result<RewriteResult> Optimize(const ExprPtr& adl) const;

  const Database& db() const { return *db_; }
  RewriteOptions& rewrite_options() { return rewrite_options_; }
  EvalOptions& eval_options() { return eval_options_; }
  PlannerOptions& planner_options() { return planner_options_; }

 private:
  /// Shared back half of Run/RunAdl: clears the trace collector (if one
  /// is configured), evaluates the optimized plan, and fills
  /// result/exec_stats/profile. Also feeds the eval-latency histogram.
  Status Execute(QueryReport* report) const;

  const Database* db_;
  RewriteOptions rewrite_options_;
  EvalOptions eval_options_;
  PlannerOptions planner_options_;
};

}  // namespace n2j

#endif  // N2J_CORE_ENGINE_H_
