// Tables 1 and 2 of the paper: rewriting set comparison operations and
// emptiness predicates into (negated) existential quantifier expressions,
// the form suitable for transformation into relational join expressions.
//
// The rewrite is applied only when the subquery side involves a base
// table: quantifier form is what enables unnesting, while set comparisons
// over clustered set-valued attributes are cheap to evaluate directly and
// are deliberately left alone (Section 3, "the unnesting of expressions
// with nested iterators having set-valued attributes as operands is not
// desirable").

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

bool IsEmptySetConst(const ExprPtr& e) {
  return e->kind() == ExprKind::kConst && e->const_value().is_set() &&
         e->const_value().set_size() == 0;
}

bool IsIntConst(const ExprPtr& e, int64_t v) {
  return e->kind() == ExprKind::kConst && e->const_value().is_int() &&
         e->const_value().int_value() == v;
}

/// Mirrors an operator so that `l op r` ≡ `r mirror(op) l`.
BinOp MirrorOp(BinOp op) {
  switch (op) {
    case BinOp::kIn: return BinOp::kContains;
    case BinOp::kContains: return BinOp::kIn;
    case BinOp::kSubset: return BinOp::kSupset;
    case BinOp::kSubsetEq: return BinOp::kSupsetEq;
    case BinOp::kSupset: return BinOp::kSubset;
    case BinOp::kSupsetEq: return BinOp::kSubsetEq;
    default: return op;
  }
}

/// ∃v ∈ range · pred
ExprPtr Ex(const std::string& v, ExprPtr range, ExprPtr pred) {
  return Expr::Quant(QuantKind::kExists, v, std::move(range),
                     std::move(pred));
}
/// ∀v ∈ range · pred
ExprPtr All(const std::string& v, ExprPtr range, ExprPtr pred) {
  return Expr::Quant(QuantKind::kForall, v, std::move(range),
                     std::move(pred));
}

}  // namespace

/// Expands `lhs op subq` per Table 1, quantifying over the subquery side
/// `subq` (assumed on the right). Fresh variable names are derived from
/// the surrounding expression to avoid capture. Exposed for the Table 1
/// benchmark and tests; the engine itself (PassSetCmp) only applies the
/// expansions that lead to a single (negated) existential quantifier over
/// the subquery — ∈ and ⊇ — since the others block the grouping path.
ExprPtr ExpandSetComparisonFull(BinOp op, const ExprPtr& lhs,
                                const ExprPtr& subq, const ExprPtr& whole) {
  std::string y = FreshVar("y", whole);
  std::string z = FreshVar("z", whole);
  std::string y2 = FreshVar("w", whole);
  switch (op) {
    case BinOp::kIn:
      // x.c ∈ Y' ≡ ∃y∈Y' · y = x.c
      return Ex(y, subq, Expr::Eq(Expr::Var(y), lhs));
    case BinOp::kSubsetEq:
      // x.c ⊆ Y' ≡ ∀z∈x.c · ∃y∈Y' · z = y
      return All(z, lhs, Ex(y, subq, Expr::Eq(Expr::Var(z), Expr::Var(y))));
    case BinOp::kSubset:
      // x.c ⊂ Y' ≡ (∀z∈x.c·∃y∈Y'·z=y) ∧ (∃y∈Y'·y∉x.c)
      return Expr::And(
          All(z, lhs, Ex(y, subq, Expr::Eq(Expr::Var(z), Expr::Var(y)))),
          Ex(y2, subq,
             Expr::Not(Expr::Bin(BinOp::kIn, Expr::Var(y2), lhs))));
    case BinOp::kEq:
      // x.c = Y' ≡ (∀z∈x.c·∃y∈Y'·z=y) ∧ (∀y∈Y'·y∈x.c)
      return Expr::And(
          All(z, lhs, Ex(y, subq, Expr::Eq(Expr::Var(z), Expr::Var(y)))),
          All(y2, subq, Expr::Bin(BinOp::kIn, Expr::Var(y2), lhs)));
    case BinOp::kSupsetEq:
      // x.c ⊇ Y' ≡ ∀y∈Y' · y ∈ x.c
      return All(y, subq, Expr::Bin(BinOp::kIn, Expr::Var(y), lhs));
    case BinOp::kSupset:
      // x.c ⊃ Y' ≡ (∀y∈Y'·y∈x.c) ∧ (∃z∈x.c·¬∃y∈Y'·z=y)
      return Expr::And(
          All(y, subq, Expr::Bin(BinOp::kIn, Expr::Var(y), lhs)),
          Ex(z, lhs,
             Expr::Not(
                 Ex(y2, subq, Expr::Eq(Expr::Var(z), Expr::Var(y2))))));
    case BinOp::kContains:
      // x.c ∋ Y' ≡ ∃z∈x.c · z = Y'   (set-of-set membership)
      return Ex(z, lhs, Expr::Eq(Expr::Var(z), subq));
    default:
      return nullptr;
  }
}

namespace {

/// The engine applies only the unnestable expansions of Table 1: those
/// whose (oriented) operator is ∈ or ⊇, which reduce to a single
/// (negated) existential quantification over the subquery side. The
/// other operators are left as set comparisons so the grouping/nestjoin
/// path (Section 5.2.2 / 6.1) can still recognize the subquery.
bool UnnestableOp(BinOp op) {
  return op == BinOp::kIn || op == BinOp::kSupsetEq;
}

ExprPtr RewriteNode(const ExprPtr& e, RewriteContext& ctx) {
  // Table 2, row 1/2: Y' = ∅ / count(Y') = 0 → ¬∃y∈Y'·true.
  // Also: isempty(Y').
  auto not_exists = [&](const ExprPtr& subq) {
    std::string v = FreshVar("y", e);
    return Expr::Not(Ex(v, subq, Expr::True()));
  };
  if (e->kind() == ExprKind::kUnary && e->un_op() == UnOp::kIsEmpty &&
      ContainsBaseTable(e->child(0))) {
    ctx.Note("Table2-IsEmpty", AlgebraStr(e));
    return not_exists(e->child(0));
  }
  if (e->kind() != ExprKind::kBinary) return nullptr;
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);

  if (e->bin_op() == BinOp::kEq || e->bin_op() == BinOp::kNe) {
    // x.c ∩ Y' = ∅ → ¬∃y∈Y'·y∈x.c  (Table 2 row 3).
    const ExprPtr* inter = nullptr;
    if (l->kind() == ExprKind::kBinary &&
        l->bin_op() == BinOp::kIntersectOp && IsEmptySetConst(r)) {
      inter = &l;
    }
    if (r->kind() == ExprKind::kBinary &&
        r->bin_op() == BinOp::kIntersectOp && IsEmptySetConst(l)) {
      inter = &r;
    }
    if (inter != nullptr) {
      const ExprPtr& a = (*inter)->child(0);
      const ExprPtr& b = (*inter)->child(1);
      const ExprPtr* subq_side = nullptr;
      const ExprPtr* other = nullptr;
      if (ContainsBaseTable(b)) {
        subq_side = &b;
        other = &a;
      } else if (ContainsBaseTable(a)) {
        subq_side = &a;
        other = &b;
      }
      if (subq_side != nullptr) {
        ctx.Note("Table2-DisjointIntersect", AlgebraStr(e));
        std::string v = FreshVar("y", e);
        ExprPtr q = Expr::Not(
            Ex(v, *subq_side, Expr::Bin(BinOp::kIn, Expr::Var(v), *other)));
        return e->bin_op() == BinOp::kEq ? q : Expr::Not(q);
      }
    }
    const ExprPtr* subq = nullptr;
    // e = ∅   or   ∅ = e
    if (IsEmptySetConst(r) && ContainsBaseTable(l)) subq = &l;
    if (IsEmptySetConst(l) && ContainsBaseTable(r)) subq = &r;
    if (subq != nullptr) {
      ctx.Note("Table2-EmptySet", AlgebraStr(e));
      ExprPtr q = not_exists(*subq);
      return e->bin_op() == BinOp::kEq ? q : Expr::Not(q);
    }
    // count(e) = 0  or  0 = count(e)
    const ExprPtr* agg = nullptr;
    if (l->kind() == ExprKind::kAggregate &&
        l->agg_kind() == AggKind::kCount && IsIntConst(r, 0)) {
      agg = &l;
    }
    if (r->kind() == ExprKind::kAggregate &&
        r->agg_kind() == AggKind::kCount && IsIntConst(l, 0)) {
      agg = &r;
    }
    if (agg != nullptr && ContainsBaseTable((*agg)->child(0))) {
      ctx.Note("Table2-CountZero", AlgebraStr(e));
      ExprPtr q = not_exists((*agg)->child(0));
      return e->bin_op() == BinOp::kEq ? q : Expr::Not(q);
    }
  }

  if (!IsSetComparisonOp(e->bin_op())) return nullptr;

  // Table 1: quantify over the side containing a base table (the
  // subquery side Y').
  if (ContainsBaseTable(r) && UnnestableOp(e->bin_op())) {
    ExprPtr out = ExpandSetComparisonFull(e->bin_op(), l, r, e);
    if (out != nullptr) {
      ctx.Note("Table1-SetCmpToQuantifier", AlgebraStr(e));
      return out;
    }
  } else if (ContainsBaseTable(l) && UnnestableOp(MirrorOp(e->bin_op()))) {
    ExprPtr out = ExpandSetComparisonFull(MirrorOp(e->bin_op()), r, l, e);
    if (out != nullptr) {
      ctx.Note("Table1-SetCmpToQuantifier(mirrored)", AlgebraStr(e));
      return out;
    }
  }
  return nullptr;
}

}  // namespace

ExprPtr PassSetCmp(const ExprPtr& e, RewriteContext& ctx) {
  return TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return RewriteNode(n, ctx); });
}

}  // namespace rewrite_internal
}  // namespace n2j
