#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

bool BindsAnyOf(const Expr& e, const std::set<std::string>& vars) {
  return (!e.var().empty() && vars.count(e.var()) > 0) ||
         (!e.var2().empty() && vars.count(e.var2()) > 0);
}

ExprPtr ReplaceRec(const ExprPtr& e, const ExprPtr& target,
                   const ExprPtr& replacement,
                   const std::set<std::string>& target_free) {
  if (e->Equals(*target)) return replacement;
  if (e->num_children() == 0) return e;
  // If this node rebinds a free variable of the target, occurrences in
  // the bound children refer to a different binding — do not replace
  // there. (Non-bound children are still fair game, but distinguishing
  // them per kind is not worth it here: skip the whole subtree.)
  if (BindsAnyOf(*e, target_free)) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  bool changed = false;
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = ReplaceRec(c, target, replacement, target_free);
    if (nc != c) changed = true;
    kids.push_back(std::move(nc));
  }
  return changed ? e->WithChildren(std::move(kids)) : e;
}

}  // namespace

ExprPtr ReplaceSubexpr(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement) {
  return ReplaceRec(e, target, replacement, FreeVars(target));
}

bool OnlyFieldAccesses(const ExprPtr& e, const std::string& var) {
  if (e->kind() == ExprKind::kVar) {
    return e->name() != var;  // a bare use found by the caller's parent
  }
  for (size_t i = 0; i < e->num_children(); ++i) {
    const ExprPtr& c = e->children()[i];
    // A Var(var) child is fine only when this node is a field access on it.
    if (c->kind() == ExprKind::kVar && c->name() == var) {
      if (!(e->kind() == ExprKind::kFieldAccess && i == 0)) return false;
      continue;
    }
    // Shadowing binder: occurrences below refer to another variable.
    if ((e->var() == var &&
         (e->kind() == ExprKind::kMap || e->kind() == ExprKind::kSelect ||
          e->kind() == ExprKind::kQuantifier ||
          e->kind() == ExprKind::kLet) &&
         i == 1)) {
      continue;
    }
    if (!OnlyFieldAccesses(c, var)) return false;
  }
  return true;
}

SubqueryShape DecomposeSubquery(const ExprPtr& e) {
  SubqueryShape shape;
  ExprPtr cur = e;
  if (cur->kind() == ExprKind::kMap) {
    shape.map_var = cur->var();
    shape.map_body = cur->child(1);
    cur = cur->child(0);
  }
  if (cur->kind() == ExprKind::kSelect) {
    shape.sel_var = cur->var();
    shape.sel_pred = cur->child(1);
    cur = cur->child(0);
  }
  // The remaining expression is the (base-table) operand.
  if (cur->kind() == ExprKind::kMap || cur->kind() == ExprKind::kSelect) {
    // Deeper stacks are handled after the simplify pass fuses them.
    return shape;
  }
  shape.table = cur;
  shape.valid = shape.map_body != nullptr || shape.sel_pred != nullptr;
  return shape;
}

}  // namespace rewrite_internal

const char* TriBoolName(TriBool t) {
  switch (t) {
    case TriBool::kFalse:
      return "false";
    case TriBool::kTrue:
      return "true";
    case TriBool::kUnknown:
      return "?";
  }
  return "?";
}

}  // namespace n2j
