// Quantifier normalization and Rule 1 of the paper.
//
// Normalization has three steps:
//  1. Range merging: ∃y∈σ[w:q](Y)·p ⇒ ∃y∈Y·q∧p (and the ∀/map duals) —
//     "the select operation is removed from the operand (the range
//     expression) of the existential quantifier" (Rewriting Example 1).
//  2. The quantifier-exchange heuristic (Rewriting Example 3): adjacent
//     same-kind quantifiers commute; move quantification over base
//     tables to the left so unnesting can reach it.
//  3. Universal-quantifier elimination: ∀v∈R·p ⇒ ¬∃v∈R·¬p for ranges
//     that involve base tables ("pushing through negation to enable
//     transformation into the antijoin operation"), plus negation normal
//     form.
//
// Rule 1 then converts per-conjunct:
//   σ[x :  ∃y∈Y·p](X) ⇒ X ⋉_{x,y:p} Y
//   σ[x : ¬∃y∈Y·p](X) ⇒ X ▷_{x,y:p} Y
// for uncorrelated base-table ranges Y.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

// ---- Step 1: range merging ---------------------------------------------

ExprPtr MergeRange(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kQuantifier) return nullptr;
  const ExprPtr& range = e->child(0);
  const ExprPtr& body = e->child(1);
  bool exists = e->quant_kind() == QuantKind::kExists;

  if (range->kind() == ExprKind::kSelect) {
    // Q v ∈ σ[w : q](R) · p
    // ∃: ∃v∈R · q[w→v] ∧ p        ∀: ∀v∈R · ¬q[w→v] ∨ p
    std::string v = FreshVar(e->var(), {range, body});
    ExprPtr q = Substitute(range->child(1), range->var(), Expr::Var(v));
    ExprPtr p = Substitute(body, e->var(), Expr::Var(v));
    ctx.Note("MergeRange-Select", AlgebraStr(e));
    ExprPtr merged = exists ? Expr::And(q, p) : Expr::Or(Expr::Not(q), p);
    return Expr::Quant(e->quant_kind(), v, range->child(0), merged);
  }
  if (range->kind() == ExprKind::kMap) {
    // Q v ∈ α[w : f](R) · p  ⇒  Q w' ∈ R · p[v → f[w→w']]
    std::string w = FreshVar(range->var(), {range, body});
    ExprPtr f = Substitute(range->child(1), range->var(), Expr::Var(w));
    ExprPtr p = Substitute(body, e->var(), f);
    ctx.Note("MergeRange-Map", AlgebraStr(e));
    return Expr::Quant(e->quant_kind(), w, range->child(0), p);
  }
  return nullptr;
}

// ---- Step 1b: extracting quantifier-independent conjuncts ----------------

/// ∃v∈R·(p ∧ q(v)) ⇒ p ∧ ∃v∈R·q(v)   when v is not free in p
/// ∀v∈R·(p ∨ q(v)) ⇒ p ∨ ∀v∈R·q(v)   (dual)
///
/// Both hold for empty ranges too (∃ over ∅ is false, making the whole
/// conjunction false either way; ∀ over ∅ is true, making the
/// disjunction true either way). Extraction exposes the independent
/// part to Rule 1's per-conjunct treatment and to selection pushdown —
/// it is what turns Example Query 5 into the paper's exact
/// `SUPPLIER ⋉ σ[color="red"](PART)` plan.
ExprPtr ExtractIndependent(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kQuantifier) return nullptr;
  bool exists = e->quant_kind() == QuantKind::kExists;
  const ExprPtr& body = e->child(1);
  // Split on ∧ for ∃ and on ∨ for ∀.
  std::vector<ExprPtr> pieces;
  if (exists) {
    pieces = SplitConjuncts(body);
  } else {
    // Flatten the top-level ∨ spine.
    std::function<void(const ExprPtr&)> split = [&](const ExprPtr& n) {
      if (n->kind() == ExprKind::kBinary && n->bin_op() == BinOp::kOr) {
        split(n->child(0));
        split(n->child(1));
      } else {
        pieces.push_back(n);
      }
    };
    split(body);
  }
  if (pieces.size() < 2) return nullptr;
  std::vector<ExprPtr> independent;
  std::vector<ExprPtr> dependent;
  for (const ExprPtr& p : pieces) {
    (IsFreeIn(e->var(), p) ? dependent : independent).push_back(p);
  }
  if (independent.empty()) return nullptr;
  // Rebuild: keep the quantifier over the dependent part (true/false if
  // none — the simplifier folds it away).
  auto combine = [&](const std::vector<ExprPtr>& parts,
                     bool conj) -> ExprPtr {
    if (parts.empty()) {
      return conj ? Expr::True() : Expr::False();
    }
    ExprPtr acc = parts[0];
    for (size_t i = 1; i < parts.size(); ++i) {
      acc = conj ? Expr::And(acc, parts[i]) : Expr::Or(acc, parts[i]);
    }
    return acc;
  };
  ctx.Note("ExtractIndependentConjuncts", AlgebraStr(e));
  ExprPtr remaining = Expr::Quant(e->quant_kind(), e->var(), e->child(0),
                                  combine(dependent, exists));
  ExprPtr outside = combine(independent, exists);
  return exists ? Expr::And(outside, remaining)
                : Expr::Or(outside, remaining);
}

// ---- Step 2: quantifier exchange ----------------------------------------

ExprPtr Exchange(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kQuantifier) return nullptr;
  const ExprPtr& inner = e->child(1);
  if (inner->kind() != ExprKind::kQuantifier) return nullptr;
  if (inner->quant_kind() != e->quant_kind()) return nullptr;
  const ExprPtr& r1 = e->child(0);
  const ExprPtr& r2 = inner->child(0);
  // Move base-table quantification outward; the inner range must not
  // depend on the outer variable.
  if (!ContainsBaseTable(r2) || ContainsBaseTable(r1)) return nullptr;
  if (IsFreeIn(e->var(), r2)) return nullptr;
  if (e->var() == inner->var()) return nullptr;  // shadowing; leave it
  // Moving the inner binder outward must not capture an outer use of its
  // name inside the other range.
  if (IsFreeIn(inner->var(), r1)) return nullptr;
  ctx.Note("ExchangeQuantifiers", AlgebraStr(e));
  return Expr::Quant(
      e->quant_kind(), inner->var(), r2,
      Expr::Quant(e->quant_kind(), e->var(), r1, inner->child(1)));
}

// ---- Step 3: ∀ elimination and negation normal form ---------------------

ExprPtr PushNegation(const ExprPtr& e, RewriteContext& ctx) {
  // ∀v∈R·p ⇒ ¬∃v∈R·¬p when R involves a base table (so Rule 1's antijoin
  // can fire). Universal quantification over set-valued attributes stays.
  if (e->kind() == ExprKind::kQuantifier &&
      e->quant_kind() == QuantKind::kForall &&
      ContainsBaseTable(e->child(0))) {
    ctx.Note("ForallToNegatedExists", AlgebraStr(e));
    return Expr::Not(Expr::Quant(QuantKind::kExists, e->var(), e->child(0),
                                 Expr::Not(e->child(1))));
  }
  if (e->kind() != ExprKind::kUnary || e->un_op() != UnOp::kNot) {
    return nullptr;
  }
  const ExprPtr& a = e->child(0);
  switch (a->kind()) {
    case ExprKind::kUnary:
      if (a->un_op() == UnOp::kNot) return a->child(0);  // ¬¬p
      return nullptr;
    case ExprKind::kBinary:
      switch (a->bin_op()) {
        case BinOp::kAnd:  // De Morgan
          return Expr::Or(Expr::Not(a->child(0)), Expr::Not(a->child(1)));
        case BinOp::kOr:
          return Expr::And(Expr::Not(a->child(0)), Expr::Not(a->child(1)));
        case BinOp::kEq:
          return Expr::Bin(BinOp::kNe, a->child(0), a->child(1));
        case BinOp::kNe:
          return Expr::Bin(BinOp::kEq, a->child(0), a->child(1));
        case BinOp::kLt:
          return Expr::Bin(BinOp::kGe, a->child(0), a->child(1));
        case BinOp::kLe:
          return Expr::Bin(BinOp::kGt, a->child(0), a->child(1));
        case BinOp::kGt:
          return Expr::Bin(BinOp::kLe, a->child(0), a->child(1));
        case BinOp::kGe:
          return Expr::Bin(BinOp::kLt, a->child(0), a->child(1));
        default:
          return nullptr;
      }
    case ExprKind::kQuantifier:
      // ¬∀v∈R·p ⇒ ∃v∈R·¬p (any range). ¬∃ stays — it is the antijoin
      // form.
      if (a->quant_kind() == QuantKind::kForall) {
        return Expr::Quant(QuantKind::kExists, a->var(), a->child(0),
                           Expr::Not(a->child(1)));
      }
      return nullptr;
    default:
      return nullptr;
  }
}

// ---- Rule 1 --------------------------------------------------------------

struct QuantConjunct {
  bool negated = false;
  ExprPtr quant;  // the kQuantifier node (kExists after normalization)
};

/// Matches (¬)∃/∀ conjuncts; returns false if not quantifier-shaped.
bool MatchQuantConjunct(const ExprPtr& c, QuantConjunct* out) {
  ExprPtr cur = c;
  out->negated = false;
  while (cur->kind() == ExprKind::kUnary && cur->un_op() == UnOp::kNot) {
    out->negated = !out->negated;
    cur = cur->child(0);
  }
  if (cur->kind() != ExprKind::kQuantifier) return false;
  if (cur->quant_kind() == QuantKind::kForall) {
    // Treat ∀v∈R·p as ¬∃v∈R·¬p.
    out->negated = !out->negated;
    cur = Expr::Quant(QuantKind::kExists, cur->var(), cur->child(0),
                      Expr::Not(cur->child(1)));
  }
  out->quant = cur;
  return true;
}

ExprPtr ApplyRule1(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kSelect) return nullptr;
  const std::string& x = e->var();
  std::vector<ExprPtr> conjuncts = SplitConjuncts(e->child(1));

  ExprPtr input = e->child(0);
  std::vector<ExprPtr> residual;
  bool any = false;
  for (const ExprPtr& c : conjuncts) {
    QuantConjunct qc;
    if (MatchQuantConjunct(c, &qc)) {
      const ExprPtr& range = qc.quant->child(0);
      const ExprPtr& pred = qc.quant->child(1);
      // Rule 1 preconditions: x not free in Y, and Y involves a base
      // table (otherwise iteration over a clustered set-valued attribute
      // is left as is).
      if (!IsFreeIn(x, range) && ContainsBaseTable(range)) {
        if (qc.negated) {
          ctx.Note("Rule1-AntiJoin", AlgebraStr(c));
          input = Expr::AntiJoin(input, range, x, qc.quant->var(), pred);
        } else {
          ctx.Note("Rule1-SemiJoin", AlgebraStr(c));
          input = Expr::SemiJoin(input, range, x, qc.quant->var(), pred);
        }
        any = true;
        continue;
      }
    }
    residual.push_back(c);
  }
  if (!any) return nullptr;
  if (residual.empty()) return input;
  return Expr::Select(x, Expr::AndAll(residual), input);
}

/// Multi-level unnesting (the paper's "multiple nesting levels" future
/// work): a quantifier conjunct inside a join predicate that mentions
/// only the *right* join variable pushes into the right operand as a
/// nested semijoin/antijoin:
///
///   X ⋉_{x,y : p ∧ ∃w∈W·q(y,w)} Y   ⇒   X ⋉_{x,y : p} (Y ⋉_{y,w:q} W)
ExprPtr ApplyRule1InJoinPred(const ExprPtr& e, RewriteContext& ctx) {
  switch (e->kind()) {
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      break;
    default:
      return nullptr;
  }
  const std::string& x = e->var();
  const std::string& y = e->var2();
  std::vector<ExprPtr> conjuncts = SplitConjuncts(e->pred());
  ExprPtr right = e->child(1);
  std::vector<ExprPtr> residual;
  bool any = false;
  for (const ExprPtr& c : conjuncts) {
    QuantConjunct qc;
    if (MatchQuantConjunct(c, &qc) && !IsFreeIn(x, c)) {
      const ExprPtr& range = qc.quant->child(0);
      const ExprPtr& pred = qc.quant->child(1);
      if (!IsFreeIn(y, range) && ContainsBaseTable(range)) {
        if (qc.negated) {
          ctx.Note("Rule1-AntiJoin(inner)", AlgebraStr(c));
          right = Expr::AntiJoin(right, range, y, qc.quant->var(), pred);
        } else {
          ctx.Note("Rule1-SemiJoin(inner)", AlgebraStr(c));
          right = Expr::SemiJoin(right, range, y, qc.quant->var(), pred);
        }
        any = true;
        continue;
      }
    }
    residual.push_back(c);
  }
  if (!any) return nullptr;
  ExprPtr new_pred = Expr::AndAll(residual);
  std::vector<ExprPtr> kids = e->children();
  kids[1] = right;
  kids[2] = new_pred;
  return e->WithChildren(std::move(kids));
}

}  // namespace

ExprPtr PassQuantifierNormalize(const ExprPtr& e, RewriteContext& ctx) {
  ExprPtr cur = e;
  for (int round = 0; round < 16; ++round) {
    ExprPtr next = TransformBottomUp(
        cur, [&ctx](const ExprPtr& n) { return MergeRange(n, ctx); });
    next = TransformBottomUp(next, [&ctx](const ExprPtr& n) {
      return ExtractIndependent(n, ctx);
    });
    next = TransformBottomUp(
        next, [&ctx](const ExprPtr& n) { return Exchange(n, ctx); });
    next = TransformBottomUp(
        next, [&ctx](const ExprPtr& n) { return PushNegation(n, ctx); });
    if (next->Equals(*cur)) return next;
    cur = next;
  }
  return cur;
}

ExprPtr PassRule1(const ExprPtr& e, RewriteContext& ctx) {
  ExprPtr out = TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyRule1(n, ctx); });
  return TransformBottomUp(out, [&ctx](const ExprPtr& n) {
    return ApplyRule1InJoinPred(n, ctx);
  });
}

}  // namespace rewrite_internal
}  // namespace n2j
