// Hoisting of uncorrelated subqueries (Section 3: "uncorrelated
// subqueries simply are constants, and treated as such"). A subquery
// inside an iterator body that does not use the iteration variable is
// moved into a let-binding above the iterator, so the evaluator computes
// it once instead of once per tuple.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

bool IsHoistableKind(ExprKind k) {
  switch (k) {
    case ExprKind::kSelect:
    case ExprKind::kMap:
    case ExprKind::kProject:
    case ExprKind::kFlatten:
    case ExprKind::kNest:
    case ExprKind::kUnnest:
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
    case ExprKind::kDivide:
    case ExprKind::kAggregate:
      return true;
    default:
      return false;
  }
}

/// Finds a maximal *closed* base-table subquery inside `body` (pre-order,
/// so outermost first). Only fully-uncorrelated subqueries are hoisted —
/// they are the "constants" of Section 3. Subqueries correlated with an
/// outer (but not the innermost) variable are deliberately left in place:
/// the join rewrites (Rule 1 after range merging, grouping/nestjoin)
/// produce better plans for those than per-outer-tuple caching would.
bool FindHoistable(const ExprPtr& body, ExprPtr* out) {
  if (IsHoistableKind(body->kind()) && ContainsBaseTable(body) &&
      FreeVars(body).empty()) {
    *out = body;
    return true;
  }
  for (const ExprPtr& c : body->children()) {
    if (FindHoistable(c, out)) return true;
  }
  return false;
}

ExprPtr ApplyHoist(const ExprPtr& e, RewriteContext& ctx) {
  // Iterators whose parameter expression may contain subqueries.
  size_t body_index = 1;
  switch (e->kind()) {
    case ExprKind::kSelect:
    case ExprKind::kMap:
    case ExprKind::kQuantifier:
      body_index = 1;
      break;
    default:
      return nullptr;
  }
  const ExprPtr& body = e->child(body_index);
  // Do not hoist the whole body, only proper subexpressions.
  ExprPtr candidate;
  for (const ExprPtr& c : body->children()) {
    if (FindHoistable(c, &candidate)) break;
  }
  if (candidate == nullptr) return nullptr;

  std::string v = FreshVar("sub", e);
  ExprPtr new_body = ReplaceSubexpr(body, candidate, Expr::Var(v));
  std::vector<ExprPtr> kids = e->children();
  kids[body_index] = new_body;
  ctx.Note("HoistUncorrelated", AlgebraStr(candidate));
  return Expr::Let(v, candidate, e->WithChildren(std::move(kids)));
}

}  // namespace

ExprPtr PassHoist(const ExprPtr& e, RewriteContext& ctx) {
  return TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyHoist(n, ctx); });
}

}  // namespace rewrite_internal
}  // namespace n2j
