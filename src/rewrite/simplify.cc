#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

bool IsConstBool(const ExprPtr& e, bool value) {
  return e->kind() == ExprKind::kConst && e->const_value().is_bool() &&
         e->const_value().bool_value() == value;
}

bool IsConstTrue(const ExprPtr& e) { return IsConstBool(e, true); }
bool IsConstFalse(const ExprPtr& e) { return IsConstBool(e, false); }

bool IsEmptySetConst(const ExprPtr& e) {
  return e->kind() == ExprKind::kConst && e->const_value().is_set() &&
         e->const_value().set_size() == 0;
}

/// One local simplification step; nullptr if none applies.
ExprPtr SimplifyNode(const ExprPtr& e, RewriteContext& ctx) {
  switch (e->kind()) {
    case ExprKind::kSelect: {
      // σ[x : true](e) = e
      if (IsConstTrue(e->child(1))) {
        ctx.Note("Simplify-TrueSelect", AlgebraStr(e));
        return e->child(0);
      }
      // σ[x : false](e) = ∅
      if (IsConstFalse(e->child(1))) {
        ctx.Note("Simplify-FalseSelect", AlgebraStr(e));
        return Expr::Const(Value::EmptySet());
      }
      // σ[x : p](σ[y : q](E)) = σ[y : q ∧ p[x→y]](E)
      // (select fusion; removes one nesting level of the from-clause.)
      const ExprPtr& in = e->child(0);
      if (in->kind() == ExprKind::kSelect) {
        std::string y = in->var();
        ExprPtr q = in->child(1);
        if (IsFreeIn(y, e->child(1)) && y != e->var()) {
          // y occurs free in p as an outer binding: α-rename first.
          std::string fresh = FreshVar(y, {e->child(1), q, in->child(0)});
          q = Substitute(q, y, Expr::Var(fresh));
          y = fresh;
        }
        ExprPtr p = Substitute(e->child(1), e->var(), Expr::Var(y));
        ctx.Note("Simplify-SelectFusion", AlgebraStr(e));
        return Expr::Select(y, Expr::And(q, p), in->child(0));
      }
      // σ[x : p](α[y : f](E)) = α[y : f](σ[y : p[x→f]](E))
      // (from-clause composition removal, Example Query 2.)
      if (in->kind() == ExprKind::kMap) {
        std::string y = in->var();
        ExprPtr f = in->child(1);
        ExprPtr p = e->child(1);
        if (IsFreeIn(y, p) && y != e->var()) {
          // The map variable occurs free in p (an outer binding):
          // α-rename the map first.
          std::string fresh = FreshVar(y, {p, f, in->child(0)});
          f = Substitute(f, y, Expr::Var(fresh));
          y = fresh;
        }
        ExprPtr pushed = Substitute(p, e->var(), f);
        ctx.Note("MergeFrom-SelectOverMap", AlgebraStr(e));
        return Expr::Map(y, f, Expr::Select(y, pushed, in->child(0)));
      }
      break;
    }

    case ExprKind::kMap: {
      // α[x : x](e) = e
      if (e->child(1)->kind() == ExprKind::kVar &&
          e->child(1)->name() == e->var()) {
        ctx.Note("Simplify-IdentityMap", AlgebraStr(e));
        return e->child(0);
      }
      // α[x : f](α[y : g](E)) = α[y : f[x→g]](E)
      const ExprPtr& in = e->child(0);
      if (in->kind() == ExprKind::kMap) {
        std::string y = in->var();
        ExprPtr g = in->child(1);
        ExprPtr f = e->child(1);
        if (IsFreeIn(y, f) && y != e->var()) {
          std::string fresh = FreshVar(y, {f, g, in->child(0)});
          g = Substitute(g, y, Expr::Var(fresh));
          y = fresh;
        }
        ctx.Note("MergeFrom-MapComposition", AlgebraStr(e));
        return Expr::Map(y, Substitute(f, e->var(), g), in->child(0));
      }
      // Mapping over the empty set is empty.
      if (IsEmptySetConst(in)) {
        ctx.Note("Simplify-MapEmpty", AlgebraStr(e));
        return Expr::Const(Value::EmptySet());
      }
      break;
    }

    case ExprKind::kUnary: {
      if (e->un_op() == UnOp::kNot) {
        const ExprPtr& a = e->child(0);
        if (IsConstTrue(a)) return Expr::False();
        if (IsConstFalse(a)) return Expr::True();
        if (a->kind() == ExprKind::kUnary && a->un_op() == UnOp::kNot) {
          return a->child(0);  // ¬¬p = p
        }
      }
      break;
    }

    case ExprKind::kBinary: {
      const ExprPtr& a = e->child(0);
      const ExprPtr& b = e->child(1);
      if (e->bin_op() == BinOp::kAnd) {
        if (IsConstTrue(a)) return b;
        if (IsConstTrue(b)) return a;
        if (IsConstFalse(a) || IsConstFalse(b)) return Expr::False();
      }
      if (e->bin_op() == BinOp::kOr) {
        if (IsConstFalse(a)) return b;
        if (IsConstFalse(b)) return a;
        if (IsConstTrue(a) || IsConstTrue(b)) return Expr::True();
      }
      // Constant-fold comparisons of literals.
      if (a->kind() == ExprKind::kConst && b->kind() == ExprKind::kConst &&
          IsComparisonOp(e->bin_op())) {
        int c = a->const_value().Compare(b->const_value());
        bool r = false;
        switch (e->bin_op()) {
          case BinOp::kEq: r = c == 0; break;
          case BinOp::kNe: r = c != 0; break;
          case BinOp::kLt: r = c < 0; break;
          case BinOp::kLe: r = c <= 0; break;
          case BinOp::kGt: r = c > 0; break;
          case BinOp::kGe: r = c >= 0; break;
          default: break;
        }
        return Expr::Const(Value::Bool(r));
      }
      break;
    }

    case ExprKind::kQuantifier: {
      // Quantification over a constant empty set.
      if (IsEmptySetConst(e->child(0))) {
        ctx.Note("Simplify-QuantEmptyRange", AlgebraStr(e));
        return e->quant_kind() == QuantKind::kExists ? Expr::False()
                                                     : Expr::True();
      }
      // ∃v∈R·false = false; ∀v∈R·true = true.
      if (e->quant_kind() == QuantKind::kExists &&
          IsConstFalse(e->child(1))) {
        return Expr::False();
      }
      if (e->quant_kind() == QuantKind::kForall &&
          IsConstTrue(e->child(1))) {
        return Expr::True();
      }
      break;
    }

    case ExprKind::kLet: {
      // let v = w in b  ⇒  b[v→w]; also inline constant defs.
      const ExprPtr& def = e->child(0);
      if (def->kind() == ExprKind::kVar ||
          (def->kind() == ExprKind::kConst &&
           !def->const_value().is_set())) {
        return Substitute(e->child(1), e->var(), def);
      }
      // Drop unused lets.
      if (!IsFreeIn(e->var(), e->child(1))) return e->child(1);
      break;
    }

    case ExprKind::kFlatten: {
      // ⋃({}) = {} ; ⋃({e}) with a one-element set constructor = e.
      const ExprPtr& in = e->child(0);
      if (in->kind() == ExprKind::kSetConstruct &&
          in->num_children() == 1) {
        return in->child(0);
      }
      if (IsEmptySetConst(in)) return Expr::Const(Value::EmptySet());
      break;
    }

    default:
      break;
  }
  return nullptr;
}

}  // namespace

ExprPtr PassSimplify(const ExprPtr& e, RewriteContext& ctx) {
  // Iterate the bottom-up sweep until no rule fires (fusion rules can
  // expose each other); bounded for safety.
  ExprPtr cur = e;
  for (int round = 0; round < 16; ++round) {
    ExprPtr next = TransformBottomUp(
        cur, [&ctx](const ExprPtr& n) { return SimplifyNode(n, ctx); });
    if (next->Equals(*cur)) return next;
    cur = next;
  }
  return cur;
}

}  // namespace rewrite_internal
}  // namespace n2j
