// Unnesting by grouping (Section 5.2.2) and the nestjoin (Section 6.1).
//
// Target shape — the paper's general two-block format:
//
//   σ[x : P(x, Y')](X)   or   α[x : F(x, Y')](X)
//   with  Y' = α[v : G](σ[y : Q(x, y)](Y))        (G optional)
//
// where Y' is a correlated subquery over a base table Y.
//
// The [GaWo87] grouping technique produces the flat plan
//
//   π_SCH(X)(σ[z : P'](ν_{SCH(Y)→ys}(X ⋈_{x,y:Q} Y)))
//
// which loses dangling X tuples in the join — the Complex Object bug
// (Figure 2). Whether that is a bug depends on the static value of
// P(x, ∅) (Table 3): the plan is guaranteed correct only when P(x, ∅)
// reduces to false. The nestjoin plan
//
//   π_SCH(X)(σ[z : P'](X ⊣_{x,y : Q ; G ; ys} Y))
//
// keeps dangling tuples (concatenating them with ys = ∅) and is always
// correct.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

// ---- Static partial evaluation of P(x, ∅)  (Table 3) --------------------

struct PartialValue {
  bool known = false;
  Value value;

  static PartialValue Unknown() { return PartialValue(); }
  static PartialValue Known(Value v) {
    PartialValue pv;
    pv.known = true;
    pv.value = std::move(v);
    return pv;
  }
  bool IsEmptySet() const {
    return known && value.is_set() && value.set_size() == 0;
  }
  bool IsBool(bool b) const {
    return known && value.is_bool() && value.bool_value() == b;
  }
};

PartialValue PEval(const ExprPtr& e);

TriBool PBool(const ExprPtr& e) {
  PartialValue pv = PEval(e);
  if (pv.known && pv.value.is_bool()) {
    return pv.value.bool_value() ? TriBool::kTrue : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

PartialValue PEval(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return PartialValue::Known(e->const_value());

    case ExprKind::kUnary: {
      PartialValue a = PEval(e->child(0));
      switch (e->un_op()) {
        case UnOp::kNot:
          if (a.known && a.value.is_bool()) {
            return PartialValue::Known(Value::Bool(!a.value.bool_value()));
          }
          return PartialValue::Unknown();
        case UnOp::kNeg:
          if (a.known && a.value.is_numeric()) {
            return PartialValue::Known(
                a.value.is_int() ? Value::Int(-a.value.int_value())
                                 : Value::Double(-a.value.double_value()));
          }
          return PartialValue::Unknown();
        case UnOp::kIsEmpty:
          if (a.known && a.value.is_set()) {
            return PartialValue::Known(Value::Bool(a.value.set_size() == 0));
          }
          return PartialValue::Unknown();
      }
      return PartialValue::Unknown();
    }

    case ExprKind::kAggregate: {
      PartialValue a = PEval(e->child(0));
      if (e->agg_kind() == AggKind::kCount && a.known && a.value.is_set()) {
        return PartialValue::Known(
            Value::Int(static_cast<int64_t>(a.value.set_size())));
      }
      return PartialValue::Unknown();
    }

    case ExprKind::kQuantifier: {
      PartialValue range = PEval(e->child(0));
      if (range.IsEmptySet()) {
        // Quantification over the empty set: ∃ → false, ∀ → true.
        return PartialValue::Known(
            Value::Bool(e->quant_kind() == QuantKind::kForall));
      }
      return PartialValue::Unknown();
    }

    case ExprKind::kBinary: {
      PartialValue a = PEval(e->child(0));
      PartialValue b = PEval(e->child(1));
      BinOp op = e->bin_op();

      // Three-valued boolean connectives.
      if (op == BinOp::kAnd) {
        if (a.IsBool(false) || b.IsBool(false)) {
          return PartialValue::Known(Value::Bool(false));
        }
        if (a.IsBool(true) && b.IsBool(true)) {
          return PartialValue::Known(Value::Bool(true));
        }
        return PartialValue::Unknown();
      }
      if (op == BinOp::kOr) {
        if (a.IsBool(true) || b.IsBool(true)) {
          return PartialValue::Known(Value::Bool(true));
        }
        if (a.IsBool(false) && b.IsBool(false)) {
          return PartialValue::Known(Value::Bool(false));
        }
        return PartialValue::Unknown();
      }

      // Fully known comparisons.
      if (a.known && b.known && IsComparisonOp(op)) {
        int c = a.value.Compare(b.value);
        bool r = false;
        switch (op) {
          case BinOp::kEq: r = c == 0; break;
          case BinOp::kNe: r = c != 0; break;
          case BinOp::kLt: r = c < 0; break;
          case BinOp::kLe: r = c <= 0; break;
          case BinOp::kGt: r = c > 0; break;
          case BinOp::kGe: r = c >= 0; break;
          default: break;
        }
        return PartialValue::Known(Value::Bool(r));
      }

      // Set comparisons against a known-empty side (the Table 3 rules).
      bool l_empty = a.IsEmptySet();
      bool r_empty = b.IsEmptySet();
      if (l_empty || r_empty) {
        switch (op) {
          case BinOp::kIn:  // v ∈ ∅ = false
            if (r_empty) return PartialValue::Known(Value::Bool(false));
            break;
          case BinOp::kContains:  // ∅ ∋ v = false
            if (l_empty) return PartialValue::Known(Value::Bool(false));
            break;
          case BinOp::kSubset:  // c ⊂ ∅ = false ; ∅ ⊂ r = ? (r nonempty?)
            if (r_empty) return PartialValue::Known(Value::Bool(false));
            break;
          case BinOp::kSubsetEq:  // ∅ ⊆ r = true ; c ⊆ ∅ = ?
            if (l_empty) return PartialValue::Known(Value::Bool(true));
            break;
          case BinOp::kSupset:  // ∅ ⊃ r = false ; c ⊃ ∅ = ?
            if (l_empty) return PartialValue::Known(Value::Bool(false));
            break;
          case BinOp::kSupsetEq:  // c ⊇ ∅ = true ; ∅ ⊇ r = ?
            if (r_empty) return PartialValue::Known(Value::Bool(true));
            break;
          case BinOp::kIntersectOp:  // ∅ ∩ e = e ∩ ∅ = ∅
            return PartialValue::Known(Value::EmptySet());
          case BinOp::kDifferenceOp:  // ∅ − e = ∅
            if (l_empty) return PartialValue::Known(Value::EmptySet());
            break;
          default:
            break;
        }
      }
      // Fully known set operations / comparisons.
      if (a.known && b.known && a.value.is_set() && b.value.is_set()) {
        switch (op) {
          case BinOp::kSubset:
            return PartialValue::Known(
                Value::Bool(a.value.IsSubsetOf(b.value, true)));
          case BinOp::kSubsetEq:
            return PartialValue::Known(
                Value::Bool(a.value.IsSubsetOf(b.value, false)));
          case BinOp::kSupset:
            return PartialValue::Known(
                Value::Bool(b.value.IsSubsetOf(a.value, true)));
          case BinOp::kSupsetEq:
            return PartialValue::Known(
                Value::Bool(b.value.IsSubsetOf(a.value, false)));
          case BinOp::kUnionOp:
            return PartialValue::Known(a.value.SetUnion(b.value));
          case BinOp::kIntersectOp:
            return PartialValue::Known(a.value.SetIntersect(b.value));
          case BinOp::kDifferenceOp:
            return PartialValue::Known(a.value.SetDifference(b.value));
          default:
            break;
        }
      }
      return PartialValue::Unknown();
    }

    default:
      return PartialValue::Unknown();
  }
}

// ---- Candidate search ----------------------------------------------------

struct Candidate {
  ExprPtr subquery;  // the S node inside P / F
  SubqueryShape shape;
};

bool FindCandidateRec(const ExprPtr& e, const std::string& x,
                      const std::set<std::string>& allowed_free,
                      Candidate* out) {
  if ((e->kind() == ExprKind::kSelect || e->kind() == ExprKind::kMap) &&
      IsFreeIn(x, e)) {
    SubqueryShape shape = DecomposeSubquery(e);
    if (shape.valid && shape.table != nullptr &&
        !IsFreeIn(x, shape.table) && ContainsBaseTable(shape.table)) {
      // All other free variables of the subquery must be visible at the
      // level of the enclosing iterator (not bound in between).
      bool ok = true;
      for (const std::string& v : FreeVars(e)) {
        if (v != x && allowed_free.count(v) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out->subquery = e;
        out->shape = shape;
        return true;
      }
    }
  }
  for (const ExprPtr& c : e->children()) {
    if (FindCandidateRec(c, x, allowed_free, out)) return true;
  }
  return false;
}

// ---- The rewrite ---------------------------------------------------------

ExprPtr ApplyGrouping(const ExprPtr& e, RewriteContext& ctx) {
  bool is_select = e->kind() == ExprKind::kSelect;
  bool is_map = e->kind() == ExprKind::kMap;
  if (!is_select && !is_map) return nullptr;
  if (ctx.options.grouping == GroupingMode::kNone) return nullptr;

  const std::string& x = e->var();
  const ExprPtr& X = e->child(0);
  const ExprPtr& P = e->child(1);  // predicate (σ) or result function (α)

  Candidate cand;
  std::set<std::string> allowed = FreeVars(e);
  if (!FindCandidateRec(P, x, allowed, &cand)) return nullptr;

  // Normalize the shape: y is the join variable over Y, Q the join
  // predicate, G the optional inner function.
  std::string y;
  ExprPtr Q;
  ExprPtr G;
  if (!cand.shape.sel_var.empty()) {
    y = cand.shape.sel_var;
    Q = cand.shape.sel_pred;
    if (cand.shape.map_body != nullptr) {
      G = Substitute(cand.shape.map_body, cand.shape.map_var, Expr::Var(y));
    }
  } else {
    y = cand.shape.map_var;
    Q = Expr::True();
    G = cand.shape.map_body;
  }
  const ExprPtr& Y = cand.shape.table;
  if (y == x) return nullptr;  // degenerate shadowing; leave nested

  // Schemas (ADL is typed; SCH drives the substitutions).
  TypeChecker checker = ctx.MakeChecker();
  TypeEnv env;
  Result<std::vector<std::string>> xs = checker.SchemaOf(X, env);
  if (!xs.ok()) return nullptr;
  std::vector<std::string> sch_x = *xs;

  // Result attribute name, fresh w.r.t. SCH(X).
  std::string ys = "ys";
  for (int i = 1;; ++i) {
    bool clash = false;
    for (const std::string& a : sch_x) {
      if (a == ys) {
        clash = true;
        break;
      }
    }
    if (!clash) break;
    ys = "ys" + std::to_string(i);
  }

  std::string z = FreshVar("z", e);

  // Decide between the grouping plan and the nestjoin plan.
  bool want_grouping =
      ctx.options.grouping == GroupingMode::kGroupingWhenSafe ||
      ctx.options.grouping == GroupingMode::kForceGroupingUnsafe;
  TriBool p_empty = TriBool::kUnknown;
  if (want_grouping && is_select) {
    ExprPtr p_with_empty = ReplaceSubexpr(
        P, cand.subquery, Expr::Const(Value::EmptySet()));
    p_empty = PBool(p_with_empty);
  }
  bool grouping_safe = is_select && p_empty == TriBool::kFalse;
  bool use_grouping =
      want_grouping &&
      (grouping_safe ||
       (ctx.options.grouping == GroupingMode::kForceGroupingUnsafe &&
        is_select));

  ExprPtr joined;
  ExprPtr group_value;  // what Y' becomes in P'
  if (use_grouping) {
    // The relational plan concatenates X- and Y-tuples in the join, so
    // colliding attribute names of Y are renamed first (and mapped back
    // when the group is consumed).
    Result<std::vector<std::string>> ysch = checker.SchemaOf(Y, env);
    if (!ysch.ok() || !OnlyFieldAccesses(Q, y) ||
        (G != nullptr && !OnlyFieldAccesses(G, y))) {
      use_grouping = false;
    } else {
      std::vector<std::string> y_orig = *ysch;
      std::vector<std::string> y_ren = y_orig;
      bool collides = false;
      for (std::string& a : y_ren) {
        for (const std::string& b : sch_x) {
          if (a == b) {
            collides = true;
            // Pick a name clashing with neither schema.
            std::string cand_name = a + "_r";
            for (int i = 1;; ++i) {
              bool bad = false;
              for (const std::string& c : sch_x) bad |= c == cand_name;
              for (const std::string& c : y_orig) bad |= c == cand_name;
              if (!bad) break;
              cand_name = a + "_r" + std::to_string(i);
            }
            a = cand_name;
            break;
          }
        }
      }
      ExprPtr y_operand = Y;
      ExprPtr q_ren = Q;
      ExprPtr g_ren = G;
      if (collides) {
        // Y_r = α[y : (a_r = y.a, ...)](Y); rewrite y.a → y.a_r in Q/G.
        std::vector<ExprPtr> vals;
        for (const std::string& a : y_orig) {
          vals.push_back(Expr::Access(Expr::Var(y), a));
        }
        y_operand = Expr::Map(
            y, Expr::TupleConstruct(y_ren, std::move(vals)), Y);
        auto rename_refs = [&](const ExprPtr& expr) {
          ExprPtr out = expr;
          for (size_t i = 0; i < y_orig.size(); ++i) {
            if (y_orig[i] == y_ren[i]) continue;
            out = ReplaceSubexpr(out,
                                 Expr::Access(Expr::Var(y), y_orig[i]),
                                 Expr::Access(Expr::Var(y), y_ren[i]));
          }
          return out;
        };
        q_ren = rename_refs(Q);
        if (G != nullptr) {
          g_ren = rename_refs(G);
        } else {
          // Without an inner function the group must carry the original
          // attribute names; map them back.
          std::vector<ExprPtr> back;
          for (const std::string& a : y_ren) {
            back.push_back(Expr::Access(Expr::Var(y), a));
          }
          g_ren = Expr::TupleConstruct(y_orig, std::move(back));
        }
      }
      joined = Expr::Nest(Expr::Join(X, y_operand, x, y, q_ren), y_ren, ys);
      group_value = Expr::Access(Expr::Var(z), ys);
      if (g_ren != nullptr) {
        group_value = Expr::Map(y, g_ren, group_value);
      }
      ctx.Note(grouping_safe ? "GroupingUnnest(safe)"
                             : "GroupingUnnest(UNSAFE-forced)",
               AlgebraStr(cand.subquery) + " ; P(x,∅) = " +
                   TriBoolName(p_empty));
    }
  }
  if (!use_grouping) {
    if (ctx.options.grouping == GroupingMode::kGroupingWhenSafe &&
        is_select) {
      // Fall through to the nestjoin; record why.
      ctx.Note("GroupingRejected",
               "P(x,∅) = " + std::string(TriBoolName(p_empty)) +
                   " — using nestjoin instead");
    }
    joined = Expr::NestJoin(X, Y, x, y, Q, ys, G);
    group_value = Expr::Access(Expr::Var(z), ys);
    ctx.Note("NestJoinRewrite", AlgebraStr(cand.subquery));
  }

  // P' = P[Y'/z.ys][x/z or z[SCH(X)]].
  ExprPtr p2 = ReplaceSubexpr(P, cand.subquery, group_value);
  if (OnlyFieldAccesses(p2, x)) {
    p2 = Substitute(p2, x, Expr::Var(z));
  } else {
    p2 = Substitute(p2, x, Expr::TupleProject(Expr::Var(z), sch_x));
  }

  if (is_select) {
    return Expr::Project(Expr::Select(z, p2, joined), sch_x);
  }
  return Expr::Map(z, p2, joined);
}

}  // namespace

ExprPtr PassGrouping(const ExprPtr& e, RewriteContext& ctx) {
  return TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyGrouping(n, ctx); });
}

}  // namespace rewrite_internal

TriBool StaticValueWithEmptySubquery(const ExprPtr& pred,
                                     const ExprPtr& subquery) {
  ExprPtr p = rewrite_internal::ReplaceSubexpr(
      pred, subquery, Expr::Const(Value::EmptySet()));
  return rewrite_internal::PBool(p);
}

}  // namespace n2j
