// Selection pushdown through the join family — the classical logical
// optimization that the paper's join-producing rewrites enable in the
// first place ("so that instead of performing a naive nested-loop
// execution, the optimizer may choose from a number of different join
// processing strategies", Section 5.1): once nesting has become joins,
// per-side conjuncts of a residual selection can move below the join.
//
//   σ[z : p(z-left) ∧ q(z-right) ∧ r](X ⋈ Y)
//     ⇒ σ[z : r](σ[p'](X) ⋈ σ[q'](Y))
//
// For semijoin/antijoin/nestjoin (whose output is left-shaped) only the
// left push applies; for the nestjoin, conjuncts touching the group
// attribute stay put.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

/// Collects the set of attributes `var`.f referenced by `e`; returns
/// false if `var` is used other than through a direct field access.
bool CollectAttrRefs(const ExprPtr& e, const std::string& var,
                     std::set<std::string>* attrs) {
  if (!OnlyFieldAccesses(e, var)) return false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kFieldAccess &&
        n->child(0)->kind() == ExprKind::kVar &&
        n->child(0)->name() == var) {
      attrs->insert(n->name());
    }
  });
  return true;
}

bool SubsetOf(const std::set<std::string>& attrs,
              const std::vector<std::string>& schema) {
  for (const std::string& a : attrs) {
    bool found = false;
    for (const std::string& s : schema) {
      if (a == s) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

ExprPtr ApplyPushdown(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kSelect) return nullptr;
  const ExprPtr& join = e->child(0);
  bool is_join = join->kind() == ExprKind::kJoin;
  bool left_shaped = join->kind() == ExprKind::kSemiJoin ||
                     join->kind() == ExprKind::kAntiJoin ||
                     join->kind() == ExprKind::kNestJoin;
  if (!is_join && !left_shaped) return nullptr;

  const std::string& z = e->var();
  TypeChecker checker = ctx.MakeChecker();
  TypeEnv env;
  Result<std::vector<std::string>> left_sch =
      checker.SchemaOf(join->child(0), env);
  if (!left_sch.ok()) return nullptr;
  Result<std::vector<std::string>> right_sch =
      is_join ? checker.SchemaOf(join->child(1), env)
              : Result<std::vector<std::string>>(std::vector<std::string>{});
  if (!right_sch.ok()) return nullptr;

  std::vector<ExprPtr> left_push;
  std::vector<ExprPtr> right_push;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : SplitConjuncts(e->child(1))) {
    std::set<std::string> attrs;
    // Conjuncts mentioning other free variables still push fine (they
    // are outer bindings), but the selection variable must appear only
    // as field accesses.
    if (!CollectAttrRefs(c, z, &attrs) || attrs.empty()) {
      residual.push_back(c);
      continue;
    }
    if (SubsetOf(attrs, *left_sch)) {
      left_push.push_back(c);
    } else if (is_join && SubsetOf(attrs, *right_sch)) {
      right_push.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  if (left_push.empty() && right_push.empty()) return nullptr;

  ExprPtr new_left = join->child(0);
  if (!left_push.empty()) {
    std::string v = FreshVar(join->var(), e);
    std::vector<ExprPtr> preds;
    for (const ExprPtr& c : left_push) {
      preds.push_back(Substitute(c, z, Expr::Var(v)));
    }
    ctx.Note("PushSelectionIntoJoin(left)", AlgebraStr(Expr::AndAll(preds)));
    new_left = Expr::Select(v, Expr::AndAll(preds), new_left);
  }
  ExprPtr new_right = join->child(1);
  if (!right_push.empty()) {
    std::string v = FreshVar(join->var2(), e);
    std::vector<ExprPtr> preds;
    for (const ExprPtr& c : right_push) {
      preds.push_back(Substitute(c, z, Expr::Var(v)));
    }
    ctx.Note("PushSelectionIntoJoin(right)",
             AlgebraStr(Expr::AndAll(preds)));
    new_right = Expr::Select(v, Expr::AndAll(preds), new_right);
  }

  std::vector<ExprPtr> kids = join->children();
  kids[0] = new_left;
  kids[1] = new_right;
  ExprPtr new_join = join->WithChildren(std::move(kids));
  if (residual.empty()) return new_join;
  return Expr::Select(z, Expr::AndAll(residual), new_join);
}

/// One-sided conjuncts inside a *join predicate* move into the operands.
/// Validity is asymmetric:
///  - left-only conjuncts q(x): ⋈ and ⋉ only. For ▷ and ⊣, a failing
///    q(x) makes the pair set empty, which *keeps* x (▷) or keeps it
///    with an empty group (⊣) — filtering X would wrongly drop it.
///  - right-only conjuncts r(y): valid for all four (they only shrink
///    the matching set of y's).
ExprPtr ApplyJoinPredPushdown(const ExprPtr& e, RewriteContext& ctx) {
  bool left_ok;
  switch (e->kind()) {
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
      left_ok = true;
      break;
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      left_ok = false;
      break;
    default:
      return nullptr;
  }
  const std::string& x = e->var();
  const std::string& y = e->var2();
  std::vector<ExprPtr> left_push;
  std::vector<ExprPtr> right_push;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : SplitConjuncts(e->pred())) {
    bool uses_x = IsFreeIn(x, c);
    bool uses_y = IsFreeIn(y, c);
    if (left_ok && uses_x && !uses_y) {
      left_push.push_back(c);
    } else if (uses_y && !uses_x) {
      right_push.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  if (left_push.empty() && right_push.empty()) return nullptr;
  // Keep at least the residual as the join predicate (true if none).
  ExprPtr new_left = e->child(0);
  if (!left_push.empty()) {
    std::string v = FreshVar(x, e);
    std::vector<ExprPtr> preds;
    for (const ExprPtr& c : left_push) {
      preds.push_back(Substitute(c, x, Expr::Var(v)));
    }
    ctx.Note("PushJoinPredicate(left)", AlgebraStr(Expr::AndAll(preds)));
    new_left = Expr::Select(v, Expr::AndAll(preds), new_left);
  }
  ExprPtr new_right = e->child(1);
  if (!right_push.empty()) {
    std::string v = FreshVar(y, e);
    std::vector<ExprPtr> preds;
    for (const ExprPtr& c : right_push) {
      preds.push_back(Substitute(c, y, Expr::Var(v)));
    }
    ctx.Note("PushJoinPredicate(right)", AlgebraStr(Expr::AndAll(preds)));
    new_right = Expr::Select(v, Expr::AndAll(preds), new_right);
  }
  std::vector<ExprPtr> kids = e->children();
  kids[0] = new_left;
  kids[1] = new_right;
  kids[2] = Expr::AndAll(residual);
  return e->WithChildren(std::move(kids));
}

}  // namespace

ExprPtr PassPushdown(const ExprPtr& e, RewriteContext& ctx) {
  ExprPtr out = TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyPushdown(n, ctx); });
  return TransformBottomUp(out, [&ctx](const ExprPtr& n) {
    return ApplyJoinPredPushdown(n, ctx);
  });
}

}  // namespace rewrite_internal
}  // namespace n2j
