#ifndef N2J_REWRITE_RULES_INTERNAL_H_
#define N2J_REWRITE_RULES_INTERNAL_H_

// Internal interfaces of the rewrite engine: one pass per translation
// unit, orchestrated by rewriter.cc. Not part of the public API.

#include <string>
#include <vector>

#include "adl/analysis.h"
#include "adl/expr.h"
#include "adl/printer.h"
#include "adl/schema.h"
#include "adl/typecheck.h"
#include "rewrite/rewriter.h"
#include "storage/database.h"

namespace n2j {
namespace rewrite_internal {

struct RewriteContext {
  const Schema& schema;
  const Database* db;
  const RewriteOptions& options;
  std::vector<RuleApplication>* trace;

  void Note(const std::string& rule, const std::string& detail) {
    trace->push_back({rule, detail});
  }

  TypeChecker MakeChecker() const { return TypeChecker(schema, db); }
};

// --- Passes (each returns the rewritten tree; input if unchanged) -------

/// Constant folding, σ[x:true] / α[x:x] elimination, select/select and
/// select-over-map fusion (from-clause composition removal), trivial-let
/// inlining.
ExprPtr PassSimplify(const ExprPtr& e, RewriteContext& ctx);

/// Tables 1 and 2: set comparison operations and emptiness predicates →
/// (negated) existential quantifier expressions, applied only where a
/// base table is involved.
ExprPtr PassSetCmp(const ExprPtr& e, RewriteContext& ctx);

/// Range-selection/map merging, universal-quantifier elimination (∀ →
/// ¬∃¬) with negation normal form, and the quantifier-exchange heuristic
/// (move base-table quantifiers leftmost).
ExprPtr PassQuantifierNormalize(const ExprPtr& e, RewriteContext& ctx);

/// Rule 1: σ[x : (¬)∃y∈Y·p](X) → semijoin/antijoin, per conjunct.
ExprPtr PassRule1(const ExprPtr& e, RewriteContext& ctx);

/// Rule 2: ⋃(α[x : α[y : x∘y](σ[y:p](Y))](X)) → X ⋈_p Y.
ExprPtr PassRule2(const ExprPtr& e, RewriteContext& ctx);

/// Option 1: unnesting of set-valued attributes under a projection that
/// drops them (Example Query 4).
ExprPtr PassUnnestAttr(const ExprPtr& e, RewriteContext& ctx);

/// Options 2/3 for grouping-requiring queries: the [GaWo87] grouping
/// plan guarded by the Complex-Object-bug analysis, or the nestjoin.
ExprPtr PassGrouping(const ExprPtr& e, RewriteContext& ctx);

/// Uncorrelated subqueries inside iterator bodies → let-bound constants.
ExprPtr PassHoist(const ExprPtr& e, RewriteContext& ctx);

/// Per-side conjuncts of a residual selection move below the join
/// (classical selection pushdown, enabled by the join rewrites).
ExprPtr PassPushdown(const ExprPtr& e, RewriteContext& ctx);

// --- Shared helpers ------------------------------------------------------

/// Replaces every occurrence of `target` (structural equality) in `e` by
/// `replacement`, skipping scopes where a binder rebinds one of the free
/// variables of `target`.
ExprPtr ReplaceSubexpr(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement);

/// True if every free occurrence of `var` in `e` is immediately below a
/// field access (x.a) — i.e., the tuple is never used wholesale. When
/// true, rebinding `var` to a wider tuple (nestjoin output) is safe.
bool OnlyFieldAccesses(const ExprPtr& e, const std::string& var);

/// The decomposed shape of a candidate subquery Y' (Section 5.1's
/// general format): Y' = α[v : G](σ[y : Q](Y)), where the map and/or the
/// select may be absent.
struct SubqueryShape {
  ExprPtr table;        // Y
  std::string sel_var;  // y (empty if no selection)
  ExprPtr sel_pred;     // Q (null if no selection)
  std::string map_var;  // v (empty if no map)
  ExprPtr map_body;     // G (null if no map)
  bool valid = false;
};

/// Decomposes `e` into SubqueryShape if it has one of the supported
/// shapes; shape.valid is false otherwise.
SubqueryShape DecomposeSubquery(const ExprPtr& e);

/// The complete Table 1 expansion of `lhs op subq` into quantifier form,
/// quantifying over `subq` (the subquery side, oriented to the right).
/// Returns null for non-set-comparison operators. The engine only applies
/// the unnestable subset (∈, ⊇); this full version exists for the Table 1
/// experiment and tests.
ExprPtr ExpandSetComparisonFull(BinOp op, const ExprPtr& lhs,
                                const ExprPtr& subq, const ExprPtr& whole);

}  // namespace rewrite_internal
}  // namespace n2j

#endif  // N2J_REWRITE_RULES_INTERNAL_H_
