#ifndef N2J_REWRITE_REWRITER_H_
#define N2J_REWRITE_REWRITER_H_

#include <string>
#include <vector>

#include "adl/expr.h"
#include "adl/schema.h"
#include "common/result.h"
#include "storage/database.h"

namespace n2j {

/// How to unnest queries that require grouping (Section 5.2.2 / 6.1).
enum class GroupingMode {
  /// Use the nestjoin operator (Section 6.1) — always correct.
  kNestJoin,
  /// Use the relational grouping technique of [Kim82, GaWo87]
  /// (join + nest + select + project) when the Complex-Object-bug
  /// analysis proves it safe (P(x, ∅) statically false); otherwise fall
  /// back to the nestjoin.
  kGroupingWhenSafe,
  /// Always use the relational grouping technique, even when unsafe.
  /// Exists to *demonstrate* the Complex Object bug (Figure 2, Table 3);
  /// never use in production.
  kForceGroupingUnsafe,
  /// Leave grouping-requiring queries as nested loops.
  kNone,
};

/// Pass toggles, mainly for the strategy-ablation benchmark. Defaults
/// implement the paper's full priority strategy (Section 4).
struct RewriteOptions {
  bool enable_simplify = true;        // σ[true], α[x:x], const folding
  bool enable_from_merge = true;      // from-clause composition removal
  bool enable_setcmp = true;          // Tables 1 & 2
  bool enable_quantifier = true;      // range merge, NNF, exchange, Rule 1
  bool enable_map_join = true;        // Rule 2
  bool enable_unnest_attr = true;     // option 1 (attribute unnesting)
  bool enable_hoist = true;           // uncorrelated subqueries → let
  bool enable_pushdown = true;        // selection pushdown through joins
  GroupingMode grouping = GroupingMode::kNestJoin;
  int max_rounds = 8;
};

/// One rewrite step, for explain output and tests.
struct RuleApplication {
  std::string rule;    // e.g. "Rule1-ExistsToSemiJoin"
  std::string detail;  // human-readable description of the site
};

/// The rewriter's verdict on the Complex Object bug for a grouping
/// candidate (Table 3): the static value of P(x, ∅).
enum class TriBool { kFalse, kTrue, kUnknown };
const char* TriBoolName(TriBool t);

struct RewriteResult {
  ExprPtr expr;
  std::vector<RuleApplication> trace;

  /// True if some rule of the given name fired.
  bool Fired(const std::string& rule) const;
  std::string TraceToString() const;
};

/// Rewrites a (translated) ADL expression per the paper's priority
/// strategy:
///   1. relational join operators (Rule 1, Rule 2, via Tables 1/2 and
///      the quantifier-exchange heuristic),
///   2. unnesting of set-valued attributes,
///   3. new operators (nestjoin),
///   4. residual nesting stays — nested-loop execution.
///
/// `db` may be null (only class extents resolve as base tables then);
/// with it, plain tables type-check too.
class Rewriter {
 public:
  Rewriter(const Schema& schema, const Database* db,
           RewriteOptions options = RewriteOptions())
      : schema_(schema), db_(db), options_(options) {}

  Result<RewriteResult> Rewrite(const ExprPtr& e) const;

  const RewriteOptions& options() const { return options_; }

 private:
  const Schema& schema_;
  const Database* db_;
  RewriteOptions options_;
};

/// Statically evaluates predicate `pred` under the assumption that the
/// subexpression `subquery` (a set) is empty, three-valued (Table 3).
/// Exposed for tests and the Table 3 benchmark.
TriBool StaticValueWithEmptySubquery(const ExprPtr& pred,
                                     const ExprPtr& subquery);

}  // namespace n2j

#endif  // N2J_REWRITE_REWRITER_H_
