#include "rewrite/rewriter.h"

#include "rewrite/rules_internal.h"

namespace n2j {

using rewrite_internal::PassGrouping;
using rewrite_internal::PassHoist;
using rewrite_internal::PassPushdown;
using rewrite_internal::PassQuantifierNormalize;
using rewrite_internal::PassRule1;
using rewrite_internal::PassRule2;
using rewrite_internal::PassSetCmp;
using rewrite_internal::PassSimplify;
using rewrite_internal::PassUnnestAttr;
using rewrite_internal::RewriteContext;

bool RewriteResult::Fired(const std::string& rule) const {
  for (const RuleApplication& a : trace) {
    if (a.rule == rule) return true;
  }
  return false;
}

std::string RewriteResult::TraceToString() const {
  std::string out;
  for (const RuleApplication& a : trace) {
    out += "  [" + a.rule + "] " + a.detail + "\n";
  }
  return out;
}

Result<RewriteResult> Rewriter::Rewrite(const ExprPtr& e) const {
  RewriteResult result;
  RewriteContext ctx{schema_, db_, options_, &result.trace};

  // The paper's priority strategy (Section 4), iterated to a fixpoint:
  // each round first tries the relational rewrites (options "rewriting
  // into relational join queries"), then attribute unnesting, then the
  // new operators (nestjoin); what remains nested after the last round
  // executes as nested loops.
  ExprPtr cur = e;
  for (int round = 0; round < options_.max_rounds; ++round) {
    ExprPtr prev = cur;
    if (options_.enable_simplify) cur = PassSimplify(cur, ctx);
    // Uncorrelated subqueries are constants; hoisting them first keeps
    // the quantifier machinery focused on genuinely correlated nesting.
    if (options_.enable_hoist) cur = PassHoist(cur, ctx);
    if (options_.enable_setcmp) cur = PassSetCmp(cur, ctx);
    if (options_.enable_quantifier) {
      cur = PassQuantifierNormalize(cur, ctx);
      cur = PassRule1(cur, ctx);
    }
    if (options_.enable_map_join) cur = PassRule2(cur, ctx);
    if (options_.enable_unnest_attr) cur = PassUnnestAttr(cur, ctx);
    cur = PassGrouping(cur, ctx);
    if (options_.enable_pushdown) cur = PassPushdown(cur, ctx);
    if (cur->Equals(*prev)) break;
  }
  if (options_.enable_simplify) cur = PassSimplify(cur, ctx);
  result.expr = cur;
  return result;
}

}  // namespace n2j
