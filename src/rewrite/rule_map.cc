// Rule 2 of the paper (nesting in the map operator):
//
//   ⋃(α[x : α[y : x∘y](σ[y : p](Y))](X))  =  X ⋈_{x,y:p} Y
//
// The nested map creates a set of sets that is flattened immediately
// afterwards; the join produces the same result set-at-a-time. This is
// also the shape the translator emits for multi-variable from-clauses,
// so `select ... from x in X, y in Y where p` becomes a join here when
// the select-clause is the pair x∘y.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

ExprPtr ApplyRule2(const ExprPtr& e, RewriteContext& ctx) {
  if (e->kind() != ExprKind::kFlatten) return nullptr;
  const ExprPtr& outer = e->child(0);
  if (outer->kind() != ExprKind::kMap) return nullptr;
  const std::string& x = outer->var();
  const ExprPtr& X = outer->child(0);
  const ExprPtr& inner = outer->child(1);
  if (inner->kind() != ExprKind::kMap) return nullptr;
  std::string y = inner->var();
  if (y == x) return nullptr;  // shadowed; not the Rule 2 shape

  // Body must be exactly x ∘ y.
  const ExprPtr& body = inner->child(1);
  if (!(body->kind() == ExprKind::kTupleConcat &&
        body->child(0)->kind() == ExprKind::kVar &&
        body->child(0)->name() == x &&
        body->child(1)->kind() == ExprKind::kVar &&
        body->child(1)->name() == y)) {
    return nullptr;
  }

  // Inner operand: σ[w : p](Y) or bare Y.
  ExprPtr Y = inner->child(0);
  ExprPtr p = Expr::True();
  if (Y->kind() == ExprKind::kSelect) {
    p = Substitute(Y->child(1), Y->var(), Expr::Var(y));
    Y = Y->child(0);
  }
  // Y must be uncorrelated (x not free) — otherwise this is iteration
  // over a set-valued attribute and stays nested — and must involve a
  // base table to be worth lifting to a top-level join.
  if (IsFreeIn(x, Y) || !ContainsBaseTable(Y)) return nullptr;

  ctx.Note("Rule2-MapNestingToJoin", AlgebraStr(e));
  return Expr::Join(X, Y, x, y, p);
}

}  // namespace

ExprPtr PassRule2(const ExprPtr& e, RewriteContext& ctx) {
  return TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyRule2(n, ctx); });
}

}  // namespace rewrite_internal
}  // namespace n2j
