// Optimization option 1 (Section 4): unnesting of set-valued attributes.
//
// When nesting is caused by iteration over a set-valued attribute c and
// the enclosing query drops c from its result (so the nest phase can be
// skipped) and the quantification is existential (so losing tuples with
// empty c is harmless), the iteration can be flattened with µ_c:
//
//   π_A(σ[x : ∃z∈x.c·φ ∧ rest](X))
//     ⇒ π_A(σ[x' : φ' ∧ rest'](µ_c(X)))
//
// (Example Query 4: suppliers violating referential integrity.) The same
// applies when the consumer is a map that does not touch c. A following
// Rule 1 round then turns φ' (which involves a base table) into a
// semijoin or antijoin.

#include "rewrite/rules_internal.h"

namespace n2j {
namespace rewrite_internal {

namespace {

/// True if `e` contains the subexpression `var`.`attr` anywhere.
bool UsesAttr(const ExprPtr& e, const std::string& var,
              const std::string& attr) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kFieldAccess && n->name() == attr &&
        n->child(0)->kind() == ExprKind::kVar &&
        n->child(0)->name() == var) {
      found = true;
    }
  });
  return found;
}

struct UnnestPlan {
  ExprPtr new_select;  // σ[x' : ...](µ_c(X))
  std::string new_var;
};

/// Tries to build the unnested selection for σ[x : P](X) given that the
/// consumer drops attribute(s) not used; `used_attrs_ok` tells whether
/// attribute `c` is referenced by the consumer.
bool BuildUnnest(const ExprPtr& select_node, RewriteContext& ctx,
                 const std::function<bool(const std::string&)>& consumer_uses,
                 UnnestPlan* plan) {
  const std::string& x = select_node->var();
  const ExprPtr& X = select_node->child(0);
  std::vector<ExprPtr> conjuncts = SplitConjuncts(select_node->child(1));

  // Find a conjunct ∃z ∈ x.c · φ with a base table inside φ.
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    if (c->kind() != ExprKind::kQuantifier ||
        c->quant_kind() != QuantKind::kExists) {
      continue;
    }
    const ExprPtr& range = c->child(0);
    if (!(range->kind() == ExprKind::kFieldAccess &&
          range->child(0)->kind() == ExprKind::kVar &&
          range->child(0)->name() == x)) {
      continue;
    }
    const std::string& attr = range->name();
    const ExprPtr& phi = c->child(1);
    if (!ContainsBaseTable(phi)) continue;
    if (consumer_uses(attr)) continue;  // nest phase would be required

    // The remaining conjuncts and φ must not touch x.`attr` (it is gone
    // after unnesting) and must use x only through field accesses.
    bool blocked = UsesAttr(phi, x, attr);
    for (size_t j = 0; j < conjuncts.size() && !blocked; ++j) {
      if (j == i) continue;
      blocked = UsesAttr(conjuncts[j], x, attr) ||
                !OnlyFieldAccesses(conjuncts[j], x);
    }
    if (blocked || !OnlyFieldAccesses(phi, x)) continue;

    // Types: µ requires the attribute to be a set of tuples whose fields
    // do not collide with the remaining fields of X's tuples.
    TypeChecker checker = ctx.MakeChecker();
    Result<TypePtr> xt = checker.Infer(X);
    if (!xt.ok() || !(*xt)->is_set() || !(*xt)->element()->is_tuple()) {
      continue;
    }
    TypePtr attr_type = (*xt)->element()->FindField(attr);
    if (attr_type == nullptr || !attr_type->is_set() ||
        !attr_type->element()->is_tuple()) {
      continue;
    }
    std::vector<std::string> elem_fields =
        attr_type->element()->FieldNames();
    bool collision = false;
    for (const std::string& f : elem_fields) {
      if (f != attr && (*xt)->element()->FindField(f) != nullptr) {
        collision = true;
        break;
      }
    }
    if (collision) continue;

    // Build σ[x' : φ' ∧ rest'](µ_attr(X)).
    std::string xp = FreshVar(x, select_node);
    ExprPtr z_repl = Expr::TupleProject(Expr::Var(xp), elem_fields);
    ExprPtr phi2 = Substitute(phi, c->var(), z_repl);
    phi2 = Substitute(phi2, x, Expr::Var(xp));
    std::vector<ExprPtr> new_conjuncts = {phi2};
    for (size_t j = 0; j < conjuncts.size(); ++j) {
      if (j == i) continue;
      new_conjuncts.push_back(Substitute(conjuncts[j], x, Expr::Var(xp)));
    }
    ctx.Note("UnnestAttribute", AlgebraStr(select_node));
    plan->new_select = Expr::Select(xp, Expr::AndAll(new_conjuncts),
                                    Expr::Unnest(X, attr));
    plan->new_var = xp;
    return true;
  }
  return false;
}

ExprPtr ApplyUnnestAttr(const ExprPtr& e, RewriteContext& ctx) {
  // Shape 1: π_A(σ[x : P](X)) with the unnested attribute not in A.
  if (e->kind() == ExprKind::kProject &&
      e->child(0)->kind() == ExprKind::kSelect) {
    const ExprPtr& sel = e->child(0);
    UnnestPlan plan;
    auto consumer_uses = [&e](const std::string& attr) {
      for (const std::string& a : e->names()) {
        if (a == attr) return true;
      }
      return false;
    };
    if (BuildUnnest(sel, ctx, consumer_uses, &plan)) {
      return Expr::Project(plan.new_select, e->names());
    }
  }
  // Shape 2: α[v : F](σ[x : P](X)) with F not touching the attribute.
  if (e->kind() == ExprKind::kMap &&
      e->child(0)->kind() == ExprKind::kSelect) {
    const ExprPtr& sel = e->child(0);
    const std::string& v = e->var();
    const ExprPtr& F = e->child(1);
    if (!OnlyFieldAccesses(F, v)) return nullptr;
    UnnestPlan plan;
    auto consumer_uses = [&](const std::string& attr) {
      return UsesAttr(F, v, attr);
    };
    if (BuildUnnest(sel, ctx, consumer_uses, &plan)) {
      return Expr::Map(v, F, plan.new_select);
    }
  }
  return nullptr;
}

}  // namespace

ExprPtr PassUnnestAttr(const ExprPtr& e, RewriteContext& ctx) {
  return TransformBottomUp(
      e, [&ctx](const ExprPtr& n) { return ApplyUnnestAttr(n, ctx); });
}

}  // namespace rewrite_internal
}  // namespace n2j
