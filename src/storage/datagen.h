#ifndef N2J_STORAGE_DATAGEN_H_
#define N2J_STORAGE_DATAGEN_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "storage/database.h"

namespace n2j {

/// Parameters of the synthetic supplier–part–delivery workload (the
/// paper's running example schema, Section 2). The knobs sweep the
/// regimes the paper's arguments depend on:
///  - num_parts / num_suppliers: base-table cardinalities (nested-loop
///    cost is their product; join cost their sum),
///  - parts_per_supplier: set-valued attribute fan-out,
///  - red_fraction: selectivity of the classic `color = "red"` predicate,
///  - match_fraction: fraction of supplier part-references that resolve
///    to existing parts (1.0 = referential integrity holds; lower values
///    create the dangling references of Example Query 4),
///  - skew: Zipf theta for part popularity in supplier sets,
///  - num_deliveries / supplies_per_delivery: Delivery class scale.
struct SupplierPartConfig {
  uint64_t seed = 42;
  int num_parts = 1000;
  int num_suppliers = 100;
  int parts_per_supplier = 10;
  double red_fraction = 0.1;
  double match_fraction = 1.0;
  double skew = 0.0;
  int num_deliveries = 0;
  int supplies_per_delivery = 5;
  int price_max = 1000;
};

/// Builds a populated supplier–part(–delivery) database.
std::unique_ptr<Database> MakeSupplierPartDatabase(
    const SupplierPartConfig& config);

/// Parameters for the small random "X/Y" relations used by property tests
/// and the Figure 1/2 style experiments:
///   X : { (a : int, c : { (d : int) }) }
///   Y : { (a : int, e : int) }   — with field names configurable.
struct XYConfig {
  uint64_t seed = 7;
  int x_rows = 20;
  int y_rows = 20;
  int key_domain = 8;       // a-values drawn from [0, key_domain)
  int value_domain = 8;     // d/e-values drawn from [0, value_domain)
  int max_set_size = 4;     // |x.c| uniform in [0, max_set_size]
  double empty_set_prob = 0.2;  // force x.c = ∅ with this probability
};

/// Adds plain tables `x_name` and `y_name` to `db` with random contents:
/// X(a int, c {(d int)}), Y(a int, e int). Empty c-sets are generated on
/// purpose — they are what triggers the Complex Object bug.
Status AddRandomXY(Database* db, const XYConfig& config,
                   const std::string& x_name = "X",
                   const std::string& y_name = "Y");

/// Parameters for the differential fuzzer's fully random plain-table
/// workloads (src/fuzz). Unlike the fixed X/Y shape above, the *schemas*
/// themselves are random: each table gets 1..max_int_cols int columns,
/// up to max_set_cols set-valued columns (sets of unary (d : int)
/// tuples, the NF2 convention the rewriter's unnest rules expect) and,
/// with string_col_prob, one string column. All int data draws from the
/// single small [0, key_domain) pool so cross-table joins, membership
/// tests and set comparisons hit often, and empty sets — the trigger of
/// the Complex Object bug — are generated on purpose.
struct FuzzTablesConfig {
  uint64_t seed = 1;
  int num_tables = 3;        // tables are named F0, F1, ...
  int min_rows = 0;          // per-table row count uniform in
  int max_rows = 10;         //   [min_rows, max_rows]
  int max_int_cols = 3;      // every table has at least one int column
  int max_set_cols = 2;
  double string_col_prob = 0.5;
  int key_domain = 6;        // all int values drawn from [0, key_domain)
  int max_set_size = 3;      // |set cell| uniform in [0, max_set_size]
  double empty_set_prob = 0.25;  // force a set cell to ∅ outright
  int num_strings = 4;       // string values drawn from a pool this big
};

/// Adds `num_tables` random plain tables F0, F1, … to `db`. The fuzzer's
/// query generator discovers the generated schemas through
/// Database::TableNames / FindTable, so the two stay in sync by
/// construction. Deterministic in config.seed.
Status AddRandomFuzzTables(Database* db, const FuzzTablesConfig& config);

/// Builds the exact X and Y tables of Figure 2 of the paper:
///   X = { (a=1, c={1,2}), (a=2, c=∅), (a=3, c={2,3}) }
///   Y = { (a=1, e=1), (a=1, e=2), (a=1, e=3), (a=3, e=3) }
/// Sets are represented as sets of unary tuples (d : int) per the NF2
/// convention used by unnest.
std::unique_ptr<Database> MakeFigure2Database();

/// Builds the X and Y tables of Figure 3 (the nestjoin example):
///   X = { (a=1,b=1), (a=2,b=1), (a=3,b=3) }
///   Y = { (c=1,d=1), (c=2,d=1), (c=3,d=2) }
std::unique_ptr<Database> MakeFigure3Database();

}  // namespace n2j

#endif  // N2J_STORAGE_DATAGEN_H_
