#ifndef N2J_STORAGE_OBJECT_STORE_H_
#define N2J_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "adl/value.h"
#include "common/result.h"
#include "common/status.h"

namespace n2j {

/// Counters for the paged object-store cost model. The materialize /
/// assembly benchmarks read these to show why oid-sorted (assembly-style)
/// dereferencing beats naive pointer chasing (Section 6.2, [BlMG93]).
struct StoreStats {
  uint64_t gets = 0;         // object dereferences
  uint64_t page_hits = 0;    // deref served from the page cache
  uint64_t page_misses = 0;  // deref that "faulted" a page in

  void Reset() { *this = StoreStats(); }
};

/// Maps oids to objects. Objects of each class are laid out in oid order
/// on fixed-size "pages"; a small LRU page cache models the buffer pool.
/// This gives pointer dereferencing a realistic locality profile without
/// a disk: random pointer chasing thrashes the cache, oid-sorted batched
/// dereferencing (the assembly strategy) streams through it.
class ObjectStore {
 public:
  /// page_size = objects per page; cache_pages = LRU capacity.
  explicit ObjectStore(uint32_t page_size = 64, uint32_t cache_pages = 16)
      : page_size_(page_size), cache_pages_(cache_pages) {}

  /// Registers an object under `oid`. Objects must be Put in increasing
  /// seq order per class (the Database allocator guarantees this).
  Status Put(Oid oid, Value object);

  /// Dereferences an oid, updating the cost-model counters.
  Result<Value> Get(Oid oid) const;

  /// True if the oid maps to an object.
  bool Contains(Oid oid) const;

  size_t size() const { return count_; }

  const StoreStats& stats() const { return stats_; }
  void ResetStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.Reset();
    lru_.clear();
    cached_.clear();
  }

  uint32_t page_size() const { return page_size_; }
  void set_cache_pages(uint32_t n) { cache_pages_ = n; }

 private:
  using PageId = uint64_t;  // (class_id << 32) | page index

  void TouchPage(PageId page) const;

  uint32_t page_size_;
  uint32_t cache_pages_;
  // Per class: objects indexed by seq (dense, append-only).
  std::map<uint16_t, std::vector<Value>> by_class_;
  size_t count_ = 0;

  // Page-cache cost model (mutable: Get() is logically const; the mutex
  // makes concurrent dereferences from parallel workers safe — page
  // hit/miss counts then depend on interleaving, but their sum does not).
  mutable std::mutex mu_;
  mutable StoreStats stats_;
  mutable std::list<PageId> lru_;  // front = most recent
  mutable std::unordered_map<PageId, std::list<PageId>::iterator> cached_;
};

}  // namespace n2j

#endif  // N2J_STORAGE_OBJECT_STORE_H_
