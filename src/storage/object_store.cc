#include "storage/object_store.h"

#include "common/str_util.h"

namespace n2j {

Status ObjectStore::Put(Oid oid, Value object) {
  uint16_t cls = OidClassId(oid);
  uint64_t seq = OidSeq(oid);
  std::vector<Value>& vec = by_class_[cls];
  if (seq != vec.size()) {
    return Status::InvalidArgument(
        StrFormat("oids must be allocated densely: class %u expects seq "
                  "%llu, got %llu",
                  cls, static_cast<unsigned long long>(vec.size()),
                  static_cast<unsigned long long>(seq)));
  }
  vec.push_back(std::move(object));
  ++count_;
  return Status::OK();
}

Result<Value> ObjectStore::Get(Oid oid) const {
  uint16_t cls = OidClassId(oid);
  uint64_t seq = OidSeq(oid);
  auto it = by_class_.find(cls);
  if (it == by_class_.end() || seq >= it->second.size()) {
    return Status::NotFound(StrFormat(
        "dangling oid @%u.%llu", cls, static_cast<unsigned long long>(seq)));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.gets;
    PageId page = (static_cast<uint64_t>(cls) << 32) | (seq / page_size_);
    TouchPage(page);
  }
  return it->second[seq];
}

bool ObjectStore::Contains(Oid oid) const {
  auto it = by_class_.find(OidClassId(oid));
  return it != by_class_.end() && OidSeq(oid) < it->second.size();
}

void ObjectStore::TouchPage(PageId page) const {
  auto it = cached_.find(page);
  if (it != cached_.end()) {
    ++stats_.page_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.page_misses;
  lru_.push_front(page);
  cached_[page] = lru_.begin();
  while (cached_.size() > cache_pages_) {
    cached_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace n2j
