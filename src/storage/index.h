#ifndef N2J_STORAGE_INDEX_H_
#define N2J_STORAGE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "adl/value.h"

namespace n2j {

/// A hash index over one top-level attribute of a table: attribute value
/// → row positions. Supports the index nested-loop join the paper lists
/// among the physical join alternatives (Section 6).
class HashIndex {
 public:
  HashIndex() = default;
  HashIndex(std::string table, std::string field)
      : table_(std::move(table)), field_(std::move(field)) {}

  const std::string& table() const { return table_; }
  const std::string& field() const { return field_; }

  void Add(const Value& key, size_t row) { map_[key].push_back(row); }

  /// Row positions with the given key (nullptr if none).
  const std::vector<size_t>* Lookup(const Value& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t distinct_keys() const { return map_.size(); }

 private:
  std::string table_;
  std::string field_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> map_;
};

}  // namespace n2j

#endif  // N2J_STORAGE_INDEX_H_
