#include "storage/columnar.h"

#include "common/str_util.h"

namespace n2j {

const std::vector<Value>* ColumnarExtent::Column(
    const std::string& field) const {
  auto it = columns.find(field);
  return it == columns.end() ? nullptr : &it->second;
}

const ColumnarChild* ColumnarExtent::Child(const std::string& field) const {
  auto it = children.find(field);
  return it == children.end() ? nullptr : &it->second;
}

std::string ColumnarExtent::ToString() const {
  std::string out = StrFormat("%s v%llu: %zu rows", table.c_str(),
                              static_cast<unsigned long long>(version),
                              row_count);
  if (shape == nullptr) {
    out += " (non-uniform shape; row-wise)";
    return out;
  }
  out += StrFormat(", %zu columns", columns.size());
  for (const auto& [field, child] : children) {
    out += StrFormat("; child %s: %zu elems", field.c_str(),
                     child.elems.size());
  }
  return out;
}

std::shared_ptr<const ColumnarExtent> ProjectExtent(const Table& t) {
  auto out = std::make_shared<ColumnarExtent>();
  out->table = t.name();
  // Version before snapshot: a concurrent Append after this read makes
  // the entry look stale on the next Get (wasted rebuild), never fresh
  // while actually missing rows.
  out->version = t.version();
  Value as_set = t.AsSetValue();
  out->rows = as_set.elements();
  out->row_count = out->rows.size();

  // Uniform shape?
  const TupleShape* shape = nullptr;
  for (const Value& row : out->rows) {
    if (!row.is_tuple()) return out;  // row-wise fallback only
    if (shape == nullptr) {
      shape = row.tuple_shape();
    } else if (shape != row.tuple_shape()) {
      return out;
    }
  }
  if (shape == nullptr) return out;  // empty extent: columns stay empty
  out->shape = shape;

  size_t nfields = shape->names().size();
  for (size_t f = 0; f < nfields; ++f) {
    std::vector<Value> col;
    col.reserve(out->row_count);
    bool all_sets = true;
    for (const Value& row : out->rows) {
      const Value& v = row.field_value(f);
      if (!v.is_set()) all_sets = false;
      col.push_back(v);
    }
    const std::string& name = shape->name(f);
    if (all_sets && out->row_count > 0) {
      ColumnarChild child;
      child.offsets.reserve(out->row_count + 1);
      child.offsets.push_back(0);
      for (const Value& v : col) {
        const std::vector<Value>& elems = v.elements();
        child.elems.insert(child.elems.end(), elems.begin(), elems.end());
        child.offsets.push_back(static_cast<uint32_t>(child.elems.size()));
      }
      out->children.emplace(name, std::move(child));
    }
    out->columns.emplace(name, std::move(col));
  }
  return out;
}

std::shared_ptr<const ColumnarExtent> ColumnarCatalog::Get(
    const Database& db, const std::string& table) const {
  const Table* t = db.FindTable(table);
  if (t == nullptr) return nullptr;
  uint64_t version = t->version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(table);
    if (it != cache_.end() && it->second->version == version) {
      return it->second;
    }
  }
  // Projection runs OUTSIDE mu_: a large extent's build must not stall
  // every other table's Get, and the shredded executor's workers may
  // race a refresh against a mid-query lookup. ProjectExtent reads the
  // version before the row snapshot, so a build racing an Append is at
  // worst stale — detected and rebuilt by the next Get's version check.
  std::shared_ptr<const ColumnarExtent> built = ProjectExtent(*t);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(table);
  if (it != cache_.end()) {
    // A racer published first. Same version: share its snapshot, so
    // concurrent readers of one version converge on one projection.
    // Newer version (an Append landed while we built): keep the newer
    // cache entry and hand our consistent-but-stale build to our caller
    // only.
    if (it->second->version == built->version) return it->second;
    if (it->second->version > built->version) return built;
    it->second = built;
    return built;
  }
  cache_.emplace(table, built);
  return built;
}

void ColumnarCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace n2j
