#ifndef N2J_STORAGE_COLUMNAR_H_
#define N2J_STORAGE_COLUMNAR_H_

// Columnar projection of an extent for the shredded backend (shred/).
//
// The shredding translator (docs/SHREDDING.md) lowers a nested query to
// a DAG of flat queries over per-extent column vectors. This module
// provides those vectors: for each table we materialize the canonical
// row order (the same sorted/deduplicated order Table::AsSetValue()
// exposes, so positions double as stable synthetic row ids), one Value
// vector per top-level field when every row shares one tuple shape, and
// a CSR child relation per set-valued attribute — offsets into a
// flattened element vector, i.e. the synthetic parent-id column of the
// paper's "flat relations for nested sets" encoding.
//
// Projections are memoized per (table, Table::version()) in a
// ColumnarCatalog hung off the Database, exactly mirroring StatsCatalog:
// an Append bumps the version and the next shredded query rebuilds the
// projection lazily. Entries are handed out as shared_ptr snapshots so a
// concurrent refresh can never invalidate a reader mid-query.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adl/value.h"
#include "storage/database.h"

namespace n2j {

/// Flattened child relation of one set-valued attribute: row r's
/// elements are elems[offsets[r] .. offsets[r+1]), in canonical (sorted,
/// deduplicated) element order. The parent row index IS the synthetic
/// parent id — no separate id column is stored.
struct ColumnarChild {
  std::vector<uint32_t> offsets;  // row_count + 1 entries
  std::vector<Value> elems;

  uint32_t begin(size_t row) const { return offsets[row]; }
  uint32_t end(size_t row) const { return offsets[row + 1]; }
  size_t fanout(size_t row) const { return end(row) - begin(row); }
};

/// Columnar projection of one extent at one version.
struct ColumnarExtent {
  std::string table;
  uint64_t version = 0;   // Table::version() at projection time
  size_t row_count = 0;

  /// Rows in canonical order (Value::Set order of the extent). Row index
  /// in this vector is the synthetic row id used throughout shred/.
  std::vector<Value> rows;

  /// Non-null iff every row is a tuple of this one interned shape; only
  /// then are `columns` populated. Mixed-shape extents (possible for
  /// plain tables filled by tests) fall back to row-wise access.
  const TupleShape* shape = nullptr;

  /// Per-field column vectors, same order as `rows`. Present only for
  /// uniform-shape extents.
  std::map<std::string, std::vector<Value>> columns;

  /// CSR child relation per set-valued attribute. Built only when EVERY
  /// row's value for the field is a set — a mixed column is omitted so
  /// the executor falls back to the interpreter and reproduces its
  /// "map over non-set"-style errors instead of masking them.
  std::map<std::string, ColumnarChild> children;

  /// The column for `field`, or nullptr (non-uniform shape or no such
  /// field).
  const std::vector<Value>* Column(const std::string& field) const;

  /// The child relation for set-valued `field`, or nullptr.
  const ColumnarChild* Child(const std::string& field) const;

  /// Human-readable summary (EXPLAIN / \columnar shell output).
  std::string ToString() const;
};

/// Builds the columnar projection of `t`. The version is read *before*
/// the row snapshot so a concurrent Append at worst wastes one rebuild,
/// never serves rows newer than the recorded version claims.
std::shared_ptr<const ColumnarExtent> ProjectExtent(const Table& t);

/// Memoized per-database columnar projections. Thread-safe; entries
/// invalidate on Table::version() changes, mirroring StatsCatalog.
class ColumnarCatalog {
 public:
  /// The projection for `table`, rebuilt iff the cached entry's version
  /// differs from the table's current version. Returns nullptr for an
  /// unknown table. The returned snapshot stays valid for the caller's
  /// lifetime regardless of concurrent refreshes.
  std::shared_ptr<const ColumnarExtent> Get(const Database& db,
                                            const std::string& table) const;

  /// Drops every cached entry (tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  mutable std::map<std::string, std::shared_ptr<const ColumnarExtent>> cache_;
};

}  // namespace n2j

#endif  // N2J_STORAGE_COLUMNAR_H_
