#include "storage/datagen.h"

#include <algorithm>
#include <iterator>

#include "common/str_util.h"

namespace n2j {

namespace {

Value UnaryIntTuple(const char* field, int64_t v) {
  return Value::Tuple({Field(field, Value::Int(v))});
}

}  // namespace

std::unique_ptr<Database> MakeSupplierPartDatabase(
    const SupplierPartConfig& config) {
  auto db = std::make_unique<Database>(MakeSupplierPartSchema());
  Rng rng(config.seed);

  const ClassDef* part_cls = db->schema().FindClass("Part");
  N2J_CHECK(part_cls != nullptr);

  // Parts.
  std::vector<Oid> part_oids;
  part_oids.reserve(static_cast<size_t>(config.num_parts));
  static const char* kColors[] = {"blue",  "green", "yellow",
                                  "black", "white", "orange"};
  for (int i = 0; i < config.num_parts; ++i) {
    std::string color =
        rng.Bernoulli(config.red_fraction)
            ? "red"
            : kColors[rng.Uniform(0, 5)];
    Value attrs = Value::Tuple({
        Field("pname", Value::String(StrFormat("part-%d", i))),
        Field("price", Value::Int(rng.Uniform(1, config.price_max))),
        Field("color", Value::String(std::move(color))),
    });
    Result<Oid> oid = db->NewObject("Part", std::move(attrs));
    N2J_CHECK(oid.ok());
    part_oids.push_back(*oid);
  }

  // Suppliers. Each references parts_per_supplier parts; a reference is
  // dangling (violates referential integrity) with probability
  // 1 - match_fraction.
  for (int i = 0; i < config.num_suppliers; ++i) {
    std::vector<Value> refs;
    refs.reserve(static_cast<size_t>(config.parts_per_supplier));
    for (int j = 0; j < config.parts_per_supplier; ++j) {
      Oid ref;
      if (config.num_parts > 0 && rng.Bernoulli(config.match_fraction)) {
        int64_t idx = config.skew > 0.0
                          ? rng.Zipf(config.num_parts, config.skew)
                          : rng.Uniform(0, config.num_parts - 1);
        ref = part_oids[static_cast<size_t>(idx)];
      } else {
        // A dangling pointer: valid class id, out-of-range sequence.
        ref = MakeOid(part_cls->class_id,
                      static_cast<uint64_t>(config.num_parts) + 1 +
                          static_cast<uint64_t>(rng.Uniform(0, 1 << 20)));
      }
      refs.push_back(Value::Tuple({Field("pid", Value::MakeOidValue(ref))}));
    }
    Value attrs = Value::Tuple({
        Field("sname", Value::String(StrFormat("s%d", i))),
        Field("parts", Value::Set(std::move(refs))),
    });
    N2J_CHECK(db->NewObject("Supplier", std::move(attrs)).ok());
  }

  // Deliveries (optional).
  const ClassDef* sup_cls = db->schema().FindClass("Supplier");
  N2J_CHECK(sup_cls != nullptr);
  for (int i = 0; i < config.num_deliveries; ++i) {
    Oid sup = MakeOid(sup_cls->class_id,
                      static_cast<uint64_t>(
                          rng.Uniform(0, config.num_suppliers - 1)));
    std::vector<Value> supply;
    supply.reserve(static_cast<size_t>(config.supplies_per_delivery));
    for (int j = 0; j < config.supplies_per_delivery; ++j) {
      Oid part = part_oids[static_cast<size_t>(
          rng.Uniform(0, config.num_parts - 1))];
      supply.push_back(Value::Tuple({
          Field("part", Value::MakeOidValue(part)),
          Field("quantity", Value::Int(rng.Uniform(1, 100))),
      }));
    }
    // Dates in the paper's yymmdd convention (940101 = Jan 1, 1994).
    int64_t date = 940000 + rng.Uniform(1, 12) * 100 + rng.Uniform(1, 28);
    Value attrs = Value::Tuple({
        Field("supplier", Value::MakeOidValue(sup)),
        Field("supply", Value::Set(std::move(supply))),
        Field("date", Value::Int(date)),
    });
    N2J_CHECK(db->NewObject("Delivery", std::move(attrs)).ok());
  }

  return db;
}

Status AddRandomXY(Database* db, const XYConfig& config,
                   const std::string& x_name, const std::string& y_name) {
  Rng rng(config.seed);
  TypePtr x_type = Type::Tuple(
      {{"a", Type::Int()},
       {"c", Type::Set(Type::Tuple({{"d", Type::Int()}}))}});
  TypePtr y_type = Type::Tuple({{"a", Type::Int()}, {"e", Type::Int()}});
  N2J_RETURN_IF_ERROR(db->CreateTable(x_name, x_type));
  N2J_RETURN_IF_ERROR(db->CreateTable(y_name, y_type));

  for (int i = 0; i < config.x_rows; ++i) {
    std::vector<Value> c;
    if (!rng.Bernoulli(config.empty_set_prob)) {
      int n = static_cast<int>(rng.Uniform(0, config.max_set_size));
      for (int j = 0; j < n; ++j) {
        c.push_back(
            UnaryIntTuple("d", rng.Uniform(0, config.value_domain - 1)));
      }
    }
    Value row = Value::Tuple({
        Field("a", Value::Int(rng.Uniform(0, config.key_domain - 1))),
        Field("c", Value::Set(std::move(c))),
    });
    N2J_RETURN_IF_ERROR(db->Insert(x_name, std::move(row)));
  }
  for (int i = 0; i < config.y_rows; ++i) {
    Value row = Value::Tuple({
        Field("a", Value::Int(rng.Uniform(0, config.key_domain - 1))),
        Field("e", Value::Int(rng.Uniform(0, config.value_domain - 1))),
    });
    N2J_RETURN_IF_ERROR(db->Insert(y_name, std::move(row)));
  }
  return Status::OK();
}

Status AddRandomFuzzTables(Database* db, const FuzzTablesConfig& config) {
  Rng rng(config.seed);
  // Column name pools. Set-valued columns all use element field "d" so
  // any two set expressions in a generated query are type-compatible.
  static const char* kIntCols[] = {"a", "b", "k", "m"};
  static const char* kSetCols[] = {"c", "cs"};
  static const char* kStrings[] = {"red",  "blue", "green", "amber",
                                   "teal", "plum", "rust",  "jade"};
  const int num_strings =
      std::min<int>(config.num_strings, static_cast<int>(std::size(kStrings)));

  for (int t = 0; t < config.num_tables; ++t) {
    int int_cols = static_cast<int>(rng.Uniform(
        1, std::min<int64_t>(config.max_int_cols, std::size(kIntCols))));
    int set_cols = static_cast<int>(rng.Uniform(
        0, std::min<int64_t>(config.max_set_cols, std::size(kSetCols))));
    bool str_col = rng.Bernoulli(config.string_col_prob);

    std::vector<TypeField> fields;
    for (int i = 0; i < int_cols; ++i) {
      fields.push_back({kIntCols[i], Type::Int()});
    }
    for (int i = 0; i < set_cols; ++i) {
      fields.push_back(
          {kSetCols[i], Type::Set(Type::Tuple({{"d", Type::Int()}}))});
    }
    if (str_col) fields.push_back({"tag", Type::String()});

    std::string name = StrFormat("F%d", t);
    N2J_RETURN_IF_ERROR(db->CreateTable(name, Type::Tuple(fields)));

    int rows = static_cast<int>(rng.Uniform(config.min_rows, config.max_rows));
    for (int r = 0; r < rows; ++r) {
      std::vector<Field> row;
      for (int i = 0; i < int_cols; ++i) {
        row.emplace_back(kIntCols[i],
                         Value::Int(rng.Uniform(0, config.key_domain - 1)));
      }
      for (int i = 0; i < set_cols; ++i) {
        std::vector<Value> elems;
        if (!rng.Bernoulli(config.empty_set_prob)) {
          int n = static_cast<int>(rng.Uniform(0, config.max_set_size));
          for (int j = 0; j < n; ++j) {
            elems.push_back(
                UnaryIntTuple("d", rng.Uniform(0, config.key_domain - 1)));
          }
        }
        row.emplace_back(kSetCols[i], Value::Set(std::move(elems)));
      }
      if (str_col) {
        row.emplace_back(
            "tag", Value::String(kStrings[rng.Uniform(0, num_strings - 1)]));
      }
      N2J_RETURN_IF_ERROR(db->Insert(name, Value::Tuple(std::move(row))));
    }
  }
  return Status::OK();
}

std::unique_ptr<Database> MakeFigure2Database() {
  auto db = std::make_unique<Database>();
  TypePtr x_type = Type::Tuple(
      {{"a", Type::Int()},
       {"c", Type::Set(Type::Tuple({{"d", Type::Int()}}))}});
  TypePtr y_type = Type::Tuple({{"a", Type::Int()}, {"e", Type::Int()}});
  N2J_CHECK(db->CreateTable("X", x_type).ok());
  N2J_CHECK(db->CreateTable("Y", y_type).ok());

  auto x_row = [](int64_t a, std::vector<int64_t> ds) {
    std::vector<Value> c;
    c.reserve(ds.size());
    for (int64_t d : ds) c.push_back(UnaryIntTuple("d", d));
    return Value::Tuple(
        {Field("a", Value::Int(a)), Field("c", Value::Set(std::move(c)))});
  };
  N2J_CHECK(db->Insert("X", x_row(1, {1, 2})).ok());
  N2J_CHECK(db->Insert("X", x_row(2, {})).ok());
  N2J_CHECK(db->Insert("X", x_row(3, {2, 3})).ok());

  auto y_row = [](int64_t a, int64_t e) {
    return Value::Tuple({Field("a", Value::Int(a)), Field("e", Value::Int(e))});
  };
  N2J_CHECK(db->Insert("Y", y_row(1, 1)).ok());
  N2J_CHECK(db->Insert("Y", y_row(1, 2)).ok());
  N2J_CHECK(db->Insert("Y", y_row(1, 3)).ok());
  N2J_CHECK(db->Insert("Y", y_row(3, 3)).ok());
  return db;
}

std::unique_ptr<Database> MakeFigure3Database() {
  auto db = std::make_unique<Database>();
  TypePtr x_type = Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}});
  TypePtr y_type = Type::Tuple({{"c", Type::Int()}, {"d", Type::Int()}});
  N2J_CHECK(db->CreateTable("X", x_type).ok());
  N2J_CHECK(db->CreateTable("Y", y_type).ok());
  auto row2 = [](const char* f1, int64_t v1, const char* f2, int64_t v2) {
    return Value::Tuple({Field(f1, Value::Int(v1)), Field(f2, Value::Int(v2))});
  };
  N2J_CHECK(db->Insert("X", row2("a", 1, "b", 1)).ok());
  N2J_CHECK(db->Insert("X", row2("a", 2, "b", 1)).ok());
  N2J_CHECK(db->Insert("X", row2("a", 3, "b", 3)).ok());
  N2J_CHECK(db->Insert("Y", row2("c", 1, "d", 1)).ok());
  N2J_CHECK(db->Insert("Y", row2("c", 2, "d", 1)).ok());
  N2J_CHECK(db->Insert("Y", row2("c", 3, "d", 2)).ok());
  return db;
}

}  // namespace n2j
