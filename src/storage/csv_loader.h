#ifndef N2J_STORAGE_CSV_LOADER_H_
#define N2J_STORAGE_CSV_LOADER_H_

#include <string>

#include "adl/type.h"
#include "common/result.h"
#include "storage/database.h"

namespace n2j {

/// Options for CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  /// First line is a header naming the columns; the header order must
  /// match the row type's attribute order (names are cross-checked).
  bool has_header = true;
  /// Empty fields load as null when true; error otherwise.
  bool empty_as_null = false;
};

/// Bulk-loads CSV text into a plain table whose row type has atomic
/// attributes (bool/int/double/string). Returns the number of rows
/// loaded. The table must already exist (CreateTable) so the loader can
/// coerce each column to the declared attribute type; set-valued or
/// tuple-valued attributes are not loadable from flat CSV.
///
/// Supports RFC-4180-style quoting: fields containing the delimiter,
/// quotes or newlines are wrapped in double quotes, with "" as the
/// escaped quote.
Result<size_t> LoadCsv(Database* db, const std::string& table,
                       const std::string& csv_text,
                       const CsvOptions& options = CsvOptions());

/// Convenience: reads the file at `path` and loads it.
Result<size_t> LoadCsvFile(Database* db, const std::string& table,
                           const std::string& path,
                           const CsvOptions& options = CsvOptions());

}  // namespace n2j

#endif  // N2J_STORAGE_CSV_LOADER_H_
