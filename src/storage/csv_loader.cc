#include "storage/csv_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace n2j {

namespace {

/// Splits one logical CSV record (quotes already balanced) into fields.
std::vector<std::string> SplitRecord(const std::string& line,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Reads logical records, letting quoted fields span physical lines.
std::vector<std::string> SplitRecords(const std::string& text) {
  std::vector<std::string> records;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') quoted = !quoted;
    if ((c == '\n' || c == '\r') && !quoted) {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      if (!current.empty()) records.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) records.push_back(std::move(current));
  return records;
}

Result<Value> CoerceField(const std::string& raw, const Type& type,
                          const CsvOptions& options, size_t record,
                          const std::string& column) {
  auto bad = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("record %zu, column '%s': cannot parse '%s' as %s",
                  record, column.c_str(), raw.c_str(), what));
  };
  if (raw.empty() && options.empty_as_null && !type.is_string()) {
    return Value::Null();
  }
  switch (type.kind()) {
    case Type::Kind::kBool:
      if (raw == "true" || raw == "1") return Value::Bool(true);
      if (raw == "false" || raw == "0") return Value::Bool(false);
      return bad("bool");
    case Type::Kind::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0') return bad("int");
      return Value::Int(v);
    }
    case Type::Kind::kDouble: {
      char* end = nullptr;
      double v = std::strtod(raw.c_str(), &end);
      if (end == raw.c_str() || *end != '\0') return bad("double");
      return Value::Double(v);
    }
    case Type::Kind::kString:
      return Value::String(raw);
    default:
      return Status::InvalidArgument(
          "column '" + column + "' has non-atomic type " + type.ToString() +
          " — not loadable from flat CSV");
  }
}

}  // namespace

Result<size_t> LoadCsv(Database* db, const std::string& table,
                       const std::string& csv_text,
                       const CsvOptions& options) {
  const Table* t = db->FindTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  const std::vector<TypeField>& schema = t->row_type()->fields();

  std::vector<std::string> records = SplitRecords(csv_text);
  size_t start = 0;
  if (options.has_header) {
    if (records.empty()) {
      return Status::InvalidArgument("missing CSV header");
    }
    std::vector<std::string> header =
        SplitRecord(records[0], options.delimiter);
    if (header.size() != schema.size()) {
      return Status::InvalidArgument(StrFormat(
          "header has %zu columns, table '%s' has %zu attributes",
          header.size(), table.c_str(), schema.size()));
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (header[i] != schema[i].name) {
        return Status::InvalidArgument(
            "header column '" + header[i] + "' does not match attribute '" +
            schema[i].name + "'");
      }
    }
    start = 1;
  }

  size_t loaded = 0;
  for (size_t r = start; r < records.size(); ++r) {
    std::vector<std::string> fields =
        SplitRecord(records[r], options.delimiter);
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument(StrFormat(
          "record %zu has %zu fields, expected %zu", r, fields.size(),
          schema.size()));
    }
    std::vector<Field> row;
    row.reserve(schema.size());
    for (size_t i = 0; i < schema.size(); ++i) {
      N2J_ASSIGN_OR_RETURN(
          Value v,
          CoerceField(fields[i], *schema[i].type, options, r,
                      schema[i].name));
      row.emplace_back(schema[i].name, std::move(v));
    }
    N2J_RETURN_IF_ERROR(db->Insert(table, Value::Tuple(std::move(row))));
    ++loaded;
  }
  return loaded;
}

Result<size_t> LoadCsvFile(Database* db, const std::string& table,
                           const std::string& path,
                           const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(db, table, buffer.str(), options);
}

}  // namespace n2j
