#include "storage/database.h"

#include "stats/stats.h"
#include "storage/columnar.h"

namespace n2j {

// Out of line because StatsCatalog/ColumnarCatalog are incomplete in the
// header. Both catalogs are constructed eagerly (empty and cheap) so
// stats()/columnar() are safe to call from any thread without lazy-init
// synchronization.
Database::Database()
    : stats_(std::make_unique<StatsCatalog>()),
      columnar_(std::make_unique<ColumnarCatalog>()) {}

Database::Database(Schema schema)
    : schema_(std::move(schema)),
      stats_(std::make_unique<StatsCatalog>()),
      columnar_(std::make_unique<ColumnarCatalog>()) {
  for (const ClassDef& c : schema_.classes()) {
    tables_.emplace(c.extent, Table(c.extent, c.ObjectType()));
    next_seq_[c.class_id] = 0;
  }
}

Database::~Database() = default;

StatsCatalog& Database::stats() const { return *stats_; }

ColumnarCatalog& Database::columnar() const { return *columnar_; }

Status Database::CreateTable(const std::string& name, TypePtr row_type) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  if (!row_type->is_tuple()) {
    return Status::TypeError("table row type must be a tuple: " + name);
  }
  tables_.emplace(name, Table(name, std::move(row_type)));
  return Status::OK();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status Database::Insert(const std::string& table, Value row) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  if (!row.is_tuple()) {
    return Status::TypeError("row must be a tuple");
  }
  it->second.Append(std::move(row));
  return Status::OK();
}

Result<Oid> Database::NewObject(const std::string& class_name, Value attrs) {
  const ClassDef* cls = schema_.FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("no such class: " + class_name);
  }
  if (!attrs.is_tuple()) {
    return Status::TypeError("object attributes must be a tuple");
  }
  uint64_t seq = next_seq_[cls->class_id]++;
  Oid oid = MakeOid(cls->class_id, seq);

  std::vector<std::string> names;
  names.reserve(attrs.tuple_size() + 1);
  names.push_back(cls->oid_field);
  names.insert(names.end(), attrs.tuple_shape()->names().begin(),
               attrs.tuple_shape()->names().end());
  std::vector<Value> values;
  values.reserve(attrs.tuple_size() + 1);
  values.push_back(Value::MakeOidValue(oid));
  values.insert(values.end(), attrs.tuple_values().begin(),
                attrs.tuple_values().end());
  Value object = Value::TupleFromShape(TupleShape::Intern(std::move(names)),
                                       std::move(values));

  N2J_RETURN_IF_ERROR(store_.Put(oid, object));
  tables_.at(cls->extent).Append(std::move(object));
  return oid;
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& field) {
  const Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  if (t->row_type()->FindField(field) == nullptr) {
    return Status::NotFound("no attribute '" + field + "' in " + table);
  }
  HashIndex index(table, field);
  for (size_t i = 0; i < t->rows().size(); ++i) {
    const Value* key = t->rows()[i].FindField(field);
    if (key == nullptr) {
      return Status::Internal("row missing indexed attribute");
    }
    index.Add(*key, i);
  }
  indexes_[{table, field}] = std::move(index);
  return Status::OK();
}

const HashIndex* Database::FindIndex(const std::string& table,
                                     const std::string& field) const {
  auto it = indexes_.find({table, field});
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace n2j
