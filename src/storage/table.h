#ifndef N2J_STORAGE_TABLE_H_
#define N2J_STORAGE_TABLE_H_

#include <mutex>
#include <string>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "common/status.h"

namespace n2j {

/// An in-memory base table (class extension or plain relation). Rows are
/// tuple Values; set-valued attributes are stored clustered with their
/// parent tuple, as the paper assumes ("Assuming set-valued attributes are
/// stored clustered, ...").
class Table {
 public:
  Table() = default;
  Table(std::string name, TypePtr row_type)
      : name_(std::move(name)), row_type_(std::move(row_type)) {}
  // Movable (the Database map needs it at insertion); the memoized
  // canonical set and its mutex stay behind.
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        row_type_(std::move(other.row_type_)),
        rows_(std::move(other.rows_)),
        version_(other.version_) {}

  const std::string& name() const { return name_; }
  const TypePtr& row_type() const { return row_type_; }
  const std::vector<Value>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Monotone mutation counter. Bumped by every Append, exactly when the
  /// memoized canonical set is invalidated — consumers that cache
  /// derived state (extent statistics, stats/stats.h) compare versions
  /// to detect staleness instead of re-scanning.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return version_;
  }

  /// Appends a row. The caller is responsible for type conformance
  /// (Database::Insert checks it). Invalidates the memoized canonical
  /// set and bumps version() — both under one lock, so a stale
  /// statistics snapshot can always be detected by a version compare.
  void Append(Value row) {
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      canonical_set_ = Value();
      has_canonical_set_ = false;
      ++version_;
    }
    rows_.push_back(std::move(row));
  }

  /// All rows as a canonical set Value (sorted, deduplicated). Memoized:
  /// the sort runs once per load, not once per query — the returned
  /// Value shares the cached payload. Guarded by a mutex because
  /// concurrent read-only queries (one Evaluator per worker) resolve
  /// tables through here.
  Value AsSetValue() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!has_canonical_set_) {
      canonical_set_ = Value::Set(rows_);
      has_canonical_set_ = true;
    }
    return canonical_set_;
  }

 private:
  std::string name_;
  TypePtr row_type_;
  std::vector<Value> rows_;
  mutable std::mutex cache_mu_;
  mutable Value canonical_set_;
  mutable bool has_canonical_set_ = false;
  uint64_t version_ = 0;
};

}  // namespace n2j

#endif  // N2J_STORAGE_TABLE_H_
