#ifndef N2J_STORAGE_TABLE_H_
#define N2J_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"
#include "common/status.h"

namespace n2j {

/// An in-memory base table (class extension or plain relation). Rows are
/// tuple Values; set-valued attributes are stored clustered with their
/// parent tuple, as the paper assumes ("Assuming set-valued attributes are
/// stored clustered, ...").
class Table {
 public:
  Table() = default;
  Table(std::string name, TypePtr row_type)
      : name_(std::move(name)), row_type_(std::move(row_type)) {}

  const std::string& name() const { return name_; }
  const TypePtr& row_type() const { return row_type_; }
  const std::vector<Value>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Appends a row. The caller is responsible for type conformance
  /// (Database::Insert checks it).
  void Append(Value row) { rows_.push_back(std::move(row)); }

  /// All rows as a canonical set Value (sorted, deduplicated).
  Value AsSetValue() const { return Value::Set(rows_); }

 private:
  std::string name_;
  TypePtr row_type_;
  std::vector<Value> rows_;
};

}  // namespace n2j

#endif  // N2J_STORAGE_TABLE_H_
