#ifndef N2J_STORAGE_DATABASE_H_
#define N2J_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adl/schema.h"
#include "adl/type.h"
#include "adl/value.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/object_store.h"
#include "storage/table.h"

namespace n2j {

class StatsCatalog;     // stats/stats.h
class ColumnarCatalog;  // storage/columnar.h

/// The database: a schema, one table per class extension (plus optional
/// plain tables for relational examples like Figure 2), and the oid →
/// object store used by deref/materialize.
class Database {
 public:
  Database();
  explicit Database(Schema schema);
  ~Database();

  const Schema& schema() const { return schema_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// Creates a plain (class-less) table.
  Status CreateTable(const std::string& name, TypePtr row_type);

  const Table* FindTable(const std::string& name) const;

  /// Inserts a row into a plain table (no oid handling, no type check
  /// beyond tuple-ness; used by examples and tests that build relations
  /// directly).
  Status Insert(const std::string& table, Value row);

  /// Creates a new object of `class_name`: allocates the next oid, adds
  /// the oid field, appends the full tuple to the extent and registers it
  /// in the object store. `attrs` must contain exactly the class's user
  /// attributes. Returns the new oid.
  Result<Oid> NewObject(const std::string& class_name, Value attrs);

  /// Dereferences an oid via the object store.
  Result<Value> Deref(Oid oid) const { return store_.Get(oid); }

  /// Names of all tables (extents + plain), sorted.
  std::vector<std::string> TableNames() const;

  /// Builds a hash index on `table`.`field`. Rows inserted *after* the
  /// index is built are not indexed (indexes are built once the data is
  /// loaded, like the benchmarks do). Fails on unknown table/field.
  Status CreateIndex(const std::string& table, const std::string& field);

  /// The index on `table`.`field`, or nullptr.
  const HashIndex* FindIndex(const std::string& table,
                             const std::string& field) const;

  /// The per-database statistics catalog (stats/stats.h), lazily
  /// constructed. Lives on the database — not the engine — so ANALYZE
  /// state survives engine reconstruction; entries invalidate on Append
  /// through Table versions, never by explicit bookkeeping here.
  StatsCatalog& stats() const;

  /// The per-database columnar projection cache (storage/columnar.h)
  /// used by the shredded backend; same lifetime and invalidation story
  /// as stats().
  ColumnarCatalog& columnar() const;

 private:
  Schema schema_;
  std::map<std::string, Table> tables_;
  std::map<uint16_t, uint64_t> next_seq_;
  std::map<std::pair<std::string, std::string>, HashIndex> indexes_;
  ObjectStore store_;
  mutable std::unique_ptr<StatsCatalog> stats_;
  mutable std::unique_ptr<ColumnarCatalog> columnar_;
};

}  // namespace n2j

#endif  // N2J_STORAGE_DATABASE_H_
