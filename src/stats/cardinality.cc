#include "stats/cardinality.h"

#include <algorithm>
#include <cmath>

#include "adl/analysis.h"
#include "exec/equi_join.h"

namespace n2j {

namespace {

constexpr double kUnknownConjunctSel = 0.5;

double Clamp01(double x) { return std::max(0.0, std::min(1.0, x)); }

bool NumericConst(const Value& v, double* out) {
  if (v.is_int()) {
    *out = static_cast<double>(v.int_value());
    return true;
  }
  if (v.is_double()) {
    *out = v.double_value();
    return true;
  }
  if (v.is_oid()) {
    *out = static_cast<double>(v.oid_value());
    return true;
  }
  return false;
}

/// Fraction of `a`'s value range that is < c (uniformity assumption).
double FractionBelow(const AttrStats& a, double c) {
  double lo, hi;
  if (!NumericConst(a.min, &lo) || !NumericConst(a.max, &hi) || hi <= lo) {
    return kUnknownConjunctSel;
  }
  return Clamp01((c - lo) / (hi - lo));
}

/// `e` is Access(Var(var), attr) — the only key shape with attributable
/// statistics. A tuple projection in between (`x[a, b].a`, the shape
/// the unnest rewrite emits) narrows the row without renaming, so the
/// access reads the same attribute. Returns the attribute name or null.
const std::string* SingleAttrOf(const ExprPtr& e, const std::string& var) {
  if (e->kind() != ExprKind::kFieldAccess) return nullptr;
  const Expr* base = e->child(0).get();
  while (base->kind() == ExprKind::kTupleProject &&
         std::find(base->names().begin(), base->names().end(), e->name()) !=
             base->names().end()) {
    base = base->child(0).get();
  }
  if (base->kind() != ExprKind::kVar || base->name() != var) return nullptr;
  return &e->name();
}

}  // namespace

const AttrStats* CardinalityEstimator::KeyAttrStats(
    const ExprPtr& key, const std::string& var, const RelEstimate& rel) const {
  const std::string* attr = SingleAttrOf(key, var);
  if (attr == nullptr) return nullptr;
  return rel.Find(*attr);
}

const AttrStats* CardinalityEstimator::Synthesize(AttrStats s) {
  synthesized_.push_back(std::move(s));
  return &synthesized_.back();
}

/// Scalar image of a set attribute's elements: the stats an unnested
/// element field carries (distinct count and range over the flattened
/// multiset).
static AttrStats ElementScalarStats(const AttrStats& set_attr,
                                    const std::string& name) {
  AttrStats s;
  s.name = name;
  s.scalar = true;
  s.distinct = set_attr.element_distinct;
  s.min = set_attr.element_min;
  s.max = set_attr.element_max;
  s.rows_seen = set_attr.element_count;
  return s;
}

const RelEstimate& CardinalityEstimator::Estimate(const ExprPtr& e) {
  auto it = memo_.find(e.get());
  if (it != memo_.end()) return it->second;
  RelEstimate est = EstimateNode(*e);
  return memo_.emplace(e.get(), std::move(est)).first->second;
}

RelEstimate CardinalityEstimator::EstimateNode(const Expr& e) {
  RelEstimate out;
  switch (e.kind()) {
    case ExprKind::kConst:
      if (e.const_value().is_set()) {
        out.rows = static_cast<double>(e.const_value().set_size());
      }
      return out;

    case ExprKind::kVar: {
      auto it = let_env_.find(e.name());
      if (it != let_env_.end()) return it->second;
      return out;
    }

    case ExprKind::kGetTable: {
      std::shared_ptr<const ExtentStats> s = db_.stats().Get(db_, e.name());
      if (s == nullptr) return out;
      pinned_.push_back(s);  // keep the borrowed AttrStats* alive
      out.rows = static_cast<double>(s->row_count);
      for (const auto& [name, a] : s->attrs) out.attrs[name] = &a;
      return out;
    }

    case ExprKind::kLet: {
      RelEstimate def = Estimate(e.child(0));
      auto [it, inserted] = let_env_.emplace(e.var(), def);
      RelEstimate saved;
      if (!inserted) {
        saved = it->second;
        it->second = def;
      }
      RelEstimate body = Estimate(e.child(1));
      if (inserted) {
        let_env_.erase(e.var());
      } else {
        it->second = saved;
      }
      return body;
    }

    case ExprKind::kSelect: {
      RelEstimate in = Estimate(e.input());
      if (!in.known()) return in;
      double sel = EstimatePredicateSelectivity(e.body(), e.var(), in);
      out = in;
      out.rows = in.rows * sel;
      return out;
    }

    case ExprKind::kMap: {
      RelEstimate in = Estimate(e.input());
      if (!in.known()) return in;
      const Expr& body = *e.body();
      if (body.kind() == ExprKind::kVar && body.name() == e.var()) return in;
      if (body.kind() == ExprKind::kFieldAccess) {
        // α[x : x.a](X) — result is the *set* of attribute values, so
        // cardinality collapses to the distinct count.
        const AttrStats* a = KeyAttrStats(e.body(), e.var(), in);
        if (a != nullptr && a->scalar) {
          out.rows = std::min(in.rows, static_cast<double>(a->distinct));
          return out;
        }
        out.rows = in.rows;
        return out;
      }
      if (body.kind() == ExprKind::kTupleConstruct) {
        // Re-key attribute stats through the projection list. The map's
        // output is a set, so distinct combinations of the keyed fields
        // bound the cardinality; fields without attributable stats are
        // treated as functions of the keyed ones (every map-body field
        // is a function of the input row).
        out.rows = in.rows;
        double combos = 1.0;
        bool keyed = false;
        for (size_t i = 0; i < body.num_children(); ++i) {
          const AttrStats* a =
              KeyAttrStats(body.child(i), e.var(), in);
          if (a != nullptr) out.attrs[body.names()[i]] = a;
          if (a != nullptr && a->scalar) {
            combos *= static_cast<double>(std::max<uint64_t>(1, a->distinct));
            keyed = true;
          }
        }
        if (keyed) out.rows = std::min(out.rows, combos);
        return out;
      }
      if (body.kind() == ExprKind::kExcept) {
        // z except (a = ...) keeps the input shape; the replaced
        // attributes lose their statistics.
        out = in;
        for (const std::string& n : body.names()) out.attrs.erase(n);
        return out;
      }
      if (body.kind() == ExprKind::kTupleConcat) {
        out = in;
        return out;
      }
      out.rows = in.rows;
      return out;
    }

    case ExprKind::kProject: {
      RelEstimate in = Estimate(e.input());
      if (!in.known()) return in;
      out.rows = in.rows;
      for (const std::string& n : e.names()) {
        const AttrStats* a = in.Find(n);
        if (a != nullptr) out.attrs[n] = a;
      }
      // A projection to a single low-distinct attribute deduplicates.
      if (e.names().size() == 1) {
        const AttrStats* a = in.Find(e.names()[0]);
        if (a != nullptr && a->scalar) {
          out.rows = std::min(out.rows, static_cast<double>(a->distinct));
        }
      }
      return out;
    }

    case ExprKind::kFlatten: {
      // ⋃(α[x : x.a](X)) — rows × avg fanout elements flow in, but the
      // union de-duplicates (set semantics), so the result is capped at
      // the distinct element count the stats module measured.
      const ExprPtr& in_expr = e.input();
      if (in_expr->kind() == ExprKind::kMap &&
          in_expr->body()->kind() == ExprKind::kFieldAccess) {
        RelEstimate base = Estimate(in_expr->input());
        const AttrStats* a =
            KeyAttrStats(in_expr->body(), in_expr->var(), base);
        if (base.known() && a != nullptr && a->set_valued) {
          out.rows = base.rows * a->avg_fanout;
          if (a->element_distinct > 0) {
            out.rows = std::min(out.rows,
                                static_cast<double>(a->element_distinct));
          }
          if (!a->element_field.empty()) {
            out.attrs[a->element_field] =
                Synthesize(ElementScalarStats(*a, a->element_field));
          }
          return out;
        }
      }
      return out;
    }

    case ExprKind::kNest: {
      RelEstimate in = Estimate(e.input());
      if (!in.known()) return in;
      // Groups = distinct combinations of the non-grouped attributes.
      double groups = 1.0;
      bool any = false;
      for (const auto& [name, a] : in.attrs) {
        bool grouped = std::find(e.names().begin(), e.names().end(), name) !=
                       e.names().end();
        if (grouped || !a->scalar) continue;
        groups *= static_cast<double>(std::max<uint64_t>(1, a->distinct));
        any = true;
        out.attrs[name] = a;
      }
      out.rows = any ? std::min(in.rows, groups) : in.rows;
      return out;
    }

    case ExprKind::kUnnest: {
      RelEstimate in = Estimate(e.input());
      if (!in.known()) return in;
      const AttrStats* a = in.Find(e.name());
      if (a == nullptr || !a->set_valued) return out;
      out.rows = in.rows * a->avg_fanout;
      out.attrs = in.attrs;
      out.attrs.erase(e.name());
      // The unnested elements surface as a scalar attribute — re-expose
      // the element-level stats under the element field name so joins
      // over the unnested value (Q4's z.pid = p.pid) see the measured
      // match rate instead of the unknown-conjunct fallback.
      if (!a->element_field.empty()) {
        out.attrs[a->element_field] =
            Synthesize(ElementScalarStats(*a, a->element_field));
      }
      return out;
    }

    case ExprKind::kProduct: {
      RelEstimate l = Estimate(e.left());
      RelEstimate r = Estimate(e.right());
      if (!l.known() || !r.known()) return out;
      out.rows = l.rows * r.rows;
      out.attrs = l.attrs;
      out.attrs.insert(r.attrs.begin(), r.attrs.end());
      return out;
    }

    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      return EstimateJoinLike(e);

    case ExprKind::kUnion: {
      RelEstimate l = Estimate(e.left());
      RelEstimate r = Estimate(e.right());
      if (!l.known() || !r.known()) return out;
      out.rows = l.rows + r.rows;
      out.attrs = l.attrs;
      return out;
    }
    case ExprKind::kIntersect: {
      RelEstimate l = Estimate(e.left());
      RelEstimate r = Estimate(e.right());
      if (!l.known() || !r.known()) return out;
      out.rows = std::min(l.rows, r.rows);
      out.attrs = l.attrs;
      return out;
    }
    case ExprKind::kDifference: {
      RelEstimate l = Estimate(e.left());
      RelEstimate r = Estimate(e.right());
      if (!l.known()) return out;
      // Between |L|−|R| and |L|; split the difference geometrically.
      double floor_rows =
          r.known() ? std::max(0.0, l.rows - r.rows) : l.rows * 0.25;
      out.rows = std::max(floor_rows, l.rows * 0.5);
      out.attrs = l.attrs;
      return out;
    }

    case ExprKind::kSetConstruct:
      out.rows = static_cast<double>(e.num_children());
      return out;

    default:
      return out;  // scalar or unsupported: unknown
  }
}

RelEstimate CardinalityEstimator::EstimateJoinLike(const Expr& e) {
  RelEstimate l = Estimate(e.left());
  RelEstimate r = Estimate(e.right());
  RelEstimate out;
  if (!l.known()) return out;

  JoinSelectivity sel = EstimateJoinSelectivity(e, l, r);
  switch (e.kind()) {
    case ExprKind::kJoin:
      if (!r.known()) return out;
      out.rows = l.rows * sel.fanout;
      out.attrs = l.attrs;
      out.attrs.insert(r.attrs.begin(), r.attrs.end());
      return out;
    case ExprKind::kSemiJoin:
      out.rows = l.rows * sel.match_rate;
      out.attrs = l.attrs;
      return out;
    case ExprKind::kAntiJoin:
      out.rows = l.rows * (1.0 - sel.match_rate);
      out.attrs = l.attrs;
      return out;
    case ExprKind::kNestJoin:
      // One output tuple per left tuple, whatever matches.
      out.rows = l.rows;
      out.attrs = l.attrs;  // plus the new set attribute (no stats)
      return out;
    default:
      return out;
  }
}

JoinSelectivity CardinalityEstimator::EstimateJoinSelectivity(
    const Expr& join, const RelEstimate& left, const RelEstimate& right) {
  JoinSelectivity out;
  double r_rows = right.RowsOr(1000.0);
  out.match_rate = kUnknownConjunctSel;
  out.fanout = kUnknownConjunctSel * r_rows;

  EquiJoinKeys keys = ExtractEquiKeys(join.pred(), join.var(), join.var2());
  bool priced = false;
  for (size_t i = 0; i < keys.left_keys.size(); ++i) {
    const AttrStats* ls = KeyAttrStats(keys.left_keys[i], join.var(), left);
    const AttrStats* rs = KeyAttrStats(keys.right_keys[i], join.var2(), right);
    if (ls == nullptr || rs == nullptr) continue;
    double match = EstimateMatchRate(ls, rs, kUnknownConjunctSel);
    double d_r = rs->scalar ? static_cast<double>(rs->distinct)
                            : static_cast<double>(rs->element_distinct);
    double fanout = match * (r_rows / std::max(1.0, d_r));
    if (!priced || match < out.match_rate) out.match_rate = match;
    if (!priced || fanout < out.fanout) out.fanout = fanout;
    priced = true;
    out.from_stats = true;
  }

  // Membership conjuncts f(y) ∈ x.c (and the symmetric ∋ form) — the
  // pattern the membership join runs. A left row matches when any of
  // its ~avg_fanout set elements hits the right key domain.
  std::vector<ExprPtr> conjuncts = SplitConjuncts(join.pred());
  size_t residual = keys.usable() ? keys.residual.size() : 0;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kBinary) continue;
    const ExprPtr* probe = nullptr;
    const ExprPtr* container = nullptr;
    if (c->bin_op() == BinOp::kIn) {
      probe = &c->child(0);
      container = &c->child(1);
    } else if (c->bin_op() == BinOp::kContains) {
      container = &c->child(0);
      probe = &c->child(1);
    } else {
      continue;
    }
    const AttrStats* cs = KeyAttrStats(*container, join.var(), left);
    const AttrStats* ps = KeyAttrStats(*probe, join.var2(), right);
    if (cs == nullptr || !cs->set_valued) continue;
    // P(one element matches a right key value) per element, then scale
    // by the average number of elements, capped at certainty.
    double per_element = EstimateMatchRate(cs, ps, kUnknownConjunctSel);
    double match = std::min(1.0, per_element * std::max(1.0, cs->avg_fanout));
    double d_r = 1.0;
    if (ps != nullptr) {
      d_r = ps->scalar ? static_cast<double>(ps->distinct)
                       : static_cast<double>(ps->element_distinct);
    }
    double fanout =
        cs->avg_fanout * per_element * (r_rows / std::max(1.0, d_r));
    if (!priced || match < out.match_rate) out.match_rate = match;
    if (!priced || fanout < out.fanout) out.fanout = fanout;
    priced = true;
    out.from_stats = ps != nullptr;
  }

  // Residual conjuncts thin both measures.
  for (size_t i = 0; i < residual; ++i) {
    out.match_rate *= kUnknownConjunctSel;
    out.fanout *= kUnknownConjunctSel;
  }
  out.match_rate = Clamp01(out.match_rate);
  out.fanout = std::max(0.0, out.fanout);
  return out;
}

double CardinalityEstimator::EstimatePredicateSelectivity(
    const ExprPtr& pred, const std::string& var, const RelEstimate& in) {
  double sel = 1.0;
  for (const ExprPtr& c : SplitConjuncts(pred)) {
    double s = kUnknownConjunctSel;
    if (c->kind() == ExprKind::kUnary && c->un_op() == UnOp::kNot) {
      s = 1.0 - EstimatePredicateSelectivity(c->child(0), var, in);
    } else if (c->kind() == ExprKind::kUnary &&
               c->un_op() == UnOp::kIsEmpty) {
      const AttrStats* a = KeyAttrStats(c->child(0), var, in);
      if (a != nullptr && a->set_valued) s = a->empty_fraction;
    } else if (c->kind() == ExprKind::kQuantifier) {
      // exists v in x.a : p — at least a non-empty set is required.
      const AttrStats* a = KeyAttrStats(c->range(), var, in);
      if (a != nullptr && a->set_valued &&
          c->quant_kind() == QuantKind::kExists) {
        s = 1.0 - a->empty_fraction;
      }
    } else if (c->kind() == ExprKind::kBinary) {
      BinOp op = c->bin_op();
      const ExprPtr& lhs = c->child(0);
      const ExprPtr& rhs = c->child(1);
      const AttrStats* a = KeyAttrStats(lhs, var, in);
      const ExprPtr* other = &rhs;
      bool flipped = false;
      if (a == nullptr) {
        a = KeyAttrStats(rhs, var, in);
        other = &lhs;
        flipped = true;
      }
      if (op == BinOp::kIn || op == BinOp::kContains) {
        // v ∈ x.a: fraction of rows whose set contains one fixed value.
        const ExprPtr& cont = op == BinOp::kIn ? rhs : lhs;
        const AttrStats* ca = KeyAttrStats(cont, var, in);
        if (ca != nullptr && ca->set_valued && ca->element_distinct > 0) {
          s = Clamp01(ca->avg_fanout /
                      static_cast<double>(ca->element_distinct));
        }
      } else if (IsSetComparisonOp(op)) {
        // x.a ⊆ S and friends: dominated by how often the set side is
        // trivially small; empty sets satisfy every ⊆.
        const AttrStats* ca = a;
        if (ca != nullptr && ca->set_valued) {
          s = std::max(0.1, ca->empty_fraction);
        }
      } else if (a != nullptr && a->scalar &&
                 (*other)->kind() == ExprKind::kConst) {
        double cval;
        if (op == BinOp::kEq) {
          s = 1.0 / static_cast<double>(std::max<uint64_t>(1, a->distinct));
        } else if (op == BinOp::kNe) {
          s = 1.0 -
              1.0 / static_cast<double>(std::max<uint64_t>(1, a->distinct));
        } else if (IsComparisonOp(op) &&
                   NumericConst((*other)->const_value(), &cval)) {
          double below = FractionBelow(*a, cval);
          bool wants_below = flipped ? (op == BinOp::kGt || op == BinOp::kGe)
                                     : (op == BinOp::kLt || op == BinOp::kLe);
          s = wants_below ? below : 1.0 - below;
        }
      }
    }
    sel *= Clamp01(s);
  }
  return std::max(sel, 1e-6);
}

}  // namespace n2j
