#ifndef N2J_STATS_STATS_H_
#define N2J_STATS_STATS_H_

// Per-extent statistics for the cost-based optimizer (ROADMAP item 1).
//
// The paper's priority strategy (Section 4) is a fixed heuristic; the
// knobs it cannot see — cardinalities, distinct counts, set-attribute
// fanout, equi-key match rates — are exactly what `datagen`
// parameterizes. This module measures them from the stored extents so
// the plan enumerator (opt/optimizer.h) can *choose* instead of assume.
//
// Collection is a single scan per extent, memoized in a StatsCatalog
// keyed by (table, Table::version()): Append bumps the version the same
// way it invalidates Table::AsSetValue()'s memo, so a catalog entry is
// refreshed lazily the first time it is consulted after a mutation.
// Analyze() forces an eager refresh of every table (the ANALYZE of SQL
// databases).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adl/value.h"
#include "storage/database.h"

namespace n2j {

/// log2-bucketed histogram of set-attribute fanouts: bucket 0 counts
/// empty sets, bucket i >= 1 counts sizes in [2^(i-1), 2^i).
inline constexpr int kFanoutBuckets = 16;

/// Statistics of one attribute of an extent.
struct AttrStats {
  std::string name;

  // Scalar attributes (int/double/string/oid): exact distinct count and
  // value range over the scanned rows. `min`/`max` are only meaningful
  // when `rows_seen > 0`.
  bool scalar = false;
  uint64_t distinct = 0;
  Value min;
  Value max;

  // Set-valued attributes: fanout distribution plus the element-level
  // stats needed by membership joins and unnest (elements are the unary
  // NF2 tuples or whole element values; element stats are taken over the
  // flattened multiset).
  bool set_valued = false;
  double avg_fanout = 0.0;
  uint64_t max_fanout = 0;
  double empty_fraction = 0.0;
  uint64_t fanout_hist[kFanoutBuckets] = {0};
  uint64_t element_count = 0;     // total elements over all rows
  uint64_t element_distinct = 0;  // distinct elements over all rows
  Value element_min;
  Value element_max;
  /// When every element is a unary NF2 tuple with one consistent field
  /// name (the `(pid : oid)` shape of reference sets), that name — so
  /// unnest can re-expose the element stats as scalar attribute stats.
  /// Empty for mixed or non-tuple elements.
  std::string element_field;

  uint64_t rows_seen = 0;
};

/// Statistics of one extent (class extension or plain table).
struct ExtentStats {
  std::string table;
  uint64_t row_count = 0;
  uint64_t version = 0;  // Table::version() at collection time
  std::map<std::string, AttrStats> attrs;

  const AttrStats* Find(const std::string& attr) const;

  /// Human-readable dump (the shell's `\stats <extent>` output).
  std::string ToString() const;
};

/// Scans `t` once and computes its statistics. Distinct counts are exact
/// (in-memory extents are small enough); ranges skip non-comparable
/// mixes conservatively.
ExtentStats CollectExtentStats(const Table& t);

/// Estimated fraction of probes from the `left` attribute that find a
/// match among values of the `right` attribute — the equi-key match-rate
/// estimate behind join/semijoin selectivities. Derived from distinct
/// counts and range overlap under the uniformity assumption; clamped to
/// [0, 1]. Returns `fallback` when either side lacks usable stats.
double EstimateMatchRate(const AttrStats* left, const AttrStats* right,
                         double fallback);

/// Range-overlap fraction of `a`'s value range that lies within `b`'s
/// (1.0 when either range is unusable or degenerate). Works on int,
/// double and oid ranges; other kinds return 1.0.
double RangeOverlapFraction(const AttrStats& a, const AttrStats& b);

/// Memoized per-database statistics. Thread-safe; entries invalidate on
/// Table::version() changes (i.e. on Append), mirroring the canonical-
/// set memoization invariant.
class StatsCatalog {
 public:
  /// Statistics for `table`, recomputed iff the cached entry's version
  /// differs from the table's current version. Returns nullptr for an
  /// unknown table. The returned snapshot is immutable and stays valid
  /// for as long as the caller holds it — a concurrent refresh of the
  /// same table publishes a *new* snapshot rather than mutating or
  /// freeing this one (readers racing an Append never see a torn
  /// ExtentStats).
  std::shared_ptr<const ExtentStats> Get(const Database& db,
                                         const std::string& table) const;

  /// The cached snapshot for `table` exactly as the last Get/Analyze
  /// left it — no collection, no version check, nullptr when the table
  /// was never analyzed. This is what the planner would price with if it
  /// consulted the catalog right now without forcing a refresh; the
  /// flight recorder compares it against the live extent size to detect
  /// stale statistics (obs/drift.h) without itself triggering a scan.
  std::shared_ptr<const ExtentStats> Peek(const std::string& table) const;

  /// Eagerly (re)collects statistics for every table — ANALYZE.
  void Analyze(const Database& db);

  /// Drops every cached entry (tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  mutable std::map<std::string, std::shared_ptr<const ExtentStats>> cache_;
};

}  // namespace n2j

#endif  // N2J_STATS_STATS_H_
