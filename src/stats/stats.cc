#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/str_util.h"

namespace n2j {

namespace {

int FanoutBucket(size_t n) {
  if (n == 0) return 0;
  int b = 1;
  size_t upper = 2;  // bucket 1 covers [1, 2)
  while (n >= upper && b < kFanoutBuckets - 1) {
    ++b;
    upper <<= 1;
  }
  return b;
}

/// True when min/max tracking makes sense for this value kind (total
/// order that the estimator can turn into a numeric range).
bool Rangeable(const Value& v) {
  return v.is_int() || v.is_double() || v.is_oid() || v.is_string();
}

void TrackRange(const Value& v, Value* min, Value* max, uint64_t seen) {
  if (seen == 0) {
    *min = v;
    *max = v;
    return;
  }
  if (v.Compare(*min) < 0) *min = v;
  if (v.Compare(*max) > 0) *max = v;
}

/// Numeric image of a rangeable value, for overlap arithmetic. Strings
/// have no useful numeric image — the caller treats them as overlap 1.
double NumericImage(const Value& v) {
  if (v.is_int()) return static_cast<double>(v.int_value());
  if (v.is_double()) return v.double_value();
  if (v.is_oid()) return static_cast<double>(v.oid_value());
  return 0.0;
}

}  // namespace

const AttrStats* ExtentStats::Find(const std::string& attr) const {
  auto it = attrs.find(attr);
  return it == attrs.end() ? nullptr : &it->second;
}

std::string ExtentStats::ToString() const {
  std::string out = StrFormat("%s: %llu rows (stats v%llu)\n", table.c_str(),
                              static_cast<unsigned long long>(row_count),
                              static_cast<unsigned long long>(version));
  for (const auto& [name, a] : attrs) {
    if (a.set_valued) {
      out += StrFormat(
          "  %-12s set: avg_fanout=%.2f max_fanout=%llu empty=%.0f%% "
          "elems=%llu distinct_elems=%llu\n",
          name.c_str(), a.avg_fanout,
          static_cast<unsigned long long>(a.max_fanout),
          a.empty_fraction * 100.0,
          static_cast<unsigned long long>(a.element_count),
          static_cast<unsigned long long>(a.element_distinct));
      out += "               fanout histogram:";
      for (int b = 0; b < kFanoutBuckets; ++b) {
        if (a.fanout_hist[b] == 0) continue;
        if (b == 0) {
          out += StrFormat(" [0]=%llu",
                           static_cast<unsigned long long>(a.fanout_hist[b]));
        } else {
          out += StrFormat(
              " [%llu..%llu)=%llu",
              static_cast<unsigned long long>(b == 1 ? 1 : (1ull << (b - 1))),
              static_cast<unsigned long long>(1ull << b),
              static_cast<unsigned long long>(a.fanout_hist[b]));
        }
      }
      out += "\n";
    } else if (a.scalar) {
      out += StrFormat("  %-12s distinct=%llu", name.c_str(),
                       static_cast<unsigned long long>(a.distinct));
      if (a.rows_seen > 0 && Rangeable(a.min)) {
        out += " range=[" + a.min.ToString() + ", " + a.max.ToString() + "]";
      }
      out += "\n";
    } else {
      out += StrFormat("  %-12s (no stats)\n", name.c_str());
    }
  }
  return out;
}

ExtentStats CollectExtentStats(const Table& t) {
  ExtentStats s;
  s.table = t.name();
  s.version = t.version();
  s.row_count = t.rows().size();

  struct Acc {
    AttrStats a;
    std::unordered_set<Value, ValueHash> distinct;
    std::unordered_set<Value, ValueHash> element_distinct;
    uint64_t fanout_total = 0;
    uint64_t empties = 0;
    uint64_t element_seen = 0;
    bool element_field_mixed = false;
  };
  std::map<std::string, Acc> accs;

  for (const Value& row : t.rows()) {
    if (!row.is_tuple()) continue;
    for (size_t i = 0; i < row.tuple_size(); ++i) {
      const std::string& name = row.field_name(i);
      const Value& v = row.field_value(i);
      Acc& acc = accs[name];
      acc.a.name = name;
      ++acc.a.rows_seen;
      if (v.is_set()) {
        acc.a.set_valued = true;
        size_t n = v.set_size();
        acc.fanout_total += n;
        acc.a.max_fanout = std::max<uint64_t>(acc.a.max_fanout, n);
        ++acc.a.fanout_hist[FanoutBucket(n)];
        if (n == 0) ++acc.empties;
        for (const Value& e : v.elements()) {
          // Element-level stats: unary NF2 tuples (d : int) contribute
          // their single field; everything else contributes the element
          // itself. Membership joins probe with exactly these values.
          const Value* probe = &e;
          if (e.is_tuple() && e.tuple_size() == 1) {
            probe = &e.field_value(0);
            if (!acc.element_field_mixed) {
              if (acc.a.element_field.empty()) {
                acc.a.element_field = e.field_name(0);
              } else if (acc.a.element_field != e.field_name(0)) {
                acc.element_field_mixed = true;
                acc.a.element_field.clear();
              }
            }
          } else {
            acc.element_field_mixed = true;
            acc.a.element_field.clear();
          }
          acc.element_distinct.insert(*probe);
          if (Rangeable(*probe)) {
            TrackRange(*probe, &acc.a.element_min, &acc.a.element_max,
                       acc.element_seen);
            ++acc.element_seen;
          }
        }
      } else if (!v.is_tuple()) {
        acc.a.scalar = true;
        acc.distinct.insert(v);
        if (Rangeable(v)) {
          TrackRange(v, &acc.a.min, &acc.a.max, acc.distinct.size() - 1);
        }
      }
    }
  }

  for (auto& [name, acc] : accs) {
    AttrStats a = acc.a;
    a.distinct = acc.distinct.size();
    if (a.set_valued && a.rows_seen > 0) {
      a.avg_fanout = static_cast<double>(acc.fanout_total) /
                     static_cast<double>(a.rows_seen);
      a.empty_fraction = static_cast<double>(acc.empties) /
                         static_cast<double>(a.rows_seen);
      a.element_count = acc.fanout_total;
      a.element_distinct = acc.element_distinct.size();
    }
    s.attrs.emplace(name, std::move(a));
  }
  return s;
}

double RangeOverlapFraction(const AttrStats& a, const AttrStats& b) {
  const Value& amin = a.scalar ? a.min : a.element_min;
  const Value& amax = a.scalar ? a.max : a.element_max;
  const Value& bmin = b.scalar ? b.min : b.element_min;
  const Value& bmax = b.scalar ? b.max : b.element_max;
  auto numeric = [](const Value& v) {
    return v.is_int() || v.is_double() || v.is_oid();
  };
  if (!numeric(amin) || !numeric(amax) || !numeric(bmin) || !numeric(bmax)) {
    return 1.0;
  }
  // Oids and plain numbers live on unrelated axes; a column whose
  // min/max straddle the two kinds (mixed-kind attribute) yields a
  // meaningless image, so treat the ranges as incomparable — overlap 1.
  if (amin.is_oid() != amax.is_oid() || bmin.is_oid() != bmax.is_oid() ||
      amin.is_oid() != bmin.is_oid()) {
    return 1.0;
  }
  double lo_a = NumericImage(amin), hi_a = NumericImage(amax);
  double lo_b = NumericImage(bmin), hi_b = NumericImage(bmax);
  if (!std::isfinite(lo_a) || !std::isfinite(hi_a) || !std::isfinite(lo_b) ||
      !std::isfinite(hi_b)) {
    return 1.0;
  }
  double span = hi_a - lo_a;
  if (span <= 0) {
    // Degenerate (single-point) range: in or out.
    return (lo_a >= lo_b && lo_a <= hi_b) ? 1.0 : 0.0;
  }
  double overlap = std::min(hi_a, hi_b) - std::max(lo_a, lo_b);
  if (overlap <= 0) return 0.0;
  return std::max(0.0, std::min(1.0, overlap / span));
}

double EstimateMatchRate(const AttrStats* left, const AttrStats* right,
                         double fallback) {
  if (left == nullptr || right == nullptr) return fallback;
  double d_left = left->scalar ? static_cast<double>(left->distinct)
                               : static_cast<double>(left->element_distinct);
  double d_right = right->scalar
                       ? static_cast<double>(right->distinct)
                       : static_cast<double>(right->element_distinct);
  // A side with no observed values (empty extent, or the attribute is
  // absent from every row) can never produce a match — that is a hard
  // zero, not a reason to fall back to a guess.
  if (d_left <= 0 || d_right <= 0) return 0.0;
  // Discrete numeric key domains (int/oid): a left probe is one value
  // out of the W = max − min + 1 values its range spans, and it matches
  // iff the right side holds that value — which happens for the
  // d_right-inside-the-left-range of the W candidates. This sees domain
  // sparsity that distinct-count containment misses: a width-2048 domain
  // with ~190 values on each side matches ~9% of probes, not all.
  // Requires min and max of the *same* discrete kind: a mixed-kind
  // column (say min is an int, max an oid) has no meaningful width.
  const Value& lmin = left->scalar ? left->min : left->element_min;
  const Value& lmax = left->scalar ? left->max : left->element_max;
  bool discrete = (lmin.is_int() && lmax.is_int()) ||
                  (lmin.is_oid() && lmax.is_oid());
  if (discrete) {
    double width = NumericImage(lmax) - NumericImage(lmin) + 1.0;
    // width >= 1 always when min <= max; anything else means torn or
    // non-finite stats, which the containment path below absorbs.
    if (std::isfinite(width) && width >= d_left && width >= 1.0) {
      double d_right_in_left = d_right * RangeOverlapFraction(*right, *left);
      double rate = d_right_in_left / width;
      if (std::isfinite(rate)) {
        return std::max(0.0, std::min(1.0, rate));
      }
    }
  }
  // Continuous or unusable ranges: only the part of the left range that
  // the right range covers can match at all; within the overlap,
  // containment-style uniformity.
  double overlap = RangeOverlapFraction(*left, *right);
  double d_left_overlap = std::max(1.0, d_left * overlap);
  double within = std::min(1.0, d_right / d_left_overlap);
  double rate = overlap * within;
  if (!std::isfinite(rate)) return fallback;
  return std::max(0.0, std::min(1.0, rate));
}

std::shared_ptr<const ExtentStats> StatsCatalog::Get(
    const Database& db, const std::string& table) const {
  const Table* t = db.FindTable(table);
  if (t == nullptr) return nullptr;
  // Collection runs under mu_ so concurrent readers of a stale entry
  // never compute the same scan twice; publication swaps the map slot to
  // a fresh shared_ptr, leaving snapshots already handed out untouched.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(table);
  if (it != cache_.end() && it->second->version == t->version()) {
    return it->second;
  }
  auto fresh = std::make_shared<const ExtentStats>(CollectExtentStats(*t));
  cache_.insert_or_assign(table, fresh);
  return fresh;
}

std::shared_ptr<const ExtentStats> StatsCatalog::Peek(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(table);
  return it == cache_.end() ? nullptr : it->second;
}

void StatsCatalog::Analyze(const Database& db) {
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    if (t == nullptr) continue;
    auto fresh = std::make_shared<const ExtentStats>(CollectExtentStats(*t));
    std::lock_guard<std::mutex> lock(mu_);
    cache_.insert_or_assign(name, std::move(fresh));
  }
}

void StatsCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace n2j
