#ifndef N2J_STATS_CARDINALITY_H_
#define N2J_STATS_CARDINALITY_H_

// Cardinality estimation over ADL expressions, fed by the extent
// statistics of stats.h. The estimator walks an expression bottom-up and
// propagates (row count, per-attribute origin stats) through the algebra
// operators; the cost model (opt/cost.h) turns these estimates into
// per-algorithm costs and the plan enumerator (opt/optimizer.h) picks
// the cheapest physical alternative.
//
// Estimates are best-effort: an unknown quantity is reported as
// `rows < 0`, never guessed silently — the optimizer substitutes an
// explicit fallback so every default is visible in one place.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"
#include "stats/stats.h"
#include "storage/database.h"

namespace n2j {

/// Estimated shape of one set-typed (sub)expression.
struct RelEstimate {
  /// Estimated output cardinality; negative = unknown.
  double rows = -1.0;
  /// Statistics of the attributes flowing through this expression,
  /// keyed by attribute name as visible *here* (maps that rename
  /// attributes re-key). Pointers borrow from the StatsCatalog and stay
  /// valid for the planning pass.
  std::map<std::string, const AttrStats*> attrs;

  bool known() const { return rows >= 0.0; }
  /// `rows` when known, else `fallback`.
  double RowsOr(double fallback) const { return known() ? rows : fallback; }
  const AttrStats* Find(const std::string& name) const {
    auto it = attrs.find(name);
    return it == attrs.end() ? nullptr : &*it->second;
  }
};

/// Equi-key selectivity inputs the estimator extracted for one
/// join-family node — shared with the cost model so both price and
/// cardinality derive from the same statistics.
struct JoinSelectivity {
  /// Fraction of left rows with at least one right match (semijoin
  /// cardinality; 1 − this is the antijoin fraction).
  double match_rate = 0.5;
  /// Expected matching right rows per left row (join fanout).
  double fanout = 1.0;
  /// True when at least one equi-key pair had stats on both sides.
  bool from_stats = false;
};

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Database& db) : db_(db) {}

  /// Estimate for `e`. Results are memoized per node (expressions are
  /// shared immutable trees), so estimating a root prices every subtree
  /// once.
  const RelEstimate& Estimate(const ExprPtr& e);

  /// Selectivity of a join-family node's predicate given both input
  /// estimates, from equi-key match rates (falls back to 0.5 per
  /// unanalyzable conjunct).
  JoinSelectivity EstimateJoinSelectivity(const Expr& join,
                                          const RelEstimate& left,
                                          const RelEstimate& right);

  /// Selectivity of `pred` over rows bound to `var` (select pushdown
  /// factor): equality on an attribute contributes 1/distinct, range
  /// comparisons the covered range fraction, set comparisons the
  /// empty-set fraction, anything else 1/2.
  double EstimatePredicateSelectivity(const ExprPtr& pred,
                                      const std::string& var,
                                      const RelEstimate& in);

 private:
  RelEstimate EstimateNode(const Expr& e);
  RelEstimate EstimateJoinLike(const Expr& e);

  /// Stats of the attribute a key expression reads, when the key is a
  /// plain `Access(Var(var), attr)` (optionally through a unary path)
  /// with known origin stats; nullptr otherwise.
  const AttrStats* KeyAttrStats(const ExprPtr& key, const std::string& var,
                                const RelEstimate& rel) const;

  /// Interns a derived AttrStats (e.g. the scalar image of an unnested
  /// set attribute's elements) so RelEstimate can keep borrowing plain
  /// pointers. Lives as long as the estimator, like the memo.
  const AttrStats* Synthesize(AttrStats s);

  const Database& db_;
  /// Extent-stats snapshots consulted during the walk, pinned so the
  /// AttrStats pointers RelEstimate borrows stay valid for the whole
  /// planning pass even if a concurrent Append refreshes the catalog.
  std::vector<std::shared_ptr<const ExtentStats>> pinned_;
  std::deque<AttrStats> synthesized_;
  std::map<const Expr*, RelEstimate> memo_;
  /// Estimates for let-bound variables in scope during the walk.
  std::map<std::string, RelEstimate> let_env_;
};

}  // namespace n2j

#endif  // N2J_STATS_CARDINALITY_H_
