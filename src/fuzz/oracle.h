#ifndef N2J_FUZZ_ORACLE_H_
#define N2J_FUZZ_ORACLE_H_

#include <string>
#include <vector>

#include "exec/eval.h"
#include "rewrite/rewriter.h"
#include "storage/database.h"

namespace n2j {
namespace fuzz {

/// One cell of the differential matrix: a rewrite configuration paired
/// with an execution configuration.
struct OracleConfig {
  std::string name;
  RewriteOptions rewrite;
  EvalOptions eval;
  /// Skip the rewriter entirely (execute the naive translation). Used by
  /// the sanity cell that must trivially match the reference.
  bool skip_rewrite = false;
  /// Run this cell with a TraceCollector attached and assert the span
  /// tree's invariant: the exclusive EvalStats deltas over all spans sum
  /// exactly to the evaluator's global counters. Tracing must be a pure
  /// observer — any result or counter divergence is a kMismatch.
  bool trace = false;
  /// Run the cost-based planner (opt/optimizer.h) over the rewritten
  /// plan and execute its output — per-node algorithm annotations plus
  /// any join reordering. Must stay bit-exact against the nested-loop
  /// oracle: a cost model may pick a slow plan, never a wrong one.
  bool cost_based = false;
  /// Run this cell through QueryEngine::Run (not EvalWithBackend
  /// directly) so the query flight recorder (obs/querylog.h) is on the
  /// path, and assert its exactness: every run appends exactly one
  /// record, and the record's EvalStats snapshot equals the execution's
  /// global counters (error runs must record a non-empty error).
  bool querylog = false;
};

/// The default matrix: ≥ 8 configurations spanning GroupingMode, the
/// individual rewrite-pass toggles and every physical join algorithm.
/// GroupingMode::kForceGroupingUnsafe is deliberately absent — it exists
/// to demonstrate the Complex Object bug and *would* mismatch.
std::vector<OracleConfig> DefaultConfigMatrix();

/// A reduced matrix (3 cells) for tight time budgets.
std::vector<OracleConfig> MinimalConfigMatrix();

/// A single-cell matrix running GroupingMode::kForceGroupingUnsafe —
/// the configuration the paper *proves* wrong (Figure 2). Exists so
/// tests and demos can watch the fuzzer catch and shrink the Complex
/// Object bug; never part of the default matrix.
std::vector<OracleConfig> UnsafeGroupingMatrix();

enum class OracleStatus {
  kOk,             // every configuration matched the oracle
  kSkipped,        // reference evaluation hit a runtime error (e.g. null
                   // arithmetic); configs were still run for crash safety
  kMismatch,       // some configuration disagreed — a real bug
  kFrontEndError,  // parse/typecheck/translate failed (caller decides
                   // whether that is expected)
};
const char* OracleStatusName(OracleStatus s);

struct OracleReport {
  OracleStatus status = OracleStatus::kOk;
  std::string query;
  std::string failing_config;  // set when status == kMismatch
  std::string detail;          // human-readable description
  int configs_checked = 0;
};

/// Runs `query` once as the paper's naive nested-loop translation (no
/// rewrites, tuple-at-a-time execution, PNHL off) — the oracle — and
/// once per matrix cell, asserting that every cell reproduces the
/// oracle's result value bit-for-bit (Value::operator==) and that the
/// rewritten plan's inferred type equals the naive plan's type. This is
/// the paper's equivalence claim, mechanized.
OracleReport RunDifferentialOracle(const Database& db,
                                   const std::string& query,
                                   const std::vector<OracleConfig>& matrix);

}  // namespace fuzz
}  // namespace n2j

#endif  // N2J_FUZZ_ORACLE_H_
