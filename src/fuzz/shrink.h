#ifndef N2J_FUZZ_SHRINK_H_
#define N2J_FUZZ_SHRINK_H_

#include <functional>
#include <memory>
#include <string>

#include "storage/database.h"

namespace n2j {
namespace fuzz {

/// Decides whether a (database, query) pair still exhibits the failure
/// being minimized. Must return false for invalid inputs (e.g. a
/// candidate query that no longer translates) — the oracle's kMismatch
/// check naturally does.
using FailurePredicate =
    std::function<bool(const Database& db, const std::string& query)>;

struct ShrinkResult {
  std::string query;             // minimized query text
  std::unique_ptr<Database> db;  // minimized database
  int accepted_steps = 0;        // number of reductions that stuck
};

/// Greedy delta-debugging of a failing repro: alternately tries
/// structural query reductions (drop where-clause, drop a range, hoist a
/// subexpression, replace a quantifier with a boolean literal, zero
/// literals, drop set-literal elements) and database reductions (drop
/// row blocks / single rows, empty out set-valued cells), keeping any
/// candidate for which `still_fails` holds, until a fixpoint or
/// `max_steps` predicate evaluations. Every accepted step strictly
/// shrinks a well-founded measure, so this terminates.
ShrinkResult ShrinkFailure(const Database& db, const std::string& query,
                           const FailurePredicate& still_fails,
                           int max_steps = 2000);

/// Clones the plain tables of `db` (schemas and rows). Class extents and
/// the object store are not cloned — the fuzzer works on plain tables.
std::unique_ptr<Database> ClonePlainTables(const Database& db);

/// Printable dump of all plain tables (for repro reports).
std::string DumpPlainTables(const Database& db);

}  // namespace fuzz
}  // namespace n2j

#endif  // N2J_FUZZ_SHRINK_H_
