#include "fuzz/query_gen.h"

#include <algorithm>
#include <cstring>

#include "common/str_util.h"

namespace n2j {
namespace fuzz {

namespace {

const char* kCmpOps[] = {"=", "<>", "<", "<=", ">", ">="};
const char* kSetCmpOps[] = {"subset", "subseteq", "supset",
                            "supseteq", "=", "<>"};
const char* kSetBinOps[] = {"union", "intersect", "minus"};

}  // namespace

QueryGenerator::QueryGenerator(const Database& db, uint64_t seed,
                               GenOptions options)
    : db_(db), rng_(seed), opts_(options) {
  for (const std::string& name : db_.TableNames()) {
    const Table* t = db_.FindTable(name);
    if (t != nullptr && t->row_type() && t->row_type()->is_tuple()) {
      tables_.push_back(name);
    }
  }
}

std::vector<std::string> QueryGenerator::FieldsOfKind(const TypePtr& tuple,
                                                      Type::Kind kind) const {
  std::vector<std::string> out;
  if (!tuple || !tuple->is_tuple()) return out;
  for (const TypeField& f : tuple->fields()) {
    if (f.type->kind() != kind) continue;
    // Set-valued fields only count when they have the canonical
    // { (d : int) } shape the generator knows how to compare.
    if (kind == Type::Kind::kSet && !IsDSet(f.type)) continue;
    out.push_back(f.name);
  }
  return out;
}

bool QueryGenerator::IsDSet(const TypePtr& t) const {
  if (!t || !t->is_set() || !t->element()->is_tuple()) return false;
  const auto& fs = t->element()->fields();
  return fs.size() == 1 && fs[0].name == "d" && fs[0].type->is_int();
}

std::string QueryGenerator::FreshVar() {
  return StrFormat("v%d", next_var_++);
}

std::vector<int> QueryGenerator::VarsWithField(const Scope& scope,
                                               Type::Kind kind) const {
  std::vector<int> out;
  for (size_t i = 0; i < scope.size(); ++i) {
    if (!FieldsOfKind(scope[i].type, kind).empty()) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Range expressions: where from-clause / quantifier variables come from.

QueryGenerator::RangeChoice QueryGenerator::GenRange(int depth,
                                                     const Scope& scope) {
  // Quantifier ranges parse at postfix level, so anything beyond a table
  // name or a path gets parenthesized here.
  std::vector<int> set_vars = VarsWithField(scope, Type::Kind::kSet);
  int pick = static_cast<int>(rng_.Uniform(0, 9));
  if (!set_vars.empty() && pick >= 7) {
    // From-clause nesting over a set-valued attribute: `z in x.c`.
    const Binding& b = scope[static_cast<size_t>(
        set_vars[static_cast<size_t>(rng_.Uniform(
            0, static_cast<int64_t>(set_vars.size()) - 1))])];
    std::vector<std::string> sets = FieldsOfKind(b.type, Type::Kind::kSet);
    const std::string& f = sets[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(sets.size()) - 1))];
    return {b.name + "." + f, b.type->FindField(f)->element()};
  }
  if (depth > 0 && pick == 6 && !tables_.empty()) {
    // Nested from-clause: range is itself a (filtered) subquery.
    const std::string& t = tables_[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(tables_.size()) - 1))];
    TypePtr row = db_.FindTable(t)->row_type();
    std::string v = FreshVar();
    Scope inner = scope;
    inner.push_back({v, row});
    std::string text = "(select " + v + " from " + v + " in " + t;
    if (rng_.Bernoulli(opts_.where_prob)) {
      text += " where " + GenPred(depth - 1, inner);
    }
    text += ")";
    return {text, row};
  }
  if (depth > 0 && pick == 5) {
    // Range over a computed set of (d : int) tuples.
    return {"(" + GenDSet(depth - 1, scope) + ")",
            Type::Tuple({{"d", Type::Int()}})};
  }
  // Default: a base table.
  const std::string& t = tables_[static_cast<size_t>(
      rng_.Uniform(0, static_cast<int64_t>(tables_.size()) - 1))];
  return {t, db_.FindTable(t)->row_type()};
}

// ---------------------------------------------------------------------------
// Typed expression builders.

std::string QueryGenerator::GenInt(int depth, const Scope& scope) {
  std::vector<int> int_vars = VarsWithField(scope, Type::Kind::kInt);
  int pick = static_cast<int>(rng_.Uniform(0, depth > 0 ? 9 : 5));
  if (pick <= 1 || int_vars.empty()) {
    return StrFormat("%d", static_cast<int>(rng_.Uniform(0, 6)));
  }
  if (pick <= 5) {
    const Binding& b = scope[static_cast<size_t>(
        int_vars[static_cast<size_t>(rng_.Uniform(
            0, static_cast<int64_t>(int_vars.size()) - 1))])];
    std::vector<std::string> fs = FieldsOfKind(b.type, Type::Kind::kInt);
    return b.name + "." +
           fs[static_cast<size_t>(
               rng_.Uniform(0, static_cast<int64_t>(fs.size()) - 1))];
  }
  if (pick <= 6) return "count(" + GenAnySet(depth - 1, scope) + ")";
  if (pick <= 7) return "sum(" + GenIntSet(depth - 1, scope) + ")";
  static const char* kArith[] = {"+", "-", "*"};
  return "(" + GenInt(depth - 1, scope) + " " +
         kArith[rng_.Uniform(0, 2)] + " " + GenInt(depth - 1, scope) + ")";
}

std::string QueryGenerator::GenDSet(int depth, const Scope& scope) {
  // With-bound names and set-valued attributes are the cheap leaves.
  std::vector<int> dset_names;
  for (size_t i = 0; i < scope.size(); ++i) {
    if (IsDSet(scope[i].type)) dset_names.push_back(static_cast<int>(i));
  }
  std::vector<int> set_vars = VarsWithField(scope, Type::Kind::kSet);
  int pick = static_cast<int>(rng_.Uniform(0, depth > 0 ? 9 : 4));

  if (!dset_names.empty() && pick == 0) {
    return scope[static_cast<size_t>(dset_names[static_cast<size_t>(
                     rng_.Uniform(0, static_cast<int64_t>(
                                         dset_names.size()) - 1))])]
        .name;
  }
  if (!set_vars.empty() && pick <= 2) {
    const Binding& b = scope[static_cast<size_t>(
        set_vars[static_cast<size_t>(rng_.Uniform(
            0, static_cast<int64_t>(set_vars.size()) - 1))])];
    std::vector<std::string> fs = FieldsOfKind(b.type, Type::Kind::kSet);
    return b.name + "." +
           fs[static_cast<size_t>(
               rng_.Uniform(0, static_cast<int64_t>(fs.size()) - 1))];
  }
  if (pick <= 4 || depth <= 0) {
    // Set literal of unary (d : int) tuples.
    int n = static_cast<int>(rng_.Uniform(1, 3));
    std::vector<std::string> elems;
    for (int i = 0; i < n; ++i) {
      elems.push_back(StrFormat("(d = %d)",
                                static_cast<int>(rng_.Uniform(0, 6))));
    }
    return "{" + Join(elems, ", ") + "}";
  }
  if (pick <= 7) {
    // Subquery producing (d : int) tuples — the shape Tables 1/2 rewrite.
    RangeChoice r = GenRange(depth - 1, scope);
    std::string v = FreshVar();
    Scope inner = scope;
    inner.push_back({v, r.element});
    std::string text =
        "(select (d = " + GenInt(depth - 1, inner) + ") from " + v +
        " in " + r.text;
    if (rng_.Bernoulli(opts_.where_prob)) {
      text += " where " + GenPred(depth - 1, inner);
    }
    text += ")";
    return text;
  }
  return "(" + GenDSet(depth - 1, scope) + " " +
         kSetBinOps[rng_.Uniform(0, 2)] + " " + GenDSet(depth - 1, scope) +
         ")";
}

std::string QueryGenerator::GenIntSet(int depth, const Scope& scope) {
  RangeChoice r = GenRange(depth > 0 ? depth - 1 : 0, scope);
  std::string v = FreshVar();
  Scope inner = scope;
  inner.push_back({v, r.element});
  std::string text =
      "(select " + GenInt(std::max(depth - 1, 0), inner) + " from " + v +
      " in " + r.text;
  if (depth > 0 && rng_.Bernoulli(opts_.where_prob)) {
    text += " where " + GenPred(depth - 1, inner);
  }
  text += ")";
  return text;
}

std::string QueryGenerator::GenAnySet(int depth, const Scope& scope) {
  int pick = static_cast<int>(rng_.Uniform(0, 3));
  if (pick == 0 && !tables_.empty()) {
    return tables_[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(tables_.size()) - 1))];
  }
  if (pick == 1 && depth > 0) return GenIntSet(depth, scope);
  return GenDSet(depth, scope);
}

// ---------------------------------------------------------------------------
// Predicates.

std::string QueryGenerator::GenPred(int depth, const Scope& scope) {
  std::vector<int> str_vars = VarsWithField(scope, Type::Kind::kString);
  std::vector<int> set_vars = VarsWithField(scope, Type::Kind::kSet);
  int pick = static_cast<int>(rng_.Uniform(0, depth > 0 ? 13 : 5));

  switch (pick) {
    case 0:
    case 1:
      return GenInt(std::max(depth - 1, 0), scope) + " " +
             kCmpOps[rng_.Uniform(0, 5)] + " " +
             GenInt(std::max(depth - 1, 0), scope);
    case 2:
      if (!str_vars.empty()) {
        const Binding& b = scope[static_cast<size_t>(
            str_vars[static_cast<size_t>(rng_.Uniform(
                0, static_cast<int64_t>(str_vars.size()) - 1))])];
        std::vector<std::string> fs =
            FieldsOfKind(b.type, Type::Kind::kString);
        static const char* kStrings[] = {"red", "blue", "green", "amber"};
        return b.name + "." + fs[0] +
               (rng_.Bernoulli(0.5) ? " = \"" : " <> \"") +
               kStrings[rng_.Uniform(0, 3)] + "\"";
      }
      [[fallthrough]];
    case 3:
      if (!set_vars.empty()) {
        const Binding& b = scope[static_cast<size_t>(
            set_vars[static_cast<size_t>(rng_.Uniform(
                0, static_cast<int64_t>(set_vars.size()) - 1))])];
        std::vector<std::string> fs = FieldsOfKind(b.type, Type::Kind::kSet);
        std::string e = b.name + "." + fs[0];
        if (rng_.Bernoulli(0.4)) return "isempty(" + e + ")";
        return StrFormat("(d = %d)", static_cast<int>(rng_.Uniform(0, 6))) +
               " in " + e;
      }
      [[fallthrough]];
    case 4:
      return rng_.Bernoulli(0.7) ? "true" : "false";
    case 5: {
      // Quantifier — the bread and butter of Rules 1 and 2.
      RangeChoice r = GenRange(depth - 1, scope);
      std::string v = FreshVar();
      Scope inner = scope;
      inner.push_back({v, r.element});
      bool needs_parens = r.text.find(' ') != std::string::npos &&
                          r.text.front() != '(';
      std::string range = needs_parens ? "(" + r.text + ")" : r.text;
      return std::string("(") + (rng_.Bernoulli(0.6) ? "exists " : "forall ") +
             v + " in " + range + " : " + GenPred(depth - 1, inner) + ")";
    }
    case 6:
      return "(" + GenPred(depth - 1, scope) +
             (rng_.Bernoulli(0.5) ? " and " : " or ") +
             GenPred(depth - 1, scope) + ")";
    case 7:
      return "(not " + GenPred(depth - 1, scope) + ")";
    case 8: {
      // Set comparison: Tables 1 and 2 of the paper.
      std::string lhs = GenDSet(depth - 1, scope);
      const char* op = kSetCmpOps[rng_.Uniform(0, 5)];
      // "(ident = ..." would parse as a tuple literal, so shield a bare
      // identifier behind an extra pair of parentheses.
      if (std::strcmp(op, "=") == 0 &&
          lhs.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz"
              "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") == std::string::npos) {
        lhs = "(" + lhs + ")";
      }
      return "(" + lhs + " " + op + " " + GenDSet(depth - 1, scope) + ")";
    }
    case 9:
      return rng_.Bernoulli(0.5)
                 ? "(" + GenInt(depth - 1, scope) + " in " +
                       GenIntSet(depth - 1, scope) + ")"
                 : "(" + GenIntSet(depth - 1, scope) + " contains " +
                       GenInt(depth - 1, scope) + ")";
    case 10: {
      static const char* kAggs[] = {"count", "sum", "min", "max"};
      int agg = static_cast<int>(rng_.Uniform(0, 3));
      std::string arg = agg == 0 ? GenAnySet(depth - 1, scope)
                                 : GenIntSet(depth - 1, scope);
      return std::string(kAggs[agg]) + "(" + arg + ") " +
             kCmpOps[rng_.Uniform(0, 5)] + " " + GenInt(depth - 1, scope);
    }
    case 11:
      return "isempty(" + GenAnySet(depth - 1, scope) + ")";
    default:
      return StrFormat("(d = %d)", static_cast<int>(rng_.Uniform(0, 6))) +
             " in " + GenDSet(depth - 1, scope);
  }
}

// ---------------------------------------------------------------------------
// Select blocks.

std::string QueryGenerator::GenBody(int depth, const Scope& scope) {
  const Binding& self = scope.back();
  int pick = static_cast<int>(rng_.Uniform(0, 9));
  if (depth > 0 && rng_.Bernoulli(opts_.nested_body_prob)) {
    // Select-clause nesting: the body is itself a query (possibly
    // correlated) — the paper's Query 3 / Figure 1 shape.
    std::vector<std::string> ints = FieldsOfKind(self.type, Type::Kind::kInt);
    std::string label = ints.empty() ? std::string("p")
                                     : "p_" + ints[0];
    return "(" + label + " = " + self.name +
           (ints.empty() ? "" : "." + ints[0]) + ", q = " +
           GenDSet(depth - 1, scope) + ")";
  }
  std::vector<std::string> ints = FieldsOfKind(self.type, Type::Kind::kInt);
  if (pick <= 3 || ints.empty()) return self.name;  // whole tuple
  if (pick <= 6) {
    return self.name + "." +
           ints[static_cast<size_t>(
               rng_.Uniform(0, static_cast<int64_t>(ints.size()) - 1))];
  }
  if (pick == 7 && self.type->fields().size() > 1) {
    // Tuple projection x[a, b].
    std::vector<std::string> names = self.type->FieldNames();
    int keep = static_cast<int>(
        rng_.Uniform(1, static_cast<int64_t>(names.size())));
    names.resize(static_cast<size_t>(keep));
    return self.name + "[" + Join(names, ", ") + "]";
  }
  return "(p = " + GenInt(depth > 0 ? depth - 1 : 0, scope) + ")";
}

std::string QueryGenerator::GenSelect(int depth, const Scope& outer) {
  Scope scope = outer;
  int nranges = 1;
  if (opts_.max_ranges > 1 && rng_.Bernoulli(opts_.multi_range_prob)) {
    nranges = static_cast<int>(rng_.Uniform(2, opts_.max_ranges));
  }
  std::vector<std::string> range_texts;
  std::vector<std::string> range_vars;
  for (int i = 0; i < nranges; ++i) {
    RangeChoice r = GenRange(depth, scope);
    std::string v = FreshVar();
    // Ranges may reference earlier variables of the same from-clause
    // (dependent ranges, e.g. `from x in F0, z in x.c`).
    scope.push_back({v, r.element});
    range_vars.push_back(v);
    range_texts.push_back(v + " in " + r.text);
  }

  // Optional with-bound local subquery (macro-expanded by the parser).
  bool use_with = depth > 0 && rng_.Bernoulli(opts_.with_prob);
  std::string with_name, with_def;
  if (use_with) {
    with_name = StrFormat("W%d", next_var_++);
    with_def = GenDSet(depth - 1, scope);
    // Insert before the range variables so scope.back() (the variable
    // GenBody treats as primary) stays a range variable.
    scope.insert(scope.begin() + static_cast<long>(outer.size()),
                 {with_name, Type::Set(Type::Tuple({{"d", Type::Int()}}))});
  }

  std::string text = "select " + GenBody(depth, scope) + " from " +
                     Join(range_texts, ", ");
  if (rng_.Bernoulli(opts_.where_prob)) {
    text += " where " + GenPred(depth, scope);
  }
  if (use_with) text += " with " + with_name + " = " + with_def;
  return text;
}

std::string QueryGenerator::Generate() {
  Scope scope;
  return GenSelect(opts_.max_depth, scope);
}

// ---------------------------------------------------------------------------
// Malformed queries for rejection testing.

std::string QueryGenerator::GenerateMalformed() {
  std::string q = Generate();
  static const char* kJunk[] = {
      ")",  "(",      "{",     "}",      ",",  ".",        "=",
      ":",  "select", "from",  "where",  "in", "exists",   "forall",
      "''", "'oops",  "count", "subset", ";",  "1e999",    "..",
      "[",  "]",      "with",  "union",  "0x", "\"dquote", "%"};
  int n = static_cast<int>(rng_.Uniform(1, opts_.max_mutations));
  for (int i = 0; i < n && !q.empty(); ++i) {
    switch (rng_.Uniform(0, 4)) {
      case 0: {  // delete a span
        size_t pos = static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size()) - 1));
        size_t len = static_cast<size_t>(rng_.Uniform(1, 5));
        q.erase(pos, len);
        break;
      }
      case 1: {  // insert junk
        size_t pos = static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size())));
        const char* junk = kJunk[rng_.Uniform(
            0, static_cast<int64_t>(std::size(kJunk)) - 1)];
        q.insert(pos, std::string(" ") + junk + " ");
        break;
      }
      case 2:  // truncate
        q.resize(static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size()) - 1)));
        break;
      case 3: {  // swap two characters
        size_t a = static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size()) - 1));
        size_t b = static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size()) - 1));
        std::swap(q[a], q[b]);
        break;
      }
      default: {  // duplicate a chunk
        size_t pos = static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(q.size()) - 1));
        size_t len = std::min<size_t>(
            static_cast<size_t>(rng_.Uniform(1, 8)), q.size() - pos);
        q.insert(pos, q.substr(pos, len));
        break;
      }
    }
  }
  return q;
}

}  // namespace fuzz
}  // namespace n2j
