#include "fuzz/fuzzer.h"

#include <chrono>
#include <ostream>

#include "common/str_util.h"
#include "core/engine.h"
#include "fuzz/shrink.h"

namespace n2j {
namespace fuzz {

namespace {

uint64_t RoundSeed(uint64_t seed, int round) {
  uint64_t h = Fnv1a(&round, sizeof(round), seed ^ 0x6e326a5f66757a7aULL);
  return h == 0 ? 1 : h;
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string FuzzSummary::ToString() const {
  return StrFormat(
      "rounds=%d ok=%d skipped=%d front-end-rejects=%d mismatches=%d "
      "(matrix of %d configs)",
      rounds_run, oracle_ok, skipped_runtime_error, front_end_rejects,
      mismatches, configs_per_round);
}

FuzzSummary RunFuzzer(const FuzzOptions& options,
                      std::vector<FuzzFailure>* failures, std::ostream* log) {
  const std::vector<OracleConfig> matrix =
      options.matrix.empty() ? DefaultConfigMatrix() : options.matrix;
  FuzzSummary summary;
  summary.configs_per_round = static_cast<int>(matrix.size());
  auto start = std::chrono::steady_clock::now();

  for (int round = options.start_round;
       round < options.start_round + options.rounds; ++round) {
    if (options.time_budget_ms > 0 &&
        ElapsedMs(start) >= options.time_budget_ms) {
      if (log) {
        *log << "time budget exhausted after " << summary.rounds_run
             << " rounds\n";
      }
      break;
    }
    uint64_t rseed = RoundSeed(options.seed, round);

    FuzzTablesConfig tables = options.tables;
    tables.seed = rseed;
    auto db = std::make_unique<Database>();
    Status s = AddRandomFuzzTables(db.get(), tables);
    N2J_CHECK(s.ok());

    QueryGenerator gen(*db, rseed ^ 0x51ed270b, options.gen);
    std::string query = gen.Generate();
    ++summary.rounds_run;
    if (options.verbose && log) {
      *log << "round " << round << " seed " << rseed << ": " << query
           << "\n";
    }

    OracleReport report = RunDifferentialOracle(*db, query, matrix);
    switch (report.status) {
      case OracleStatus::kOk:
        ++summary.oracle_ok;
        break;
      case OracleStatus::kSkipped:
        ++summary.skipped_runtime_error;
        break;
      case OracleStatus::kFrontEndError: {
        ++summary.front_end_rejects;
        if (log) {
          *log << "GENERATOR BUG (front end rejected a generated query)\n"
               << "  round " << round << " seed " << rseed << "\n  query: "
               << query << "\n  " << report.detail << "\n";
        }
        break;
      }
      case OracleStatus::kMismatch: {
        ++summary.mismatches;
        FuzzFailure failure;
        failure.round = round;
        failure.round_seed = rseed;
        failure.query = query;
        failure.failing_config = report.failing_config;
        failure.detail = report.detail;
        if (options.shrink_failures) {
          auto still_fails = [&matrix](const Database& d,
                                       const std::string& q) {
            return RunDifferentialOracle(d, q, matrix).status ==
                   OracleStatus::kMismatch;
          };
          ShrinkResult shrunk = ShrinkFailure(*db, query, still_fails);
          failure.shrunk_query = shrunk.query;
          failure.shrunk_db = DumpPlainTables(*shrunk.db);
        }
        if (log) {
          *log << "MISMATCH at round " << round << " (seed " << rseed
               << ", config " << report.failing_config << ")\n  query: "
               << query << "\n";
          if (!failure.shrunk_query.empty()) {
            *log << "  shrunk: " << failure.shrunk_query
                 << "\n  database:\n" << failure.shrunk_db;
          }
          *log << "  " << report.detail << "\n";
        }
        if (failures) failures->push_back(std::move(failure));
        break;
      }
    }
  }
  if (log) *log << summary.ToString() << "\n";
  return summary;
}

int RunRejectionRounds(const FuzzOptions& options, std::ostream* log) {
  auto start = std::chrono::steady_clock::now();
  int rounds = 0;
  for (int round = options.start_round;
       round < options.start_round + options.rounds; ++round) {
    if (options.time_budget_ms > 0 &&
        ElapsedMs(start) >= options.time_budget_ms) {
      break;
    }
    uint64_t rseed = RoundSeed(options.seed, round) ^ 0xbadc0de;

    FuzzTablesConfig tables = options.tables;
    tables.seed = rseed;
    auto db = std::make_unique<Database>();
    N2J_CHECK(AddRandomFuzzTables(db.get(), tables).ok());

    QueryGenerator gen(*db, rseed, options.gen);
    std::string query = gen.GenerateMalformed();
    ++rounds;

    // The full engine path must produce a Result either way — any crash
    // aborts the process and the caller's harness reports it.
    QueryEngine engine(db.get());
    Result<QueryReport> r = engine.Run(query);
    if (options.verbose && log) {
      *log << "reject round " << round << ": "
           << (r.ok() ? "accepted (still valid)" : r.status().ToString())
           << "\n  query: " << query << "\n";
    }
  }
  return rounds;
}

}  // namespace fuzz
}  // namespace n2j
