#ifndef N2J_FUZZ_FUZZER_H_
#define N2J_FUZZ_FUZZER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/query_gen.h"
#include "storage/datagen.h"

namespace n2j {
namespace fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  int rounds = 100;
  /// First round index. Per-round seeds depend only on (seed, round
  /// index), so `start_round = R, rounds = 1` replays round R exactly.
  int start_round = 0;
  /// Stop early once this much wall time has elapsed (0 = unlimited).
  int64_t time_budget_ms = 0;
  bool shrink_failures = true;
  bool verbose = false;
  /// Template for per-round databases; the table seed is derived from
  /// (seed, round), so every round sees a fresh schema *and* data.
  FuzzTablesConfig tables;
  GenOptions gen;
  /// Differential matrix; empty means DefaultConfigMatrix().
  std::vector<OracleConfig> matrix;
};

struct FuzzFailure {
  int round = 0;
  uint64_t round_seed = 0;
  std::string query;          // original failing query
  std::string failing_config;
  std::string detail;         // oracle mismatch description
  std::string shrunk_query;   // after minimization ("" if disabled)
  std::string shrunk_db;      // printable dump of the minimized database
};

struct FuzzSummary {
  int rounds_run = 0;
  int oracle_ok = 0;
  int skipped_runtime_error = 0;  // reference hit a (legal) runtime error
  int front_end_rejects = 0;      // generator output the front end refused
                                  // — a generator bug, kept visible
  int mismatches = 0;
  int configs_per_round = 0;

  bool Clean() const { return mismatches == 0 && front_end_rejects == 0; }
  std::string ToString() const;
};

/// The differential fuzzing loop: per round, build a random database
/// (random schema + data), generate a random well-typed OOSQL query, and
/// run the oracle across the configuration matrix. Mismatches are
/// minimized with ShrinkFailure (re-running the oracle as the failure
/// predicate) and appended to `failures`. `log` may be null.
FuzzSummary RunFuzzer(const FuzzOptions& options,
                      std::vector<FuzzFailure>* failures, std::ostream* log);

/// Rejection-mode loop (satellite of the same subsystem): per round,
/// generate a *malformed* query and check the full engine path returns a
/// Status instead of crashing. Returns the number of rounds executed.
int RunRejectionRounds(const FuzzOptions& options, std::ostream* log);

}  // namespace fuzz
}  // namespace n2j

#endif  // N2J_FUZZ_FUZZER_H_
