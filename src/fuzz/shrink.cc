#include "fuzz/shrink.h"

#include <vector>

#include "oosql/ast.h"
#include "oosql/parser.h"

namespace n2j {
namespace fuzz {

namespace {

// ---------------------------------------------------------------------------
// Query reductions (on the surface AST, re-rendered via QExprToString).

std::shared_ptr<QExpr> CopyNode(const QExpr& n) {
  return std::make_shared<QExpr>(n);
}

/// Well-founded size measure: node count plus nonzero int literals and
/// set-literal elements. Every reduction below strictly decreases it.
int Measure(const QExprPtr& e) {
  int m = 1;
  if (e->kind == QExpr::Kind::kIntLit && e->int_value != 0) ++m;
  for (const QExprPtr& k : e->kids) m += Measure(k);
  return m;
}

QExprPtr BoolLit(bool b) {
  auto n = std::make_shared<QExpr>();
  n->kind = QExpr::Kind::kBoolLit;
  n->bool_value = b;
  return n;
}

/// Collects every tree obtainable from the current whole tree by one
/// local reduction at `node`; `wrap` grafts a replacement of `node` back
/// into the whole tree.
void Reductions(const QExprPtr& node,
                const std::function<QExprPtr(QExprPtr)>& wrap,
                std::vector<QExprPtr>* out) {
  // Generic hoist: replace the node by any of its children.
  for (const QExprPtr& kid : node->kids) out->push_back(wrap(kid));

  switch (node->kind) {
    case QExpr::Kind::kSelect: {
      if (node->has_where) {
        auto c = CopyNode(*node);
        c->kids.pop_back();
        c->has_where = false;
        out->push_back(wrap(c));
      }
      if (node->NumRanges() > 1) {
        for (size_t i = 0; i < node->NumRanges(); ++i) {
          auto c = CopyNode(*node);
          c->names.erase(c->names.begin() + static_cast<long>(i));
          c->kids.erase(c->kids.begin() + static_cast<long>(1 + i));
          out->push_back(wrap(c));
        }
      }
      break;
    }
    case QExpr::Kind::kQuant:
    case QExpr::Kind::kBinary:
    case QExpr::Kind::kIsEmptyCall:
      out->push_back(wrap(BoolLit(true)));
      out->push_back(wrap(BoolLit(false)));
      break;
    case QExpr::Kind::kIntLit:
      if (node->int_value != 0) {
        auto c = CopyNode(*node);
        c->int_value = 0;
        out->push_back(wrap(c));
      }
      break;
    case QExpr::Kind::kSetLit:
      for (size_t i = 0; i < node->kids.size(); ++i) {
        auto c = CopyNode(*node);
        c->kids.erase(c->kids.begin() + static_cast<long>(i));
        out->push_back(wrap(c));
      }
      break;
    default:
      break;
  }

  // Recurse: the same reductions anywhere below.
  for (size_t i = 0; i < node->kids.size(); ++i) {
    const QExprPtr kid = node->kids[i];
    auto wrap_kid = [&node, &wrap, i](QExprPtr replacement) {
      auto c = CopyNode(*node);
      c->kids[i] = std::move(replacement);
      return wrap(c);
    };
    Reductions(kid, wrap_kid, out);
  }
}

std::vector<QExprPtr> QueryCandidates(const QExprPtr& root) {
  std::vector<QExprPtr> out;
  Reductions(root, [](QExprPtr r) { return r; }, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Database reductions.

/// Clone of `db` with `drop_rows[table]` row indexes removed and, when
/// `empty_set` names a (table, row, field), that set cell emptied.
std::unique_ptr<Database> CloneReduced(
    const Database& db, const std::string& drop_table, size_t drop_begin,
    size_t drop_end, const std::string& set_table, size_t set_row,
    const std::string& set_field) {
  auto clone = std::make_unique<Database>();
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    Status s = clone->CreateTable(name, t->row_type());
    N2J_CHECK(s.ok());
    for (size_t i = 0; i < t->rows().size(); ++i) {
      if (name == drop_table && i >= drop_begin && i < drop_end) continue;
      Value row = t->rows()[i];
      if (name == set_table && i == set_row && row.is_tuple()) {
        row = row.ExceptUpdate({Field(set_field, Value::EmptySet())});
      }
      N2J_CHECK(clone->Insert(name, std::move(row)).ok());
    }
  }
  return clone;
}

}  // namespace

std::unique_ptr<Database> ClonePlainTables(const Database& db) {
  return CloneReduced(db, "", 0, 0, "", 0, "");
}

std::string DumpPlainTables(const Database& db) {
  std::string out;
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    out += name + " : " + (t->row_type() ? t->row_type()->ToString() : "?") +
           "\n";
    for (const Value& row : t->rows()) out += "  " + row.ToString() + "\n";
  }
  return out;
}

ShrinkResult ShrinkFailure(const Database& db, const std::string& query,
                           const FailurePredicate& still_fails,
                           int max_steps) {
  ShrinkResult result;
  result.query = query;
  result.db = ClonePlainTables(db);
  int steps = 0;

  bool improved = true;
  while (improved && steps < max_steps) {
    improved = false;

    // Query reductions first: a smaller query usually unlocks more
    // database reductions.
    Result<QExprPtr> parsed = Parser::ParseQueryString(result.query);
    if (parsed.ok()) {
      int current = Measure(*parsed);
      for (const QExprPtr& cand : QueryCandidates(*parsed)) {
        if (Measure(cand) >= current) continue;
        std::string text = QExprToString(cand);
        if (++steps > max_steps) break;
        if (still_fails(*result.db, text)) {
          result.query = text;
          ++result.accepted_steps;
          improved = true;
          break;
        }
      }
      if (improved) continue;
    }

    // Database reductions: drop row ranges (halves, then singles), then
    // empty out set-valued cells.
    for (const std::string& name : result.db->TableNames()) {
      const Table* t = result.db->FindTable(name);
      size_t n = t->size();
      if (n == 0) continue;
      std::vector<std::pair<size_t, size_t>> ranges;
      if (n > 1) {
        ranges.emplace_back(0, n / 2);
        ranges.emplace_back(n / 2, n);
      }
      for (size_t i = 0; i < n; ++i) ranges.emplace_back(i, i + 1);
      for (const auto& [b, e] : ranges) {
        if (++steps > max_steps) break;
        auto cand = CloneReduced(*result.db, name, b, e, "", 0, "");
        if (still_fails(*cand, result.query)) {
          result.db = std::move(cand);
          ++result.accepted_steps;
          improved = true;
          break;
        }
      }
      if (improved) break;
    }
    if (improved) continue;

    for (const std::string& name : result.db->TableNames()) {
      const Table* t = result.db->FindTable(name);
      for (size_t i = 0; i < t->size(); ++i) {
        const Value& row = t->rows()[i];
        if (!row.is_tuple()) continue;
        for (size_t fi = 0; fi < row.tuple_size(); ++fi) {
          const Value& fv = row.field_value(fi);
          if (!fv.is_set() || fv.set_size() == 0) continue;
          if (++steps > max_steps) break;
          auto cand =
              CloneReduced(*result.db, "", 0, 0, name, i, row.field_name(fi));
          if (still_fails(*cand, result.query)) {
            result.db = std::move(cand);
            ++result.accepted_steps;
            improved = true;
            break;
          }
        }
        if (improved) break;
      }
      if (improved) break;
    }
  }
  return result;
}

}  // namespace fuzz
}  // namespace n2j
