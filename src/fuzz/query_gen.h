#ifndef N2J_FUZZ_QUERY_GEN_H_
#define N2J_FUZZ_QUERY_GEN_H_

#include <string>
#include <vector>

#include "adl/type.h"
#include "common/rng.h"
#include "storage/database.h"

namespace n2j {
namespace fuzz {

/// Knobs of the grammar-driven OOSQL generator.
struct GenOptions {
  int max_depth = 3;        // nesting budget for select blocks / predicates
  int max_ranges = 2;       // from-clause variables per select block
  double where_prob = 0.85;
  double with_prob = 0.12;  // chance of a `with`-bound local subquery
  double nested_body_prob = 0.3;  // select-clause nesting (set-valued body)
  double multi_range_prob = 0.35;
  /// Mutations applied per malformed query (1..n).
  int max_mutations = 3;
};

/// Generates random well-typed OOSQL query text over the plain tables of
/// `db` (typically AddRandomFuzzTables output, but any database whose
/// plain tables mix int / string / {(d : int)} columns works, including
/// the X/Y tables of AddRandomXY). Typing is guaranteed by construction:
/// the generator tracks the TypePtr of every range variable and only
/// emits field accesses and operators valid for those types. The grammar
/// deliberately covers everything the paper's rewrites fire on — nesting
/// in the select-, from- and where-clause, all six set comparators,
/// membership, quantifiers over tables and set-valued attributes,
/// aggregates, and the `with` construct. Deterministic in the seed.
class QueryGenerator {
 public:
  QueryGenerator(const Database& db, uint64_t seed,
                 GenOptions options = GenOptions());

  /// One random well-typed query. A front-end rejection of the result is
  /// a generator (or front-end) bug; tests assert it never happens.
  std::string Generate();

  /// A mutilated query for rejection testing: starts from Generate()
  /// output and applies random token/character mutations. The front end
  /// must reject it with a Status (or accept a still-valid mutant) —
  /// never crash.
  std::string GenerateMalformed();

 private:
  struct Binding {
    std::string name;
    TypePtr type;  // always a tuple type (range variables bind tuples)
  };
  using Scope = std::vector<Binding>;

  // Scope helpers. "DSet" is the canonical set-valued-attribute shape
  // { (d : int) } shared by all generated set columns.
  std::vector<std::string> FieldsOfKind(const TypePtr& tuple,
                                        Type::Kind kind) const;
  bool IsDSet(const TypePtr& t) const;
  std::string FreshVar();

  // Text builders. Each returns a parenthesized-where-needed fragment.
  std::string GenSelect(int depth, const Scope& scope);
  struct RangeChoice {
    std::string text;   // range expression text
    TypePtr element;    // element type bound to the range variable
  };
  RangeChoice GenRange(int depth, const Scope& scope);
  std::string GenBody(int depth, const Scope& scope);
  std::string GenPred(int depth, const Scope& scope);
  std::string GenInt(int depth, const Scope& scope);
  /// Expression of type { (d : int) }.
  std::string GenDSet(int depth, const Scope& scope);
  /// Expression of type { int }.
  std::string GenIntSet(int depth, const Scope& scope);
  /// Any set-typed expression (for count / isempty).
  std::string GenAnySet(int depth, const Scope& scope);

  /// Scope entries that have at least one field of the given kind.
  std::vector<int> VarsWithField(const Scope& scope, Type::Kind kind) const;

  const Database& db_;
  Rng rng_;
  GenOptions opts_;
  std::vector<std::string> tables_;
  int next_var_ = 0;
};

}  // namespace fuzz
}  // namespace n2j

#endif  // N2J_FUZZ_QUERY_GEN_H_
