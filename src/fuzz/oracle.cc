#include "fuzz/oracle.h"

#include "adl/printer.h"
#include "adl/typecheck.h"
#include "core/engine.h"
#include "obs/querylog.h"
#include "obs/trace.h"
#include "oosql/translate.h"
#include "opt/optimizer.h"
#include "shred/shred.h"

namespace n2j {
namespace fuzz {

namespace {

OracleConfig Cell(const char* name,
                  RewriteOptions rewrite = RewriteOptions(),
                  EvalOptions eval = EvalOptions()) {
  OracleConfig c;
  c.name = name;
  c.rewrite = rewrite;
  c.eval = eval;
  return c;
}

}  // namespace

std::vector<OracleConfig> DefaultConfigMatrix() {
  std::vector<OracleConfig> m;

  {
    // Sanity cell: naive plan, nested-loop execution — must match the
    // oracle by construction; catches nondeterminism in eval itself.
    OracleConfig c = Cell("nl-norewrite");
    c.skip_rewrite = true;
    c.eval.use_hash_joins = false;
    c.eval.enable_pnhl = false;
    m.push_back(c);
  }

  // The paper's full strategy under every physical join algorithm.
  {
    OracleConfig c = Cell("full-nestjoin-hash");
    c.eval.join_algorithm = JoinAlgorithm::kHash;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("full-nestjoin-sortmerge");
    c.eval.join_algorithm = JoinAlgorithm::kSortMerge;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("full-nestjoin-index");
    c.eval.join_algorithm = JoinAlgorithm::kIndex;
    m.push_back(c);
  }
  {
    // Logical rewrites alone: optimized plan, tuple-at-a-time execution.
    OracleConfig c = Cell("full-nestjoin-nl");
    c.eval.use_hash_joins = false;
    c.eval.enable_pnhl = false;
    m.push_back(c);
  }

  // Grouping-mode sweep (the Complex Object bug axis).
  {
    OracleConfig c = Cell("grouping-when-safe");
    c.rewrite.grouping = GroupingMode::kGroupingWhenSafe;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("grouping-none");
    c.rewrite.grouping = GroupingMode::kNone;
    m.push_back(c);
  }

  // Pass-ablation cells: each disabled pass must be *optional*, never
  // load-bearing for correctness.
  {
    OracleConfig c = Cell("no-setcmp");
    c.rewrite.enable_setcmp = false;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("no-quantifier-no-mapjoin");
    c.rewrite.enable_quantifier = false;
    c.rewrite.enable_map_join = false;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("no-unnest-no-pushdown-no-hoist");
    c.rewrite.enable_unnest_attr = false;
    c.rewrite.enable_pushdown = false;
    c.rewrite.enable_hoist = false;
    m.push_back(c);
  }

  // PNHL under memory pressure (multi-segment partitioning).
  {
    OracleConfig c = Cell("pnhl-tight-budget");
    c.eval.pnhl_memory_budget = 256;
    m.push_back(c);
  }

  // Morsel-driven parallel execution: the serial oracle must agree with
  // every parallel cell bit-for-bit — morsel merges are input-ordered, so
  // any divergence is a real scheduling-dependent bug. 2 threads is the
  // smallest parallel shape; 8 oversubscribes the scheduler to shake out
  // ordering assumptions.
  {
    OracleConfig c = Cell("full-nestjoin-hash-mt2");
    c.eval.join_algorithm = JoinAlgorithm::kHash;
    c.eval.num_threads = 2;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("full-nestjoin-hash-mt8");
    c.eval.join_algorithm = JoinAlgorithm::kHash;
    c.eval.num_threads = 8;
    m.push_back(c);
  }
  {
    // Multi-segment PNHL with parallel segment processing.
    OracleConfig c = Cell("pnhl-tight-budget-mt2");
    c.eval.pnhl_memory_budget = 256;
    c.eval.num_threads = 2;
    m.push_back(c);
  }

  // The legacy cells above pin the tree interpreter so the compiled
  // axis stays independently diffable; the cells below turn the
  // bytecode engine on (EvalOptions default) and must agree with the
  // interpreter-only oracle bit-for-bit, including error parity.
  for (OracleConfig& c : m) c.eval.compiled = false;
  {
    OracleConfig c = Cell("compiled");
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("compiled-mt4");
    c.eval.num_threads = 4;
    m.push_back(c);
  }
  {
    // Compiled lambdas above a multi-segment PNHL fast path.
    OracleConfig c = Cell("compiled-pnhl-tight-budget");
    c.eval.pnhl_memory_budget = 256;
    m.push_back(c);
  }
  {
    // Per-operator tracing as a pure observer under morsel parallelism:
    // results must still match the oracle, and the span tree's exclusive
    // stats deltas must sum exactly to the global counters.
    OracleConfig c = Cell("traced-mt4");
    c.eval.num_threads = 4;
    c.trace = true;
    m.push_back(c);
  }
  {
    // Cost-based planning: statistics-driven per-node algorithm choice
    // and join-order DP must be pure plan transformations — bit-exact
    // against the nested-loop oracle whatever the cost model picks.
    OracleConfig c = Cell("cost-based");
    c.cost_based = true;
    m.push_back(c);
  }

  // The shredded backend (shred/): flat-DAG translation, columnar
  // scans, hash-join expansion and id-keyed stitching must reproduce
  // the nested-loop oracle bit-for-bit on every generated query. These
  // four cells pin the scalar flat executor (vectorized = false) so the
  // row-wise engine keeps its own differential coverage; the vectorized
  // cells below flip the batch pipeline on.
  {
    // Naive translation, serial — shredded-vs-nested-loop head-on.
    OracleConfig c = Cell("shredded");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vectorized = false;
    m.push_back(c);
  }
  {
    // Parallel row-wise delegates under the shredded executor.
    OracleConfig c = Cell("shredded-mt4");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vectorized = false;
    c.eval.num_threads = 4;
    m.push_back(c);
  }
  {
    // Tracing as a pure observer over the flat DAG, plus the span-sum
    // invariant across shred-node spans and delegate operator spans.
    OracleConfig c = Cell("shredded-traced");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vectorized = false;
    c.trace = true;
    m.push_back(c);
  }
  {
    // Shredding the *rewritten* plan: joins/nestjoins and hoisted lets
    // land in scalar roots and opaque ranges — exercises the fallback
    // seams rather than the structural fast paths.
    OracleConfig c = Cell("shredded-rewritten");
    c.eval.backend = Backend::kShredded;
    c.eval.vectorized = false;
    m.push_back(c);
  }

  // Vectorized batch execution over the shredded DAG: fused
  // select-map-join pipelines, batch hash probes, per-node scalar
  // fallback — must stay bit-equal to the nested-loop oracle, including
  // first-error order across batch boundaries.
  {
    OracleConfig c = Cell("vectorized");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("vectorized-mt4");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.num_threads = 4;
    m.push_back(c);
  }
  {
    // Tiny batches put every query's rows across many batch boundaries
    // — the divergence/rejoin and error-bail seams get maximal traffic.
    OracleConfig c = Cell("vectorized-b3");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vector_batch_size = 3;
    m.push_back(c);
  }
  {
    // Tiny batches AND morsel parallelism: every batch becomes its own
    // unit, so the order-restoring merge and per-worker lane compiles
    // see the maximum number of seams per query.
    OracleConfig c = Cell("vectorized-b3-mt4");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vector_batch_size = 3;
    c.eval.num_threads = 4;
    m.push_back(c);
  }
  {
    // Tracing over the parallel scalar engine: worker counters must
    // merge into the delegate's stats before each shred-node span
    // closes, or the span-sum invariant the oracle checks breaks.
    OracleConfig c = Cell("shredded-traced-mt4");
    c.skip_rewrite = true;
    c.eval.backend = Backend::kShredded;
    c.eval.vectorized = false;
    c.eval.num_threads = 4;
    c.trace = true;
    m.push_back(c);
  }
  {
    // Through the engine façade with the flight recorder on the path:
    // every run must append exactly one record whose stats snapshot
    // equals the merged global counters, under morsel parallelism and
    // tracing — the recorder is a pure observer or it is a bug.
    OracleConfig c = Cell("querylog-traced-mt4");
    c.eval.num_threads = 4;
    c.trace = true;
    c.querylog = true;
    m.push_back(c);
  }

  return m;
}

std::vector<OracleConfig> MinimalConfigMatrix() {
  std::vector<OracleConfig> m;
  {
    OracleConfig c = Cell("full-nestjoin-hash");
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("full-nestjoin-nl");
    c.eval.use_hash_joins = false;
    c.eval.enable_pnhl = false;
    m.push_back(c);
  }
  {
    OracleConfig c = Cell("grouping-when-safe");
    c.rewrite.grouping = GroupingMode::kGroupingWhenSafe;
    m.push_back(c);
  }
  return m;
}

std::vector<OracleConfig> UnsafeGroupingMatrix() {
  OracleConfig c = Cell("force-grouping-unsafe");
  c.rewrite.grouping = GroupingMode::kForceGroupingUnsafe;
  return {c};
}

const char* OracleStatusName(OracleStatus s) {
  switch (s) {
    case OracleStatus::kOk: return "ok";
    case OracleStatus::kSkipped: return "skipped";
    case OracleStatus::kMismatch: return "mismatch";
    case OracleStatus::kFrontEndError: return "front-end-error";
  }
  return "?";
}

OracleReport RunDifferentialOracle(const Database& db,
                                   const std::string& query,
                                   const std::vector<OracleConfig>& matrix) {
  OracleReport report;
  report.query = query;

  Translator tr(db.schema(), &db);
  Result<TypedExpr> typed = tr.TranslateString(query);
  if (!typed.ok()) {
    report.status = OracleStatus::kFrontEndError;
    report.detail = typed.status().ToString();
    return report;
  }
  const ExprPtr& naive = typed->expr;

  // The oracle: pure nested-loop tree-interpreter evaluation of the
  // naive translation — no physical joins, no PNHL, no bytecode.
  EvalOptions reference_opts;
  reference_opts.use_hash_joins = false;
  reference_opts.enable_pnhl = false;
  reference_opts.compiled = false;
  Evaluator reference(db, reference_opts);
  Result<Value> expected = reference.Eval(naive);

  TypeChecker checker(db.schema(), &db);
  Result<TypePtr> naive_type = checker.Infer(naive);
  if (!naive_type.ok()) {
    report.status = OracleStatus::kFrontEndError;
    report.detail = "naive plan fails type inference: " +
                    naive_type.status().ToString();
    return report;
  }

  for (const OracleConfig& config : matrix) {
    ExprPtr plan = naive;
    std::string trace;
    if (!config.skip_rewrite) {
      Rewriter rw(db.schema(), &db, config.rewrite);
      Result<RewriteResult> rewritten = rw.Rewrite(naive);
      if (!rewritten.ok()) {
        // The rewriter must be total on well-typed input.
        report.status = OracleStatus::kMismatch;
        report.failing_config = config.name;
        report.detail = "rewrite failed: " + rewritten.status().ToString();
        return report;
      }
      plan = rewritten->expr;
      trace = rewritten->TraceToString();

      Result<TypePtr> plan_type = checker.Infer(plan);
      if (!plan_type.ok()) {
        report.status = OracleStatus::kMismatch;
        report.failing_config = config.name;
        report.detail = "rewritten plan fails type inference: " +
                        plan_type.status().ToString() +
                        "\nplan: " + AlgebraStr(plan) + "\n" + trace;
        return report;
      }
      if (!naive_type->get()->Equals(**plan_type)) {
        report.status = OracleStatus::kMismatch;
        report.failing_config = config.name;
        report.detail = "rewrite changed the inferred type: " +
                        naive_type->get()->ToString() + " vs " +
                        plan_type->get()->ToString() +
                        "\nplan: " + AlgebraStr(plan) + "\n" + trace;
        return report;
      }
    }

    EvalOptions eval_opts = config.eval;
    TraceCollector collector;
    if (config.trace) eval_opts.trace = &collector;
    PhysicalPlan physical;
    if (config.cost_based) {
      PlannerOptions popts;
      popts.strategy = PlanStrategy::kCost;
      Planner planner(db, popts);
      Result<PhysicalPlan> planned = planner.Plan(plan);
      if (!planned.ok()) {
        report.status = OracleStatus::kMismatch;
        report.failing_config = config.name;
        report.detail = "planner failed: " + planned.status().ToString() +
                        "\nplan: " + AlgebraStr(plan) + "\n" + trace;
        return report;
      }
      physical = std::move(planned).value();
      plan = physical.root;
      eval_opts.plan = &physical.annotations;
    }
    EvalStats cell_stats;
    Result<Value> actual = Status::Internal("cell did not run");
    if (config.querylog) {
      // The engine façade runs translate → rewrite → execute itself (the
      // rewrite/type pre-checks above already vetted config.rewrite), so
      // the flight recorder sees this cell exactly like a user query.
      obs::QueryLog& qlog = obs::QueryLog::Global();
      uint64_t before = qlog.total_appended();
      QueryEngine engine(&db, config.rewrite, eval_opts);
      Result<QueryReport> run = engine.Run(query);
      if (run.ok()) {
        cell_stats = run->exec_stats;
        actual = run->result;
      } else {
        actual = run.status();
      }
      if (qlog.enabled()) {
        uint64_t appended = qlog.total_appended() - before;
        if (appended != 1) {
          report.status = OracleStatus::kMismatch;
          report.failing_config = config.name;
          report.detail = "flight recorder appended " +
                          std::to_string(appended) +
                          " records for one query (want exactly 1)";
          return report;
        }
        const obs::QueryLogRecord* rec = nullptr;
        std::vector<obs::QueryLogRecord> snap = qlog.Snapshot();
        for (const obs::QueryLogRecord& r : snap) {
          if (r.id == before) rec = &r;
        }
        if (rec == nullptr) {
          report.status = OracleStatus::kMismatch;
          report.failing_config = config.name;
          report.detail = "flight recorder lost the just-appended record";
          return report;
        }
        if (run.ok() &&
            rec->stats.Compact() != run->exec_stats.Compact()) {
          report.status = OracleStatus::kMismatch;
          report.failing_config = config.name;
          report.detail =
              "flight-recorder stats snapshot diverges from the "
              "execution's global counters\nrecord: " +
              rec->stats.Compact() + "\nglobal: " +
              run->exec_stats.Compact();
          return report;
        }
        if (!run.ok() && rec->error.empty()) {
          report.status = OracleStatus::kMismatch;
          report.failing_config = config.name;
          report.detail =
              "query errored but the flight-recorder record has no error";
          return report;
        }
      }
    } else {
      actual = shred::EvalWithBackend(db, plan, eval_opts, &cell_stats);
    }
    ++report.configs_checked;

    // On an errored engine run the report (and its exec_stats) is
    // discarded, so there is no global-counter side to compare the span
    // sum against — the invariant itself is still covered by the
    // direct-eval traced cells.
    bool span_sum_checkable = !(config.querylog && !actual.ok());
    if (config.trace && span_sum_checkable) {
      // Span-sum invariant: the exclusive deltas over the whole span
      // tree reconstruct the global counters exactly — even when the
      // evaluation errored out (RAII closes every span on unwind).
      std::string span_sum = collector.SumExclusiveStats().Compact();
      std::string global = cell_stats.Compact();
      if (span_sum != global) {
        report.status = OracleStatus::kMismatch;
        report.failing_config = config.name;
        report.detail = "trace span stats do not sum to global stats\n"
                        "span sum: " + span_sum + "\nglobal:   " + global +
                        "\nplan: " + AlgebraStr(plan) + "\n" + trace;
        return report;
      }
    }

    if (!expected.ok()) {
      // Reference hit a runtime error (e.g. arithmetic on a null
      // min-over-empty-set). Rewrites may legitimately dodge or hit the
      // same error, so results are not comparable; we only insist that
      // each cell terminates with a Status (crash-freedom is implicit in
      // getting here).
      continue;
    }
    if (!actual.ok()) {
      report.status = OracleStatus::kMismatch;
      report.failing_config = config.name;
      report.detail = "config errored where the oracle succeeded: " +
                      actual.status().ToString() +
                      "\nplan: " + AlgebraStr(plan) + "\n" + trace;
      return report;
    }
    if (*actual != *expected) {
      report.status = OracleStatus::kMismatch;
      report.failing_config = config.name;
      report.detail = "value mismatch\nexpected: " + expected->ToString() +
                      "\nactual:   " + actual->ToString() +
                      "\nplan: " + AlgebraStr(plan) + "\n" + trace;
      return report;
    }
  }

  if (!expected.ok()) {
    report.status = OracleStatus::kSkipped;
    report.detail = "reference runtime error: " +
                    expected.status().ToString();
  }
  return report;
}

}  // namespace fuzz
}  // namespace n2j
