#ifndef N2J_ADL_TYPECHECK_H_
#define N2J_ADL_TYPECHECK_H_

#include <string>
#include <vector>

#include "adl/expr.h"
#include "adl/schema.h"
#include "adl/type.h"
#include "common/result.h"
#include "storage/database.h"

namespace n2j {

/// Variable typing context for ADL type inference.
class TypeEnv {
 public:
  void Push(const std::string& name, TypePtr type) {
    bindings_.emplace_back(name, std::move(type));
  }
  void Pop() { bindings_.pop_back(); }
  const TypePtr* Lookup(const std::string& name) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, TypePtr>> bindings_;
};

/// Infers the type of an ADL expression. ADL is a *typed* algebra
/// (Section 3); the rewriter uses inference to compute schemas (SCH) for
/// the grouping/nestjoin substitutions, and the tests use it to check
/// that every rewrite is type-preserving.
///
/// `db` may be null; then only class extents (from `schema`) resolve as
/// tables.
class TypeChecker {
 public:
  explicit TypeChecker(const Schema& schema, const Database* db = nullptr)
      : schema_(schema), db_(db) {}

  Result<TypePtr> Infer(const ExprPtr& e) {
    TypeEnv env;
    return Infer(e, env);
  }
  Result<TypePtr> Infer(const ExprPtr& e, TypeEnv& env);

  /// SCH of a set-of-tuples expression: its top-level attribute names.
  Result<std::vector<std::string>> SchemaOf(const ExprPtr& e, TypeEnv& env);

 private:
  Status TypeError(const std::string& msg) const {
    return Status::TypeError(msg);
  }

  const Schema& schema_;
  const Database* db_;
};

/// Derives the most specific type of a runtime value (oids type as plain
/// oid; empty sets as { any }).
TypePtr TypeOfValue(const Value& v);

}  // namespace n2j

#endif  // N2J_ADL_TYPECHECK_H_
