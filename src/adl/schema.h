#ifndef N2J_ADL_SCHEMA_H_
#define N2J_ADL_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adl/type.h"
#include "common/result.h"
#include "common/status.h"

namespace n2j {

/// One class definition of the OO schema (Section 2 of the paper):
///
///   Class Supplier with extension SUPPLIER
///     attributes sname : string, parts_supplied : { Part }
///   end Supplier
///
/// Per Section 3, logical design maps each class extension to a table of
/// complex objects with an added oid field; class references become
/// attributes of type Ref(C) (oid-valued pointers).
struct ClassDef {
  std::string name;        // "Supplier"
  std::string extent;      // "SUPPLIER"
  uint16_t class_id = 0;   // assigned by Schema::AddClass
  std::string oid_field;   // name of the added oid field, e.g. "eid"
  std::vector<TypeField> attributes;  // user attributes (no oid field)

  /// The ADL tuple type of one stored object: (oid_field : oid, attrs...).
  TypePtr ObjectType() const;
  /// The ADL type of the extent: a set of ObjectType().
  TypePtr ExtentType() const;
};

/// The database schema: a set of class definitions, searchable by class
/// name, extent name and class id.
class Schema {
 public:
  /// Registers a class; assigns it the next class id. Fails if the class
  /// name or extent name is already taken.
  Status AddClass(ClassDef def);

  const ClassDef* FindClass(const std::string& name) const;
  const ClassDef* FindClassByExtent(const std::string& extent) const;
  const ClassDef* FindClassById(uint16_t id) const;

  const std::vector<ClassDef>& classes() const { return classes_; }

  /// Human-readable schema dump (paper-style class declarations).
  std::string ToString() const;

 private:
  std::vector<ClassDef> classes_;
  std::map<std::string, size_t> by_name_;
  std::map<std::string, size_t> by_extent_;
};

/// Builds the paper's supplier–part–delivery schema of Section 2, with the
/// ADL types of Section 4:
///   SUPPLIER : { (eid : oid, sname : string, parts : { (pid : oid) }) }
///   PART     : { (pid : oid, pname : string, price : int, color : string) }
///   DELIVERY : { (did : oid, supplier : Ref(Supplier),
///                 supply : { (part : Ref(Part), quantity : int) },
///                 date : int) }
Schema MakeSupplierPartSchema();

}  // namespace n2j

#endif  // N2J_ADL_SCHEMA_H_
