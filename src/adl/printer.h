#ifndef N2J_ADL_PRINTER_H_
#define N2J_ADL_PRINTER_H_

#include <string>

#include "adl/expr.h"

namespace n2j {

/// Options for printing ADL expressions.
struct PrintOptions {
  /// Use the paper's unicode operator glyphs (σ, α, π, ⋈, ⋉, ▷, ⊣, µ, ν);
  /// otherwise ASCII names (select, map, ...).
  bool unicode = true;
  /// Insert newlines/indentation for large expressions.
  bool pretty = false;
  /// Indentation width when pretty-printing.
  int indent = 2;
};

/// Renders an ADL expression in the paper's notation, e.g.
///   σ[s : ∃x ∈ s.parts · ∃p ∈ PART · x = p[pid] ∧ p.color = "red"](SUPPLIER)
std::string ToAlgebraString(const ExprPtr& e,
                            const PrintOptions& opts = PrintOptions());

/// Shorthand: single-line unicode rendering.
std::string AlgebraStr(const ExprPtr& e);

}  // namespace n2j

#endif  // N2J_ADL_PRINTER_H_
