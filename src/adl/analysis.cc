#include "adl/analysis.h"

#include "common/status.h"

namespace n2j {

namespace {

/// Indices of children in which `var_` / `var2_` are bound, per kind.
/// Children not listed see the enclosing scope.
void BoundChildren(const Expr& e, std::vector<size_t>* out) {
  out->clear();
  switch (e.kind()) {
    case ExprKind::kLet:
    case ExprKind::kMap:
    case ExprKind::kSelect:
    case ExprKind::kQuantifier:
      out->push_back(1);
      break;
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
      out->push_back(2);
      break;
    case ExprKind::kNestJoin:
      out->push_back(2);
      out->push_back(3);
      break;
    default:
      break;
  }
}

bool IsBoundChild(const Expr& e, size_t i) {
  std::vector<size_t> bc;
  BoundChildren(e, &bc);
  for (size_t b : bc) {
    if (b == i) return true;
  }
  return false;
}

void CollectFree(const ExprPtr& e, std::set<std::string>& bound,
                 std::set<std::string>* out) {
  if (e->kind() == ExprKind::kVar) {
    if (bound.count(e->name()) == 0) out->insert(e->name());
    return;
  }
  for (size_t i = 0; i < e->num_children(); ++i) {
    bool shadows1 = IsBoundChild(*e, i) && !e->var().empty();
    bool shadows2 = IsBoundChild(*e, i) && !e->var2().empty();
    bool added1 = shadows1 && bound.insert(e->var()).second;
    bool added2 = shadows2 && bound.insert(e->var2()).second;
    CollectFree(e->child(i), bound, out);
    if (added1) bound.erase(e->var());
    if (added2) bound.erase(e->var2());
  }
}

}  // namespace

std::set<std::string> FreeVars(const ExprPtr& e) {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectFree(e, bound, &out);
  return out;
}

bool IsFreeIn(const std::string& var, const ExprPtr& e) {
  return FreeVars(e).count(var) > 0;
}

bool ContainsBaseTable(const ExprPtr& e) {
  if (e->kind() == ExprKind::kGetTable) return true;
  for (const ExprPtr& c : e->children()) {
    if (ContainsBaseTable(c)) return true;
  }
  return false;
}

bool IsUncorrelated(const ExprPtr& e, const std::set<std::string>& vars) {
  std::set<std::string> free = FreeVars(e);
  for (const std::string& v : vars) {
    if (free.count(v) > 0) return false;
  }
  return true;
}

namespace {

void CollectAllVars(const ExprPtr& e, std::set<std::string>* out) {
  if (e->kind() == ExprKind::kVar) out->insert(e->name());
  if (!e->var().empty()) out->insert(e->var());
  if (!e->var2().empty()) out->insert(e->var2());
  for (const ExprPtr& c : e->children()) CollectAllVars(c, out);
}

/// Rebuilds a binder node with a renamed bound variable (var or var2).
ExprPtr RenameBinder(const ExprPtr& e, bool second, const std::string& fresh) {
  const std::string& old = second ? e->var2() : e->var();
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  for (size_t i = 0; i < e->num_children(); ++i) {
    if (IsBoundChild(*e, i)) {
      kids.push_back(Substitute(e->child(i), old, Expr::Var(fresh)));
    } else {
      kids.push_back(e->child(i));
    }
  }
  ExprPtr rebuilt = e->WithChildren(std::move(kids));
  // WithChildren copies scalars; patch the variable by rebuilding through
  // the generic path: we need a mutable copy, so reconstruct via a second
  // WithChildren after swapping names is not possible. Instead rebuild the
  // node from scratch per kind.
  switch (e->kind()) {
    case ExprKind::kLet:
      return Expr::Let(fresh, rebuilt->child(0), rebuilt->child(1));
    case ExprKind::kMap:
      return Expr::Map(fresh, rebuilt->child(1), rebuilt->child(0));
    case ExprKind::kSelect:
      return Expr::Select(fresh, rebuilt->child(1), rebuilt->child(0));
    case ExprKind::kQuantifier:
      return Expr::Quant(e->quant_kind(), fresh, rebuilt->child(0),
                         rebuilt->child(1));
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin: {
      std::string lv = second ? e->var() : fresh;
      std::string rv = second ? fresh : e->var2();
      if (e->kind() == ExprKind::kJoin) {
        return Expr::Join(rebuilt->child(0), rebuilt->child(1), lv, rv,
                          rebuilt->child(2));
      }
      if (e->kind() == ExprKind::kSemiJoin) {
        return Expr::SemiJoin(rebuilt->child(0), rebuilt->child(1), lv, rv,
                              rebuilt->child(2));
      }
      return Expr::AntiJoin(rebuilt->child(0), rebuilt->child(1), lv, rv,
                            rebuilt->child(2));
    }
    case ExprKind::kNestJoin: {
      std::string lv = second ? e->var() : fresh;
      std::string rv = second ? fresh : e->var2();
      return Expr::NestJoin(rebuilt->child(0), rebuilt->child(1), lv, rv,
                            rebuilt->child(2), e->name(), rebuilt->child(3));
    }
    default:
      N2J_CHECK(false);
      return e;
  }
}

}  // namespace

std::set<std::string> AllVars(const ExprPtr& e) {
  std::set<std::string> out;
  CollectAllVars(e, &out);
  return out;
}

ExprPtr Substitute(const ExprPtr& e, const std::string& var,
                   const ExprPtr& replacement) {
  if (e->kind() == ExprKind::kVar) {
    return e->name() == var ? replacement : e;
  }
  ExprPtr node = e;
  // Alpha-rename binders that would capture free variables of the
  // replacement, or that shadow `var` (in which case the bound children
  // must not be rewritten).
  std::set<std::string> repl_free = FreeVars(replacement);
  for (int pass = 0; pass < 2; ++pass) {
    bool second = pass == 1;
    const std::string& bv = second ? node->var2() : node->var();
    if (bv.empty() || bv == var) continue;
    if (repl_free.count(bv) > 0) {
      // Would capture: rename the binder first.
      std::string fresh = FreshVar(bv, {node, replacement});
      node = RenameBinder(node, second, fresh);
    }
  }
  bool shadowed = node->var() == var || node->var2() == var;
  std::vector<ExprPtr> kids;
  kids.reserve(node->num_children());
  bool changed = false;
  for (size_t i = 0; i < node->num_children(); ++i) {
    if (shadowed && IsBoundChild(*node, i)) {
      kids.push_back(node->child(i));
      continue;
    }
    ExprPtr nc = Substitute(node->child(i), var, replacement);
    if (nc != node->child(i)) changed = true;
    kids.push_back(std::move(nc));
  }
  if (!changed && node == e) return e;
  return node->WithChildren(std::move(kids));
}

std::string FreshVar(const std::string& hint, const ExprPtr& e) {
  return FreshVar(hint, std::vector<ExprPtr>{e});
}

std::string FreshVar(const std::string& hint,
                     const std::vector<ExprPtr>& exprs) {
  std::set<std::string> used;
  for (const ExprPtr& e : exprs) CollectAllVars(e, &used);
  if (used.count(hint) == 0) return hint;
  for (int i = 1;; ++i) {
    std::string cand = hint + std::to_string(i);
    if (used.count(cand) == 0) return cand;
  }
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred->kind() == ExprKind::kBinary && pred->bin_op() == BinOp::kAnd) {
    for (const ExprPtr& side : {pred->child(0), pred->child(1)}) {
      std::vector<ExprPtr> sub = SplitConjuncts(side);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(pred);
  }
  return out;
}

ExprPtr TransformBottomUp(
    const ExprPtr& e, const std::function<ExprPtr(const ExprPtr&)>& fn) {
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  bool changed = false;
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = TransformBottomUp(c, fn);
    if (nc != c) changed = true;
    kids.push_back(std::move(nc));
  }
  ExprPtr node = changed ? e->WithChildren(std::move(kids)) : e;
  ExprPtr replaced = fn(node);
  return replaced != nullptr ? replaced : node;
}

ExprPtr TransformTopDown(
    const ExprPtr& e, const std::function<ExprPtr(const ExprPtr&)>& fn) {
  ExprPtr node = e;
  for (int guard = 0; guard < 1000; ++guard) {
    ExprPtr replaced = fn(node);
    if (replaced == nullptr) break;
    node = replaced;
  }
  std::vector<ExprPtr> kids;
  kids.reserve(node->num_children());
  bool changed = false;
  for (const ExprPtr& c : node->children()) {
    ExprPtr nc = TransformTopDown(c, fn);
    if (nc != c) changed = true;
    kids.push_back(std::move(nc));
  }
  return changed ? node->WithChildren(std::move(kids)) : node;
}

void VisitPreOrder(const ExprPtr& e,
                   const std::function<void(const ExprPtr&)>& fn) {
  fn(e);
  for (const ExprPtr& c : e->children()) VisitPreOrder(c, fn);
}

bool IsComprehensionShaped(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kMap:
    case ExprKind::kSelect:
    case ExprKind::kFlatten:
    case ExprKind::kGetTable:
      return true;
    default:
      return false;
  }
}

}  // namespace n2j
