#include "adl/expr.h"

#include "common/status.h"

namespace n2j {

// Children layout by kind:
//   kConst / kVar / kGetTable        []
//   kLet                             [def, body]
//   kFieldAccess / kTupleProject     [e]
//   kTupleConstruct                  [v1, ..., vn]   (names_ aligned)
//   kTupleConcat                     [l, r]
//   kExcept                          [e, v1, ..., vn] (names_ aligned to v_i)
//   kSetConstruct                    [e1, ..., en]
//   kDeref / kUnary / kAggregate     [e]
//   kBinary                          [l, r]
//   kQuantifier                      [range, pred]
//   kMap / kSelect                   [input, body]
//   kProject / kFlatten / kNest / kUnnest  [input]
//   kProduct / kDivide / kUnion / kIntersect / kDifference  [l, r]
//   kJoin / kSemiJoin / kAntiJoin    [l, r, pred]
//   kNestJoin                        [l, r, pred, inner]

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kIn: return "in";
    case BinOp::kContains: return "contains";
    case BinOp::kSubset: return "subset";
    case BinOp::kSubsetEq: return "subseteq";
    case BinOp::kSupset: return "supset";
    case BinOp::kSupsetEq: return "supseteq";
    case BinOp::kUnionOp: return "union";
    case BinOp::kIntersectOp: return "intersect";
    case BinOp::kDifferenceOp: return "minus";
  }
  return "?";
}

const char* UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNot: return "not";
    case UnOp::kNeg: return "-";
    case UnOp::kIsEmpty: return "isempty";
  }
  return "?";
}

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kAvg: return "avg";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
  }
  return "?";
}

bool IsComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsSetComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kIn:
    case BinOp::kContains:
    case BinOp::kSubset:
    case BinOp::kSubsetEq:
    case BinOp::kSupset:
    case BinOp::kSupsetEq:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::Const(Value v) {
  Expr* e = new Expr(ExprKind::kConst);
  e->value_ = std::move(v);
  return ExprPtr(e);
}

ExprPtr Expr::Var(std::string name) {
  Expr* e = new Expr(ExprKind::kVar);
  e->name_ = std::move(name);
  return ExprPtr(e);
}

ExprPtr Expr::Table(std::string name) {
  Expr* e = new Expr(ExprKind::kGetTable);
  e->name_ = std::move(name);
  return ExprPtr(e);
}

ExprPtr Expr::Let(std::string var, ExprPtr def, ExprPtr body) {
  Expr* e = new Expr(ExprKind::kLet);
  e->var_ = std::move(var);
  e->children_ = {std::move(def), std::move(body)};
  return ExprPtr(e);
}

ExprPtr Expr::Access(ExprPtr in, std::string field) {
  Expr* e = new Expr(ExprKind::kFieldAccess);
  e->name_ = std::move(field);
  e->children_ = {std::move(in)};
  return ExprPtr(e);
}

ExprPtr Expr::Path(ExprPtr e, const std::vector<std::string>& fields) {
  for (const std::string& f : fields) e = Access(std::move(e), f);
  return e;
}

ExprPtr Expr::TupleProject(ExprPtr in, std::vector<std::string> names) {
  Expr* e = new Expr(ExprKind::kTupleProject);
  e->names_ = std::move(names);
  e->children_ = {std::move(in)};
  return ExprPtr(e);
}

ExprPtr Expr::TupleConstruct(std::vector<std::string> names,
                             std::vector<ExprPtr> values) {
  N2J_CHECK(names.size() == values.size());
  Expr* e = new Expr(ExprKind::kTupleConstruct);
  e->names_ = std::move(names);
  e->children_ = std::move(values);
  return ExprPtr(e);
}

ExprPtr Expr::TupleConcat(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kTupleConcat);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::ExceptOp(ExprPtr in, std::vector<std::string> names,
                       std::vector<ExprPtr> values) {
  N2J_CHECK(names.size() == values.size());
  Expr* e = new Expr(ExprKind::kExcept);
  e->names_ = std::move(names);
  e->children_.push_back(std::move(in));
  for (ExprPtr& v : values) e->children_.push_back(std::move(v));
  return ExprPtr(e);
}

ExprPtr Expr::SetConstruct(std::vector<ExprPtr> elements) {
  Expr* e = new Expr(ExprKind::kSetConstruct);
  e->children_ = std::move(elements);
  return ExprPtr(e);
}

ExprPtr Expr::Deref(ExprPtr in, std::string class_name) {
  Expr* e = new Expr(ExprKind::kDeref);
  e->name_ = std::move(class_name);
  e->children_ = {std::move(in)};
  return ExprPtr(e);
}

ExprPtr Expr::Un(UnOp op, ExprPtr in) {
  Expr* e = new Expr(ExprKind::kUnary);
  e->un_op_ = op;
  e->children_ = {std::move(in)};
  return ExprPtr(e);
}

ExprPtr Expr::Bin(BinOp op, ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kBinary);
  e->bin_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::Quant(QuantKind q, std::string var, ExprPtr range,
                    ExprPtr pred) {
  Expr* e = new Expr(ExprKind::kQuantifier);
  e->quant_ = q;
  e->var_ = std::move(var);
  e->children_ = {std::move(range), std::move(pred)};
  return ExprPtr(e);
}

ExprPtr Expr::Agg(AggKind k, ExprPtr in) {
  Expr* e = new Expr(ExprKind::kAggregate);
  e->agg_ = k;
  e->children_ = {std::move(in)};
  return ExprPtr(e);
}

ExprPtr Expr::Map(std::string var, ExprPtr body, ExprPtr input) {
  Expr* e = new Expr(ExprKind::kMap);
  e->var_ = std::move(var);
  e->children_ = {std::move(input), std::move(body)};
  return ExprPtr(e);
}

ExprPtr Expr::Select(std::string var, ExprPtr pred, ExprPtr input) {
  Expr* e = new Expr(ExprKind::kSelect);
  e->var_ = std::move(var);
  e->children_ = {std::move(input), std::move(pred)};
  return ExprPtr(e);
}

ExprPtr Expr::Project(ExprPtr input, std::vector<std::string> names) {
  Expr* e = new Expr(ExprKind::kProject);
  e->names_ = std::move(names);
  e->children_ = {std::move(input)};
  return ExprPtr(e);
}

ExprPtr Expr::Flatten(ExprPtr input) {
  Expr* e = new Expr(ExprKind::kFlatten);
  e->children_ = {std::move(input)};
  return ExprPtr(e);
}

ExprPtr Expr::Nest(ExprPtr input, std::vector<std::string> grouped_attrs,
                   std::string new_attr) {
  Expr* e = new Expr(ExprKind::kNest);
  e->names_ = std::move(grouped_attrs);
  e->name_ = std::move(new_attr);
  e->children_ = {std::move(input)};
  return ExprPtr(e);
}

ExprPtr Expr::Unnest(ExprPtr input, std::string attr) {
  Expr* e = new Expr(ExprKind::kUnnest);
  e->name_ = std::move(attr);
  e->children_ = {std::move(input)};
  return ExprPtr(e);
}

ExprPtr Expr::Product(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kProduct);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::Join(ExprPtr l, ExprPtr r, std::string lvar, std::string rvar,
                   ExprPtr pred) {
  Expr* e = new Expr(ExprKind::kJoin);
  e->var_ = std::move(lvar);
  e->var2_ = std::move(rvar);
  e->children_ = {std::move(l), std::move(r), std::move(pred)};
  return ExprPtr(e);
}

ExprPtr Expr::SemiJoin(ExprPtr l, ExprPtr r, std::string lvar,
                       std::string rvar, ExprPtr pred) {
  Expr* e = new Expr(ExprKind::kSemiJoin);
  e->var_ = std::move(lvar);
  e->var2_ = std::move(rvar);
  e->children_ = {std::move(l), std::move(r), std::move(pred)};
  return ExprPtr(e);
}

ExprPtr Expr::AntiJoin(ExprPtr l, ExprPtr r, std::string lvar,
                       std::string rvar, ExprPtr pred) {
  Expr* e = new Expr(ExprKind::kAntiJoin);
  e->var_ = std::move(lvar);
  e->var2_ = std::move(rvar);
  e->children_ = {std::move(l), std::move(r), std::move(pred)};
  return ExprPtr(e);
}

ExprPtr Expr::NestJoin(ExprPtr l, ExprPtr r, std::string lvar,
                       std::string rvar, ExprPtr pred,
                       std::string result_attr, ExprPtr inner) {
  Expr* e = new Expr(ExprKind::kNestJoin);
  e->var_ = lvar;
  e->var2_ = rvar;
  e->name_ = std::move(result_attr);
  if (inner == nullptr) inner = Expr::Var(rvar);
  e->children_ = {std::move(l), std::move(r), std::move(pred),
                  std::move(inner)};
  return ExprPtr(e);
}

ExprPtr Expr::Divide(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kDivide);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::Union(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kUnion);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::Intersect(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kIntersect);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::Difference(ExprPtr l, ExprPtr r) {
  Expr* e = new Expr(ExprKind::kDifference);
  e->children_ = {std::move(l), std::move(r)};
  return ExprPtr(e);
}

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return True();
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

const ExprPtr& Expr::input() const {
  switch (kind_) {
    case ExprKind::kMap:
    case ExprKind::kSelect:
    case ExprKind::kProject:
    case ExprKind::kFlatten:
    case ExprKind::kNest:
    case ExprKind::kUnnest:
      return children_[0];
    default:
      N2J_CHECK(false);
      return children_[0];
  }
}

const ExprPtr& Expr::body() const {
  switch (kind_) {
    case ExprKind::kMap:
    case ExprKind::kSelect:
    case ExprKind::kQuantifier:
      return children_[1];
    case ExprKind::kLet:
      return children_[1];
    default:
      N2J_CHECK(false);
      return children_[0];
  }
}

const ExprPtr& Expr::left() const { return children_[0]; }
const ExprPtr& Expr::right() const { return children_[1]; }

const ExprPtr& Expr::pred() const {
  switch (kind_) {
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin:
    case ExprKind::kNestJoin:
      return children_[2];
    default:
      N2J_CHECK(false);
      return children_[0];
  }
}

const ExprPtr& Expr::inner() const {
  N2J_CHECK(kind_ == ExprKind::kNestJoin);
  return children_[3];
}

const ExprPtr& Expr::range() const {
  N2J_CHECK(kind_ == ExprKind::kQuantifier);
  return children_[0];
}

ExprPtr Expr::WithChildren(std::vector<ExprPtr> new_children) const {
  N2J_CHECK(new_children.size() == children_.size());
  Expr* e = new Expr(kind_);
  e->value_ = value_;
  e->name_ = name_;
  e->names_ = names_;
  e->var_ = var_;
  e->var2_ = var2_;
  e->bin_op_ = bin_op_;
  e->un_op_ = un_op_;
  e->agg_ = agg_;
  e->quant_ = quant_;
  e->children_ = std::move(new_children);
  return ExprPtr(e);
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  if (name_ != other.name_ || names_ != other.names_ || var_ != other.var_ ||
      var2_ != other.var2_) {
    return false;
  }
  if (kind_ == ExprKind::kConst && value_ != other.value_) return false;
  if (kind_ == ExprKind::kBinary && bin_op_ != other.bin_op_) return false;
  if (kind_ == ExprKind::kUnary && un_op_ != other.un_op_) return false;
  if (kind_ == ExprKind::kAggregate && agg_ != other.agg_) return false;
  if (kind_ == ExprKind::kQuantifier && quant_ != other.quant_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const ExprPtr& c : children_) n += c->TreeSize();
  return n;
}

}  // namespace n2j
