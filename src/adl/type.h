#ifndef N2J_ADL_TYPE_H_
#define N2J_ADL_TYPE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adl/value.h"

namespace n2j {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// One named attribute of a tuple type.
struct TypeField {
  std::string name;
  TypePtr type;
};

/// ADL types: the atoms bool/int/double/string/oid, class references
/// Ref(C) (implemented as oids at the value level, per Section 3 of the
/// paper), tuple types with named attributes, and set types.
///
/// Types are immutable and shared; structural equality via Equals().
class Type {
 public:
  enum class Kind : uint8_t {
    kAny,    // unknown/unconstrained (empty set literals, nulls)
    kBool,
    kInt,
    kDouble,
    kString,
    kOid,
    kRef,    // reference to a class; carries the class name
    kTuple,
    kSet,
  };

  static TypePtr Any();
  static TypePtr Bool();
  static TypePtr Int();
  static TypePtr Double();
  static TypePtr String();
  static TypePtr OidType();
  static TypePtr Ref(std::string class_name);
  static TypePtr Tuple(std::vector<TypeField> fields);
  static TypePtr Set(TypePtr element);

  Kind kind() const { return kind_; }
  bool is_any() const { return kind_ == Kind::kAny; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_oid() const { return kind_ == Kind::kOid; }
  bool is_ref() const { return kind_ == Kind::kRef; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }
  bool is_set() const { return kind_ == Kind::kSet; }

  /// Referenced class name. Precondition: is_ref().
  const std::string& class_name() const { return class_name_; }

  /// Tuple attributes. Precondition: is_tuple().
  const std::vector<TypeField>& fields() const { return fields_; }
  /// Returns the attribute type or nullptr if absent.
  TypePtr FindField(std::string_view name) const;
  /// The schema function SCH: top-level attribute names of a tuple type.
  std::vector<std::string> FieldNames() const;

  /// Set element type. Precondition: is_set().
  const TypePtr& element() const { return element_; }

  /// Structural equality. Ref types compare by class name.
  bool Equals(const Type& other) const;

  /// "int", "{ (a : int, b : string) }", "Ref(Part)", ...
  std::string ToString() const;

  /// True if a value of this type can be compared (=, <) with one of
  /// `other`: equal types, or both numeric.
  bool ComparableWith(const Type& other) const;

 private:
  explicit Type(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string class_name_;
  std::vector<TypeField> fields_;
  TypePtr element_;
};

/// Convenience: set-of-tuple type (the type of a base table).
TypePtr TableType(std::vector<TypeField> fields);

}  // namespace n2j

#endif  // N2J_ADL_TYPE_H_
