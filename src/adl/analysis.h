#ifndef N2J_ADL_ANALYSIS_H_
#define N2J_ADL_ANALYSIS_H_

#include <functional>
#include <set>
#include <string>

#include "adl/expr.h"

namespace n2j {

/// Returns the free variables of `e` (variables not bound by an enclosing
/// map/select/quantifier/join/let binder within `e` itself).
std::set<std::string> FreeVars(const ExprPtr& e);

/// True if `var` occurs free in `e`.
bool IsFreeIn(const std::string& var, const ExprPtr& e);

/// True if `e` contains a GetTable node anywhere (i.e., references a base
/// table). The paper's unnesting goal is to remove such references from
/// iterator parameter expressions.
bool ContainsBaseTable(const ExprPtr& e);

/// True if `e` is an *uncorrelated* expression w.r.t. the given variables:
/// none of them occur free in `e`.
bool IsUncorrelated(const ExprPtr& e, const std::set<std::string>& vars);

/// Capture-avoiding substitution of `replacement` for free occurrences of
/// `var` in `e`. Binders shadow as usual; N2J_CHECKs against variable
/// capture (callers use FreshVar to avoid it).
ExprPtr Substitute(const ExprPtr& e, const std::string& var,
                   const ExprPtr& replacement);

/// Generates a variable name not free (or bound) anywhere in `e`,
/// derived from `hint` ("x" → "x1", "x2", ...).
std::string FreshVar(const std::string& hint, const ExprPtr& e);
std::string FreshVar(const std::string& hint,
                     const std::vector<ExprPtr>& exprs);

/// All variable names occurring in `e`, bound or free.
std::set<std::string> AllVars(const ExprPtr& e);

/// Splits a predicate into its top-level conjuncts (flattening nested
/// `and`s).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

/// Generic bottom-up rewrite: applies `fn` to every node after its
/// children have been rewritten; `fn` returns nullptr to keep a node.
ExprPtr TransformBottomUp(
    const ExprPtr& e, const std::function<ExprPtr(const ExprPtr&)>& fn);

/// Applies `fn` to every node top-down, pre-order; if `fn` returns
/// non-null the returned subtree replaces the node and is itself
/// re-visited (fixpoint per node).
ExprPtr TransformTopDown(
    const ExprPtr& e, const std::function<ExprPtr(const ExprPtr&)>& fn);

/// Visits every node pre-order.
void VisitPreOrder(const ExprPtr& e,
                   const std::function<void(const ExprPtr&)>& fn);

/// True if `e` is "comprehension-shaped" at the root: a Map, Select,
/// Flatten or GetTable — the shapes the shredding translator (shred/)
/// can peel into its own flat DAG nodes instead of delegating to the
/// row-wise interpreter. Deliberately shallow: the *inside* of the
/// comprehension is classified recursively by the translator itself.
bool IsComprehensionShaped(const ExprPtr& e);

}  // namespace n2j

#endif  // N2J_ADL_ANALYSIS_H_
