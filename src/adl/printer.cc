#include "adl/printer.h"

#include <vector>

#include "common/str_util.h"

namespace n2j {

namespace {

/// Recursive printer. Scalar expressions use infix notation with enough
/// parentheses to round-trip precedence; iterator operators use the
/// paper's bracket/subscript style.
class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string Print(const ExprPtr& e) { return P(e, 0); }

 private:
  const PrintOptions& opts_;

  std::string Glyph(const char* uni, const char* ascii) const {
    return opts_.unicode ? uni : ascii;
  }

  std::string BinOpGlyph(BinOp op) const {
    if (!opts_.unicode) return BinOpName(op);
    switch (op) {
      case BinOp::kIn: return "∈";          // ∈
      case BinOp::kContains: return "∋";    // ∋
      case BinOp::kSubset: return "⊂";      // ⊂
      case BinOp::kSubsetEq: return "⊆";    // ⊆
      case BinOp::kSupset: return "⊃";      // ⊃
      case BinOp::kSupsetEq: return "⊇";    // ⊇
      case BinOp::kAnd: return "∧";         // ∧
      case BinOp::kOr: return "∨";          // ∨
      case BinOp::kNe: return "≠";          // ≠
      case BinOp::kUnionOp: return "∪";     // ∪
      case BinOp::kIntersectOp: return "∩"; // ∩
      case BinOp::kDifferenceOp: return "∖"; // ∖
      default: return BinOpName(op);
    }
  }

  // Precedence levels for scalar expressions (higher binds tighter).
  static int Prec(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kBinary:
        switch (e.bin_op()) {
          case BinOp::kOr: return 1;
          case BinOp::kAnd: return 2;
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe:
          case BinOp::kIn:
          case BinOp::kContains:
          case BinOp::kSubset:
          case BinOp::kSubsetEq:
          case BinOp::kSupset:
          case BinOp::kSupsetEq:
            return 3;
          case BinOp::kUnionOp:
          case BinOp::kDifferenceOp:
            return 4;
          case BinOp::kIntersectOp:
            return 5;
          case BinOp::kAdd:
          case BinOp::kSub:
            return 6;
          case BinOp::kMul:
          case BinOp::kDiv:
          case BinOp::kMod:
            return 7;
        }
        return 3;
      case ExprKind::kQuantifier:
        return 0;
      case ExprKind::kUnary:
        return 8;
      default:
        return 9;  // atoms / bracketed forms never need parens
    }
  }

  std::string P(const ExprPtr& ep, int parent_prec) {
    const Expr& e = *ep;
    std::string out;
    switch (e.kind()) {
      case ExprKind::kConst:
        out = e.const_value().ToString();
        break;
      case ExprKind::kVar:
        out = e.name();
        break;
      case ExprKind::kGetTable:
        out = e.name();
        break;
      case ExprKind::kLet:
        out = "let " + e.var() + " = " + P(e.child(0), 0) + " in " +
              P(e.child(1), 0);
        break;
      case ExprKind::kFieldAccess:
        out = P(e.child(0), 9) + "." + e.name();
        break;
      case ExprKind::kTupleProject:
        out = P(e.child(0), 9) + "[" + Join(e.names(), ", ") + "]";
        break;
      case ExprKind::kTupleConstruct: {
        std::vector<std::string> parts;
        for (size_t i = 0; i < e.names().size(); ++i) {
          parts.push_back(e.names()[i] + " = " + P(e.child(i), 0));
        }
        out = "(" + Join(parts, ", ") + ")";
        break;
      }
      case ExprKind::kTupleConcat:
        out = P(e.child(0), 9) + " " + Glyph("∘", "o") + " " +
              P(e.child(1), 9);
        break;
      case ExprKind::kExcept: {
        std::vector<std::string> parts;
        for (size_t i = 0; i < e.names().size(); ++i) {
          parts.push_back(e.names()[i] + " = " + P(e.child(i + 1), 0));
        }
        out = P(e.child(0), 9) + " except (" + Join(parts, ", ") + ")";
        break;
      }
      case ExprKind::kSetConstruct: {
        std::vector<std::string> parts;
        for (const ExprPtr& c : e.children()) parts.push_back(P(c, 0));
        out = "{" + Join(parts, ", ") + "}";
        break;
      }
      case ExprKind::kDeref:
        out = "deref" +
              (e.name().empty() ? std::string() : "<" + e.name() + ">") +
              "(" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kUnary:
        if (e.un_op() == UnOp::kIsEmpty) {
          out = "isempty(" + P(e.child(0), 0) + ")";
        } else {
          std::string op = e.un_op() == UnOp::kNot
                               ? Glyph("¬", "not ")
                               : std::string("-");
          out = op + P(e.child(0), 8);
        }
        break;
      case ExprKind::kBinary:
        out = P(e.child(0), Prec(e)) + " " + BinOpGlyph(e.bin_op()) + " " +
              P(e.child(1), Prec(e) + 1);
        break;
      case ExprKind::kQuantifier: {
        std::string q = e.quant_kind() == QuantKind::kExists
                            ? Glyph("∃", "exists ")
                            : Glyph("∀", "forall ");
        out = q + e.var() + " " + Glyph("∈", "in") + " " +
              P(e.child(0), 9) + " " + Glyph("·", ".") + " " +
              P(e.child(1), 0);
        break;
      }
      case ExprKind::kAggregate:
        out = std::string(AggKindName(e.agg_kind())) + "(" +
              P(e.child(0), 0) + ")";
        break;
      case ExprKind::kMap:
        out = Glyph("α", "map") + "[" + e.var() + " : " +
              P(e.child(1), 0) + "](" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kSelect:
        out = Glyph("σ", "select") + "[" + e.var() + " : " +
              P(e.child(1), 0) + "](" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kProject:
        out = Glyph("π", "project") + "_{" + Join(e.names(), ", ") +
              "}(" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kFlatten:
        out = Glyph("⋃", "flatten") + "(" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kNest:
        out = Glyph("ν", "nest") + "_{" + Join(e.names(), ", ") +
              " → " + e.name() + "}(" + P(e.child(0), 0) + ")";
        break;
      case ExprKind::kUnnest:
        out = Glyph("μ", "unnest") + "_" + e.name() + "(" +
              P(e.child(0), 0) + ")";
        break;
      case ExprKind::kProduct:
        out = P(e.child(0), 9) + " " + Glyph("×", "x") + " " +
              P(e.child(1), 9);
        break;
      case ExprKind::kJoin:
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin: {
        const char* g = e.kind() == ExprKind::kJoin
                            ? "⋈"
                            : (e.kind() == ExprKind::kSemiJoin ? "⋉"
                                                               : "▷");
        const char* a = e.kind() == ExprKind::kJoin
                            ? "JOIN"
                            : (e.kind() == ExprKind::kSemiJoin ? "SEMIJOIN"
                                                               : "ANTIJOIN");
        out = P(e.child(0), 9) + " " + Glyph(g, a) + "_{" + e.var() + "," +
              e.var2() + " : " + P(e.child(2), 0) + "} " + P(e.child(1), 9);
        break;
      }
      case ExprKind::kNestJoin: {
        std::string fn;
        // Print the inner function only when it is not the identity.
        if (!(e.child(3)->kind() == ExprKind::kVar &&
              e.child(3)->name() == e.var2())) {
          fn = " ; " + P(e.child(3), 0);
        }
        out = P(e.child(0), 9) + " " + Glyph("⊣", "NESTJOIN") + "_{" +
              e.var() + "," + e.var2() + " : " + P(e.child(2), 0) + fn +
              " ; " + e.name() + "} " + P(e.child(1), 9);
        break;
      }
      case ExprKind::kDivide:
        out = P(e.child(0), 9) + " " + Glyph("÷", "DIVIDE") + " " +
              P(e.child(1), 9);
        break;
      case ExprKind::kUnion:
        out = P(e.child(0), 9) + " " + Glyph("∪", "UNION") + " " +
              P(e.child(1), 9);
        break;
      case ExprKind::kIntersect:
        out = P(e.child(0), 9) + " " + Glyph("∩", "INTERSECT") + " " +
              P(e.child(1), 9);
        break;
      case ExprKind::kDifference:
        out = P(e.child(0), 9) + " " + Glyph("∖", "MINUS") + " " +
              P(e.child(1), 9);
        break;
    }
    if (Prec(e) < parent_prec) return "(" + out + ")";
    return out;
  }
};

/// Multi-line plan renderer: set-level operators (the "plan" shape) get
/// one line each with indentation; scalar parameter expressions render
/// inline via the single-line printer.
class PrettyPrinter {
 public:
  explicit PrettyPrinter(const PrintOptions& opts)
      : opts_(opts), inline_printer_(opts) {}

  std::string Print(const ExprPtr& e) { return P(e, 0); }

 private:
  std::string Pad(int depth) const {
    return std::string(static_cast<size_t>(depth) *
                           static_cast<size_t>(opts_.indent),
                       ' ');
  }

  std::string Inline(const ExprPtr& e) { return inline_printer_.Print(e); }

  bool IsPlanNode(const Expr& e) const {
    switch (e.kind()) {
      case ExprKind::kMap:
      case ExprKind::kSelect:
      case ExprKind::kProject:
      case ExprKind::kFlatten:
      case ExprKind::kNest:
      case ExprKind::kUnnest:
      case ExprKind::kProduct:
      case ExprKind::kJoin:
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin:
      case ExprKind::kNestJoin:
      case ExprKind::kDivide:
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference:
      case ExprKind::kLet:
        return true;
      default:
        return false;
    }
  }

  std::string P(const ExprPtr& ep, int depth) {
    const Expr& e = *ep;
    if (!IsPlanNode(e)) return Pad(depth) + Inline(ep);
    auto g = [&](const char* uni, const char* ascii) {
      return std::string(opts_.unicode ? uni : ascii);
    };
    std::string out;
    switch (e.kind()) {
      case ExprKind::kMap:
        out = Pad(depth) + g("α", "map") + "[" + e.var() + " : " +
              Inline(e.child(1)) + "]\n" + P(e.child(0), depth + 1);
        break;
      case ExprKind::kSelect:
        out = Pad(depth) + g("σ", "select") + "[" + e.var() + " : " +
              Inline(e.child(1)) + "]\n" + P(e.child(0), depth + 1);
        break;
      case ExprKind::kProject:
        out = Pad(depth) + g("π", "project") + "_{" +
              Join(e.names(), ", ") + "}\n" + P(e.child(0), depth + 1);
        break;
      case ExprKind::kFlatten:
        out = Pad(depth) + g("⋃", "flatten") + "\n" +
              P(e.child(0), depth + 1);
        break;
      case ExprKind::kNest:
        out = Pad(depth) + g("ν", "nest") + "_{" + Join(e.names(), ", ") +
              " " + g("→", "->") + " " + e.name() + "}\n" +
              P(e.child(0), depth + 1);
        break;
      case ExprKind::kUnnest:
        out = Pad(depth) + g("μ", "unnest") + "_" + e.name() + "\n" +
              P(e.child(0), depth + 1);
        break;
      case ExprKind::kLet:
        out = Pad(depth) + "let " + e.var() + " =\n" +
              P(e.child(0), depth + 1) + "\n" + Pad(depth) + "in\n" +
              P(e.child(1), depth + 1);
        break;
      case ExprKind::kProduct:
      case ExprKind::kDivide:
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference: {
        const char* name =
            e.kind() == ExprKind::kProduct
                ? "PRODUCT"
                : (e.kind() == ExprKind::kDivide
                       ? "DIVIDE"
                       : (e.kind() == ExprKind::kUnion
                              ? "UNION"
                              : (e.kind() == ExprKind::kIntersect
                                     ? "INTERSECT"
                                     : "MINUS")));
        out = Pad(depth) + name + "\n" + P(e.child(0), depth + 1) + "\n" +
              P(e.child(1), depth + 1);
        break;
      }
      case ExprKind::kJoin:
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin: {
        const char* uni = e.kind() == ExprKind::kJoin
                              ? "⋈"
                              : (e.kind() == ExprKind::kSemiJoin ? "⋉"
                                                                 : "▷");
        const char* ascii =
            e.kind() == ExprKind::kJoin
                ? "JOIN"
                : (e.kind() == ExprKind::kSemiJoin ? "SEMIJOIN"
                                                   : "ANTIJOIN");
        out = Pad(depth) + g(uni, ascii) + "_{" + e.var() + "," + e.var2() +
              " : " + Inline(e.child(2)) + "}\n" +
              P(e.child(0), depth + 1) + "\n" + P(e.child(1), depth + 1);
        break;
      }
      case ExprKind::kNestJoin: {
        std::string fn;
        if (!(e.child(3)->kind() == ExprKind::kVar &&
              e.child(3)->name() == e.var2())) {
          fn = " ; " + Inline(e.child(3));
        }
        out = Pad(depth) + g("⊣", "NESTJOIN") + "_{" + e.var() + "," +
              e.var2() + " : " + Inline(e.child(2)) + fn + " ; " + e.name() +
              "}\n" + P(e.child(0), depth + 1) + "\n" +
              P(e.child(1), depth + 1);
        break;
      }
      default:
        out = Pad(depth) + Inline(ep);
        break;
    }
    return out;
  }

  const PrintOptions& opts_;
  Printer inline_printer_;
};

}  // namespace

std::string ToAlgebraString(const ExprPtr& e, const PrintOptions& opts) {
  if (opts.pretty) {
    PrettyPrinter p(opts);
    return p.Print(e);
  }
  Printer p(opts);
  return p.Print(e);
}

std::string AlgebraStr(const ExprPtr& e) { return ToAlgebraString(e); }

}  // namespace n2j
