#include "adl/schema.h"

#include "common/str_util.h"

namespace n2j {

TypePtr ClassDef::ObjectType() const {
  std::vector<TypeField> fields;
  fields.reserve(attributes.size() + 1);
  fields.push_back({oid_field, Type::OidType()});
  for (const TypeField& a : attributes) fields.push_back(a);
  return Type::Tuple(std::move(fields));
}

TypePtr ClassDef::ExtentType() const { return Type::Set(ObjectType()); }

Status Schema::AddClass(ClassDef def) {
  if (by_name_.count(def.name) > 0) {
    return Status::InvalidArgument("duplicate class name: " + def.name);
  }
  if (by_extent_.count(def.extent) > 0) {
    return Status::InvalidArgument("duplicate extent name: " + def.extent);
  }
  def.class_id = static_cast<uint16_t>(classes_.size() + 1);
  by_name_[def.name] = classes_.size();
  by_extent_[def.extent] = classes_.size();
  classes_.push_back(std::move(def));
  return Status::OK();
}

const ClassDef* Schema::FindClass(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &classes_[it->second];
}

const ClassDef* Schema::FindClassByExtent(const std::string& extent) const {
  auto it = by_extent_.find(extent);
  return it == by_extent_.end() ? nullptr : &classes_[it->second];
}

const ClassDef* Schema::FindClassById(uint16_t id) const {
  if (id == 0 || id > classes_.size()) return nullptr;
  return &classes_[id - 1];
}

std::string Schema::ToString() const {
  // Printed in the paper's declaration syntax, extended with the `oid
  // <field>` clause, so the output parses back through
  // Parser::ParseSchemaString (round-trip property).
  std::string out;
  for (const ClassDef& c : classes_) {
    out += "class " + c.name + " with extension " + c.extent + " oid " +
           c.oid_field + "\n";
    out += "  attributes\n";
    std::vector<std::string> attrs;
    for (const TypeField& a : c.attributes) {
      attrs.push_back("    " + a.name + " : " + a.type->ToString());
    }
    out += Join(attrs, ",\n");
    out += "\nend " + c.name + "\n";
  }
  return out;
}

Schema MakeSupplierPartSchema() {
  Schema schema;
  ClassDef part;
  part.name = "Part";
  part.extent = "PART";
  part.oid_field = "pid";
  part.attributes = {
      {"pname", Type::String()},
      {"price", Type::Int()},
      {"color", Type::String()},
  };
  N2J_CHECK(schema.AddClass(std::move(part)).ok());

  ClassDef supplier;
  supplier.name = "Supplier";
  supplier.extent = "SUPPLIER";
  supplier.oid_field = "eid";
  supplier.attributes = {
      {"sname", Type::String()},
      // Per Section 4: parts : { (pid : oid) } — a set of unary tuples
      // holding pointers to Part objects.
      {"parts", Type::Set(Type::Tuple({{"pid", Type::Ref("Part")}}))},
  };
  N2J_CHECK(schema.AddClass(std::move(supplier)).ok());

  ClassDef delivery;
  delivery.name = "Delivery";
  delivery.extent = "DELIVERY";
  delivery.oid_field = "did";
  delivery.attributes = {
      {"supplier", Type::Ref("Supplier")},
      {"supply", Type::Set(Type::Tuple({{"part", Type::Ref("Part")},
                                        {"quantity", Type::Int()}}))},
      {"date", Type::Int()},
  };
  N2J_CHECK(schema.AddClass(std::move(delivery)).ok());
  return schema;
}

}  // namespace n2j
