#include "adl/type.h"

#include "common/str_util.h"

namespace n2j {

// Atom types are interned singletons; composite types allocate per call.
// Factories use `new` directly because the constructor is private.

TypePtr Type::Any() {
  static const TypePtr t = TypePtr(new Type(Kind::kAny));
  return t;
}
TypePtr Type::Bool() {
  static const TypePtr t = TypePtr(new Type(Kind::kBool));
  return t;
}
TypePtr Type::Int() {
  static const TypePtr t = TypePtr(new Type(Kind::kInt));
  return t;
}
TypePtr Type::Double() {
  static const TypePtr t = TypePtr(new Type(Kind::kDouble));
  return t;
}
TypePtr Type::String() {
  static const TypePtr t = TypePtr(new Type(Kind::kString));
  return t;
}
TypePtr Type::OidType() {
  static const TypePtr t = TypePtr(new Type(Kind::kOid));
  return t;
}

TypePtr Type::Ref(std::string class_name) {
  auto* t = new Type(Kind::kRef);
  t->class_name_ = std::move(class_name);
  return TypePtr(t);
}

TypePtr Type::Tuple(std::vector<TypeField> fields) {
  auto* t = new Type(Kind::kTuple);
  t->fields_ = std::move(fields);
  return TypePtr(t);
}

TypePtr Type::Set(TypePtr element) {
  auto* t = new Type(Kind::kSet);
  t->element_ = std::move(element);
  return TypePtr(t);
}

TypePtr Type::FindField(std::string_view name) const {
  for (const TypeField& f : fields_) {
    if (f.name == name) return f.type;
  }
  return nullptr;
}

std::vector<std::string> Type::FieldNames() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const TypeField& f : fields_) out.push_back(f.name);
  return out;
}

bool Type::Equals(const Type& other) const {
  if (kind_ == Kind::kAny || other.kind_ == Kind::kAny) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDouble:
    case Kind::kString:
    case Kind::kOid:
      return true;
    case Kind::kRef:
      return class_name_ == other.class_name_;
    case Kind::kTuple: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case Kind::kSet:
      return element_->Equals(*other.element_);
  }
  return false;
}

std::string Type::ToString() const {
  switch (kind_) {
    case Kind::kAny:
      return "any";
    case Kind::kBool:
      return "bool";
    case Kind::kInt:
      return "int";
    case Kind::kDouble:
      return "double";
    case Kind::kString:
      return "string";
    case Kind::kOid:
      return "oid";
    case Kind::kRef:
      return "Ref(" + class_name_ + ")";
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(fields_.size());
      for (const TypeField& f : fields_) {
        parts.push_back(f.name + " : " + f.type->ToString());
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case Kind::kSet:
      return "{ " + element_->ToString() + " }";
  }
  return "?";
}

bool Type::ComparableWith(const Type& other) const {
  if (is_any() || other.is_any()) return true;
  if (is_numeric() && other.is_numeric()) return true;
  // A reference is an oid at the value level; the paper's queries compare
  // oid-typed projections against Ref attributes (e.g. z = p[pid]).
  if ((is_ref() && other.is_oid()) || (is_oid() && other.is_ref())) {
    return true;
  }
  if (is_ref() && other.is_ref()) return true;
  // Composite values compare component-wise.
  if (is_tuple() && other.is_tuple()) {
    if (fields_.size() != other.fields_.size()) return false;
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name != other.fields_[i].name) return false;
      if (!fields_[i].type->ComparableWith(*other.fields_[i].type)) {
        return false;
      }
    }
    return true;
  }
  if (is_set() && other.is_set()) {
    return element_->ComparableWith(*other.element_);
  }
  return Equals(other);
}

TypePtr TableType(std::vector<TypeField> fields) {
  return Type::Set(Type::Tuple(std::move(fields)));
}

}  // namespace n2j
