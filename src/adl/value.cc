#include "adl/value.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace n2j {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.rep_.b = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.rep_.i = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.rep_.d = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.rep_.p = new StringPayload(std::move(s));
  return v;
}

Value Value::MakeOidValue(Oid oid) {
  Value v;
  v.kind_ = Kind::kOid;
  v.rep_.o = oid;
  return v;
}

Value Value::Tuple(std::vector<Field> fields) {
  std::vector<std::string> names;
  std::vector<Value> values;
  names.reserve(fields.size());
  values.reserve(fields.size());
  for (Field& f : fields) {
    names.push_back(std::move(f.name));
    values.push_back(std::move(f.value));
  }
  return TupleFromShape(TupleShape::Intern(std::move(names)),
                        std::move(values));
}

Value Value::TupleFromShape(const TupleShape* shape,
                            std::vector<Value> values) {
  N2J_CHECK(shape != nullptr && values.size() == shape->size());
  Value v;
  v.kind_ = Kind::kTuple;
  v.rep_.p = new TuplePayload(shape, std::move(values));
  return v;
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  return SetFromCanonical(std::move(elements));
}

Value Value::SetFromCanonical(std::vector<Value> elements) {
  Value v;
  v.kind_ = Kind::kSet;
  v.rep_.p = new SetPayload(std::move(elements));
  return v;
}

void Value::DeletePayload() {
  switch (kind_) {
    case Kind::kString:
      delete static_cast<StringPayload*>(rep_.p);
      break;
    case Kind::kTuple:
      delete static_cast<TuplePayload*>(rep_.p);
      break;
    case Kind::kSet:
      delete static_cast<SetPayload*>(rep_.p);
      break;
    default:
      break;
  }
}

Value Value::ProjectTuple(const std::vector<std::string>& names) const {
  N2J_CHECK(is_tuple());
  const TuplePayload* p = tuple_payload();
  const TupleShape* target = TupleShape::Intern(names);
  if (target == p->shape) return *this;  // full projection in order
  std::vector<Value> values;
  values.reserve(names.size());
  for (const std::string& n : names) {
    int i = p->shape->IndexOf(n);
    N2J_CHECK(i >= 0);
    values.push_back(p->values[static_cast<size_t>(i)]);
  }
  return TupleFromShape(target, std::move(values));
}

Value Value::ConcatTuple(const Value& other) const {
  N2J_CHECK(is_tuple() && other.is_tuple());
  const TuplePayload* a = tuple_payload();
  const TuplePayload* b = other.tuple_payload();
  const TupleShape* combined = a->shape->ConcatWith(b->shape);
  N2J_CHECK(combined != nullptr);  // field names must not collide
  std::vector<Value> values;
  values.reserve(a->values.size() + b->values.size());
  values.insert(values.end(), a->values.begin(), a->values.end());
  values.insert(values.end(), b->values.begin(), b->values.end());
  return TupleFromShape(combined, std::move(values));
}

Value Value::ExceptUpdate(const std::vector<Field>& updates) const {
  N2J_CHECK(is_tuple());
  const TuplePayload* p = tuple_payload();
  const TupleShape* shape = p->shape;
  std::vector<Value> values = p->values;
  for (const Field& u : updates) {
    int i = shape->IndexOf(u.name);
    if (i >= 0) {
      values[static_cast<size_t>(i)] = u.value;
    } else {
      shape = shape->ExtendedWith(u.name);
      values.push_back(u.value);
    }
  }
  return TupleFromShape(shape, std::move(values));
}

Value Value::WithoutField(const std::string& name) const {
  N2J_CHECK(is_tuple());
  const TuplePayload* p = tuple_payload();
  int drop = p->shape->IndexOf(name);
  if (drop < 0) return *this;
  std::vector<Value> values;
  values.reserve(p->values.size() - 1);
  for (size_t i = 0; i < p->values.size(); ++i) {
    if (static_cast<int>(i) != drop) values.push_back(p->values[i]);
  }
  return TupleFromShape(p->shape->WithoutField(name), std::move(values));
}

std::vector<std::string> Value::FieldNames() const {
  return tuple_shape()->names();
}

bool Value::SetContains(const Value& v) const {
  const std::vector<Value>& es = elements();
  return std::binary_search(es.begin(), es.end(), v);
}

bool Value::IsSubsetOf(const Value& other, bool strict) const {
  N2J_CHECK(is_set() && other.is_set());
  if (rep_.p == other.rep_.p) return !strict;  // shared payload ⇒ equal
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  if (a.size() > b.size()) return false;
  // Sorted-merge subset test.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int c = a[i].Compare(b[j]);
    if (c == 0) {
      ++i;
      ++j;
    } else if (c > 0) {
      ++j;
    } else {
      return false;  // a[i] not present in b
    }
  }
  if (i < a.size()) return false;
  return strict ? a.size() < b.size() : true;
}

Value Value::SetUnion(const Value& other) const {
  N2J_CHECK(is_set() && other.is_set());
  if (rep_.p == other.rep_.p) return *this;
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  if (a.empty()) return other;
  if (b.empty()) return *this;
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return SetFromCanonical(std::move(out));
}

Value Value::SetIntersect(const Value& other) const {
  N2J_CHECK(is_set() && other.is_set());
  if (rep_.p == other.rep_.p) return *this;
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return SetFromCanonical(std::move(out));
}

Value Value::SetDifference(const Value& other) const {
  N2J_CHECK(is_set() && other.is_set());
  if (rep_.p == other.rep_.p) return EmptySet();
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  std::vector<Value> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return SetFromCanonical(std::move(out));
}

namespace {

int KindRank(Value::Kind k) { return static_cast<int>(k); }

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  // int/double compare numerically so 1 == 1.0 inside mixed expressions.
  if (is_numeric() && other.is_numeric() &&
      (is_double() || other.is_double())) {
    return CompareDoubles(as_double(), other.as_double());
  }
  if (kind_ != other.kind_) {
    return KindRank(kind_) < KindRank(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return (rep_.b == other.rep_.b) ? 0 : (rep_.b ? 1 : -1);
    case Kind::kInt:
      return (rep_.i == other.rep_.i) ? 0 : (rep_.i < other.rep_.i ? -1 : 1);
    case Kind::kDouble:
      return CompareDoubles(rep_.d, other.rep_.d);
    case Kind::kString: {
      if (rep_.p == other.rep_.p) return 0;
      return str_payload()->str.compare(other.str_payload()->str);
    }
    case Kind::kOid:
      return (rep_.o == other.rep_.o) ? 0 : (rep_.o < other.rep_.o ? -1 : 1);
    case Kind::kTuple: {
      if (rep_.p == other.rep_.p) return 0;  // shared payload ⇒ equal
      const TuplePayload* a = tuple_payload();
      const TuplePayload* b = other.tuple_payload();
      if (a->values.size() != b->values.size()) {
        return a->values.size() < b->values.size() ? -1 : 1;
      }
      if (a->shape == b->shape) {
        // Interning turns "same field names in the same order" — the
        // overwhelmingly common case — into a pointer check.
        for (size_t i = 0; i < a->values.size(); ++i) {
          int c = a->values[i].Compare(b->values[i]);
          if (c != 0) return c;
        }
        return 0;
      }
      // Attribute order is irrelevant to tuple identity (relational
      // convention): compare via the shapes' precomputed name-sorted
      // permutations.
      const std::vector<uint32_t>& ia = a->shape->sorted_order();
      const std::vector<uint32_t>& ib = b->shape->sorted_order();
      for (size_t i = 0; i < a->values.size(); ++i) {
        int c = a->shape->name(ia[i]).compare(b->shape->name(ib[i]));
        if (c != 0) return c < 0 ? -1 : 1;
        c = a->values[ia[i]].Compare(b->values[ib[i]]);
        if (c != 0) return c;
      }
      return 0;
    }
    case Kind::kSet: {
      if (rep_.p == other.rep_.p) return 0;
      const std::vector<Value>& a = set_payload()->elems;
      const std::vector<Value>& b = other.set_payload()->elems;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  // Same kind and same bits: identical atom or shared payload pointer.
  if (kind_ == other.kind_ && rep_.raw == other.rep_.raw) return true;
  return Compare(other) == 0;
}

namespace {

// hash_memo uses 0 as the "not yet computed" sentinel; a computed hash
// that lands on 0 is remapped so it stays cacheable.
constexpr uint64_t kHashZeroRemap = 0x9e3779b97f4a7c15ULL;

uint64_t Memoize(std::atomic<uint64_t>& memo, uint64_t h) {
  if (h == 0) h = kHashZeroRemap;
  // Relaxed is enough: racing writers all store the same value, and
  // readers only consume the loaded value itself.
  memo.store(h, std::memory_order_relaxed);
  return h;
}

}  // namespace

uint64_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x6e756c6cULL;
    case Kind::kBool:
      return rep_.b ? 0x74727565ULL : 0x66616c73ULL;
    case Kind::kInt:
      return Fnv1a(&rep_.i, sizeof(rep_.i));
    case Kind::kDouble: {
      // Hash integral doubles as their int64 so numeric equality implies
      // hash equality (Compare treats 1 and 1.0 as equal).
      double d = rep_.d;
      if (d == 0.0) d = 0.0;  // normalize -0.0
      if (std::floor(d) == d && d >= -9.2e18 && d <= 9.2e18) {
        int64_t as_int = static_cast<int64_t>(d);
        return Fnv1a(&as_int, sizeof(as_int));
      }
      return Fnv1a(&d, sizeof(d));
    }
    case Kind::kString: {
      const std::string& s = str_payload()->str;
      return Fnv1a(s.data(), s.size());
    }
    case Kind::kOid: {
      uint64_t mix = rep_.o ^ 0x6f696400ULL;
      return Fnv1a(&mix, sizeof(mix));
    }
    case Kind::kTuple: {
      const TuplePayload* p = tuple_payload();
      uint64_t h = p->hash_memo.load(std::memory_order_relaxed);
      if (h != 0) return h;
      // Commutative combination so field order does not affect the hash
      // (consistent with order-insensitive tuple equality).
      h = 0x7475706cULL + p->values.size();
      for (size_t i = 0; i < p->values.size(); ++i) {
        h += HashCombine(p->shape->name_hash(i), p->values[i].Hash());
      }
      return Memoize(p->hash_memo, h);
    }
    case Kind::kSet: {
      const SetPayload* p = set_payload();
      uint64_t h = p->hash_memo.load(std::memory_order_relaxed);
      if (h != 0) return h;
      h = 0x736574ULL;
      for (const Value& v : p->elems) h = HashCombine(h, v.Hash());
      return Memoize(p->hash_memo, h);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return rep_.b ? "true" : "false";
    case Kind::kInt:
      return std::to_string(rep_.i);
    case Kind::kDouble: {
      std::string s = StrFormat("%g", rep_.d);
      return s;
    }
    case Kind::kString:
      return "\"" + str_payload()->str + "\"";
    case Kind::kOid:
      return StrFormat("@%u.%llu", OidClassId(rep_.o),
                       static_cast<unsigned long long>(OidSeq(rep_.o)));
    case Kind::kTuple: {
      const TuplePayload* p = tuple_payload();
      std::vector<std::string> parts;
      parts.reserve(p->values.size());
      for (size_t i = 0; i < p->values.size(); ++i) {
        parts.push_back(p->shape->name(i) + " = " + p->values[i].ToString());
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case Kind::kSet: {
      const std::vector<Value>& es = set_payload()->elems;
      std::vector<std::string> parts;
      parts.reserve(es.size());
      for (const Value& v : es) parts.push_back(v.ToString());
      return "{" + Join(parts, ", ") + "}";
    }
  }
  return "?";
}

size_t Value::ApproxBytes() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDouble:
    case Kind::kOid:
      return sizeof(Value);
    case Kind::kString:
      return sizeof(Value) + sizeof(StringPayload) + str_payload()->str.size();
    case Kind::kTuple: {
      // Each child's ApproxBytes already counts its 16 inline bytes,
      // which here live in the payload's value vector; the interned
      // shape is shared and not charged per tuple.
      size_t total = sizeof(Value) + sizeof(TuplePayload);
      for (const Value& v : tuple_payload()->values) total += v.ApproxBytes();
      return total;
    }
    case Kind::kSet: {
      size_t total = sizeof(Value) + sizeof(SetPayload);
      for (const Value& v : set_payload()->elems) total += v.ApproxBytes();
      return total;
    }
  }
  return sizeof(Value);
}

}  // namespace n2j
