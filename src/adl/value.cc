#include "adl/value.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "common/str_util.h"

namespace n2j {

Field::Field(std::string n, Value v)
    : name(std::move(n)), value(std::make_unique<Value>(std::move(v))) {}
Field::Field(const Field& other)
    : name(other.name), value(std::make_unique<Value>(*other.value)) {}
Field::Field(Field&&) noexcept = default;
Field& Field::operator=(const Field& other) {
  name = other.name;
  value = std::make_unique<Value>(*other.value);
  return *this;
}
Field& Field::operator=(Field&&) noexcept = default;
Field::~Field() = default;

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.d_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.s_ = std::make_shared<const std::string>(std::move(s));
  return v;
}

Value Value::MakeOidValue(Oid oid) {
  Value v;
  v.kind_ = Kind::kOid;
  v.o_ = oid;
  return v;
}

Value Value::Tuple(std::vector<Field> fields) {
  Value v;
  v.kind_ = Kind::kTuple;
  v.tuple_ = std::make_shared<const std::vector<Field>>(std::move(fields));
  return v;
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  return SetFromCanonical(std::move(elements));
}

Value Value::SetFromCanonical(std::vector<Value> elements) {
  Value v;
  v.kind_ = Kind::kSet;
  v.set_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

bool Value::bool_value() const {
  N2J_CHECK(is_bool());
  return b_;
}

int64_t Value::int_value() const {
  N2J_CHECK(is_int());
  return i_;
}

double Value::double_value() const {
  N2J_CHECK(is_double());
  return d_;
}

double Value::as_double() const {
  N2J_CHECK(is_numeric());
  return is_int() ? static_cast<double>(i_) : d_;
}

const std::string& Value::string_value() const {
  N2J_CHECK(is_string());
  return *s_;
}

Oid Value::oid_value() const {
  N2J_CHECK(is_oid());
  return o_;
}

const std::vector<Field>& Value::fields() const {
  N2J_CHECK(is_tuple());
  return *tuple_;
}

const Value* Value::FindField(std::string_view name) const {
  N2J_CHECK(is_tuple());
  for (const Field& f : *tuple_) {
    if (f.name == name) return f.value.get();
  }
  return nullptr;
}

Value Value::ProjectTuple(const std::vector<std::string>& names) const {
  std::vector<Field> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    const Value* v = FindField(n);
    N2J_CHECK(v != nullptr);
    out.emplace_back(n, *v);
  }
  return Tuple(std::move(out));
}

Value Value::ConcatTuple(const Value& other) const {
  N2J_CHECK(is_tuple() && other.is_tuple());
  std::vector<Field> out = *tuple_;
  for (const Field& f : other.fields()) {
    N2J_CHECK(FindField(f.name) == nullptr);
    out.push_back(f);
  }
  return Tuple(std::move(out));
}

Value Value::ExceptUpdate(const std::vector<Field>& updates) const {
  N2J_CHECK(is_tuple());
  std::vector<Field> out = *tuple_;
  for (const Field& u : updates) {
    bool found = false;
    for (Field& f : out) {
      if (f.name == u.name) {
        f = u;
        found = true;
        break;
      }
    }
    if (!found) out.push_back(u);
  }
  return Tuple(std::move(out));
}

std::vector<std::string> Value::FieldNames() const {
  std::vector<std::string> out;
  out.reserve(fields().size());
  for (const Field& f : fields()) out.push_back(f.name);
  return out;
}

const std::vector<Value>& Value::elements() const {
  N2J_CHECK(is_set());
  return *set_;
}

bool Value::SetContains(const Value& v) const {
  const std::vector<Value>& es = elements();
  return std::binary_search(es.begin(), es.end(), v);
}

bool Value::IsSubsetOf(const Value& other, bool strict) const {
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  if (a.size() > b.size()) return false;
  // Sorted-merge subset test.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int c = a[i].Compare(b[j]);
    if (c == 0) {
      ++i;
      ++j;
    } else if (c > 0) {
      ++j;
    } else {
      return false;  // a[i] not present in b
    }
  }
  if (i < a.size()) return false;
  return strict ? a.size() < b.size() : true;
}

Value Value::SetUnion(const Value& other) const {
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return SetFromCanonical(std::move(out));
}

Value Value::SetIntersect(const Value& other) const {
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return SetFromCanonical(std::move(out));
}

Value Value::SetDifference(const Value& other) const {
  const std::vector<Value>& a = elements();
  const std::vector<Value>& b = other.elements();
  std::vector<Value> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return SetFromCanonical(std::move(out));
}

namespace {

int KindRank(Value::Kind k) { return static_cast<int>(k); }

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  // int/double compare numerically so 1 == 1.0 inside mixed expressions.
  if (is_numeric() && other.is_numeric() &&
      (is_double() || other.is_double())) {
    return CompareDoubles(as_double(), other.as_double());
  }
  if (kind_ != other.kind_) {
    return KindRank(kind_) < KindRank(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return (b_ == other.b_) ? 0 : (b_ ? 1 : -1);
    case Kind::kInt:
      return (i_ == other.i_) ? 0 : (i_ < other.i_ ? -1 : 1);
    case Kind::kDouble:
      return CompareDoubles(d_, other.d_);
    case Kind::kString:
      return s_->compare(*other.s_);
    case Kind::kOid:
      return (o_ == other.o_) ? 0 : (o_ < other.o_ ? -1 : 1);
    case Kind::kTuple: {
      const std::vector<Field>& a = *tuple_;
      const std::vector<Field>& b = *other.tuple_;
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      // Fast path: identical field order (the overwhelmingly common
      // case).
      bool same_order = true;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name) {
          same_order = false;
          break;
        }
      }
      if (same_order) {
        for (size_t i = 0; i < a.size(); ++i) {
          int c = a[i].value->Compare(*b[i].value);
          if (c != 0) return c;
        }
        return 0;
      }
      // Attribute order is irrelevant to tuple identity (relational
      // convention): compare via name-sorted field sequences.
      auto sorted_indices = [](const std::vector<Field>& fs) {
        std::vector<size_t> idx(fs.size());
        for (size_t i = 0; i < fs.size(); ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&fs](size_t i, size_t j) {
          return fs[i].name < fs[j].name;
        });
        return idx;
      };
      std::vector<size_t> ia = sorted_indices(a);
      std::vector<size_t> ib = sorted_indices(b);
      for (size_t i = 0; i < a.size(); ++i) {
        int c = a[ia[i]].name.compare(b[ib[i]].name);
        if (c != 0) return c < 0 ? -1 : 1;
        c = a[ia[i]].value->Compare(*b[ib[i]].value);
        if (c != 0) return c;
      }
      return 0;
    }
    case Kind::kSet: {
      const std::vector<Value>& a = *set_;
      const std::vector<Value>& b = *other.set_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x6e756c6cULL;
    case Kind::kBool:
      return b_ ? 0x74727565ULL : 0x66616c73ULL;
    case Kind::kInt:
      return Fnv1a(&i_, sizeof(i_));
    case Kind::kDouble: {
      // Hash integral doubles as their int64 so numeric equality implies
      // hash equality (Compare treats 1 and 1.0 as equal).
      double d = d_;
      if (d == 0.0) d = 0.0;  // normalize -0.0
      if (std::floor(d) == d && d >= -9.2e18 && d <= 9.2e18) {
        int64_t as_int = static_cast<int64_t>(d);
        return Fnv1a(&as_int, sizeof(as_int));
      }
      return Fnv1a(&d, sizeof(d));
    }
    case Kind::kString:
      return Fnv1a(s_->data(), s_->size());
    case Kind::kOid: {
      uint64_t mix = o_ ^ 0x6f696400ULL;
      return Fnv1a(&mix, sizeof(mix));
    }
    case Kind::kTuple: {
      // Commutative combination so field order does not affect the hash
      // (consistent with order-insensitive tuple equality).
      uint64_t h = 0x7475706cULL + tuple_->size();
      for (const Field& f : *tuple_) {
        h += HashCombine(Fnv1a(f.name.data(), f.name.size()),
                         f.value->Hash());
      }
      return h;
    }
    case Kind::kSet: {
      uint64_t h = 0x736574ULL;
      for (const Value& v : *set_) h = HashCombine(h, v.Hash());
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return b_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kDouble: {
      std::string s = StrFormat("%g", d_);
      return s;
    }
    case Kind::kString:
      return "\"" + *s_ + "\"";
    case Kind::kOid:
      return StrFormat("@%u.%llu", OidClassId(o_),
                       static_cast<unsigned long long>(OidSeq(o_)));
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(tuple_->size());
      for (const Field& f : *tuple_) {
        parts.push_back(f.name + " = " + f.value->ToString());
      }
      return "(" + Join(parts, ", ") + ")";
    }
    case Kind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(set_->size());
      for (const Value& v : *set_) parts.push_back(v.ToString());
      return "{" + Join(parts, ", ") + "}";
    }
  }
  return "?";
}

size_t Value::ApproxBytes() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDouble:
    case Kind::kOid:
      return 16;
    case Kind::kString:
      return 32 + s_->size();
    case Kind::kTuple: {
      size_t total = 24;
      for (const Field& f : *tuple_) {
        total += 32 + f.name.size() + f.value->ApproxBytes();
      }
      return total;
    }
    case Kind::kSet: {
      size_t total = 24;
      for (const Value& v : *set_) total += v.ApproxBytes();
      return total;
    }
  }
  return 16;
}

}  // namespace n2j
