#ifndef N2J_ADL_TUPLE_SHAPE_H_
#define N2J_ADL_TUPLE_SHAPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace n2j {

/// An interned, immutable tuple schema: the ordered field names of a
/// tuple Value plus everything Compare/Hash/FindField need precomputed.
///
/// Shapes are process-wide deduplicated: two tuples with the same field
/// names in the same order share one TupleShape, so schema equality is a
/// pointer comparison and per-tuple storage is one shape pointer plus a
/// contiguous value vector — no per-field allocations. Interned shapes
/// live for the life of the process (the set of distinct schemas in any
/// workload is tiny and bounded by the query/DDL text, not the data).
///
/// All static lookups are thread-safe; a returned pointer is immutable
/// and never invalidated.
class TupleShape {
 public:
  /// Canonical shape for `names` (copies only when the shape is new).
  static const TupleShape* Intern(const std::vector<std::string>& names);
  /// Canonical shape for `names`, consuming the vector on a miss.
  static const TupleShape* Intern(std::vector<std::string>&& names);
  /// The empty tuple's shape.
  static const TupleShape* Empty();

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t i) const { return names_[i]; }
  /// FNV-1a hash of name(i), precomputed at intern time.
  uint64_t name_hash(size_t i) const { return name_hashes_[i]; }

  /// Index of `name`, or -1 if absent. Length-first linear scan for
  /// small shapes, hash lookup for large ones; never allocates.
  int IndexOf(std::string_view name) const;

  /// Permutation ordering the fields by name — the order-insensitive
  /// tuple comparison walks both shapes through this without sorting.
  const std::vector<uint32_t>& sorted_order() const { return sorted_order_; }

  /// Shape of this shape's fields followed by `other`'s, or nullptr when
  /// a field name occurs in both. Memoized per (this, other) pair, so
  /// repeated tuple concatenations (join output assembly) cost one
  /// pointer-keyed map lookup per row instead of an intern by name list.
  const TupleShape* ConcatWith(const TupleShape* other) const;

  /// Shape with `name` appended (memoized; nest / nestjoin results).
  const TupleShape* ExtendedWith(const std::string& name) const;

  /// Shape with `name` removed, or this shape if absent (memoized;
  /// unnest and the PNHL natural-join payload).
  const TupleShape* WithoutField(const std::string& name) const;

  TupleShape(const TupleShape&) = delete;
  TupleShape& operator=(const TupleShape&) = delete;

 private:
  explicit TupleShape(std::vector<std::string> names);

  std::vector<std::string> names_;
  std::vector<uint64_t> name_hashes_;
  std::vector<uint32_t> sorted_order_;
  // Views into names_ (stable: names_ never changes after construction).
  // Only consulted above the linear-scan size threshold.
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace n2j

#endif  // N2J_ADL_TUPLE_SHAPE_H_
