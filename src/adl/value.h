#ifndef N2J_ADL_VALUE_H_
#define N2J_ADL_VALUE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adl/tuple_shape.h"
#include "common/status.h"

namespace n2j {

/// Object identifier. The high 16 bits identify the class, the low 48 bits
/// are a per-class sequence number. Oids are opaque values at the algebra
/// level; the storage layer (ObjectStore) maps them back to objects.
using Oid = uint64_t;

/// Builds an oid from a class id and a sequence number.
inline Oid MakeOid(uint16_t class_id, uint64_t seq) {
  return (static_cast<uint64_t>(class_id) << 48) | (seq & 0xffffffffffffULL);
}
inline uint16_t OidClassId(Oid oid) { return static_cast<uint16_t>(oid >> 48); }
inline uint64_t OidSeq(Oid oid) { return oid & 0xffffffffffffULL; }

class Value;

/// One named field of a tuple under construction. Field is a builder
/// convenience only: `Value::Tuple({Field("a", ...), ...})` splits the
/// fields into an interned TupleShape plus a contiguous value vector.
/// Stored tuples do not hold Fields (or per-field allocations) at all.
struct Field;

/// A complex-object value in the ADL data model: an atom (null, bool, int,
/// double, string, oid), a tuple of named fields, or a set.
///
/// Sets are kept in *canonical form* — sorted by Value::Compare and
/// deduplicated — so set equality is element-wise equality and the subset /
/// membership operations run by merging. Tuples preserve field order.
///
/// Representation: a 16-byte tagged union. Atoms are stored inline; a
/// string, tuple or set holds one pointer to an intrusively refcounted
/// immutable payload, so copies are a tag copy plus one atomic increment.
/// A tuple payload is an interned TupleShape pointer (field names,
/// deduplicated process-wide) plus a contiguous std::vector<Value> of
/// field values. Tuple and set payloads memoize their hash, and Compare /
/// operator== short-circuit on shared payload pointers, so repeated hash
/// builds, set dedup and subset merges over shared values are O(1).
class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kOid,
    kTuple,
    kSet,
  };

  /// Default-constructed value is null.
  Value() : kind_(Kind::kNull) { rep_.raw = 0; }
  Value(const Value& other) : kind_(other.kind_), rep_(other.rep_) {
    if (has_payload()) {
      rep_.p->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Value(Value&& other) noexcept : kind_(other.kind_), rep_(other.rep_) {
    other.kind_ = Kind::kNull;
    other.rep_.raw = 0;
  }
  Value& operator=(const Value& other) {
    if (this != &other) {
      if (other.has_payload()) {
        other.rep_.p->refs.fetch_add(1, std::memory_order_relaxed);
      }
      Release();
      kind_ = other.kind_;
      rep_ = other.rep_;
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      Release();
      kind_ = other.kind_;
      rep_ = other.rep_;
      other.kind_ = Kind::kNull;
      other.rep_.raw = 0;
    }
    return *this;
  }
  ~Value() { Release(); }

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  static Value String(std::string s);
  static Value MakeOidValue(Oid oid);
  /// Builds a tuple preserving field order. Field names must be distinct.
  static Value Tuple(std::vector<Field> fields);
  /// Builds a tuple from an interned shape and one value per field —
  /// the allocation-free construction path for hot loops. Precondition:
  /// values.size() == shape->size().
  static Value TupleFromShape(const TupleShape* shape,
                              std::vector<Value> values);
  /// Builds a set; canonicalizes (sorts and deduplicates) the elements.
  static Value Set(std::vector<Value> elements);
  /// Builds a set from elements already sorted and deduplicated.
  static Value SetFromCanonical(std::vector<Value> elements);
  static Value EmptySet() { return SetFromCanonical({}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_oid() const { return kind_ == Kind::kOid; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }
  bool is_set() const { return kind_ == Kind::kSet; }

  bool bool_value() const {
    N2J_CHECK(is_bool());
    return rep_.b;
  }
  int64_t int_value() const {
    N2J_CHECK(is_int());
    return rep_.i;
  }
  double double_value() const {
    N2J_CHECK(is_double());
    return rep_.d;
  }
  /// Numeric value as double (int or double kinds).
  double as_double() const {
    N2J_CHECK(is_numeric());
    return is_int() ? static_cast<double>(rep_.i) : rep_.d;
  }
  const std::string& string_value() const;
  Oid oid_value() const {
    N2J_CHECK(is_oid());
    return rep_.o;
  }

  /// Tuple accessors. Precondition: is_tuple().
  const TupleShape* tuple_shape() const;
  const std::vector<Value>& tuple_values() const;
  size_t tuple_size() const { return tuple_values().size(); }
  const std::string& field_name(size_t i) const {
    return tuple_shape()->name(i);
  }
  const Value& field_value(size_t i) const { return tuple_values()[i]; }
  /// Returns the field value or nullptr if absent.
  const Value* FindField(std::string_view name) const;
  /// Tuple subscription e[a1,...,an]: projects onto the named fields, in
  /// the given order. Missing fields are an internal error.
  Value ProjectTuple(const std::vector<std::string>& names) const;
  /// Tuple concatenation x o y. Field names must not collide.
  Value ConcatTuple(const Value& other) const;
  /// The `except` operator: updates existing fields / appends new ones.
  Value ExceptUpdate(const std::vector<Field>& updates) const;
  /// The tuple without field `name` (this value if the field is absent).
  Value WithoutField(const std::string& name) const;
  /// Field names in order.
  std::vector<std::string> FieldNames() const;

  /// Set accessors. Precondition: is_set().
  const std::vector<Value>& elements() const;
  size_t set_size() const { return elements().size(); }
  bool SetContains(const Value& v) const;
  /// this ⊆ other (strict = proper subset this ⊂ other).
  bool IsSubsetOf(const Value& other, bool strict) const;
  Value SetUnion(const Value& other) const;
  Value SetIntersect(const Value& other) const;
  Value SetDifference(const Value& other) const;

  /// Total order over all values. Values of different kinds order by kind
  /// rank, except int/double which compare numerically. Tuples compare
  /// field-by-field (name then value); sets compare lexicographically over
  /// their canonical element sequences.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== . Memoized for tuples and sets.
  uint64_t Hash() const;

  /// Printable form: atoms as literals, tuples as (a = v, ...), sets as
  /// {v, ...}.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used by the PNHL memory
  /// budget accounting. Counts the 16-byte inline Value, the refcounted
  /// payload for strings/tuples/sets, and every nested element; interned
  /// TupleShapes are shared, so they are not charged per tuple.
  size_t ApproxBytes() const;

 private:
  struct Payload {
    mutable std::atomic<uint32_t> refs{1};
  };
  struct StringPayload;
  struct TuplePayload;
  struct SetPayload;

  bool has_payload() const {
    return kind_ == Kind::kString || kind_ == Kind::kTuple ||
           kind_ == Kind::kSet;
  }
  void Release() {
    if (has_payload() &&
        rep_.p->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      DeletePayload();
    }
  }
  void DeletePayload();

  const StringPayload* str_payload() const;
  const TuplePayload* tuple_payload() const;
  const SetPayload* set_payload() const;

  Kind kind_;
  union Rep {
    bool b;
    int64_t i;
    double d;
    Oid o;
    Payload* p;
    uint64_t raw;
  } rep_;
};

// The entire point of this representation: one inline tag plus one
// 8-byte slot. Join outputs, hash keys and set elements stay copyable
// by register moves and one atomic increment.
static_assert(sizeof(Value) <= 16, "Value must stay a 16-byte tagged union");

struct Field {
  std::string name;
  Value value;

  Field(std::string n, Value v) : name(std::move(n)), value(std::move(v)) {}
  const Value& val() const { return value; }
};

struct Value::StringPayload : Value::Payload {
  explicit StringPayload(std::string s) : str(std::move(s)) {}
  std::string str;
};

struct Value::TuplePayload : Value::Payload {
  TuplePayload(const TupleShape* s, std::vector<Value> v)
      : shape(s), values(std::move(v)) {}
  const TupleShape* shape;
  std::vector<Value> values;
  // 0 = not yet computed (computed hashes that collide with 0 are
  // remapped). Relaxed atomics: racing writers store the same value.
  mutable std::atomic<uint64_t> hash_memo{0};
};

struct Value::SetPayload : Value::Payload {
  explicit SetPayload(std::vector<Value> e) : elems(std::move(e)) {}
  std::vector<Value> elems;
  mutable std::atomic<uint64_t> hash_memo{0};
};

inline const Value::StringPayload* Value::str_payload() const {
  return static_cast<const StringPayload*>(rep_.p);
}
inline const Value::TuplePayload* Value::tuple_payload() const {
  return static_cast<const TuplePayload*>(rep_.p);
}
inline const Value::SetPayload* Value::set_payload() const {
  return static_cast<const SetPayload*>(rep_.p);
}

inline const std::string& Value::string_value() const {
  N2J_CHECK(is_string());
  return str_payload()->str;
}
inline const TupleShape* Value::tuple_shape() const {
  N2J_CHECK(is_tuple());
  return tuple_payload()->shape;
}
inline const std::vector<Value>& Value::tuple_values() const {
  N2J_CHECK(is_tuple());
  return tuple_payload()->values;
}
inline const std::vector<Value>& Value::elements() const {
  N2J_CHECK(is_set());
  return set_payload()->elems;
}
inline const Value* Value::FindField(std::string_view name) const {
  N2J_CHECK(is_tuple());
  const TuplePayload* p = tuple_payload();
  int i = p->shape->IndexOf(name);
  return i < 0 ? nullptr : &p->values[static_cast<size_t>(i)];
}

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace n2j

#endif  // N2J_ADL_VALUE_H_
