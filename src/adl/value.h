#ifndef N2J_ADL_VALUE_H_
#define N2J_ADL_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace n2j {

/// Object identifier. The high 16 bits identify the class, the low 48 bits
/// are a per-class sequence number. Oids are opaque values at the algebra
/// level; the storage layer (ObjectStore) maps them back to objects.
using Oid = uint64_t;

/// Builds an oid from a class id and a sequence number.
inline Oid MakeOid(uint16_t class_id, uint64_t seq) {
  return (static_cast<uint64_t>(class_id) << 48) | (seq & 0xffffffffffffULL);
}
inline uint16_t OidClassId(Oid oid) { return static_cast<uint16_t>(oid >> 48); }
inline uint64_t OidSeq(Oid oid) { return oid & 0xffffffffffffULL; }

class Value;

/// One named field of a tuple value.
struct Field {
  std::string name;
  // Defined out of line because Value is incomplete here.
  Field(std::string n, Value v);
  Field(const Field&);
  Field(Field&&) noexcept;
  Field& operator=(const Field&);
  Field& operator=(Field&&) noexcept;
  ~Field();
  std::unique_ptr<Value> value;  // never null

  const Value& val() const { return *value; }
};

/// A complex-object value in the ADL data model: an atom (null, bool, int,
/// double, string, oid), a tuple of named fields, or a set.
///
/// Sets are kept in *canonical form* — sorted by Value::Compare and
/// deduplicated — so set equality is element-wise equality and the subset /
/// membership operations run by merging. Tuples preserve field order.
///
/// Values are immutable; copies share the underlying representation of
/// strings, tuples and sets via shared_ptr, so passing Values around is
/// cheap even for large nested sets.
class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kOid,
    kTuple,
    kSet,
  };

  /// Default-constructed value is null.
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  static Value String(std::string s);
  static Value MakeOidValue(Oid oid);
  /// Builds a tuple preserving field order. Field names must be distinct.
  static Value Tuple(std::vector<Field> fields);
  /// Builds a set; canonicalizes (sorts and deduplicates) the elements.
  static Value Set(std::vector<Value> elements);
  /// Builds a set from elements already sorted and deduplicated.
  static Value SetFromCanonical(std::vector<Value> elements);
  static Value EmptySet() { return SetFromCanonical({}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_oid() const { return kind_ == Kind::kOid; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }
  bool is_set() const { return kind_ == Kind::kSet; }

  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  /// Numeric value as double (int or double kinds).
  double as_double() const;
  const std::string& string_value() const;
  Oid oid_value() const;

  /// Tuple accessors. Precondition: is_tuple().
  const std::vector<Field>& fields() const;
  /// Returns the field value or nullptr if absent.
  const Value* FindField(std::string_view name) const;
  /// Tuple subscription e[a1,...,an]: projects onto the named fields, in
  /// the given order. Missing fields are an internal error.
  Value ProjectTuple(const std::vector<std::string>& names) const;
  /// Tuple concatenation x o y. Field names must not collide.
  Value ConcatTuple(const Value& other) const;
  /// The `except` operator: updates existing fields / appends new ones.
  Value ExceptUpdate(const std::vector<Field>& updates) const;
  /// Field names in order.
  std::vector<std::string> FieldNames() const;

  /// Set accessors. Precondition: is_set().
  const std::vector<Value>& elements() const;
  size_t set_size() const { return elements().size(); }
  bool SetContains(const Value& v) const;
  /// this ⊆ other (strict = proper subset this ⊂ other).
  bool IsSubsetOf(const Value& other, bool strict) const;
  Value SetUnion(const Value& other) const;
  Value SetIntersect(const Value& other) const;
  Value SetDifference(const Value& other) const;

  /// Total order over all values. Values of different kinds order by kind
  /// rank, except int/double which compare numerically. Tuples compare
  /// field-by-field (name then value); sets compare lexicographically over
  /// their canonical element sequences.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== .
  uint64_t Hash() const;

  /// Printable form: atoms as literals, tuples as (a = v, ...), sets as
  /// {v, ...}.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used by the PNHL memory
  /// budget accounting.
  size_t ApproxBytes() const;

 private:
  Kind kind_;
  bool b_ = false;
  int64_t i_ = 0;
  double d_ = 0.0;
  Oid o_ = 0;
  std::shared_ptr<const std::string> s_;
  std::shared_ptr<const std::vector<Field>> tuple_;
  std::shared_ptr<const std::vector<Value>> set_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace n2j

#endif  // N2J_ADL_VALUE_H_
