#include "adl/typecheck.h"

#include "adl/printer.h"

namespace n2j {

TypePtr TypeOfValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return Type::Any();
    case Value::Kind::kBool:
      return Type::Bool();
    case Value::Kind::kInt:
      return Type::Int();
    case Value::Kind::kDouble:
      return Type::Double();
    case Value::Kind::kString:
      return Type::String();
    case Value::Kind::kOid:
      return Type::OidType();
    case Value::Kind::kTuple: {
      std::vector<TypeField> fields;
      fields.reserve(v.tuple_size());
      for (size_t i = 0; i < v.tuple_size(); ++i) {
        fields.push_back({v.field_name(i), TypeOfValue(v.field_value(i))});
      }
      return Type::Tuple(std::move(fields));
    }
    case Value::Kind::kSet: {
      if (v.set_size() == 0) return Type::Set(Type::Any());
      return Type::Set(TypeOfValue(v.elements()[0]));
    }
  }
  return Type::Any();
}

Result<std::vector<std::string>> TypeChecker::SchemaOf(const ExprPtr& e,
                                                       TypeEnv& env) {
  N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e, env));
  if (!t->is_set() || !t->element()->is_tuple()) {
    return TypeError("SCH on non-table expression of type " + t->ToString() +
                     ": " + AlgebraStr(e));
  }
  return t->element()->FieldNames();
}

Result<TypePtr> TypeChecker::Infer(const ExprPtr& ep, TypeEnv& env) {
  const Expr& e = *ep;
  switch (e.kind()) {
    case ExprKind::kConst:
      return TypeOfValue(e.const_value());

    case ExprKind::kVar: {
      const TypePtr* t = env.Lookup(e.name());
      if (t == nullptr) return TypeError("unbound variable " + e.name());
      return *t;
    }

    case ExprKind::kGetTable: {
      if (const ClassDef* cls = schema_.FindClassByExtent(e.name())) {
        return cls->ExtentType();
      }
      if (db_ != nullptr) {
        if (const Table* t = db_->FindTable(e.name())) {
          return Type::Set(t->row_type());
        }
      }
      return TypeError("unknown table " + e.name());
    }

    case ExprKind::kLet: {
      N2J_ASSIGN_OR_RETURN(TypePtr def, Infer(e.child(0), env));
      env.Push(e.var(), def);
      Result<TypePtr> body = Infer(e.child(1), env);
      env.Pop();
      return body;
    }

    case ExprKind::kFieldAccess: {
      N2J_ASSIGN_OR_RETURN(TypePtr base, Infer(e.child(0), env));
      if (base->is_ref()) {
        const ClassDef* cls = schema_.FindClass(base->class_name());
        if (cls == nullptr) {
          return TypeError("reference to unknown class " +
                           base->class_name());
        }
        base = cls->ObjectType();
      }
      if (base->is_any()) return Type::Any();
      if (!base->is_tuple()) {
        return TypeError("field access '." + e.name() + "' on " +
                         base->ToString());
      }
      TypePtr ft = base->FindField(e.name());
      if (ft == nullptr) {
        return TypeError("no attribute '" + e.name() + "' in " +
                         base->ToString());
      }
      return ft;
    }

    case ExprKind::kTupleProject: {
      N2J_ASSIGN_OR_RETURN(TypePtr base, Infer(e.child(0), env));
      if (base->is_any()) return Type::Any();
      if (!base->is_tuple()) {
        return TypeError("tuple projection on " + base->ToString());
      }
      std::vector<TypeField> fields;
      for (const std::string& n : e.names()) {
        TypePtr ft = base->FindField(n);
        if (ft == nullptr) {
          return TypeError("no attribute '" + n + "' in " +
                           base->ToString());
        }
        fields.push_back({n, ft});
      }
      return Type::Tuple(std::move(fields));
    }

    case ExprKind::kTupleConstruct: {
      std::vector<TypeField> fields;
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e.child(i), env));
        fields.push_back({e.names()[i], t});
      }
      return Type::Tuple(std::move(fields));
    }

    case ExprKind::kTupleConcat: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if (l->is_any() || r->is_any()) return Type::Any();
      if (!l->is_tuple() || !r->is_tuple()) {
        return TypeError("tuple concatenation on non-tuples");
      }
      std::vector<TypeField> fields = l->fields();
      for (const TypeField& f : r->fields()) {
        if (l->FindField(f.name) != nullptr) {
          return TypeError("attribute conflict in concatenation: " + f.name);
        }
        fields.push_back(f);
      }
      return Type::Tuple(std::move(fields));
    }

    case ExprKind::kExcept: {
      N2J_ASSIGN_OR_RETURN(TypePtr base, Infer(e.child(0), env));
      if (base->is_any()) return Type::Any();
      if (!base->is_tuple()) return TypeError("except on non-tuple");
      std::vector<TypeField> fields = base->fields();
      for (size_t i = 0; i < e.names().size(); ++i) {
        N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e.child(i + 1), env));
        bool found = false;
        for (TypeField& f : fields) {
          if (f.name == e.names()[i]) {
            f.type = t;
            found = true;
            break;
          }
        }
        if (!found) fields.push_back({e.names()[i], t});
      }
      return Type::Tuple(std::move(fields));
    }

    case ExprKind::kSetConstruct: {
      TypePtr elem = Type::Any();
      for (const ExprPtr& c : e.children()) {
        N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(c, env));
        if (elem->is_any()) {
          elem = t;
        } else if (!elem->Equals(*t)) {
          return TypeError("mixed element types in set constructor");
        }
      }
      return Type::Set(elem);
    }

    case ExprKind::kDeref: {
      N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e.child(0), env));
      std::string cls_name = e.name();
      if (cls_name.empty() && t->is_ref()) cls_name = t->class_name();
      if (cls_name.empty()) {
        return TypeError("deref with unknown target class");
      }
      const ClassDef* cls = schema_.FindClass(cls_name);
      if (cls == nullptr) return TypeError("unknown class " + cls_name);
      if (!t->is_ref() && !t->is_oid() && !t->is_any()) {
        return TypeError("deref of non-reference " + t->ToString());
      }
      return cls->ObjectType();
    }

    case ExprKind::kUnary: {
      N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e.child(0), env));
      switch (e.un_op()) {
        case UnOp::kNot:
          if (!t->is_bool() && !t->is_any()) {
            return TypeError("not on " + t->ToString());
          }
          return Type::Bool();
        case UnOp::kNeg:
          if (!t->is_numeric() && !t->is_any()) {
            return TypeError("negation of " + t->ToString());
          }
          return t;
        case UnOp::kIsEmpty:
          if (!t->is_set() && !t->is_any()) {
            return TypeError("isempty on " + t->ToString());
          }
          return Type::Bool();
      }
      return TypeError("bad unary op");
    }

    case ExprKind::kBinary: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      switch (e.bin_op()) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          if ((!l->is_numeric() && !l->is_any()) ||
              (!r->is_numeric() && !r->is_any())) {
            return TypeError("arithmetic on " + l->ToString() + ", " +
                             r->ToString());
          }
          return (l->is_double() || r->is_double()) ? Type::Double()
                                                    : Type::Int();
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
          if (!l->ComparableWith(*r)) {
            return TypeError("comparison of " + l->ToString() + " with " +
                             r->ToString());
          }
          return Type::Bool();
        case BinOp::kIn:
          if (!r->is_set() && !r->is_any()) {
            return TypeError("in: rhs is " + r->ToString());
          }
          if (r->is_set() && !l->ComparableWith(*r->element())) {
            return TypeError("in: element type mismatch");
          }
          return Type::Bool();
        case BinOp::kContains:
          if (!l->is_set() && !l->is_any()) {
            return TypeError("contains: lhs is " + l->ToString());
          }
          if (l->is_set() && !r->ComparableWith(*l->element())) {
            return TypeError("contains: element type mismatch");
          }
          return Type::Bool();
        case BinOp::kSubset:
        case BinOp::kSubsetEq:
        case BinOp::kSupset:
        case BinOp::kSupsetEq:
          if ((!l->is_set() && !l->is_any()) ||
              (!r->is_set() && !r->is_any())) {
            return TypeError("set comparison on " + l->ToString() + ", " +
                             r->ToString());
          }
          return Type::Bool();
        case BinOp::kAnd:
        case BinOp::kOr:
          if ((!l->is_bool() && !l->is_any()) ||
              (!r->is_bool() && !r->is_any())) {
            return TypeError("boolean connective on " + l->ToString() +
                             ", " + r->ToString());
          }
          return Type::Bool();
        case BinOp::kUnionOp:
        case BinOp::kIntersectOp:
        case BinOp::kDifferenceOp:
          if ((!l->is_set() && !l->is_any()) ||
              (!r->is_set() && !r->is_any())) {
            return TypeError("set operator on non-sets");
          }
          return l->is_set() ? l : r;
      }
      return TypeError("bad binary op");
    }

    case ExprKind::kQuantifier: {
      N2J_ASSIGN_OR_RETURN(TypePtr range, Infer(e.child(0), env));
      if (!range->is_set() && !range->is_any()) {
        return TypeError("quantifier range is " + range->ToString());
      }
      env.Push(e.var(),
               range->is_set() ? range->element() : Type::Any());
      Result<TypePtr> pred = Infer(e.child(1), env);
      env.Pop();
      if (!pred.ok()) return pred.status();
      if (!(*pred)->is_bool() && !(*pred)->is_any()) {
        return TypeError("quantifier predicate is " + (*pred)->ToString());
      }
      return Type::Bool();
    }

    case ExprKind::kAggregate: {
      N2J_ASSIGN_OR_RETURN(TypePtr t, Infer(e.child(0), env));
      if (!t->is_set() && !t->is_any()) {
        return TypeError("aggregate over " + t->ToString());
      }
      TypePtr elem = t->is_set() ? t->element() : Type::Any();
      switch (e.agg_kind()) {
        case AggKind::kCount:
          return Type::Int();
        case AggKind::kAvg:
          return Type::Double();
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          return elem;
      }
      return TypeError("bad aggregate");
    }

    case ExprKind::kMap: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (!in.get()->is_set() && !in->is_any()) {
        return TypeError("map over " + in->ToString());
      }
      env.Push(e.var(), in->is_set() ? in->element() : Type::Any());
      Result<TypePtr> body = Infer(e.child(1), env);
      env.Pop();
      if (!body.ok()) return body.status();
      return Type::Set(*body);
    }

    case ExprKind::kSelect: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (!in->is_set() && !in->is_any()) {
        return TypeError("select over " + in->ToString());
      }
      env.Push(e.var(), in->is_set() ? in->element() : Type::Any());
      Result<TypePtr> pred = Infer(e.child(1), env);
      env.Pop();
      if (!pred.ok()) return pred.status();
      if (!(*pred)->is_bool() && !(*pred)->is_any()) {
        return TypeError("selection predicate is " + (*pred)->ToString());
      }
      return in;
    }

    case ExprKind::kProject: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (in->is_any()) return Type::Any();
      // A set of unknown element type (the empty set constant a rewrite
      // may fold a subplan to) projects to a set of unknown element type.
      if (in->is_set() && in->element()->is_any()) {
        return Type::Set(Type::Any());
      }
      if (!in->is_set() || !in->element()->is_tuple()) {
        return TypeError("project over " + in->ToString());
      }
      std::vector<TypeField> fields;
      for (const std::string& n : e.names()) {
        TypePtr ft = in->element()->FindField(n);
        if (ft == nullptr) {
          return TypeError("no attribute '" + n + "' to project");
        }
        fields.push_back({n, ft});
      }
      return Type::Set(Type::Tuple(std::move(fields)));
    }

    case ExprKind::kFlatten: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (in->is_any()) return Type::Any();
      if (!in->is_set() || (!in->element()->is_set() &&
                            !in->element()->is_any())) {
        return TypeError("flatten over " + in->ToString());
      }
      return in->element()->is_set() ? in->element()
                                     : Type::Set(Type::Any());
    }

    case ExprKind::kNest: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (in->is_any() || (in->is_set() && in->element()->is_any())) {
        return Type::Set(Type::Any());
      }
      if (!in->is_set() || !in->element()->is_tuple()) {
        return TypeError("nest over " + in->ToString());
      }
      std::vector<TypeField> grouped;
      std::vector<TypeField> rest;
      for (const TypeField& f : in->element()->fields()) {
        bool is_grouped = false;
        for (const std::string& g : e.names()) {
          if (f.name == g) {
            is_grouped = true;
            break;
          }
        }
        (is_grouped ? grouped : rest).push_back(f);
      }
      if (grouped.size() != e.names().size()) {
        return TypeError("nest: missing grouped attribute");
      }
      rest.push_back({e.name(), Type::Set(Type::Tuple(std::move(grouped)))});
      return Type::Set(Type::Tuple(std::move(rest)));
    }

    case ExprKind::kUnnest: {
      N2J_ASSIGN_OR_RETURN(TypePtr in, Infer(e.child(0), env));
      if (in->is_any() || (in->is_set() && in->element()->is_any())) {
        return Type::Set(Type::Any());
      }
      if (!in->is_set() || !in->element()->is_tuple()) {
        return TypeError("unnest over " + in->ToString());
      }
      TypePtr attr = in->element()->FindField(e.name());
      if (attr == nullptr) {
        return TypeError("unnest: no attribute '" + e.name() + "'");
      }
      if (attr->is_any() || (attr->is_set() && attr->element()->is_any())) {
        return Type::Set(Type::Any());
      }
      if (!attr->is_set() || !attr->element()->is_tuple()) {
        return TypeError("unnest: attribute '" + e.name() +
                         "' is not a set of tuples");
      }
      std::vector<TypeField> fields = attr->element()->fields();
      for (const TypeField& f : in->element()->fields()) {
        if (f.name == e.name()) continue;
        fields.push_back(f);
      }
      return Type::Set(Type::Tuple(std::move(fields)));
    }

    case ExprKind::kProduct:
    case ExprKind::kJoin: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if ((!l->is_set() && !l->is_any()) || (!r->is_set() && !r->is_any())) {
        return TypeError("product/join over non-tables");
      }
      TypePtr lelem = l->is_set() ? l->element() : Type::Any();
      TypePtr relem = r->is_set() ? r->element() : Type::Any();
      if (!lelem->is_any() && !lelem->is_tuple()) {
        return TypeError("product/join over non-tables");
      }
      if (!relem->is_any() && !relem->is_tuple()) {
        return TypeError("product/join over non-tables");
      }
      if (e.kind() == ExprKind::kJoin) {
        env.Push(e.var(), lelem);
        env.Push(e.var2(), relem);
        Result<TypePtr> pred = Infer(e.child(2), env);
        env.Pop();
        env.Pop();
        if (!pred.ok()) return pred.status();
      }
      if (lelem->is_any() || relem->is_any()) {
        return Type::Set(Type::Any());
      }
      std::vector<TypeField> fields = l->element()->fields();
      for (const TypeField& f : r->element()->fields()) {
        if (l->element()->FindField(f.name) != nullptr) {
          return TypeError("attribute conflict in join: " + f.name);
        }
        fields.push_back(f);
      }
      return Type::Set(Type::Tuple(std::move(fields)));
    }

    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if ((!l->is_set() && !l->is_any()) || (!r->is_set() && !r->is_any())) {
        return TypeError("semijoin/antijoin over non-sets");
      }
      env.Push(e.var(), l->is_set() ? l->element() : Type::Any());
      env.Push(e.var2(), r->is_set() ? r->element() : Type::Any());
      Result<TypePtr> pred = Infer(e.child(2), env);
      env.Pop();
      env.Pop();
      if (!pred.ok()) return pred.status();
      return l->is_any() ? Type::Set(Type::Any()) : l;
    }

    case ExprKind::kNestJoin: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if ((!l->is_set() && !l->is_any()) || (!r->is_set() && !r->is_any())) {
        return TypeError("nestjoin over non-tables");
      }
      TypePtr lelem = l->is_set() ? l->element() : Type::Any();
      if (!lelem->is_tuple() && !lelem->is_any()) {
        return TypeError("nestjoin over non-tables");
      }
      env.Push(e.var(), lelem);
      env.Push(e.var2(), r->is_set() ? r->element() : Type::Any());
      Result<TypePtr> pred = Infer(e.child(2), env);
      Result<TypePtr> inner = Infer(e.child(3), env);
      env.Pop();
      env.Pop();
      if (!pred.ok()) return pred.status();
      if (!inner.ok()) return inner.status();
      if (lelem->is_any()) return Type::Set(Type::Any());
      if (l->element()->FindField(e.name()) != nullptr) {
        return TypeError("nestjoin attribute conflict: " + e.name());
      }
      std::vector<TypeField> fields = l->element()->fields();
      fields.push_back({e.name(), Type::Set(*inner)});
      return Type::Set(Type::Tuple(std::move(fields)));
    }

    case ExprKind::kDivide: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if (l->is_any() || r->is_any() ||
          (l->is_set() && l->element()->is_any()) ||
          (r->is_set() && r->element()->is_any())) {
        return Type::Set(Type::Any());
      }
      if (!l->is_set() || !r->is_set() || !l->element()->is_tuple() ||
          !r->element()->is_tuple()) {
        return TypeError("division over non-tables");
      }
      std::vector<TypeField> fields;
      for (const TypeField& f : l->element()->fields()) {
        if (r->element()->FindField(f.name) == nullptr) {
          fields.push_back(f);
        }
      }
      return Type::Set(Type::Tuple(std::move(fields)));
    }

    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      N2J_ASSIGN_OR_RETURN(TypePtr l, Infer(e.child(0), env));
      N2J_ASSIGN_OR_RETURN(TypePtr r, Infer(e.child(1), env));
      if (!l->is_set() || !r->is_set()) {
        return TypeError("set operation over non-sets");
      }
      if (!l->Equals(*r)) {
        return TypeError("set operation on mismatched types " +
                         l->ToString() + " vs " + r->ToString());
      }
      return l->element()->is_any() ? r : l;
    }
  }
  return TypeError("unhandled expression kind");
}

}  // namespace n2j
