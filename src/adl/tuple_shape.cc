#include "adl/tuple_shape.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/str_util.h"

namespace n2j {

namespace {

// Above this arity IndexOf switches from a length-first linear scan to
// the prebuilt name→index hash map. Real schemas are almost always
// below it, and a scan over a handful of length-checked names beats
// hashing the probe string.
constexpr size_t kLinearScanLimit = 8;

uint64_t HashNameList(const std::vector<std::string>& names) {
  uint64_t h = 0x73686170ULL + names.size();  // "shap"
  for (const std::string& n : names) {
    h = HashCombine(h, Fnv1a(n.data(), n.size()));
  }
  return h;
}

struct NamesPtrHash {
  size_t operator()(const std::vector<std::string>* v) const {
    return static_cast<size_t>(HashNameList(*v));
  }
};
struct NamesPtrEq {
  bool operator()(const std::vector<std::string>* a,
                  const std::vector<std::string>* b) const {
    return *a == *b;
  }
};

// The intern registry. Keys point at the interned shape's own name
// vector, so lookups hash the caller's vector without building a string
// key. Shapes are never freed (see the class comment).
struct Registry {
  std::shared_mutex mu;
  std::unordered_map<const std::vector<std::string>*, TupleShape*,
                     NamesPtrHash, NamesPtrEq>
      shapes;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

// Derived-shape memo tables, all pointer-keyed on the source shape(s).
struct PairHash {
  size_t operator()(const std::pair<const TupleShape*, const TupleShape*>&
                        p) const {
    return HashCombine(reinterpret_cast<uintptr_t>(p.first),
                       reinterpret_cast<uintptr_t>(p.second));
  }
};
struct ShapeNameHash {
  size_t operator()(
      const std::pair<const TupleShape*, std::string>& p) const {
    return HashCombine(reinterpret_cast<uintptr_t>(p.first),
                       Fnv1a(p.second.data(), p.second.size()));
  }
};

template <typename Key, typename Hash>
struct Memo {
  std::shared_mutex mu;
  std::unordered_map<Key, const TupleShape*, Hash> map;

  template <typename Make>
  const TupleShape* GetOrCompute(const Key& key, const Make& make) {
    {
      std::shared_lock<std::shared_mutex> lock(mu);
      auto it = map.find(key);
      if (it != map.end()) return it->second;
    }
    const TupleShape* made = make();
    std::unique_lock<std::shared_mutex> lock(mu);
    return map.emplace(key, made).first->second;
  }
};

using PairMemo =
    Memo<std::pair<const TupleShape*, const TupleShape*>, PairHash>;
using NameMemo = Memo<std::pair<const TupleShape*, std::string>,
                      ShapeNameHash>;

PairMemo& ConcatMemo() {
  static PairMemo* m = new PairMemo();
  return *m;
}
NameMemo& ExtendMemo() {
  static NameMemo* m = new NameMemo();
  return *m;
}
NameMemo& RemoveMemo() {
  static NameMemo* m = new NameMemo();
  return *m;
}

}  // namespace

TupleShape::TupleShape(std::vector<std::string> names)
    : names_(std::move(names)) {
  name_hashes_.reserve(names_.size());
  for (const std::string& n : names_) {
    name_hashes_.push_back(Fnv1a(n.data(), n.size()));
  }
  sorted_order_.resize(names_.size());
  for (uint32_t i = 0; i < names_.size(); ++i) sorted_order_[i] = i;
  std::sort(sorted_order_.begin(), sorted_order_.end(),
            [this](uint32_t a, uint32_t b) { return names_[a] < names_[b]; });
  if (names_.size() > kLinearScanLimit) {
    index_.reserve(names_.size());
    for (uint32_t i = 0; i < names_.size(); ++i) {
      index_.emplace(std::string_view(names_[i]), i);
    }
  }
}

const TupleShape* TupleShape::Intern(const std::vector<std::string>& names) {
  Registry& r = GlobalRegistry();
  {
    std::shared_lock<std::shared_mutex> lock(r.mu);
    auto it = r.shapes.find(&names);
    if (it != r.shapes.end()) return it->second;
  }
  std::unique_ptr<TupleShape> shape(new TupleShape(names));
  std::unique_lock<std::shared_mutex> lock(r.mu);
  auto [it, inserted] = r.shapes.emplace(&shape->names_, shape.get());
  if (inserted) shape.release();  // owned by the registry forever
  return it->second;
}

const TupleShape* TupleShape::Intern(std::vector<std::string>&& names) {
  Registry& r = GlobalRegistry();
  {
    std::shared_lock<std::shared_mutex> lock(r.mu);
    auto it = r.shapes.find(&names);
    if (it != r.shapes.end()) return it->second;
  }
  std::unique_ptr<TupleShape> shape(new TupleShape(std::move(names)));
  std::unique_lock<std::shared_mutex> lock(r.mu);
  auto [it, inserted] = r.shapes.emplace(&shape->names_, shape.get());
  if (inserted) shape.release();
  return it->second;
}

const TupleShape* TupleShape::Empty() {
  static const TupleShape* empty = Intern(std::vector<std::string>());
  return empty;
}

int TupleShape::IndexOf(std::string_view name) const {
  const size_t n = names_.size();
  if (n <= kLinearScanLimit) {
    const size_t len = name.size();
    for (size_t i = 0; i < n; ++i) {
      const std::string& cand = names_[i];
      if (cand.size() == len &&
          std::memcmp(cand.data(), name.data(), len) == 0) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

const TupleShape* TupleShape::ConcatWith(const TupleShape* other) const {
  return ConcatMemo().GetOrCompute(
      {this, other}, [this, other]() -> const TupleShape* {
        std::vector<std::string> combined;
        combined.reserve(size() + other->size());
        combined.insert(combined.end(), names_.begin(), names_.end());
        for (const std::string& n : other->names()) {
          if (IndexOf(n) >= 0) return nullptr;  // name collision
          combined.push_back(n);
        }
        return Intern(std::move(combined));
      });
}

const TupleShape* TupleShape::ExtendedWith(const std::string& name) const {
  return ExtendMemo().GetOrCompute(
      {this, name}, [this, &name]() -> const TupleShape* {
        std::vector<std::string> extended;
        extended.reserve(size() + 1);
        extended.insert(extended.end(), names_.begin(), names_.end());
        extended.push_back(name);
        return Intern(std::move(extended));
      });
}

const TupleShape* TupleShape::WithoutField(const std::string& name) const {
  if (IndexOf(name) < 0) return this;
  return RemoveMemo().GetOrCompute(
      {this, name}, [this, &name]() -> const TupleShape* {
        std::vector<std::string> kept;
        kept.reserve(size() - 1);
        for (const std::string& n : names_) {
          if (n != name) kept.push_back(n);
        }
        return Intern(std::move(kept));
      });
}

}  // namespace n2j
