#ifndef N2J_ADL_EXPR_H_
#define N2J_ADL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "adl/type.h"
#include "adl/value.h"

namespace n2j {

class Expr;
/// Expressions are immutable and shared: rewrites build new trees that
/// share unchanged subtrees with the original.
using ExprPtr = std::shared_ptr<const Expr>;

/// All ADL expression forms (Section 3 of the paper), plus the
/// quantifiers and scalar operators that may appear inside iterator
/// parameter expressions, plus the new operators of Section 6 (nestjoin,
/// deref/materialize).
enum class ExprKind : uint8_t {
  kConst,          // literal Value (includes uncorrelated-set constants)
  kVar,            // lambda variable reference
  kGetTable,       // base table (class extension)
  kLet,            // let v = e1 in e2  (used to hoist uncorrelated subqueries)
  kFieldAccess,    // e.a
  kTupleProject,   // e[a1, ..., an]       (tuple subscription)
  kTupleConstruct, // (a1 = e1, ..., an = en)
  kTupleConcat,    // e1 o e2
  kExcept,         // e except (a1 = e1, ...)
  kSetConstruct,   // {e1, ..., en}
  kDeref,          // dereference an oid to its object (materialize)
  kUnary,          // not e, -e
  kBinary,         // arithmetic / comparison / boolean / set operators
  kQuantifier,     // exists/forall v in range . pred
  kAggregate,      // count/sum/avg/min/max (e)
  kMap,            // α[x : body](input)
  kSelect,         // σ[x : pred](input)
  kProject,        // π_{a1,...,an}(input)
  kFlatten,        // ⋃(input)
  kNest,           // ν_{A → a}(input)
  kUnnest,         // μ_a(input)
  kProduct,        // e1 × e2
  kJoin,           // e1 ⋈_{x,y:p} e2
  kSemiJoin,       // e1 ⋉_{x,y:p} e2
  kAntiJoin,       // e1 ▷_{x,y:p} e2
  kNestJoin,       // e1 ⊣_{x,y:p ; f ; a} e2   (grouping during join)
  kDivide,         // e1 ÷ e2
  kUnion,          // e1 ∪ e2
  kIntersect,      // e1 ∩ e2
  kDifference,     // e1 − e2
};

/// Binary operators usable inside predicates and scalar expressions.
enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kIn,        // x ∈ S
  kContains,  // S ∋ x
  kSubset,    // S1 ⊂ S2 (proper)
  kSubsetEq,  // S1 ⊆ S2
  kSupset,    // S1 ⊃ S2 (proper)
  kSupsetEq,  // S1 ⊇ S2
  kUnionOp, kIntersectOp, kDifferenceOp,  // value-level set operators
};

enum class UnOp : uint8_t { kNot, kNeg, kIsEmpty };

enum class AggKind : uint8_t { kCount, kSum, kAvg, kMin, kMax };

enum class QuantKind : uint8_t { kExists, kForall };

const char* BinOpName(BinOp op);
const char* UnOpName(UnOp op);
const char* AggKindName(AggKind k);

/// True for =, <>, <, <=, >, >=.
bool IsComparisonOp(BinOp op);
/// True for ∈, ∋, ⊂, ⊆, ⊃, ⊇ (the operators of Table 1).
bool IsSetComparisonOp(BinOp op);

/// One ADL expression node. Children layout depends on kind(); use the
/// typed accessors below rather than indexing children() directly.
class Expr : public std::enable_shared_from_this<Expr> {
 public:
  // ---- Factories -------------------------------------------------------
  static ExprPtr Const(Value v);
  static ExprPtr Var(std::string name);
  static ExprPtr Table(std::string name);
  static ExprPtr Let(std::string var, ExprPtr def, ExprPtr body);
  static ExprPtr Access(ExprPtr e, std::string field);
  /// Chained field access e.a.b...
  static ExprPtr Path(ExprPtr e, const std::vector<std::string>& fields);
  static ExprPtr TupleProject(ExprPtr e, std::vector<std::string> names);
  static ExprPtr TupleConstruct(std::vector<std::string> names,
                                std::vector<ExprPtr> values);
  static ExprPtr TupleConcat(ExprPtr l, ExprPtr r);
  static ExprPtr ExceptOp(ExprPtr e, std::vector<std::string> names,
                          std::vector<ExprPtr> values);
  static ExprPtr SetConstruct(std::vector<ExprPtr> elements);
  /// class_name may be empty: the evaluator then resolves the class from
  /// the oid itself.
  static ExprPtr Deref(ExprPtr e, std::string class_name);
  static ExprPtr Un(UnOp op, ExprPtr e);
  static ExprPtr Bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Quant(QuantKind q, std::string var, ExprPtr range,
                       ExprPtr pred);
  static ExprPtr Agg(AggKind k, ExprPtr e);
  static ExprPtr Map(std::string var, ExprPtr body, ExprPtr input);
  static ExprPtr Select(std::string var, ExprPtr pred, ExprPtr input);
  static ExprPtr Project(ExprPtr input, std::vector<std::string> names);
  static ExprPtr Flatten(ExprPtr input);
  /// ν_{A→a}: groups on SCH(input) − A; collects the A-projections of each
  /// group into the new set-valued attribute `a`.
  static ExprPtr Nest(ExprPtr input, std::vector<std::string> grouped_attrs,
                      std::string new_attr);
  static ExprPtr Unnest(ExprPtr input, std::string attr);
  static ExprPtr Product(ExprPtr l, ExprPtr r);
  static ExprPtr Join(ExprPtr l, ExprPtr r, std::string lvar,
                      std::string rvar, ExprPtr pred);
  static ExprPtr SemiJoin(ExprPtr l, ExprPtr r, std::string lvar,
                          std::string rvar, ExprPtr pred);
  static ExprPtr AntiJoin(ExprPtr l, ExprPtr r, std::string lvar,
                          std::string rvar, ExprPtr pred);
  /// Nestjoin e1 ⊣_{x,y : p ; f ; a} e2: each left tuple x is concatenated
  /// with (a = { f(y) | y ∈ e2, p(x,y) }). `inner` defaults to Var(rvar)
  /// (the simple nestjoin of Definition 1).
  static ExprPtr NestJoin(ExprPtr l, ExprPtr r, std::string lvar,
                          std::string rvar, ExprPtr pred,
                          std::string result_attr, ExprPtr inner = nullptr);
  static ExprPtr Divide(ExprPtr l, ExprPtr r);
  static ExprPtr Union(ExprPtr l, ExprPtr r);
  static ExprPtr Intersect(ExprPtr l, ExprPtr r);
  static ExprPtr Difference(ExprPtr l, ExprPtr r);

  // Boolean conveniences.
  static ExprPtr True() { return Const(Value::Bool(true)); }
  static ExprPtr False() { return Const(Value::Bool(false)); }
  static ExprPtr Not(ExprPtr e) { return Un(UnOp::kNot, std::move(e)); }
  static ExprPtr And(ExprPtr l, ExprPtr r) {
    return Bin(BinOp::kAnd, std::move(l), std::move(r));
  }
  static ExprPtr Or(ExprPtr l, ExprPtr r) {
    return Bin(BinOp::kOr, std::move(l), std::move(r));
  }
  static ExprPtr Eq(ExprPtr l, ExprPtr r) {
    return Bin(BinOp::kEq, std::move(l), std::move(r));
  }
  /// Conjunction of a list (empty list = true).
  static ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

  // ---- Accessors -------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& const_value() const { return value_; }
  /// Variable / table / field / attribute name, depending on kind.
  const std::string& name() const { return name_; }
  /// Attribute lists (project fields, nest grouped attrs, tuple names).
  const std::vector<std::string>& names() const { return names_; }
  /// Bound lambda variable (map/select/quantifier/let, or left join var).
  const std::string& var() const { return var_; }
  /// Right join variable.
  const std::string& var2() const { return var2_; }
  BinOp bin_op() const { return bin_op_; }
  UnOp un_op() const { return un_op_; }
  AggKind agg_kind() const { return agg_; }
  QuantKind quant_kind() const { return quant_; }

  const std::vector<ExprPtr>& children() const { return children_; }
  size_t num_children() const { return children_.size(); }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  // Typed child accessors (see the layout table in expr.cc).
  const ExprPtr& input() const;   // map/select/project/flatten/nest/unnest
  const ExprPtr& body() const;    // map body / select pred / quant pred
  const ExprPtr& left() const;    // binary set ops & joins
  const ExprPtr& right() const;
  const ExprPtr& pred() const;    // join predicate
  const ExprPtr& inner() const;   // nestjoin inner function body
  const ExprPtr& range() const;   // quantifier range

  /// Rebuilds this node with new children (same kind and scalars). Used by
  /// generic bottom-up rewriting.
  ExprPtr WithChildren(std::vector<ExprPtr> new_children) const;

  /// Structural equality (bound variable names compare literally).
  bool Equals(const Expr& other) const;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;

  /// True if `var` does not appear bound anywhere this expression would
  /// shadow it; see analysis.h for free-variable queries.
  bool BindsVariables() const {
    return !var_.empty() || !var2_.empty();
  }

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  Value value_;
  std::string name_;
  std::vector<std::string> names_;
  std::string var_;
  std::string var2_;
  BinOp bin_op_ = BinOp::kEq;
  UnOp un_op_ = UnOp::kNot;
  AggKind agg_ = AggKind::kCount;
  QuantKind quant_ = QuantKind::kExists;
  std::vector<ExprPtr> children_;
};

}  // namespace n2j

#endif  // N2J_ADL_EXPR_H_
