#ifndef N2J_COMMON_THREAD_POOL_H_
#define N2J_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace n2j {

/// Nanoseconds on the process-wide monotonic clock. Only differences are
/// meaningful; all trace timestamps use this clock.
int64_t MonotonicNanos();

/// Receives one timestamped morsel execution from RunMorsels. `phase` is
/// the string literal set via set_morsel_phase (it outlives the call).
using MorselSink = std::function<void(int worker, size_t morsel,
                                      const char* phase, int64_t start_ns,
                                      int64_t end_ns)>;

/// A small fixed-size thread pool with one shared FIFO task queue — no
/// work stealing. Built for morsel-driven query execution, where tasks
/// are coarse enough (hundreds of tuples each) that a single queue under
/// a mutex is never the bottleneck.
///
/// One pool serves one evaluator; Submit/Wait and RunMorsels are meant
/// to be driven from that evaluator's thread, not called concurrently
/// from several threads.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (clamped to at least 1).
  explicit ThreadPool(int num_workers);
  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (in completion order).
  /// Waiting with nothing submitted returns immediately.
  void Wait();

  /// Runs body(worker, morsel) for every morsel in [0, num_morsels).
  /// Worker ids are in [0, num_workers()); each worker claims morsels
  /// one at a time from a shared counter (morsel-driven scheduling), so
  /// a slow morsel never stalls the rest of the input. Blocks until all
  /// morsels are done. Returns the error of the *lowest-numbered*
  /// failing morsel — error reporting is deterministic regardless of
  /// scheduling. An exception escaping `body` becomes an internal-error
  /// Status for its morsel.
  Status RunMorsels(
      size_t num_morsels,
      const std::function<Status(int worker, size_t morsel)>& body);

  /// As RunMorsels, but additionally reports the index of the
  /// lowest-numbered failing morsel through `first_error_morsel` (left
  /// untouched when every morsel succeeds). Callers whose morsels can
  /// end in a non-error early-out (the shredded join's abandon path)
  /// compare that index against their own flags to decide which event
  /// the serial engine would have hit first.
  Status RunMorsels(
      size_t num_morsels,
      const std::function<Status(int worker, size_t morsel)>& body,
      size_t* first_error_morsel);

  /// Installs (or clears, with nullptr semantics via an empty function)
  /// a sink that receives per-morsel timestamps from RunMorsels. Set
  /// from the coordinating thread while the pool is idle; the sink is
  /// invoked concurrently from workers and must be thread-safe.
  void set_morsel_sink(MorselSink sink) { morsel_sink_ = std::move(sink); }
  /// Labels subsequent RunMorsels calls for the sink. Must be a string
  /// literal (stored by pointer).
  void set_morsel_phase(const char* phase) { morsel_phase_ = phase; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
  MorselSink morsel_sink_;
  const char* morsel_phase_ = "morsel";
};

/// Half-open element range of one morsel.
struct MorselRange {
  size_t begin;
  size_t end;
};

/// Number of size-`morsel_size` morsels covering [0, n). Zero when n is
/// zero.
size_t NumMorsels(size_t n, size_t morsel_size);

/// The range of morsel `m` (the last morsel may be ragged).
MorselRange MorselAt(size_t n, size_t morsel_size, size_t m);

/// Morsel-size heuristic: aims for several morsels per worker so the
/// shared-counter scheduling can balance skew, while capping the morsel
/// count for tiny inputs (every element its own morsel at the limit).
size_t PickMorselSize(size_t n, int num_workers);

}  // namespace n2j

#endif  // N2J_COMMON_THREAD_POOL_H_
