#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

namespace n2j {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

Status ThreadPool::RunMorsels(
    size_t num_morsels,
    const std::function<Status(int worker, size_t morsel)>& body) {
  return RunMorsels(num_morsels, body, nullptr);
}

Status ThreadPool::RunMorsels(
    size_t num_morsels,
    const std::function<Status(int worker, size_t morsel)>& body,
    size_t* first_error_morsel) {
  if (num_morsels == 0) return Status::OK();
  std::vector<Status> statuses(num_morsels, Status::OK());
  std::atomic<size_t> next{0};
  size_t launched = std::min(num_morsels, workers_.size());
  for (size_t w = 0; w < launched; ++w) {
    Submit([&, w] {
      for (;;) {
        size_t m = next.fetch_add(1, std::memory_order_relaxed);
        if (m >= num_morsels) return;
        int64_t t0 = morsel_sink_ ? MonotonicNanos() : 0;
        try {
          statuses[m] = body(static_cast<int>(w), m);
        } catch (const std::exception& ex) {
          statuses[m] = Status::Internal(std::string("morsel threw: ") +
                                         ex.what());
        } catch (...) {
          statuses[m] = Status::Internal("morsel threw a non-exception");
        }
        if (morsel_sink_) {
          morsel_sink_(static_cast<int>(w), m, morsel_phase_, t0,
                       MonotonicNanos());
        }
      }
    });
  }
  Wait();
  for (size_t m = 0; m < num_morsels; ++m) {
    if (!statuses[m].ok()) {
      if (first_error_morsel != nullptr) *first_error_morsel = m;
      return statuses[m];
    }
  }
  return Status::OK();
}

size_t NumMorsels(size_t n, size_t morsel_size) {
  if (n == 0) return 0;
  if (morsel_size == 0) morsel_size = 1;
  return (n + morsel_size - 1) / morsel_size;
}

MorselRange MorselAt(size_t n, size_t morsel_size, size_t m) {
  if (morsel_size == 0) morsel_size = 1;
  size_t begin = m * morsel_size;
  size_t end = begin + morsel_size;
  if (end > n) end = n;
  if (begin > n) begin = n;
  return {begin, end};
}

size_t PickMorselSize(size_t n, int num_workers) {
  if (num_workers < 1) num_workers = 1;
  // ~8 morsels per worker balances skew without drowning in scheduling;
  // tiny inputs degrade to one element per morsel, which keeps the
  // parallel paths exercised (and differentially testable) even on
  // fuzzer-sized data.
  size_t target = static_cast<size_t>(num_workers) * 8;
  size_t size = n / target;
  if (size < 1) size = 1;
  if (size > 1024) size = 1024;
  return size;
}

}  // namespace n2j
