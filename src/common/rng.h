#ifndef N2J_COMMON_RNG_H_
#define N2J_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace n2j {

/// Deterministic PRNG (xorshift128+) so data generation, property tests and
/// benchmarks are reproducible across platforms without depending on the
/// implementation-defined std::mt19937 distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding to avoid bad states from small seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = t ^ (t >> 31);
    }
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed integer in [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^theta. theta = 0 gives uniform.
  int64_t Zipf(int64_t n, double theta);

  /// Random lowercase identifier-like string of the given length.
  std::string NextString(int len);

 private:
  uint64_t s_[2];
};

}  // namespace n2j

#endif  // N2J_COMMON_RNG_H_
