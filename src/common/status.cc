#include "common/status.h"

namespace n2j {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace n2j
