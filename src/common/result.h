#ifndef N2J_COMMON_RESULT_H_
#define N2J_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace n2j {

/// Result<T> carries either a value of type T or a non-OK Status.
/// Modelled on absl::StatusOr / arrow::Result; used instead of exceptions.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    N2J_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    N2J_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    N2J_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    N2J_CHECK(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define N2J_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define N2J_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define N2J_ASSIGN_OR_RETURN_NAME(a, b) N2J_ASSIGN_OR_RETURN_CONCAT(a, b)

#define N2J_ASSIGN_OR_RETURN(lhs, rexpr) \
  N2J_ASSIGN_OR_RETURN_IMPL(             \
      N2J_ASSIGN_OR_RETURN_NAME(_n2j_result_, __LINE__), lhs, rexpr)

}  // namespace n2j

#endif  // N2J_COMMON_RESULT_H_
