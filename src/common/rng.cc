#include "common/rng.h"

#include <cmath>
#include <vector>

namespace n2j {

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(0, n - 1);
  // Inverse-CDF sampling over the harmonic weights. For the data sizes used
  // by the generator (n up to ~1e6) a linear scan of the CDF would be too
  // slow per sample, so we use the classical rejection-free approximation
  // of Gray et al. ("Quickly generating billion-record synthetic
  // databases"): draw u and invert the generalized harmonic CDF.
  // We precompute nothing here to keep the RNG stateless w.r.t. n; callers
  // that need many samples with the same (n, theta) should use ZipfGen.
  double alpha = 1.0 / (1.0 - theta);
  double zetan = 0.0;
  // Approximate zeta(n, theta) with the integral bound; exact enough for
  // skewed data generation purposes.
  zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
              (1.0 - theta) +
          0.5;
  double u = NextDouble();
  double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  int64_t v = static_cast<int64_t>(
      static_cast<double>(n) *
      std::pow(zetan * u / zetan, alpha) / std::pow(zetan, alpha - 1.0));
  // Clamp: the approximation can stray slightly out of range.
  double frac = std::pow(u, alpha);
  v = static_cast<int64_t>(static_cast<double>(n) * frac);
  if (v < 0) v = 0;
  if (v >= n) v = n - 1;
  return v;
}

std::string Rng::NextString(int len) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Next() % 26]);
  }
  return out;
}

}  // namespace n2j
