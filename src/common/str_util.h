#ifndef N2J_COMMON_STR_UTIL_H_
#define N2J_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace n2j {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Repeats `s` `n` times.
std::string Repeat(std::string_view s, int n);

/// Appends `s` to `*out` escaped as the contents of a JSON string per
/// RFC 8259: `"` and `\` are backslash-escaped, the control characters
/// with short forms use them (\b \f \n \r \t), every other byte < 0x20
/// becomes \u00XX. Bytes >= 0x20 (including UTF-8 continuation bytes)
/// pass through unchanged. Shared by every JSON writer in the tree
/// (Chrome traces, bench trajectories) so none of them can emit invalid
/// JSON for a hostile operator or extent name.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Returns `s` JSON-escaped (convenience wrapper over AppendJsonEscaped).
std::string JsonEscape(std::string_view s);

/// 64-bit FNV-1a hash, used as the base of all hash tables in the library.
uint64_t Fnv1a(const void* data, size_t len, uint64_t seed = 1469598103934665603ULL);

/// Combines two hashes (boost-style mixing).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace n2j

#endif  // N2J_COMMON_STR_UTIL_H_
