#ifndef N2J_COMMON_STATUS_H_
#define N2J_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>

namespace n2j {

/// Error categories used throughout the library. The set is deliberately
/// small: queries fail either because the input is malformed (syntax/type),
/// because a rewrite precondition does not hold, or because execution hit a
/// runtime problem (unknown table, bad oid, ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kTypeError,
  kUnsupported,
  kRuntimeError,
  kInternal,
};

/// Returns a human-readable name for `code` ("TypeError", ...).
const char* StatusCodeName(StatusCode code);

/// A RocksDB/Abseil-style status object. The library is built without
/// using C++ exceptions; every fallible operation returns a Status or a
/// Result<T> (see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// CHECK-style assertion: aborts with a message on failure. Used for
/// internal invariants only, never for user-visible error paths.
#define N2J_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "N2J_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define N2J_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::n2j::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace n2j

#endif  // N2J_COMMON_STATUS_H_
