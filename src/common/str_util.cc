#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace n2j {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned>(
                                           static_cast<unsigned char>(c)));
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Repeat(std::string_view s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out.append(s);
  return out;
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace n2j
