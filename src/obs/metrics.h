#ifndef N2J_OBS_METRICS_H_
#define N2J_OBS_METRICS_H_

// A small process-wide metrics registry: named monotonic counters and
// fixed-bucket latency histograms. QueryEngine::Run populates it (query
// latency, rewrite time, per-algorithm join counts) and the bytecode
// compiler records compile time. Instruments are created on first use
// and live for the process lifetime, so callers may cache references.
//
// Everything is updated with relaxed atomics — counts are exact, but a
// concurrent Render() may observe a histogram mid-update (count moved,
// bucket not yet). That is the usual monitoring trade-off; no reader
// ever blocks a query.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace n2j {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram over a fixed exponential bucket ladder (upper
/// bounds in milliseconds, +inf implicit). Fixed buckets keep every
/// histogram in the registry comparable and mergeable.
class Histogram {
 public:
  static constexpr double kBucketBoundsMs[] = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
      1000};
  static constexpr int kNumBuckets =
      static_cast<int>(sizeof(kBucketBoundsMs) / sizeof(double)) + 1;

  void Observe(double ms);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
           1e3;
  }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// "count=12 sum=3.4ms p50<0.25ms p95<1ms p99<2.5ms" — bucket upper
  /// bounds, not interpolations.
  std::string ToString() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Finds or creates; returned references stay valid forever.
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All instruments, one per line, in name order.
  std::string Render() const;

  /// Zeroes every registered instrument (tests only — instruments stay
  /// registered so cached references remain valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace n2j

#endif  // N2J_OBS_METRICS_H_
