#ifndef N2J_OBS_METRICS_H_
#define N2J_OBS_METRICS_H_

// A small process-wide metrics registry: named monotonic counters and
// fixed-bucket latency histograms. QueryEngine::Run populates it (query
// latency, rewrite time, per-algorithm join counts) and the bytecode
// compiler records compile time. Instruments are created on first use
// and live for the process lifetime, so callers may cache references.
//
// Everything is updated with relaxed atomics — counts are exact, but a
// concurrent Render() may observe a histogram mid-update (count moved,
// bucket not yet). That is the usual monitoring trade-off; no reader
// ever blocks a query.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace n2j {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram over a fixed exponential bucket ladder (upper
/// bounds in milliseconds, +inf implicit). Fixed buckets keep every
/// histogram in the registry comparable and mergeable.
class Histogram {
 public:
  static constexpr double kBucketBoundsMs[] = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
      1000};
  static constexpr int kNumBuckets =
      static_cast<int>(sizeof(kBucketBoundsMs) / sizeof(double)) + 1;

  void Observe(double ms);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// The sum accumulates integer *nanoseconds* so sub-microsecond
  /// observations (compiled sub-ms queries) are not truncated to zero;
  /// one histogram can absorb ~580 years of observed time before the
  /// u64 wraps.
  double sum_ms() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// "count=12 sum=3.4ms p50<0.25ms p95<1ms p99<2.5ms" — bucket upper
  /// bounds, not interpolations.
  std::string ToString() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// A coherent point-in-time copy of one histogram, for renderers that
/// need count/sum/buckets without re-reading racing atomics per field.
/// (Taken field-by-field with relaxed loads — "coherent" means one value
/// per field, not a cross-field snapshot; see the header comment.)
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum_ms = 0.0;
  uint64_t buckets[Histogram::kNumBuckets] = {};
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Finds or creates; returned references stay valid forever.
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All instruments, one per line, in one merged name order (counters
  /// and histograms interleaved lexicographically — deterministic, so
  /// shell `\metrics` output is golden-testable).
  std::string Render() const;

  /// Name-sorted copies of every registered instrument's current value,
  /// for external renderers (the OpenMetrics exporter).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<HistogramSnapshot> HistogramValues() const;

  /// Zeroes every registered instrument (tests only — instruments stay
  /// registered so cached references remain valid). Reset is *not* a
  /// barrier: an Observe/Add racing a Reset lands either entirely
  /// before (zeroed with everything else) or entirely after (counted in
  /// the fresh epoch); there is no torn state in a Counter, and a
  /// Histogram may transiently disagree between count and buckets, as
  /// with any concurrent Render. Sequential callers always read exact
  /// post-Reset deltas (metrics_test.cc pins these semantics).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace n2j

#endif  // N2J_OBS_METRICS_H_
