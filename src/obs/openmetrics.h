#ifndef N2J_OBS_OPENMETRICS_H_
#define N2J_OBS_OPENMETRICS_H_

// OpenMetrics text exposition of the metrics registry, so any Prometheus
// scraper (or promtool check) can consume engine metrics without a
// bespoke parser. Format per the OpenMetrics spec:
//
//   - counters: family = name minus the `_total` suffix; one `# TYPE
//     <family> counter` line and one `<family>_total <v>` sample.
//     Registry counters not ending in `_total` export as gauges (the
//     spec reserves the suffix for counters).
//   - histograms: `# TYPE <name> histogram`, cumulative
//     `<name>_bucket{le="..."}` samples ending with `le="+Inf"`, then
//     `<name>_count` and `<name>_sum` (sum in milliseconds, matching
//     the bucket bounds' unit).
//   - families emit in one merged lexicographic name order and the
//     document ends with `# EOF` — byte-stable for a given registry
//     state, so the shell's `\openmetrics` is golden-testable.

#include <string>

namespace n2j {
namespace obs {

class MetricsRegistry;

/// Renders `registry` (default: the global one) as an OpenMetrics text
/// document, including the trailing `# EOF` line.
std::string RenderOpenMetrics();
std::string RenderOpenMetrics(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace n2j

#endif  // N2J_OBS_OPENMETRICS_H_
