#include "obs/chrome_trace.h"

#include <cstdio>

#include "common/str_util.h"
#include "obs/trace.h"

namespace n2j {
namespace {

// Operator spans live on tid 0 ("evaluator"); worker w's morsels live on
// tid 1 + w so each worker gets its own track.
constexpr int kPid = 1;
constexpr int kEvaluatorTid = 0;

// RFC 8259 string escaping, shared with every other JSON writer
// (common/str_util.h). The local switch this replaced lacked the \b \f
// \r short forms and formatted \u with a (possibly signed) char.
void AppendEscaped(std::string* out, const std::string& s) {
  AppendJsonEscaped(out, s);
}

void AppendMetadata(std::string* out, const char* what, int tid,
                    const std::string& name) {
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"name\":\"",
      what, kPid, tid);
  AppendEscaped(out, name);
  *out += "\"}},\n";
}

// One complete ("X") event. `ts`/`dur` are microseconds; trace_event
// accepts fractional values, so we keep nanosecond precision.
void AppendComplete(std::string* out, const std::string& name, int tid,
                    int64_t start_ns, int64_t end_ns, int64_t base_ns,
                    const std::string& args_json) {
  *out += "{\"name\":\"";
  AppendEscaped(out, name);
  *out += StrFormat("\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d", kPid, tid);
  *out += StrFormat(",\"ts\":%.3f",
                    static_cast<double>(start_ns - base_ns) / 1e3);
  *out += StrFormat(",\"dur\":%.3f",
                    static_cast<double>(end_ns - start_ns) / 1e3);
  if (!args_json.empty()) *out += ",\"args\":{" + args_json + "}";
  *out += "},\n";
}

}  // namespace

std::string ChromeTraceJson(const TraceCollector& trace) {
  std::string out = "{\"traceEvents\":[\n";
  AppendMetadata(&out, "process_name", kEvaluatorTid, "n2j query");
  AppendMetadata(&out, "thread_name", kEvaluatorTid, "evaluator");

  int max_worker = -1;
  for (const WorkerSpan& w : trace.worker_spans()) {
    if (w.worker > max_worker) max_worker = w.worker;
  }
  for (int w = 0; w <= max_worker; ++w) {
    AppendMetadata(&out, "thread_name", 1 + w, StrFormat("worker %d", w));
  }

  for (const TraceSpan& s : trace.spans()) {
    std::string name = s.op;
    if (!s.detail.empty()) name += " [" + s.detail + "]";
    std::string args = StrFormat(
        "\"rows_in\":%llu,\"rows_out\":%llu",
        static_cast<unsigned long long>(s.rows_in),
        static_cast<unsigned long long>(s.rows_out));
    if (s.rows_build > 0) {
      args += StrFormat(",\"rows_build\":%llu",
                        static_cast<unsigned long long>(s.rows_build));
    }
    if (s.peak_hash_size > 0) {
      args += StrFormat(",\"peak_hash\":%llu",
                        static_cast<unsigned long long>(s.peak_hash_size));
    }
    std::string stats = s.exclusive.Compact();
    if (!stats.empty()) {
      args += ",\"stats\":\"";
      AppendEscaped(&args, stats);
      args += "\"";
    }
    AppendComplete(&out, name, kEvaluatorTid, s.start_ns, s.end_ns,
                   trace.base_ns(), args);
  }

  for (const WorkerSpan& w : trace.worker_spans()) {
    std::string args =
        StrFormat("\"morsel\":%zu", static_cast<size_t>(w.morsel));
    AppendComplete(&out, w.phase, 1 + w.worker, w.start_ns, w.end_ns,
                   trace.base_ns(), args);
  }

  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const TraceCollector& trace,
                        const std::string& path) {
  std::string json = ChromeTraceJson(trace);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::RuntimeError("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::RuntimeError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace n2j
