#ifndef N2J_OBS_TRACE_H_
#define N2J_OBS_TRACE_H_

// Per-operator execution tracing. A TraceCollector records one span per
// operator *invocation* (map, select, join family, PNHL fast path,
// materialize, ...) while an Evaluator runs with EvalOptions::trace set.
// Each span carries wall time, input/build/output cardinalities, the
// peak hash-table size the operator held resident, and an exact
// EvalStats delta:
//
//   inclusive — the counters accumulated between Begin and End,
//               children included;
//   exclusive — inclusive minus the children's inclusive deltas, i.e.
//               the work this operator did itself.
//
// The invariant the fuzzer pins: the sum of all exclusive deltas equals
// the evaluator's global EvalStats, serial and parallel. Parallel
// operators merge their workers' counters into the coordinating
// evaluator *before* returning, so a parallel operator's span sees the
// merged totals in its inclusive delta (worker evaluators run with
// tracing off — their spans would race, and their counters are already
// accounted for by the merge).
//
// The collector also stores per-worker morsel timestamps (fed by
// ThreadPool's morsel sink) so chrome_trace.h can render worker
// timelines next to the operator tree.
//
// One collector serves one evaluation on one thread; AddWorkerSpan is
// the only thread-safe entry point.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exec/eval.h"

namespace n2j {

/// One recorded operator invocation.
struct TraceSpan {
  std::string op;      // operator name ("select", "nestjoin", "pnhl", ...)
  std::string detail;  // annotation ("hash keys=1", algorithm, ...)
  int parent = -1;     // index of the enclosing span, -1 for a root
  int depth = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  int64_t child_ns = 0;         // summed inclusive wall time of children
  uint64_t rows_in = 0;         // probe/primary input cardinality
  uint64_t rows_build = 0;      // build/secondary input cardinality
  uint64_t rows_out = 0;
  /// Planner-estimated output rows (negative = not estimated). Set from
  /// PlanAnnotations when the evaluator runs a cost-based plan; Render
  /// prints est= next to out= so EXPLAIN shows estimate vs. actual.
  double est_rows = -1.0;
  uint64_t peak_hash_size = 0;  // largest resident hash table (entries)
  EvalStats inclusive;
  EvalStats exclusive;

  int64_t inclusive_ns() const { return end_ns - start_ns; }
  int64_t exclusive_ns() const { return inclusive_ns() - child_ns; }
};

/// One morsel executed by a pool worker (or a serial PNHL segment).
struct WorkerSpan {
  int worker = 0;
  size_t morsel = 0;
  const char* phase = "";  // string literal ("select", "join/probe", ...)
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

/// Rendering knobs. Golden tests mask wall times (the only
/// nondeterministic column); everything else — span structure, rows,
/// stats — is deterministic.
struct TraceRenderOptions {
  bool show_time = true;
};

class TraceCollector {
 public:
  TraceCollector();

  /// Drops all recorded spans; the time base restarts at now. The engine
  /// clears the collector before each query so one collector can be
  /// reused across a session.
  void Clear();

  // ---- recording (evaluator thread) --------------------------------

  /// Opens a span under the innermost open one. `now` is the owning
  /// evaluator's current counters (nullptr reads as all-zero, for
  /// instrumented code that runs outside an Evaluator). Returns the span
  /// id for End.
  int Begin(const char* op, const EvalStats* now);
  /// Closes span `id` (must be the innermost open span).
  void End(int id, const EvalStats* now);
  /// True while any span is open. The evaluator uses this to open the
  /// root "query" span only at the outermost Eval entry.
  bool InSpan() const { return !open_.empty(); }

  void AppendDetail(int id, const std::string& d);
  void PrependDetail(int id, const std::string& d);
  void SetRowsIn(int id, uint64_t n) { spans_[size_t(id)].rows_in = n; }
  void SetRowsBuild(int id, uint64_t n) { spans_[size_t(id)].rows_build = n; }
  void SetRowsOut(int id, uint64_t n) { spans_[size_t(id)].rows_out = n; }
  void SetEstRows(int id, double n) { spans_[size_t(id)].est_rows = n; }

  /// Appends to the innermost open span's annotation — how a physical
  /// join implementation describes itself (keys, index, ...) on the
  /// dispatcher's span without holding the span id. Only annotate once
  /// committed: an attempt that still ends kUnsupported would leave a
  /// stale note on the span of whatever algorithm runs instead.
  void AnnotateOpen(const std::string& d);

  /// max()es `entries` into the innermost open span — lets a physical
  /// operator report its hash-table size without holding a span id.
  void NotePeakHash(uint64_t entries);

  /// Records one worker morsel (thread-safe; fed by ThreadPool's morsel
  /// sink and by serial PNHL segment loops).
  void AddWorkerSpan(int worker, size_t morsel, const char* phase,
                     int64_t start_ns, int64_t end_ns);

  // ---- inspection --------------------------------------------------

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<WorkerSpan>& worker_spans() const {
    return worker_spans_;
  }
  int64_t base_ns() const { return base_ns_; }

  /// Sum of every span's exclusive EvalStats delta. Equal to the
  /// evaluator's global stats when tracing covered the whole evaluation
  /// (the fuzzer cell and the property test assert exactly this).
  EvalStats SumExclusiveStats() const;

  /// The profiled-plan tree: repeated siblings with the same (op,
  /// detail) are aggregated into one line with a loops= count, the way
  /// EXPLAIN ANALYZE aggregates re-executions of a subplan node.
  std::string Render(const TraceRenderOptions& opts = {}) const;

 private:
  struct OpenFrame {
    int span;
    EvalStats at_begin;
    EvalStats children;   // summed inclusive deltas of closed children
    int64_t child_ns = 0;
  };

  std::vector<TraceSpan> spans_;
  std::vector<OpenFrame> open_;
  int64_t base_ns_ = 0;
  std::mutex worker_mu_;
  std::vector<WorkerSpan> worker_spans_;
};

/// RAII operator span. All methods are no-ops when the collector is
/// null, so instrumented operators pay one branch (and no clock read)
/// when tracing is off.
class OpSpan {
 public:
  OpSpan(TraceCollector* tc, const EvalStats& stats, const char* op)
      : tc_(tc), stats_(&stats) {
    if (tc_ != nullptr) id_ = tc_->Begin(op, stats_);
  }
  /// Span without an owning evaluator (materialize.cc): wall time and
  /// rows only, zero stats delta.
  OpSpan(TraceCollector* tc, const char* op) : tc_(tc), stats_(nullptr) {
    if (tc_ != nullptr) id_ = tc_->Begin(op, stats_);
  }
  ~OpSpan() {
    if (tc_ != nullptr) tc_->End(id_, stats_);
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

  bool on() const { return tc_ != nullptr; }
  /// Appends to the span's annotation ("keys=1 residual=0").
  void Annotate(const std::string& d) {
    if (tc_ != nullptr) tc_->AppendDetail(id_, d);
  }
  /// Prepends the span's primary label (the chosen join algorithm).
  void Label(const std::string& d) {
    if (tc_ != nullptr) tc_->PrependDetail(id_, d);
  }
  void RowsIn(uint64_t n) {
    if (tc_ != nullptr) tc_->SetRowsIn(id_, n);
  }
  void RowsBuild(uint64_t n) {
    if (tc_ != nullptr) tc_->SetRowsBuild(id_, n);
  }
  void RowsOut(uint64_t n) {
    if (tc_ != nullptr) tc_->SetRowsOut(id_, n);
  }
  /// Planner-estimated output rows; negative values are ignored.
  void EstRows(double n) {
    if (tc_ != nullptr && n >= 0.0) tc_->SetEstRows(id_, n);
  }
  /// Records the result cardinality when `r` holds a set.
  void RowsOut(const Result<Value>& r) {
    if (tc_ != nullptr && r.ok() && r->is_set()) {
      tc_->SetRowsOut(id_, r->set_size());
    }
  }

 private:
  TraceCollector* tc_;
  const EvalStats* stats_;
  int id_ = -1;
};

}  // namespace n2j

#endif  // N2J_OBS_TRACE_H_
