#ifndef N2J_OBS_QUERYLOG_H_
#define N2J_OBS_QUERYLOG_H_

// The query flight recorder: an always-on, fixed-capacity, lock-light
// ring buffer of per-query records. QueryEngine::Run/RunAdl append one
// record per finished query (success or error) — fuzzer and bench runs
// included — so the last few thousand queries of any process are always
// reconstructible: what ran, under which strategy/backend/thread/batch
// configuration, how long each phase took, the exact operator counters,
// the planner's est-vs-actual cardinalities (Q-error), and every
// fallback the engine took.
//
// Concurrency: the sequence counter is one atomic fetch_add (append
// counts are exact under any interleaving — the mt4 test pins this) and
// each slot has its own mutex, so concurrent writers contend only when
// they collide on the same ring slot and readers never block the whole
// ring. Records are dumpable as JSONL (one RFC 8259 object per line)
// and parseable back for tools/n2j_logcat.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/eval.h"

namespace n2j {
namespace obs {

/// The Q-error of a cardinality estimate: max(est/actual, actual/est)
/// with both sides clamped to >= 1 so empty results do not divide by
/// zero. 1.0 = perfect; >= threshold = the estimate is drifting.
double QError(double est_rows, double actual_rows);

/// Est-vs-actual for one estimated plan root — a span the cost-based
/// planner annotated with est_rows (exec/plan.h). `actual` is the
/// span's observed output cardinality.
struct RootEstimate {
  std::string op;        // span label, "semijoin [hash keys=1]"
  double est = -1.0;     // planner-estimated output rows
  uint64_t actual = 0;   // observed output rows
  double q = 1.0;        // QError(est, actual)
};

/// Est-vs-actual for one base extent the query scanned: the row count
/// of the statistics snapshot the planner would price with (no refresh
/// forced — StatsCatalog::Peek) against the extent's live size. Drift
/// here means Append ran since the stats were collected.
struct ExtentEstimate {
  std::string extent;
  uint64_t est = 0;      // stats-snapshot row count
  uint64_t actual = 0;   // live Table::size()
  double q = 1.0;
};

/// One finished query. Everything a post-mortem needs, nothing that
/// requires re-running: configuration, per-phase latency, the compact
/// EvalStats snapshot, estimate audits, fallbacks, and the first error.
struct QueryLogRecord {
  uint64_t id = 0;           // ring sequence number (assigned by Append)
  uint64_t query_hash = 0;   // normalized hash (over the translated
                             // algebra, so formatting differences in the
                             // OOSQL text hash identically)
  std::string query;         // original text (or algebra for RunAdl)
  std::string error;         // first error, "" on success

  std::string strategy;      // "heuristic" | "cost"
  std::string backend;       // "nested" | "shredded"
  int threads = 1;
  int batch_size = 1024;
  bool compiled = true;
  bool vectorized = true;

  double wall_ms = 0.0;      // end-to-end Run latency
  double rewrite_ms = 0.0;   // rewriter phase
  double eval_ms = 0.0;      // evaluation phase
  uint64_t rows_out = 0;     // result cardinality (0 for scalar results)

  EvalStats stats;           // full counter snapshot of the execution
  std::vector<RootEstimate> roots;     // estimated spans (tracing + cost)
  std::vector<ExtentEstimate> extents; // per-extent stats drift
  double max_q = 0.0;        // max Q-error over roots + extents (0=none)

  /// Fallback total: interpreter fallbacks of the compiled engine plus
  /// vectorized fallbacks (including shredded probe-abandon reruns).
  uint64_t fallbacks() const {
    return stats.interp_fallback_evals + stats.vec_fallbacks;
  }

  /// One RFC 8259 object, single line, no trailing newline.
  std::string ToJson() const;
  /// Parses one ToJson line. Returns false on malformed input; unknown
  /// keys are ignored so the format can grow.
  static bool FromJson(const std::string& line, QueryLogRecord* out);
};

class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit QueryLog(size_t capacity = kDefaultCapacity);

  /// The process-wide recorder QueryEngine appends to.
  static QueryLog& Global();

  /// Recording toggle for overhead A/B measurement (the bench gate).
  /// Disabled appends are dropped entirely — not counted, not stored.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one record, overwriting the slot `total_appended() %
  /// capacity()` — the ring keeps the most recent `capacity()` records.
  /// Returns the record's assigned id (dense, starting at 0).
  uint64_t Append(QueryLogRecord r);

  /// Exact number of records ever appended (ids are 0..total-1).
  uint64_t total_appended() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Copies the resident records, id-ascending (oldest surviving
  /// record first). `last_n` > 0 keeps only the newest n.
  std::vector<QueryLogRecord> Snapshot(size_t last_n = 0) const;

  /// All resident records as JSONL, id-ascending.
  std::string ToJsonl() const;
  Status DumpJsonl(const std::string& path) const;

  /// Drops every record and restarts ids at 0 (tests/benches only; not
  /// meaningful concurrently with writers).
  void Clear();

 private:
  struct Slot {
    std::mutex mu;
    bool filled = false;
    QueryLogRecord record;
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace obs
}  // namespace n2j

#endif  // N2J_OBS_QUERYLOG_H_
