#ifndef N2J_OBS_DRIFT_H_
#define N2J_OBS_DRIFT_H_

// Plan-drift monitoring: a rolling window of observed Q-errors per base
// extent. The flight recorder feeds one Observe() per extent per query
// (stats-snapshot row count vs live extent size); the monitor flags
// extents whose recent window is dominated by estimates worse than the
// threshold — i.e. the statistics the planner prices with have gone
// stale relative to the data. Re-running Analyze bumps the extent's
// stats version, which resets that extent's window, so a flag clears
// immediately once fresh statistics are published.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace n2j {
namespace obs {

struct DriftOptions {
  double q_threshold = 2.0;  // a sample "exceeds" when q > threshold
  size_t window = 32;        // samples kept per extent (rolling)
  size_t min_samples = 3;    // don't flag on fewer observations
};

/// Per-extent summary in a PlanDriftReport.
struct ExtentDrift {
  std::string extent;
  uint64_t stats_version = 0;  // version of the snapshot last observed
  size_t samples = 0;          // window occupancy
  double max_q = 1.0;
  double mean_q = 1.0;
  double frac_over = 0.0;      // fraction of window samples > threshold
  bool flagged = false;        // samples >= min_samples && frac_over > 0.5
};

struct PlanDriftReport {
  DriftOptions options;
  std::vector<ExtentDrift> extents;  // name-sorted
  bool any_flagged = false;

  /// Human-readable table, one extent per line, flagged extents marked.
  std::string ToString() const;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftOptions options = DriftOptions());

  /// The process-wide monitor the flight recorder feeds.
  static DriftMonitor& Global();

  /// Records one observed Q-error for `extent`. `stats_version` is the
  /// version of the statistics snapshot the estimate came from; when it
  /// changes (Analyze ran), the extent's window restarts from empty so
  /// stale flags clear on the next report.
  void Observe(const std::string& extent, uint64_t stats_version, double q);

  PlanDriftReport Report() const;

  void Clear();

  const DriftOptions& options() const { return options_; }

 private:
  struct Window {
    uint64_t stats_version = 0;
    std::deque<double> q;  // newest at the back, bounded by options_.window
  };

  DriftOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Window> windows_;
};

}  // namespace obs
}  // namespace n2j

#endif  // N2J_OBS_DRIFT_H_
