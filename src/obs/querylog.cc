#include "obs/querylog.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/str_util.h"

namespace n2j {
namespace obs {

double QError(double est_rows, double actual_rows) {
  double e = est_rows < 1.0 ? 1.0 : est_rows;
  double a = actual_rows < 1.0 ? 1.0 : actual_rows;
  if (!std::isfinite(e)) return 1.0;
  return e > a ? e / a : a / e;
}

// ---- JSONL writer ----------------------------------------------------

namespace {

void AppendKv(std::string* out, const char* key, const std::string& v,
              bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":\"";
  AppendJsonEscaped(out, v);
  *out += '"';
}

void AppendKv(std::string* out, const char* key, uint64_t v, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += StrFormat("\"%s\":%llu", key,
                    static_cast<unsigned long long>(v));
}

void AppendKv(std::string* out, const char* key, double v, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  // %.6g keeps lines compact and round-trips every value we record
  // (millisecond latencies, row counts, Q-errors) to reading precision.
  *out += StrFormat("\"%s\":%.6g", key, v);
}

void AppendKv(std::string* out, const char* key, bool v, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += StrFormat("\"%s\":%s", key, v ? "true" : "false");
}

}  // namespace

std::string QueryLogRecord::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendKv(&out, "id", id, &first);
  // The hash rides as a hex string: a u64 does not survive the double
  // round-trip a numeric JSON field implies.
  AppendKv(&out, "hash", StrFormat("%016llx", static_cast<unsigned long long>(
                                                  query_hash)),
           &first);
  AppendKv(&out, "query", query, &first);
  AppendKv(&out, "error", error, &first);
  AppendKv(&out, "strategy", strategy, &first);
  AppendKv(&out, "backend", backend, &first);
  AppendKv(&out, "threads", static_cast<uint64_t>(threads), &first);
  AppendKv(&out, "batch", static_cast<uint64_t>(batch_size), &first);
  AppendKv(&out, "compiled", compiled, &first);
  AppendKv(&out, "vectorized", vectorized, &first);
  AppendKv(&out, "wall_ms", wall_ms, &first);
  AppendKv(&out, "rewrite_ms", rewrite_ms, &first);
  AppendKv(&out, "eval_ms", eval_ms, &first);
  AppendKv(&out, "rows_out", rows_out, &first);
  AppendKv(&out, "max_q", max_q, &first);

  out += ",\"stats\":{";
  size_t nfields = 0;
  const EvalStatsField* fields = EvalStatsFields(&nfields);
  bool sfirst = true;
  for (size_t i = 0; i < nfields; ++i) {
    AppendKv(&out, fields[i].name, stats.*fields[i].member, &sfirst);
  }
  out += '}';

  out += ",\"roots\":[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ',';
    out += '{';
    bool rfirst = true;
    AppendKv(&out, "op", roots[i].op, &rfirst);
    AppendKv(&out, "est", roots[i].est, &rfirst);
    AppendKv(&out, "actual", roots[i].actual, &rfirst);
    AppendKv(&out, "q", roots[i].q, &rfirst);
    out += '}';
  }
  out += ']';

  out += ",\"extents\":[";
  for (size_t i = 0; i < extents.size(); ++i) {
    if (i > 0) out += ',';
    out += '{';
    bool efirst = true;
    AppendKv(&out, "extent", extents[i].extent, &efirst);
    AppendKv(&out, "est", extents[i].est, &efirst);
    AppendKv(&out, "actual", extents[i].actual, &efirst);
    AppendKv(&out, "q", extents[i].q, &efirst);
    out += '}';
  }
  out += "]}";
  return out;
}

// ---- JSONL reader ----------------------------------------------------
//
// A minimal strict parser for the subset the writer emits (objects,
// arrays, strings with RFC 8259 escapes, numbers, booleans). Kept here,
// not in a shared json library, because the record format is the only
// JSON this codebase ever reads back.

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* Find(const char* key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->b = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->b = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->fields.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control byte: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp += 10u + static_cast<unsigned>(h - 'a');
              } else if (h >= 'A' && h <= 'F') {
                cp += 10u + static_cast<unsigned>(h - 'A');
              } else {
                return false;
              }
            }
            // The writer only emits \u00xx for control bytes.
            if (cp > 0xFF) return false;
            *out += static_cast<char>(cp);
            break;
          }
          default: return false;
        }
        continue;
      }
      *out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::kNumber;
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string GetString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::kString ? v->str
                                                       : std::string();
}

double GetNumber(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::kNumber ? v->num : fallback;
}

uint64_t GetU64(const JsonValue& obj, const char* key) {
  return static_cast<uint64_t>(GetNumber(obj, key, 0.0));
}

bool GetBool(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::kBool ? v->b : fallback;
}

}  // namespace

bool QueryLogRecord::FromJson(const std::string& line, QueryLogRecord* out) {
  JsonValue root;
  JsonParser parser(line);
  if (!parser.Parse(&root) || root.kind != JsonValue::kObject) return false;

  *out = QueryLogRecord();
  out->id = GetU64(root, "id");
  out->query_hash =
      std::strtoull(GetString(root, "hash").c_str(), nullptr, 16);
  out->query = GetString(root, "query");
  out->error = GetString(root, "error");
  out->strategy = GetString(root, "strategy");
  out->backend = GetString(root, "backend");
  out->threads = static_cast<int>(GetNumber(root, "threads", 1));
  out->batch_size = static_cast<int>(GetNumber(root, "batch", 1024));
  out->compiled = GetBool(root, "compiled", true);
  out->vectorized = GetBool(root, "vectorized", true);
  out->wall_ms = GetNumber(root, "wall_ms", 0.0);
  out->rewrite_ms = GetNumber(root, "rewrite_ms", 0.0);
  out->eval_ms = GetNumber(root, "eval_ms", 0.0);
  out->rows_out = GetU64(root, "rows_out");
  out->max_q = GetNumber(root, "max_q", 0.0);

  const JsonValue* stats = root.Find("stats");
  if (stats != nullptr && stats->kind == JsonValue::kObject) {
    size_t nfields = 0;
    const EvalStatsField* fields = EvalStatsFields(&nfields);
    for (size_t i = 0; i < nfields; ++i) {
      out->stats.*fields[i].member = GetU64(*stats, fields[i].name);
    }
  }
  const JsonValue* roots = root.Find("roots");
  if (roots != nullptr && roots->kind == JsonValue::kArray) {
    for (const JsonValue& r : roots->items) {
      if (r.kind != JsonValue::kObject) return false;
      RootEstimate e;
      e.op = GetString(r, "op");
      e.est = GetNumber(r, "est", -1.0);
      e.actual = GetU64(r, "actual");
      e.q = GetNumber(r, "q", 1.0);
      out->roots.push_back(std::move(e));
    }
  }
  const JsonValue* extents = root.Find("extents");
  if (extents != nullptr && extents->kind == JsonValue::kArray) {
    for (const JsonValue& x : extents->items) {
      if (x.kind != JsonValue::kObject) return false;
      ExtentEstimate e;
      e.extent = GetString(x, "extent");
      e.est = GetU64(x, "est");
      e.actual = GetU64(x, "actual");
      e.q = GetNumber(x, "q", 1.0);
      out->extents.push_back(std::move(e));
    }
  }
  return true;
}

// ---- Ring buffer -----------------------------------------------------

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      slots_(new Slot[capacity < 1 ? 1 : capacity]) {}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

uint64_t QueryLog::Append(QueryLogRecord r) {
  uint64_t id = next_.fetch_add(1, std::memory_order_relaxed);
  r.id = id;
  Slot& slot = slots_[id % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.record = std::move(r);
  slot.filled = true;
  return id;
}

std::vector<QueryLogRecord> QueryLog::Snapshot(size_t last_n) const {
  std::vector<QueryLogRecord> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled) out.push_back(slot.record);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryLogRecord& a, const QueryLogRecord& b) {
              return a.id < b.id;
            });
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(last_n));
  }
  return out;
}

std::string QueryLog::ToJsonl() const {
  std::string out;
  for (const QueryLogRecord& r : Snapshot()) {
    out += r.ToJson();
    out += '\n';
  }
  return out;
}

Status QueryLog::DumpJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::RuntimeError("cannot open " + path + " for writing");
  }
  std::string doc = ToJsonl();
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  if (std::fclose(f) != 0 || written != doc.size()) {
    return Status::RuntimeError("short write to " + path);
  }
  return Status::OK();
}

void QueryLog::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.filled = false;
    slot.record = QueryLogRecord();
  }
  next_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace n2j
