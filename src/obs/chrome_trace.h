#ifndef N2J_OBS_CHROME_TRACE_H_
#define N2J_OBS_CHROME_TRACE_H_

// Chrome trace_event export of a TraceCollector: the operator-span tree
// renders as nested complete ("X") events on thread 0 and every pool
// worker's morsel timestamps render as their own named track, so
// Perfetto / chrome://tracing shows the plan next to what each worker
// thread actually ran. Timestamps are microseconds relative to the
// collector's time base.

#include <string>

#include "common/status.h"

namespace n2j {

class TraceCollector;

/// The full trace as a Chrome trace_event JSON document (the
/// `{"traceEvents": [...]}` object form).
std::string ChromeTraceJson(const TraceCollector& trace);

/// Serializes and writes the trace to `path`.
Status WriteChromeTrace(const TraceCollector& trace, const std::string& path);

}  // namespace n2j

#endif  // N2J_OBS_CHROME_TRACE_H_
