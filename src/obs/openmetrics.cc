#include "obs/openmetrics.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace n2j {
namespace obs {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// One exposition family, already rendered; families are sorted by name
// before concatenation so counters and histograms interleave in a single
// deterministic order.
struct Family {
  std::string name;
  std::string text;
};

Family CounterFamily(const std::string& name, uint64_t value) {
  Family f;
  if (EndsWith(name, "_total")) {
    f.name = name.substr(0, name.size() - 6);
    f.text = StrFormat("# TYPE %s counter\n%s_total %llu\n", f.name.c_str(),
                       f.name.c_str(), static_cast<unsigned long long>(value));
  } else {
    // `_total` is the spec's counter marker; anything else exports as a
    // gauge to keep scrapers from rejecting the document.
    f.name = name;
    f.text = StrFormat("# TYPE %s gauge\n%s %llu\n", f.name.c_str(),
                       f.name.c_str(), static_cast<unsigned long long>(value));
  }
  return f;
}

Family HistogramFamily(const HistogramSnapshot& snap) {
  Family f;
  f.name = snap.name;
  f.text = StrFormat("# TYPE %s histogram\n", f.name.c_str());
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += snap.buckets[i];
    if (i < Histogram::kNumBuckets - 1) {
      f.text += StrFormat("%s_bucket{le=\"%g\"} %llu\n", f.name.c_str(),
                          Histogram::kBucketBoundsMs[i],
                          static_cast<unsigned long long>(cumulative));
    } else {
      f.text += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", f.name.c_str(),
                          static_cast<unsigned long long>(cumulative));
    }
  }
  f.text += StrFormat("%s_count %llu\n", f.name.c_str(),
                      static_cast<unsigned long long>(snap.count));
  f.text += StrFormat("%s_sum %.6f\n", f.name.c_str(), snap.sum_ms);
  return f;
}

}  // namespace

std::string RenderOpenMetrics(const MetricsRegistry& registry) {
  std::vector<Family> families;
  for (const auto& [name, value] : registry.CounterValues()) {
    families.push_back(CounterFamily(name, value));
  }
  for (const HistogramSnapshot& snap : registry.HistogramValues()) {
    families.push_back(HistogramFamily(snap));
  }
  std::sort(families.begin(), families.end(),
            [](const Family& a, const Family& b) { return a.name < b.name; });
  std::string out;
  for (const Family& f : families) out += f.text;
  out += "# EOF\n";
  return out;
}

std::string RenderOpenMetrics() {
  return RenderOpenMetrics(MetricsRegistry::Global());
}

}  // namespace obs
}  // namespace n2j
