#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/str_util.h"
#include "common/thread_pool.h"

namespace n2j {

TraceCollector::TraceCollector() { base_ns_ = MonotonicNanos(); }

void TraceCollector::Clear() {
  spans_.clear();
  open_.clear();
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    worker_spans_.clear();
  }
  base_ns_ = MonotonicNanos();
}

int TraceCollector::Begin(const char* op, const EvalStats* now) {
  int id = static_cast<int>(spans_.size());
  TraceSpan s;
  s.op = op;
  s.parent = open_.empty() ? -1 : open_.back().span;
  s.depth = static_cast<int>(open_.size());
  s.start_ns = MonotonicNanos();
  spans_.push_back(std::move(s));
  OpenFrame f;
  f.span = id;
  if (now != nullptr) f.at_begin = *now;
  open_.push_back(std::move(f));
  return id;
}

void TraceCollector::End(int id, const EvalStats* now) {
  TraceSpan& s = spans_[static_cast<size_t>(id)];
  s.end_ns = MonotonicNanos();
  // OpSpan guards close in LIFO order by construction; a mismatch is an
  // instrumentation bug.
  N2J_CHECK(!open_.empty() && open_.back().span == id);
  OpenFrame f = std::move(open_.back());
  open_.pop_back();
  if (now != nullptr) {
    s.inclusive = *now;
    s.inclusive.Subtract(f.at_begin);
  }
  s.exclusive = s.inclusive;
  s.exclusive.Subtract(f.children);
  s.child_ns = f.child_ns;
  if (!open_.empty()) {
    open_.back().children.Merge(s.inclusive);
    open_.back().child_ns += s.inclusive_ns();
  }
}

void TraceCollector::AppendDetail(int id, const std::string& d) {
  std::string& detail = spans_[static_cast<size_t>(id)].detail;
  if (!detail.empty()) detail += ' ';
  detail += d;
}

void TraceCollector::PrependDetail(int id, const std::string& d) {
  std::string& detail = spans_[static_cast<size_t>(id)].detail;
  detail = detail.empty() ? d : d + ' ' + detail;
}

void TraceCollector::AnnotateOpen(const std::string& d) {
  if (!open_.empty()) AppendDetail(open_.back().span, d);
}

void TraceCollector::NotePeakHash(uint64_t entries) {
  if (open_.empty()) return;
  TraceSpan& s = spans_[static_cast<size_t>(open_.back().span)];
  if (entries > s.peak_hash_size) s.peak_hash_size = entries;
}

void TraceCollector::AddWorkerSpan(int worker, size_t morsel,
                                   const char* phase, int64_t start_ns,
                                   int64_t end_ns) {
  std::lock_guard<std::mutex> lock(worker_mu_);
  worker_spans_.push_back(WorkerSpan{worker, morsel, phase, start_ns,
                                     end_ns});
}

EvalStats TraceCollector::SumExclusiveStats() const {
  EvalStats sum;
  for (const TraceSpan& s : spans_) sum.Merge(s.exclusive);
  return sum;
}

std::string TraceCollector::Render(const TraceRenderOptions& opts) const {
  std::vector<std::vector<int>> kids(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    int p = spans_[i].parent;
    if (p < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      kids[static_cast<size_t>(p)].push_back(static_cast<int>(i));
    }
  }

  struct Line {
    std::string label;
    std::string rest;
  };
  std::vector<Line> lines;

  // Siblings with the same (op, detail) render as one aggregated line
  // with a loops= count — per-tuple re-invocations of a nested subplan
  // collapse the way EXPLAIN ANALYZE collapses loops.
  std::function<void(const std::vector<int>&, int)> render =
      [&](const std::vector<int>& ids, int depth) {
        std::vector<std::pair<std::string, std::vector<int>>> groups;
        for (int id : ids) {
          const TraceSpan& s = spans_[static_cast<size_t>(id)];
          std::string key = s.op + '\x01' + s.detail;
          bool found = false;
          for (auto& g : groups) {
            if (g.first == key) {
              g.second.push_back(id);
              found = true;
              break;
            }
          }
          if (!found) groups.emplace_back(std::move(key),
                                          std::vector<int>{id});
        }
        for (const auto& [key, members] : groups) {
          const TraceSpan& first = spans_[static_cast<size_t>(members[0])];
          uint64_t in = 0, build = 0, rows_out = 0, peak = 0;
          double est = -1.0;
          int64_t ns = 0;
          EvalStats ex;
          for (int id : members) {
            const TraceSpan& s = spans_[static_cast<size_t>(id)];
            in += s.rows_in;
            build += s.rows_build;
            rows_out += s.rows_out;
            if (s.est_rows >= 0.0) {
              est = (est < 0.0 ? 0.0 : est) + s.est_rows;
            }
            if (s.peak_hash_size > peak) peak = s.peak_hash_size;
            ns += s.inclusive_ns();
            ex.Merge(s.exclusive);
          }
          Line line;
          line.label.assign(static_cast<size_t>(depth) * 2, ' ');
          line.label += first.op;
          if (!first.detail.empty()) {
            line.label += " [" + first.detail + "]";
          }
          std::string& rest = line.rest;
          if (members.size() > 1) {
            rest += StrFormat("loops=%zu ", members.size());
          }
          rest += StrFormat("in=%llu ",
                            static_cast<unsigned long long>(in));
          if (build > 0) {
            rest += StrFormat("build=%llu ",
                              static_cast<unsigned long long>(build));
          }
          if (est >= 0.0) {
            rest += StrFormat("est=%.0f ", est);
          }
          rest += StrFormat("out=%llu ",
                            static_cast<unsigned long long>(rows_out));
          if (peak > 0) {
            rest += StrFormat("peak_hash=%llu ",
                              static_cast<unsigned long long>(peak));
          }
          if (opts.show_time) {
            rest += StrFormat("time=%.3fms ",
                              static_cast<double>(ns) / 1e6);
          }
          std::string stats = ex.Compact();
          if (!stats.empty()) rest += "| " + stats;
          while (!rest.empty() && rest.back() == ' ') rest.pop_back();
          lines.push_back(std::move(line));

          std::vector<int> all_kids;
          for (int id : members) {
            const std::vector<int>& k = kids[static_cast<size_t>(id)];
            all_kids.insert(all_kids.end(), k.begin(), k.end());
          }
          if (!all_kids.empty()) render(all_kids, depth + 1);
        }
      };
  render(roots, 0);

  size_t width = 0;
  for (const Line& l : lines) width = std::max(width, l.label.size());
  std::string out;
  for (const Line& l : lines) {
    out += l.label;
    out.append(width + 2 - l.label.size(), ' ');
    out += l.rest;
    out += '\n';
  }
  return out;
}

}  // namespace n2j
