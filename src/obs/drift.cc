#include "obs/drift.h"

#include <algorithm>

#include "common/str_util.h"

namespace n2j {
namespace obs {

std::string PlanDriftReport::ToString() const {
  std::string out = StrFormat(
      "plan drift (threshold q>%.2f, window %zu, min %zu samples)\n",
      options.q_threshold, options.window, options.min_samples);
  if (extents.empty()) {
    out += "  (no observations)\n";
    return out;
  }
  size_t width = 0;
  for (const ExtentDrift& e : extents) width = std::max(width, e.extent.size());
  for (const ExtentDrift& e : extents) {
    out += "  ";
    out += e.extent;
    out.append(width + 2 - e.extent.size(), ' ');
    out += StrFormat(
        "samples=%zu max_q=%.2f mean_q=%.2f over=%.0f%% v%llu%s\n", e.samples,
        e.max_q, e.mean_q, e.frac_over * 100.0,
        static_cast<unsigned long long>(e.stats_version),
        e.flagged ? "  << DRIFT" : "");
  }
  return out;
}

DriftMonitor::DriftMonitor(DriftOptions options) : options_(options) {
  if (options_.window < 1) options_.window = 1;
  if (options_.min_samples < 1) options_.min_samples = 1;
}

DriftMonitor& DriftMonitor::Global() {
  static DriftMonitor* monitor = new DriftMonitor();
  return *monitor;
}

void DriftMonitor::Observe(const std::string& extent, uint64_t stats_version,
                           double q) {
  std::lock_guard<std::mutex> lock(mu_);
  Window& w = windows_[extent];
  if (w.stats_version != stats_version) {
    // Fresh statistics were published (Analyze ran): everything observed
    // against the old snapshot is obsolete, so the window restarts.
    w.stats_version = stats_version;
    w.q.clear();
  }
  w.q.push_back(q);
  while (w.q.size() > options_.window) w.q.pop_front();
}

PlanDriftReport DriftMonitor::Report() const {
  PlanDriftReport report;
  report.options = options_;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, w] : windows_) {
    ExtentDrift d;
    d.extent = name;
    d.stats_version = w.stats_version;
    d.samples = w.q.size();
    size_t over = 0;
    double sum = 0.0;
    for (double q : w.q) {
      d.max_q = std::max(d.max_q, q);
      sum += q;
      if (q > options_.q_threshold) ++over;
    }
    if (d.samples > 0) {
      d.mean_q = sum / static_cast<double>(d.samples);
      d.frac_over = static_cast<double>(over) / static_cast<double>(d.samples);
    }
    d.flagged = d.samples >= options_.min_samples && d.frac_over > 0.5;
    report.any_flagged = report.any_flagged || d.flagged;
    report.extents.push_back(std::move(d));
  }
  return report;
}

void DriftMonitor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
}

}  // namespace obs
}  // namespace n2j
