#include "obs/metrics.h"

#include "common/str_util.h"

namespace n2j {
namespace obs {

constexpr double Histogram::kBucketBoundsMs[];
constexpr int Histogram::kNumBuckets;

void Histogram::Observe(double ms) {
  if (ms < 0) ms = 0;
  int i = 0;
  while (i < kNumBuckets - 1 && ms > kBucketBoundsMs[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Nanosecond granularity, rounded to nearest: a 0.4 µs observation
  // adds 400, where microsecond truncation silently added 0.
  sum_ns_.fetch_add(static_cast<uint64_t>(ms * 1e6 + 0.5),
                    std::memory_order_relaxed);
}

std::string Histogram::ToString() const {
  uint64_t n = count();
  if (n == 0) return "count=0";
  auto quantile_bound = [&](double q) -> std::string {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += bucket(i);
      if (seen >= rank) {
        if (i == kNumBuckets - 1) return ">1000ms";
        return StrFormat("<%gms", kBucketBoundsMs[i]);
      }
    }
    return ">1000ms";
  };
  return StrFormat("count=%llu sum=%.3fms p50%s p95%s p99%s",
                   static_cast<unsigned long long>(n), sum_ms(),
                   quantile_bound(0.50).c_str(),
                   quantile_bound(0.95).c_str(),
                   quantile_bound(0.99).c_str());
}

void Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) {
    width = std::max(width, name.size());
  }
  // One merged lexicographic walk over both (already-sorted) maps, so
  // counters and histograms interleave in a single deterministic name
  // order instead of two kind-grouped blocks.
  std::string out;
  auto ci = counters_.begin();
  auto hi = histograms_.begin();
  auto emit = [&](const std::string& name, const std::string& value) {
    out += name;
    out.append(width + 2 - name.size(), ' ');
    out += value;
    out += '\n';
  };
  while (ci != counters_.end() || hi != histograms_.end()) {
    bool take_counter =
        hi == histograms_.end() ||
        (ci != counters_.end() && ci->first < hi->first);
    if (take_counter) {
      emit(ci->first, StrFormat("%llu", static_cast<unsigned long long>(
                                            ci->second->value())));
      ++ci;
    } else {
      emit(hi->first, hi->second->ToString());
      ++hi;
    }
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h->count();
    snap.sum_ms = h->sum_ms();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      snap.buckets[i] = h->bucket(i);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace n2j
