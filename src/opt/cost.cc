#include "opt/cost.h"

#include <algorithm>
#include <cmath>

namespace n2j {

namespace {
double Log2Ceil(double n) { return n <= 2.0 ? 1.0 : std::log2(n); }
}  // namespace

double NestedLoopJoinCost(double l, double r, double out,
                          const CostConstants& c) {
  return l * r * c.pred_eval + out * c.emit_row;
}

double HashJoinCost(double l, double r, double out, const CostConstants& c) {
  return r * c.hash_build + l * c.hash_probe + out * c.emit_row;
}

double SortMergeJoinCost(double l, double r, double out,
                         const CostConstants& c) {
  double sort = (l * Log2Ceil(l) + r * Log2Ceil(r)) * c.sort_per_cmp;
  return sort + (l + r) * c.merge_row + out * c.emit_row;
}

double IndexJoinCost(double l, double matches, double out,
                     const CostConstants& c) {
  return l * c.index_probe + matches * c.index_chase + out * c.emit_row;
}

double MembershipJoinCost(double l_elems, double r, double out,
                          const CostConstants& c) {
  return r * c.hash_build + l_elems * c.hash_probe + out * c.emit_row;
}

double PnhlCost(double l, double r, double out, double build_bytes,
                size_t budget, const CostConstants& c) {
  double segments = 1.0;
  if (budget > 0 && build_bytes > 0) {
    segments = std::max(1.0, std::ceil(build_bytes /
                                       static_cast<double>(budget)));
  }
  // Build each segment once; rescan the probe side per segment.
  return r * c.hash_build + segments * l * c.hash_probe + out * c.emit_row;
}

}  // namespace n2j
