#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include "adl/analysis.h"
#include "common/str_util.h"
#include "exec/equi_join.h"
#include "stats/cardinality.h"
#include "stats/stats.h"

namespace n2j {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDefaultRows = 1000.0;
/// A reorder must beat the original order by this factor to be worth
/// the field-order-restoring map it needs.
constexpr double kReorderGain = 0.95;
constexpr size_t kMaxDpTables = 10;

/// `e` is Access(Var(var), attr) → the attribute name; nullptr else.
const std::string* PlainAttr(const ExprPtr& e, const std::string& var) {
  if (e->kind() != ExprKind::kFieldAccess) return nullptr;
  const ExprPtr& base = e->child(0);
  if (base->kind() != ExprKind::kVar || base->name() != var) return nullptr;
  return &e->name();
}

const char* JoinOpName(ExprKind k) {
  switch (k) {
    case ExprKind::kSemiJoin:
      return "semijoin";
    case ExprKind::kAntiJoin:
      return "antijoin";
    case ExprKind::kNestJoin:
      return "nestjoin";
    default:
      return "join";
  }
}

/// Mirrors Evaluator::IndexJoin's preconditions (physical.cc): base
/// table on the right, exactly one equi key, a plain right attribute,
/// and an actually prebuilt index.
bool IndexUsable(const Database& db, const Expr& e,
                 const EquiJoinKeys& keys) {
  if (e.right()->kind() != ExprKind::kGetTable) return false;
  if (keys.left_keys.size() != 1) return false;
  const std::string* attr = PlainAttr(keys.right_keys[0], e.var2());
  if (attr == nullptr) return false;
  return db.FindIndex(e.right()->name(), *attr) != nullptr;
}

/// Detects the membership-join pattern f(y) ∈ x.c / x.c ∋ f(y) in a
/// conjunct of `e`'s predicate. Returns true and the container's
/// average fanout (4.0 when unknown) — the probe volume driver.
bool MembershipUsable(const Expr& e, const RelEstimate& left,
                      double* avg_fanout) {
  for (const ExprPtr& c : SplitConjuncts(e.pred())) {
    if (c->kind() != ExprKind::kBinary) continue;
    const ExprPtr* probe = nullptr;
    const ExprPtr* container = nullptr;
    if (c->bin_op() == BinOp::kIn) {
      probe = &c->child(0);
      container = &c->child(1);
    } else if (c->bin_op() == BinOp::kContains) {
      container = &c->child(0);
      probe = &c->child(1);
    } else {
      continue;
    }
    const std::string* attr = PlainAttr(*container, e.var());
    if (attr == nullptr) continue;
    if (IsFreeIn(e.var(), *probe)) continue;
    const AttrStats* cs = left.Find(*attr);
    *avg_fanout = (cs != nullptr && cs->set_valued)
                      ? std::max(1.0, cs->avg_fanout)
                      : 4.0;
    return true;
  }
  return false;
}

struct Choice {
  JoinAlgorithm algo = JoinAlgorithm::kNestedLoop;
  const char* label = "nested-loop";
  double cost = kInf;
};

/// Prices every available physical alternative for one join-family node
/// and returns the cheapest.
Choice ChooseJoin(const Database& db, const PlannerOptions& po,
                  const Expr& e, const RelEstimate& l, const RelEstimate& r,
                  double out, double matches) {
  double lr = l.RowsOr(kDefaultRows);
  double rr = r.RowsOr(kDefaultRows);
  const CostConstants& c = po.costs;

  Choice best{JoinAlgorithm::kNestedLoop, "nested-loop",
              NestedLoopJoinCost(lr, rr, out, c)};
  auto consider = [&](JoinAlgorithm a, const char* label, double cost) {
    if (cost < best.cost) best = Choice{a, label, cost};
  };

  EquiJoinKeys keys = ExtractEquiKeys(e.pred(), e.var(), e.var2());
  if (keys.usable()) {
    consider(JoinAlgorithm::kHash, "hash", HashJoinCost(lr, rr, out, c));
    consider(JoinAlgorithm::kSortMerge, "sort-merge",
             SortMergeJoinCost(lr, rr, out, c));
    if (IndexUsable(db, e, keys)) {
      consider(JoinAlgorithm::kIndex, "index",
               IndexJoinCost(lr, matches, out, c));
    }
  } else {
    double fanout = 0.0;
    if (MembershipUsable(e, l, &fanout)) {
      // Dispatched as kHash: the hash attempt reports kUnsupported (no
      // equi keys) and the evaluator falls through to MembershipJoin.
      consider(JoinAlgorithm::kHash, "membership",
               MembershipJoinCost(lr * fanout, rr, out, c));
    }
  }
  return best;
}

// ---- Join-order DP over base-table equi-join chains -----------------

struct ChainPred {
  size_t lt = 0, rt = 0;     // table indexes (lt on the original left)
  std::string la, ra;        // their attributes
};

struct Chain {
  std::vector<std::string> tables;  // original left-to-right order
  std::vector<ChainPred> preds;
};

/// Index of the table in [from, to) owning `attr`, or SIZE_MAX.
size_t OwnerOf(const Database& db, const Chain& ch, size_t from, size_t to,
               const std::string& attr) {
  for (size_t i = from; i < to; ++i) {
    const Table* t = db.FindTable(ch.tables[i]);
    if (t != nullptr && t->row_type()->is_tuple() &&
        t->row_type()->FindField(attr) != nullptr) {
      return i;
    }
  }
  return SIZE_MAX;
}

/// Flattens a pure equi-join tree over base tables into `ch`. Every
/// predicate must be a conjunction of attr = attr equalities between
/// the two sides; anything else (residuals, outer variables, computed
/// keys) disqualifies the chain.
bool CollectChain(const Database& db, const ExprPtr& e, Chain* ch) {
  if (e->kind() == ExprKind::kGetTable) {
    const Table* t = db.FindTable(e->name());
    if (t == nullptr || !t->row_type()->is_tuple()) return false;
    ch->tables.push_back(e->name());
    return true;
  }
  if (e->kind() != ExprKind::kJoin) return false;
  size_t l0 = ch->tables.size();
  if (!CollectChain(db, e->left(), ch)) return false;
  size_t r0 = ch->tables.size();
  if (!CollectChain(db, e->right(), ch)) return false;
  for (const ExprPtr& c : SplitConjuncts(e->pred())) {
    if (c->kind() != ExprKind::kBinary || c->bin_op() != BinOp::kEq) {
      return false;
    }
    const std::string* a0 = PlainAttr(c->child(0), e->var());
    const std::string* a1 = PlainAttr(c->child(1), e->var2());
    if (a0 == nullptr || a1 == nullptr) {
      // Maybe written y.b = x.a.
      a0 = PlainAttr(c->child(1), e->var());
      a1 = PlainAttr(c->child(0), e->var2());
    }
    if (a0 == nullptr || a1 == nullptr) return false;
    size_t lt = OwnerOf(db, *ch, l0, r0, *a0);
    size_t rt = OwnerOf(db, *ch, r0, ch->tables.size(), *a1);
    if (lt == SIZE_MAX || rt == SIZE_MAX) return false;
    ch->preds.push_back(ChainPred{lt, rt, *a0, *a1});
  }
  return true;
}

/// All attribute names unique across the chain's tables — required both
/// for unambiguous predicate resolution and for the original plan to
/// have evaluated at all (tuple concat rejects duplicates).
bool AttrsUnique(const Database& db, const Chain& ch) {
  std::set<std::string> seen;
  for (const std::string& name : ch.tables) {
    const Table* t = db.FindTable(name);
    if (t == nullptr) return false;
    for (const TypeField& f : t->row_type()->fields()) {
      if (!seen.insert(f.name).second) return false;
    }
  }
  return true;
}

struct DpEntry {
  double cost = kInf;
  double rows = 0.0;
  std::vector<size_t> order;
};

class ChainPlanner {
 public:
  ChainPlanner(const Database& db, const PlannerOptions& po, const Chain& ch)
      : db_(db), po_(po), ch_(ch) {
    size_t n = ch.tables.size();
    rows_.resize(n);
    stats_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      stats_[i] = db.stats().Get(db, ch.tables[i]);
      rows_[i] = stats_[i] != nullptr
                     ? static_cast<double>(stats_[i]->row_count)
                     : kDefaultRows;
    }
  }

  /// Cheapest left-deep order, or an empty vector when the join graph
  /// is not stepwise connected.
  DpEntry Best() const {
    size_t n = ch_.tables.size();
    std::vector<DpEntry> best(size_t(1) << n);
    for (size_t i = 0; i < n; ++i) {
      DpEntry& e = best[size_t(1) << i];
      e.cost = 0.0;
      e.rows = rows_[i];
      e.order = {i};
    }
    for (size_t mask = 1; mask < best.size(); ++mask) {
      if ((mask & (mask - 1)) == 0) continue;  // single table
      for (size_t t = 0; t < n; ++t) {
        if ((mask & (size_t(1) << t)) == 0) continue;
        size_t prev = mask ^ (size_t(1) << t);
        const DpEntry& p = best[prev];
        if (p.cost == kInf) continue;
        double step_rows, step_cost;
        if (!Step(prev, t, p.rows, &step_rows, &step_cost)) continue;
        double cost = p.cost + step_cost;
        DpEntry& dst = best[mask];
        if (cost < dst.cost) {
          dst.cost = cost;
          dst.rows = step_rows;
          dst.order = p.order;
          dst.order.push_back(t);
        }
      }
    }
    return best[best.size() - 1];
  }

  /// Cost of a given left-deep order through the same step model
  /// (kInf when some step is disconnected).
  double OrderCost(const std::vector<size_t>& order) const {
    double cost = 0.0;
    double rows = rows_[order[0]];
    size_t mask = size_t(1) << order[0];
    for (size_t k = 1; k < order.size(); ++k) {
      double step_rows, step_cost;
      if (!Step(mask, order[k], rows, &step_rows, &step_cost)) return kInf;
      cost += step_cost;
      rows = step_rows;
      mask |= size_t(1) << order[k];
    }
    return cost;
  }

 private:
  const AttrStats* AttrOf(size_t table, const std::string& attr) const {
    return stats_[table] != nullptr ? stats_[table]->Find(attr) : nullptr;
  }

  /// Prices joining table `t` onto the accumulated set `prev_mask`
  /// (estimated `prev_rows` rows). False when no predicate connects
  /// them (cross products are never enumerated).
  bool Step(size_t prev_mask, size_t t, double prev_rows, double* out_rows,
            double* out_cost) const {
    double fan = kInf;
    size_t npreds = 0;
    bool index_ok = false;
    for (const ChainPred& p : ch_.preds) {
      size_t other;
      const std::string *oa, *ta;
      if (p.lt == t && (prev_mask & (size_t(1) << p.rt)) != 0) {
        other = p.rt;
        oa = &p.ra;
        ta = &p.la;
      } else if (p.rt == t && (prev_mask & (size_t(1) << p.lt)) != 0) {
        other = p.lt;
        oa = &p.la;
        ta = &p.ra;
      } else {
        continue;
      }
      ++npreds;
      const AttrStats* ps = AttrOf(other, *oa);
      const AttrStats* ts = AttrOf(t, *ta);
      double match = EstimateMatchRate(ps, ts, 0.5);
      double d_t = ts != nullptr && ts->scalar
                       ? static_cast<double>(std::max<uint64_t>(1, ts->distinct))
                       : std::max(1.0, rows_[t]);
      fan = std::min(fan, match * rows_[t] / d_t);
      index_ok = npreds == 1 &&
                 db_.FindIndex(ch_.tables[t], *ta) != nullptr;
    }
    if (npreds == 0) return false;
    *out_rows = prev_rows * fan;
    const CostConstants& c = po_.costs;
    double cost =
        std::min(HashJoinCost(prev_rows, rows_[t], *out_rows, c),
                 SortMergeJoinCost(prev_rows, rows_[t], *out_rows, c));
    cost = std::min(cost,
                    NestedLoopJoinCost(prev_rows, rows_[t], *out_rows, c));
    if (index_ok) {
      cost = std::min(cost,
                      IndexJoinCost(prev_rows, *out_rows, *out_rows, c));
    }
    *out_cost = cost;
    return true;
  }

  const Database& db_;
  const PlannerOptions& po_;
  const Chain& ch_;
  std::vector<double> rows_;
  /// Pinned snapshots: the planner's borrowed AttrStats survive any
  /// concurrent catalog refresh for the planning pass's lifetime.
  std::vector<std::shared_ptr<const ExtentStats>> stats_;
};

/// Rebuilds the chain as a left-deep join tree in `order`, wrapped in a
/// map that restores the original attribute order so the result is
/// bit-identical to the original plan's.
ExprPtr RebuildChain(const Database& db, const Chain& ch,
                     const std::vector<size_t>& order,
                     const ExprPtr& original) {
  std::set<std::string> used = AllVars(original);
  auto fresh = [&used](const std::string& hint) {
    std::string n = hint;
    int i = 0;
    while (used.count(n) > 0) n = hint + std::to_string(++i);
    used.insert(n);
    return n;
  };

  std::vector<bool> placed(ch.preds.size(), false);
  size_t in_acc_mask = size_t(1) << order[0];
  ExprPtr acc = Expr::Table(ch.tables[order[0]]);
  for (size_t k = 1; k < order.size(); ++k) {
    size_t t = order[k];
    std::string lv = fresh("jo_l");
    std::string rv = fresh("jo_r");
    std::vector<ExprPtr> conjuncts;
    for (size_t pi = 0; pi < ch.preds.size(); ++pi) {
      if (placed[pi]) continue;
      const ChainPred& p = ch.preds[pi];
      const std::string *acc_attr, *t_attr;
      if (p.lt == t && (in_acc_mask & (size_t(1) << p.rt)) != 0) {
        acc_attr = &p.ra;
        t_attr = &p.la;
      } else if (p.rt == t && (in_acc_mask & (size_t(1) << p.lt)) != 0) {
        acc_attr = &p.la;
        t_attr = &p.ra;
      } else {
        continue;
      }
      placed[pi] = true;
      conjuncts.push_back(Expr::Eq(Expr::Access(Expr::Var(lv), *acc_attr),
                                   Expr::Access(Expr::Var(rv), *t_attr)));
    }
    acc = Expr::Join(std::move(acc), Expr::Table(ch.tables[t]), lv, rv,
                     Expr::AndAll(conjuncts));
    in_acc_mask |= size_t(1) << t;
  }

  // Restore the original field order: the original tree's output tuple
  // is the left-to-right concatenation of the base tables' attributes.
  std::string z = fresh("jo_z");
  std::vector<std::string> names;
  std::vector<ExprPtr> values;
  for (const std::string& tname : ch.tables) {
    for (const TypeField& f : db.FindTable(tname)->row_type()->fields()) {
      names.push_back(f.name);
      values.push_back(Expr::Access(Expr::Var(z), f.name));
    }
  }
  return Expr::Map(z, Expr::TupleConstruct(std::move(names),
                                           std::move(values)),
                   std::move(acc));
}

/// Runs the DP on one chain root. Returns nullptr to keep the original.
ExprPtr TryReorder(const Database& db, const PlannerOptions& po,
                   const ExprPtr& e) {
  Chain ch;
  if (!CollectChain(db, e, &ch)) return nullptr;
  if (ch.tables.size() < 3 || ch.tables.size() > kMaxDpTables) return nullptr;
  if (!AttrsUnique(db, ch)) return nullptr;

  ChainPlanner cp(db, po, ch);
  DpEntry best = cp.Best();
  if (best.cost == kInf) return nullptr;

  std::vector<size_t> identity(ch.tables.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  if (best.order == identity) return nullptr;
  double orig = cp.OrderCost(identity);
  if (orig != kInf && best.cost >= orig * kReorderGain) return nullptr;
  return RebuildChain(db, ch, best.order, e);
}

ExprPtr ReorderTree(const Database& db, const PlannerOptions& po,
                    const ExprPtr& e, bool* changed) {
  if (e->kind() == ExprKind::kJoin) {
    ExprPtr nu = TryReorder(db, po, e);
    if (nu != nullptr) {
      *changed = true;
      return nu;
    }
  }
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  bool any = false;
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = ReorderTree(db, po, c, changed);
    any |= nc != c;
    kids.push_back(std::move(nc));
  }
  return any ? e->WithChildren(std::move(kids)) : e;
}

// ---- Annotation walk -------------------------------------------------

class Annotator {
 public:
  Annotator(const Database& db, const PlannerOptions& po, PhysicalPlan* plan)
      : db_(db), po_(po), plan_(plan), est_(db) {}

  void Walk(const ExprPtr& e, int depth) {
    switch (e->kind()) {
      case ExprKind::kGetTable:
        Line(depth, "scan " + e->name(), est_.Estimate(e).rows, -1.0);
        return;
      case ExprKind::kJoin:
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin:
      case ExprKind::kNestJoin: {
        RelEstimate l = est_.Estimate(e->left());
        RelEstimate r = est_.Estimate(e->right());
        RelEstimate self = est_.Estimate(e);
        double out = self.RowsOr(l.RowsOr(kDefaultRows));
        // A correlated operator (predicate references a variable bound
        // outside this node, so the evaluator rebuilds it per outer
        // row) invalidates the static estimates — the bound outer value
        // turns residual conjuncts into selective filters the runtime
        // dispatch can exploit. Never pin an algorithm there.
        std::set<std::string> outer = FreeVars(e->pred());
        outer.erase(e->var());
        outer.erase(e->var2());
        bool correlated = false;
        for (const std::string& v : outer) {
          if (db_.FindTable(v) == nullptr) correlated = true;
        }
        if (correlated) {
          PlanAnnotation pa;
          pa.est_rows = self.rows;
          plan_->annotations.nodes[e.get()] = pa;
          Line(depth,
               std::string(JoinOpName(e->kind())) + "[auto: correlated]",
               self.rows, -1.0);
        } else {
          // Matching rows the algorithm must touch: for join/nestjoin
          // the full match multiset (l × fanout); semijoin/antijoin
          // probes short-circuit at the first hit, so the output is the
          // bound.
          double matches = out;
          if (e->kind() == ExprKind::kJoin ||
              e->kind() == ExprKind::kNestJoin) {
            JoinSelectivity sel = est_.EstimateJoinSelectivity(*e, l, r);
            matches = l.RowsOr(kDefaultRows) * sel.fanout;
          }
          Choice c = ChooseJoin(db_, po_, *e, l, r, out, matches);
          PlanAnnotation pa;
          pa.algorithm = c.algo;
          pa.est_rows = self.rows;
          pa.est_cost = c.cost;
          pa.label = c.label;
          plan_->annotations.nodes[e.get()] = pa;
          plan_->est_cost += c.cost;
          Line(depth,
               std::string(JoinOpName(e->kind())) + "[" + c.label + "]",
               self.rows, c.cost);
        }
        Walk(e->left(), depth + 1);
        Walk(e->right(), depth + 1);
        // Predicate / nestjoin-inner subtrees can hold whole subqueries.
        for (size_t i = 2; i < e->num_children(); ++i) {
          Walk(e->child(i), depth + 1);
        }
        return;
      }
      case ExprKind::kMap:
      case ExprKind::kSelect:
      case ExprKind::kProject:
      case ExprKind::kFlatten:
      case ExprKind::kNest:
      case ExprKind::kUnnest:
      case ExprKind::kProduct:
      case ExprKind::kDivide:
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference: {
        const RelEstimate& self = est_.Estimate(e);
        if (self.known()) {
          PlanAnnotation pa;
          pa.est_rows = self.rows;
          plan_->annotations.nodes[e.get()] = pa;
        }
        Line(depth, OpName(e->kind()), self.rows, -1.0);
        for (const ExprPtr& c : e->children()) Walk(c, depth + 1);
        return;
      }
      default:
        for (const ExprPtr& c : e->children()) Walk(c, depth);
        return;
    }
  }

 private:
  static const char* OpName(ExprKind k) {
    switch (k) {
      case ExprKind::kMap: return "map";
      case ExprKind::kSelect: return "select";
      case ExprKind::kProject: return "project";
      case ExprKind::kFlatten: return "flatten";
      case ExprKind::kNest: return "nest";
      case ExprKind::kUnnest: return "unnest";
      case ExprKind::kProduct: return "product";
      case ExprKind::kDivide: return "divide";
      case ExprKind::kUnion: return "union";
      case ExprKind::kIntersect: return "intersect";
      case ExprKind::kDifference: return "difference";
      default: return "op";
    }
  }

  void Line(int depth, const std::string& head, double est_rows,
            double est_cost) {
    std::string s(static_cast<size_t>(depth) * 2, ' ');
    s += head;
    if (est_rows >= 0.0) s += StrFormat(" est_rows=%.0f", est_rows);
    if (est_cost >= 0.0) s += StrFormat(" est_cost=%.3fms", est_cost / 1e6);
    plan_->lines.push_back(std::move(s));
  }

  const Database& db_;
  const PlannerOptions& po_;
  PhysicalPlan* plan_;
  CardinalityEstimator est_;
};

}  // namespace

const char* PlanStrategyName(PlanStrategy s) {
  return s == PlanStrategy::kCost ? "cost" : "heuristic";
}

std::string PhysicalPlan::Describe() const {
  std::string out = StrFormat("est_cost=%.3fms", est_cost / 1e6);
  if (reordered) out += " (join order changed)";
  out += "\n";
  for (const std::string& l : lines) out += "  " + l + "\n";
  return out;
}

Result<PhysicalPlan> Planner::Plan(const ExprPtr& e) const {
  PhysicalPlan plan;
  plan.root = e;
  if (opts_.reorder_joins) {
    bool changed = false;
    plan.root = ReorderTree(db_, opts_, e, &changed);
    plan.reordered = changed;
  }
  Annotator a(db_, opts_, &plan);
  a.Walk(plan.root, 0);
  return plan;
}

}  // namespace n2j
