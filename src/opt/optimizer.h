#ifndef N2J_OPT_OPTIMIZER_H_
#define N2J_OPT_OPTIMIZER_H_

// Cost-based physical planning (ROADMAP item 1). The paper's rewriter
// (rewrite/) produces the logical join plan; this module decides *how*
// each join-family node runs and in *what order* base-table equi-join
// chains are joined:
//
//   1. Cardinalities are estimated bottom-up from real extent
//      statistics (stats/cardinality.h).
//   2. Every physical alternative of the inventory — nested loop, hash,
//      sort-merge, prebuilt-index probe, membership join — is priced
//      with the calibrated formulas of opt/cost.h; the cheapest wins
//      and is pinned on the node via PlanAnnotations.
//   3. Chains of ≥3 base-table equi-joins are reordered by a
//      Selinger-style dynamic program over (join order × algorithm);
//      the reordered tree is wrapped in a field-order-restoring map so
//      results stay bit-identical to the original plan.
//
// The paper's fixed priority strategy remains available as
// PlanStrategy::kHeuristic (the default), which skips all of this and
// leaves dispatch to EvalOptions::join_algorithm — exactly the pre-
// planner behavior.

#include <memory>
#include <string>
#include <vector>

#include "adl/expr.h"
#include "common/result.h"
#include "exec/plan.h"
#include "opt/cost.h"
#include "storage/database.h"

namespace n2j {

enum class PlanStrategy {
  kHeuristic,  // the paper's priority strategy; no planning pass
  kCost,       // statistics-driven algorithm choice + join reordering
};

const char* PlanStrategyName(PlanStrategy s);

struct PlannerOptions {
  PlanStrategy strategy = PlanStrategy::kHeuristic;
  /// Enable the join-order DP (kCost only).
  bool reorder_joins = true;
  /// Mirror of EvalOptions::pnhl_memory_budget, used to price PNHL.
  size_t pnhl_memory_budget = SIZE_MAX;
  CostConstants costs;
};

/// The planner's output: the (possibly reordered) expression to
/// execute, per-node physical annotations for the evaluator, and a
/// deterministic description for EXPLAIN.
struct PhysicalPlan {
  ExprPtr root;
  PlanAnnotations annotations;
  /// Total estimated cost (calibrated ns) of all priced operators.
  double est_cost = 0.0;
  /// True when the join-order DP changed the join order.
  bool reordered = false;
  /// Pre-order plan lines ("join[hash] est_rows=412 est_cost=0.21ms").
  std::vector<std::string> lines;

  /// Multi-line planner section for QueryReport::Explain().
  std::string Describe() const;
};

class Planner {
 public:
  explicit Planner(const Database& db, PlannerOptions opts = {})
      : db_(db), opts_(opts) {}

  /// Plans `e`. Planning never fails on missing statistics — unknown
  /// cardinalities fall back to explicit defaults — but surfaces
  /// internal inconsistencies as errors.
  Result<PhysicalPlan> Plan(const ExprPtr& e) const;

 private:
  const Database& db_;
  PlannerOptions opts_;
};

}  // namespace n2j

#endif  // N2J_OPT_OPTIMIZER_H_
