#ifndef N2J_OPT_COST_H_
#define N2J_OPT_COST_H_

// Cost formulas for the physical operator inventory, in calibrated
// nanoseconds. The constants were fitted against the checked-in
// trajectory measurements (bench/trajectory/join_algorithms.json,
// fig1_nested_query.json): e.g. the nested-loop semijoin at n=1024
// costs 27.3 ms over 1024² predicate evaluations → ~26 ns per compiled
// predicate evaluation. Absolute values matter less than ratios — the
// planner only compares alternatives for the same node.

#include <cstddef>

namespace n2j {

/// Calibrated per-operation constants (ns).
struct CostConstants {
  double pred_eval = 26.0;    // one compiled predicate evaluation
  double hash_build = 95.0;   // one hash-table insert (key eval + insert)
  double hash_probe = 95.0;   // one probe (key eval + lookup)
  double sort_per_cmp = 12.0; // one comparison inside sort (n·log2 n of them)
  double merge_row = 20.0;    // one row advanced by the merge phase
  double index_probe = 110.0; // one prebuilt-index lookup (key eval + chase)
  double index_chase = 45.0;  // one matching row fetched through the postings
  double emit_row = 30.0;     // one output tuple assembled
};

/// Cardinality inputs: probe/outer rows `l`, build/inner rows `r`,
/// estimated output rows `out`. All costs are monotone in their inputs
/// and safe on zero.
double NestedLoopJoinCost(double l, double r, double out,
                          const CostConstants& c = {});
double HashJoinCost(double l, double r, double out,
                    const CostConstants& c = {});
double SortMergeJoinCost(double l, double r, double out,
                         const CostConstants& c = {});
/// No build side: the index already exists. `matches` = total matching
/// rows fetched through the index over all probes (l × join fanout) —
/// unlike a hash table's grouped buckets, every match is a row-index
/// chase, which is what makes high-fanout keys favour hashing.
double IndexJoinCost(double l, double matches, double out,
                     const CostConstants& c = {});
/// `l_elems` = total probing set elements over all left rows
/// (rows × avg fanout) — the probe side of the membership join.
double MembershipJoinCost(double l_elems, double r, double out,
                          const CostConstants& c = {});
/// PNHL under a memory budget: the build side is hashed in segments of
/// `budget` bytes (`build_bytes` total) and the probe side is rescanned
/// once per segment.
double PnhlCost(double l, double r, double out, double build_bytes,
                size_t budget, const CostConstants& c = {});

}  // namespace n2j

#endif  // N2J_OPT_COST_H_
