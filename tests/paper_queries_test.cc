// End-to-end reproduction of the paper's worked queries (Sections 2-6):
// Example Queries 1-6 run through the full pipeline (parse → translate →
// rewrite → execute) and are checked against nested-loop evaluation.

#include <gtest/gtest.h>

#include "adl/analysis.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;
using testutil::HasNestedBaseTable;

bool ContainsKind(const ExprPtr& e, ExprKind kind) {
  bool found = false;
  VisitPreOrder(e, [&](const ExprPtr& n) {
    if (n->kind() == kind) found = true;
  });
  return found;
}

class PaperQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplierPartConfig config;
    config.seed = 21;
    config.num_parts = 50;
    config.num_suppliers = 20;
    config.parts_per_supplier = 6;
    config.red_fraction = 0.25;
    config.match_fraction = 0.85;
    config.num_deliveries = 30;
    db_ = MakeSupplierPartDatabase(config);
    engine_ = std::make_unique<QueryEngine>(db_.get());
    // A referentially-intact variant for queries that dereference part
    // pointers (dangling oids would otherwise fail the deref).
    config.match_fraction = 1.0;
    clean_db_ = MakeSupplierPartDatabase(config);
    clean_engine_ = std::make_unique<QueryEngine>(clean_db_.get());
  }

  /// Runs the query; checks the optimized plan against the naive
  /// translation under nested-loop evaluation; returns the report.
  QueryReport RunChecked(const std::string& oosql) {
    Result<QueryReport> report = engine_->Run(oosql);
    EXPECT_TRUE(report.ok()) << oosql << "\n"
                             << report.status().ToString();
    if (!report.ok()) std::abort();
    EvalOptions nl;
    nl.use_hash_joins = false;
    Value expected = EvalExpr(*db_, report->translated, nl);
    EXPECT_EQ(expected, report->result)
        << oosql << "\nplan: " << AlgebraStr(report->optimized);
    return *report;
  }

  QueryReport RunCheckedClean(const std::string& oosql) {
    Result<QueryReport> report = clean_engine_->Run(oosql);
    EXPECT_TRUE(report.ok()) << oosql << "\n"
                             << report.status().ToString();
    if (!report.ok()) std::abort();
    EvalOptions nl;
    nl.use_hash_joins = false;
    Value expected = EvalExpr(*clean_db_, report->translated, nl);
    EXPECT_EQ(expected, report->result)
        << oosql << "\nplan: " << AlgebraStr(report->optimized);
    return *report;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<Database> clean_db_;
  std::unique_ptr<QueryEngine> clean_engine_;
};

TEST_F(PaperQueriesTest, ExampleQuery1_NestingInSelectClause) {
  // "Select the names of the suppliers together with the names of the
  // red parts supplied."
  QueryReport r = RunCheckedClean(
      "select (sname = s.sname, "
      "        pnames = select p.pid.pname from p in s.parts "
      "                 where p.pid.color = \"red\") "
      "from s in SUPPLIER");
  ASSERT_GT(r.result.set_size(), 0u);
  for (const Value& t : r.result.elements()) {
    EXPECT_NE(t.FindField("sname"), nullptr);
    EXPECT_TRUE(t.FindField("pnames")->is_set());
  }
}

TEST_F(PaperQueriesTest, ExampleQuery2_NestingInFromClause) {
  // "Select all deliveries that concern supplier s1 with date ..." —
  // from-clause composition must be merged away (no nested sfw-block).
  QueryReport r = RunChecked(
      "select d from d in (select e from e in DELIVERY "
      "where e.supplier.sname = \"s1\") where d.date > 940000");
  // After merging, a single selection sits directly on DELIVERY.
  bool merged = true;
  VisitPreOrder(r.optimized, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kSelect &&
        n->child(0)->kind() == ExprKind::kSelect) {
      merged = false;
    }
  });
  EXPECT_TRUE(merged) << AlgebraStr(r.optimized);
}

TEST_F(PaperQueriesTest, ExampleQuery3_1_SetComparisonBetweenBlocks) {
  // "Suppliers supplying all parts supplied by supplier s1."
  QueryReport r = RunChecked(
      "select s.sname from s in SUPPLIER where "
      "s.parts supseteq "
      "(select x from t in SUPPLIER, x in t.parts "
      " where t.sname = \"s1\")");
  // s1 itself trivially qualifies.
  EXPECT_TRUE(r.result.SetContains(Value::String("s1")))
      << r.result.ToString();
  // The subquery is uncorrelated: per Section 3 it is a constant, so the
  // engine hoists it into a let binding instead of joining.
  bool has_let = false;
  VisitPreOrder(r.optimized, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kLet) has_let = true;
  });
  EXPECT_TRUE(has_let) << AlgebraStr(r.optimized);
  EXPECT_FALSE(HasNestedBaseTable(r.optimized));
}

TEST_F(PaperQueriesTest, ExampleQuery3_2_QuantifierOverSetAttribute) {
  // "Deliveries that include red parts" — iteration over the clustered
  // supply attribute stays nested (paper's explicit non-goal), but the
  // query must run and agree with nested loops.
  QueryReport r = RunChecked(
      "select d from d in DELIVERY where "
      "exists x in d.supply : x.part.color = \"red\"");
  for (const Value& d : r.result.elements()) {
    bool has_red = false;
    for (const Value& s : d.FindField("supply")->elements()) {
      Result<Value> part = db_->Deref(s.FindField("part")->oid_value());
      ASSERT_TRUE(part.ok());
      if (part->FindField("color")->string_value() == "red") has_red = true;
    }
    EXPECT_TRUE(has_red);
  }
}

TEST_F(PaperQueriesTest, ExampleQuery4_ReferentialIntegrity) {
  // "Suppliers supplying non-existing parts" ⇒ µ + antijoin.
  QueryReport r = RunChecked(
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid");
  EXPECT_TRUE(ContainsKind(r.optimized, ExprKind::kUnnest))
      << AlgebraStr(r.optimized);
  EXPECT_TRUE(ContainsKind(r.optimized, ExprKind::kAntiJoin));
  EXPECT_FALSE(HasNestedBaseTable(r.optimized));
  // match_fraction < 1 guarantees violations exist.
  EXPECT_GT(r.result.set_size(), 0u);
}

TEST_F(PaperQueriesTest, ExampleQuery5_SuppliersSupplyingRedParts) {
  // σ[s : ∃x∈s.parts·∃p∈PART·x=p[pid] ∧ p.color="red"](SUPPLIER)
  //   ⇒ SUPPLIER ⋉ σ[p.color="red"](PART)   (after µ on parts).
  QueryReport r = RunChecked(
      "select s from s in SUPPLIER where "
      "exists x in s.parts : exists p in PART : "
      "x.pid = p.pid and p.color = \"red\"");
  EXPECT_TRUE(ContainsKind(r.optimized, ExprKind::kSemiJoin))
      << AlgebraStr(r.optimized);
  EXPECT_FALSE(HasNestedBaseTable(r.optimized));
  EXPECT_GT(r.result.set_size(), 0u);
}

TEST_F(PaperQueriesTest, ExampleQuery6_NestjoinForSelectClauseNesting) {
  // "Supplier names together with the parts supplied" — not expressible
  // as a flat relational join (dangling suppliers must keep ∅);
  // the engine must use the nestjoin.
  QueryReport r = RunChecked(
      "select (sname = s.sname, "
      "        partssuppl = select p from p in PART "
      "                     where p[pid] in s.parts) "
      "from s in SUPPLIER");
  EXPECT_TRUE(ContainsKind(r.optimized, ExprKind::kNestJoin))
      << AlgebraStr(r.optimized);
  EXPECT_FALSE(HasNestedBaseTable(r.optimized));
  // All suppliers present, including any with zero matching parts.
  EXPECT_EQ(r.result.set_size(),
            EvalExpr(*db_, Expr::Table("SUPPLIER")).set_size());
}

TEST_F(PaperQueriesTest, DeliveriesViaPathExpressions) {
  // Path expressions with double dereference exercise materialize.
  QueryReport r = RunChecked(
      "select (who = d.supplier.sname, when = d.date) "
      "from d in DELIVERY where d.supplier.sname <> \"nobody\"");
  EXPECT_EQ(r.result.set_size(), 30u);
}

// ---------------------------------------------------------------------
// Shredded-backend goldens (ISSUE 7): the paper's worked queries must
// produce bit-identical results when evaluated over flat columnar
// relations instead of nested loops.
// ---------------------------------------------------------------------

TEST_F(PaperQueriesTest, ShreddedBackend_Fig1_NestedSelectClause) {
  const std::string q =
      "select (sname = s.sname, "
      "        pnames = select p.pid.pname from p in s.parts "
      "                 where p.pid.color = \"red\") "
      "from s in SUPPLIER";
  QueryReport nested = RunCheckedClean(q);
  QueryEngine shredded(clean_db_.get());
  shredded.eval_options().backend = Backend::kShredded;
  Result<QueryReport> r = shredded.Run(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result, nested.result);
  EXPECT_FALSE(r->shred_plan.empty());
}

TEST_F(PaperQueriesTest, ShreddedBackend_Q4_ReferentialIntegrity) {
  const std::string q =
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid";
  QueryReport nested = RunChecked(q);
  QueryEngine shredded(db_.get());
  shredded.eval_options().backend = Backend::kShredded;
  Result<QueryReport> r = shredded.Run(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result, nested.result);
  EXPECT_GT(r->result.set_size(), 0u);
}

TEST_F(PaperQueriesTest, ShreddedBackend_Q6_NestjoinShape) {
  const std::string q =
      "select (sname = s.sname, "
      "        partssuppl = select p from p in PART "
      "                     where p[pid] in s.parts) "
      "from s in SUPPLIER";
  QueryReport nested = RunChecked(q);
  QueryEngine shredded(db_.get());
  shredded.eval_options().backend = Backend::kShredded;
  Result<QueryReport> r = shredded.Run(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result, nested.result);
  // Dangling suppliers keep their ∅ through stitching.
  EXPECT_EQ(r->result.set_size(),
            EvalExpr(*db_, Expr::Table("SUPPLIER")).set_size());
}

TEST_F(PaperQueriesTest, ExplainOutputMentionsRulesAndPlans) {
  Result<QueryReport> r = engine_->Run(
      "select s.eid from s in SUPPLIER where "
      "exists z in s.parts : not exists p in PART : z.pid = p.pid");
  ASSERT_TRUE(r.ok());
  std::string explain = r->Explain();
  EXPECT_NE(explain.find("translated:"), std::string::npos);
  EXPECT_NE(explain.find("optimized:"), std::string::npos);
  EXPECT_NE(explain.find("UnnestAttribute"), std::string::npos) << explain;
}

}  // namespace
}  // namespace n2j
