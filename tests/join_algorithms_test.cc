// Physical join alternatives (Section 6): the same logical join must
// produce identical results under nested-loop, hash, sort-merge and
// index implementations — "the join can be implemented as an index
// nested-loop join, a sort-merge join, a hash join, etc."

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace n2j {
namespace {

using testutil::EvalExpr;

class JoinAlgorithmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    XYConfig config;
    config.seed = 41;
    config.x_rows = 60;
    config.y_rows = 80;
    config.key_domain = 12;
    ASSERT_TRUE(AddRandomXY(db_.get(), config).ok());
    ASSERT_TRUE(db_->CreateIndex("Y", "a").ok());
  }

  static EvalOptions Opts(JoinAlgorithm algo) {
    EvalOptions opts;
    opts.join_algorithm = algo;
    return opts;
  }

  ExprPtr EqPred() {
    return Expr::Eq(Expr::Access(Expr::Var("x"), "a"),
                    Expr::Access(Expr::Var("y"), "a"));
  }
  ExprPtr ResidualPred() {
    return Expr::And(EqPred(),
                     Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "e"),
                               Expr::Const(Value::Int(2))));
  }

  std::unique_ptr<Database> db_;
};

// Every algorithm × every join kind × plain/residual predicates.
class JoinAlgoParam
    : public JoinAlgorithmsTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(JoinAlgoParam, AgreesWithNestedLoop) {
  JoinAlgorithm algo =
      static_cast<JoinAlgorithm>(std::get<0>(GetParam()));
  int kind_index = std::get<1>(GetParam());

  for (ExprPtr pred : {EqPred(), ResidualPred()}) {
    ExprPtr join;
    switch (kind_index) {
      case 0: {
        // Full joins over X/Y would collide on attribute a; rename the
        // left key first and equi-join on it.
        ExprPtr renamed = Expr::Map(
            "x0",
            Expr::TupleConstruct({"xa"},
                                 {Expr::Access(Expr::Var("x0"), "a")}),
            Expr::Table("X"));
        ExprPtr jpred = Expr::Eq(Expr::Access(Expr::Var("x"), "xa"),
                                 Expr::Access(Expr::Var("y"), "a"));
        if (pred->Equals(*ResidualPred())) {
          jpred = Expr::And(
              jpred, Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "e"),
                               Expr::Const(Value::Int(2))));
        }
        join = Expr::Join(renamed, Expr::Table("Y"), "x", "y", jpred);
        break;
      }
      case 1:
        join = Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              pred);
        break;
      case 2:
        join = Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              pred);
        break;
      default:
        join = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                              pred, "ys");
        break;
    }
    EvalOptions nl;
    nl.use_hash_joins = false;
    Value expected = EvalExpr(*db_, join, nl);
    Value actual = EvalExpr(*db_, join, Opts(algo));
    EXPECT_EQ(expected, actual) << "algo=" << static_cast<int>(algo)
                                << " kind=" << kind_index;
  }
}

std::string JoinAlgoParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kAlgos[] = {"Hash", "SortMerge", "Index",
                                 "NestedLoop"};
  static const char* kKinds[] = {"Join", "SemiJoin", "AntiJoin",
                                 "NestJoin"};
  return std::string(kAlgos[std::get<0>(info.param)]) +
         kKinds[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, JoinAlgoParam,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(JoinAlgorithm::kHash),
                          static_cast<int>(JoinAlgorithm::kSortMerge),
                          static_cast<int>(JoinAlgorithm::kIndex)),
        ::testing::Range(0, 4)),
    JoinAlgoParamName);

TEST_F(JoinAlgorithmsTest, SortMergeCountsSortedRows) {
  // Tables are sets: duplicate generated rows collapse, so compare
  // against the canonical set sizes.
  size_t nx = EvalExpr(*db_, Expr::Table("X")).set_size();
  size_t ny = EvalExpr(*db_, Expr::Table("Y")).set_size();
  Evaluator ev(*db_, Opts(JoinAlgorithm::kSortMerge));
  ASSERT_TRUE(ev.Eval(Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"),
                                     "x", "y", EqPred()))
                  .ok());
  EXPECT_EQ(ev.stats().rows_sorted, nx + ny);
  EXPECT_EQ(ev.stats().hash_inserts, 0u);
}

TEST_F(JoinAlgorithmsTest, IndexJoinProbesTheIndex) {
  size_t nx = EvalExpr(*db_, Expr::Table("X")).set_size();
  Evaluator ev(*db_, Opts(JoinAlgorithm::kIndex));
  ASSERT_TRUE(ev.Eval(Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"),
                                     "x", "y", EqPred()))
                  .ok());
  EXPECT_EQ(ev.stats().index_probes, nx);
  EXPECT_EQ(ev.stats().hash_inserts, 0u);  // no build phase at all
}

TEST_F(JoinAlgorithmsTest, AutoPrefersIndexThenHash) {
  // With an index on Y.a, kAuto probes it ...
  Evaluator ev(*db_, Opts(JoinAlgorithm::kAuto));
  ASSERT_TRUE(ev.Eval(Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"),
                                     "x", "y", EqPred()))
                  .ok());
  EXPECT_GT(ev.stats().index_probes, 0u);
  EXPECT_EQ(ev.stats().hash_inserts, 0u);
  // ... and falls back to hash when the right side has no index.
  Evaluator ev2(*db_, Opts(JoinAlgorithm::kAuto));
  ASSERT_TRUE(ev2.Eval(Expr::SemiJoin(Expr::Table("Y"), Expr::Table("X"),
                                      "y", "x", EqPred()))
                  .ok());
  EXPECT_EQ(ev2.stats().index_probes, 0u);
  EXPECT_GT(ev2.stats().hash_inserts, 0u);
}

TEST_F(JoinAlgorithmsTest, IndexJoinFallsBackToHashWithoutIndex) {
  // X has no index on a; right side X → falls back to a hash join.
  Evaluator ev(*db_, Opts(JoinAlgorithm::kIndex));
  ASSERT_TRUE(ev.Eval(Expr::SemiJoin(Expr::Table("Y"), Expr::Table("X"),
                                     "y", "x", EqPred()))
                  .ok());
  EXPECT_EQ(ev.stats().index_probes, 0u);
  EXPECT_GT(ev.stats().hash_inserts, 0u);
}

TEST_F(JoinAlgorithmsTest, IndexJoinRequiresPlainAttributeKey) {
  // Right key y.a + 0 is not a plain attribute: index unusable, hash
  // fallback still answers correctly.
  ExprPtr pred = Expr::Eq(
      Expr::Access(Expr::Var("x"), "a"),
      Expr::Bin(BinOp::kAdd, Expr::Access(Expr::Var("y"), "a"),
                Expr::Const(Value::Int(0))));
  EvalOptions nl;
  nl.use_hash_joins = false;
  ExprPtr join =
      Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y", pred);
  Value expected = EvalExpr(*db_, join, nl);
  Evaluator ev(*db_, Opts(JoinAlgorithm::kIndex));
  Result<Value> actual = ev.Eval(join);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected, *actual);
  EXPECT_EQ(ev.stats().index_probes, 0u);
}

TEST_F(JoinAlgorithmsTest, MembershipJoinEngagesForInPredicates) {
  // f(y) ∈ x.c: no equi key, but hashable by the membership join.
  ExprPtr pred = Expr::Bin(
      BinOp::kIn,
      Expr::TupleConstruct({"d"}, {Expr::Access(Expr::Var("y"), "e")}),
      Expr::Access(Expr::Var("x"), "c"));
  for (int kind = 1; kind <= 3; ++kind) {
    ExprPtr join;
    if (kind == 1) {
      join = Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                            pred);
    } else if (kind == 2) {
      join = Expr::AntiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                            pred);
    } else {
      join = Expr::NestJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y",
                            pred, "ys");
    }
    EvalOptions nl;
    nl.use_hash_joins = false;
    Value expected = EvalExpr(*db_, join, nl);
    Evaluator ev(*db_);
    Result<Value> actual = ev.Eval(join);
    ASSERT_TRUE(actual.ok()) << kind;
    EXPECT_EQ(expected, *actual) << kind;
    // It really hashed: probes happened, and far fewer predicate
    // evaluations than |X|·|Y|.
    EXPECT_GT(ev.stats().hash_inserts, 0u) << kind;
    EXPECT_GT(ev.stats().hash_probes, 0u) << kind;
    EXPECT_EQ(ev.stats().predicate_evals, 0u) << kind;
  }
}

TEST_F(JoinAlgorithmsTest, MembershipJoinHandlesResidualConjuncts) {
  ExprPtr pred = Expr::And(
      Expr::Bin(BinOp::kIn,
                Expr::TupleConstruct({"d"},
                                     {Expr::Access(Expr::Var("y"), "e")}),
                Expr::Access(Expr::Var("x"), "c")),
      Expr::Bin(BinOp::kGe, Expr::Access(Expr::Var("y"), "a"),
                Expr::Access(Expr::Var("x"), "a")));
  ExprPtr join =
      Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y", pred);
  EvalOptions nl;
  nl.use_hash_joins = false;
  Value expected = EvalExpr(*db_, join, nl);
  Evaluator ev(*db_);
  Result<Value> actual = ev.Eval(join);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected, *actual);
  EXPECT_GT(ev.stats().predicate_evals, 0u);  // residual evaluated
}

TEST_F(JoinAlgorithmsTest, NonEquiPredicatesFallBackEverywhere) {
  ExprPtr pred = Expr::Bin(BinOp::kLt, Expr::Access(Expr::Var("x"), "a"),
                           Expr::Access(Expr::Var("y"), "e"));
  ExprPtr join =
      Expr::SemiJoin(Expr::Table("X"), Expr::Table("Y"), "x", "y", pred);
  EvalOptions nl;
  nl.use_hash_joins = false;
  Value expected = EvalExpr(*db_, join, nl);
  for (JoinAlgorithm algo : {JoinAlgorithm::kHash, JoinAlgorithm::kSortMerge,
                             JoinAlgorithm::kIndex}) {
    EXPECT_EQ(expected, EvalExpr(*db_, join, Opts(algo)))
        << static_cast<int>(algo);
  }
}

TEST_F(JoinAlgorithmsTest, IndexIgnoresRowsInsertedAfterBuild) {
  // Documented behaviour: indexes are built after load.
  ASSERT_TRUE(db_->Insert("Y", Value::Tuple({Field("a", Value::Int(99)),
                                             Field("e", Value::Int(1))}))
                  .ok());
  const HashIndex* index = db_->FindIndex("Y", "a");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(Value::Int(99)), nullptr);
  ASSERT_TRUE(db_->CreateIndex("Y", "a").ok());  // rebuild picks it up
  EXPECT_NE(db_->FindIndex("Y", "a")->Lookup(Value::Int(99)), nullptr);
}

TEST_F(JoinAlgorithmsTest, CreateIndexValidation) {
  EXPECT_FALSE(db_->CreateIndex("NOPE", "a").ok());
  EXPECT_FALSE(db_->CreateIndex("Y", "nope").ok());
}

}  // namespace
}  // namespace n2j
