// The grammar-driven generator's contract: every generated query must
// clear the full front end (parse → typecheck → translate) — rejection
// of generator output is a bug in one or the other. Malformed mode and
// the CSV loader's error paths must degrade to Status, never crash.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "fuzz/query_gen.h"
#include "oosql/translate.h"
#include "storage/csv_loader.h"
#include "storage/datagen.h"

namespace n2j {
namespace {

using fuzz::GenOptions;
using fuzz::QueryGenerator;

std::unique_ptr<Database> FuzzDb(uint64_t seed) {
  FuzzTablesConfig config;
  config.seed = seed;
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(AddRandomFuzzTables(db.get(), config).ok());
  return db;
}

TEST(FuzzGeneratorTest, GeneratedQueriesAlwaysTranslate) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    auto db = FuzzDb(seed);
    QueryGenerator gen(*db, seed * 31 + 7);
    std::string q = gen.Generate();
    Translator tr(db->schema(), db.get());
    Result<TypedExpr> typed = tr.TranslateString(q);
    ASSERT_TRUE(typed.ok())
        << "seed " << seed << "\nquery: " << q << "\n"
        << typed.status().ToString();
  }
}

TEST(FuzzGeneratorTest, DeterministicInSeed) {
  auto db = FuzzDb(11);
  QueryGenerator a(*db, 99);
  QueryGenerator b(*db, 99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Generate(), b.Generate());
  }
  QueryGenerator c(*db, 100);
  bool all_equal = true;
  QueryGenerator a2(*db, 99);
  for (int i = 0; i < 20; ++i) {
    if (a2.Generate() != c.Generate()) all_equal = false;
  }
  EXPECT_FALSE(all_equal) << "different seeds produced identical streams";
}

TEST(FuzzGeneratorTest, CoversTheGrammar) {
  // Over many seeds the generator must exercise every construct family
  // the paper's rewrites fire on.
  std::string all;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    auto db = FuzzDb(seed);
    QueryGenerator gen(*db, seed);
    all += gen.Generate();
    all += '\n';
  }
  for (const char* needle :
       {"exists", "forall", "subset", "subseteq", "supset", "supseteq",
        "count(", "sum(", "isempty(", " in ", " union ", " intersect ",
        " minus ", "select", "where", "with", "contains"}) {
    EXPECT_NE(all.find(needle), std::string::npos)
        << "construct never generated: " << needle;
  }
}

TEST(FuzzGeneratorTest, MalformedQueriesNeverCrashTheEngine) {
  for (uint64_t seed = 0; seed < 400; ++seed) {
    auto db = FuzzDb(seed % 13);
    QueryGenerator gen(*db, seed);
    std::string q = gen.GenerateMalformed();
    QueryEngine engine(db.get());
    // Either a graceful Status or (for a still-valid mutant) success;
    // the assertion is simply that we get *here* for every input.
    Result<QueryReport> r = engine.Run(q);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().ToString().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// CSV loader rejection paths, driven by the same mutation idea.

TEST(FuzzGeneratorTest, MalformedCsvNeverCrashesTheLoader) {
  const std::string valid =
      "a,b,tag\n1,2,red\n3,4,blue\n5,6,\"quo\"\"ted\"\n";
  Rng rng(2024);
  for (int round = 0; round < 400; ++round) {
    std::string csv = valid;
    int mutations = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < mutations && !csv.empty(); ++i) {
      switch (rng.Uniform(0, 3)) {
        case 0:
          csv.erase(static_cast<size_t>(
                        rng.Uniform(0, static_cast<int64_t>(csv.size()) - 1)),
                    static_cast<size_t>(rng.Uniform(1, 4)));
          break;
        case 1: {
          static const char kJunk[] = "\",\n;x\t\0\xff";
          csv.insert(csv.begin() +
                         static_cast<long>(rng.Uniform(
                             0, static_cast<int64_t>(csv.size()))),
                     kJunk[rng.Uniform(0, 7)]);
          break;
        }
        case 2:
          csv.resize(static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(csv.size()) - 1)));
          break;
        default:
          std::swap(csv[static_cast<size_t>(rng.Uniform(
                        0, static_cast<int64_t>(csv.size()) - 1))],
                    csv[static_cast<size_t>(rng.Uniform(
                        0, static_cast<int64_t>(csv.size()) - 1))]);
          break;
      }
    }
    Database db;
    ASSERT_TRUE(db.CreateTable("T", Type::Tuple({{"a", Type::Int()},
                                                 {"b", Type::Int()},
                                                 {"tag", Type::String()}}))
                    .ok());
    Result<size_t> r = LoadCsv(&db, "T", csv);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().ToString().empty());
    }
  }
}

TEST(FuzzGeneratorTest, CsvLoaderRejectsStructuralErrors) {
  auto fresh = [] {
    auto db = std::make_unique<Database>();
    EXPECT_TRUE(db->CreateTable("T", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()}}))
                    .ok());
    return db;
  };
  // Wrong arity.
  EXPECT_FALSE(LoadCsv(fresh().get(), "T", "a,b\n1,2,3\n").ok());
  // Bad int.
  EXPECT_FALSE(LoadCsv(fresh().get(), "T", "a,b\n1,xyz\n").ok());
  // Header name mismatch.
  EXPECT_FALSE(LoadCsv(fresh().get(), "T", "a,wrong\n1,2\n").ok());
  // Unterminated quote.
  EXPECT_FALSE(LoadCsv(fresh().get(), "T", "a,b\n\"1,2\n").ok());
  // Unknown table.
  EXPECT_FALSE(LoadCsv(fresh().get(), "NoSuch", "a,b\n1,2\n").ok());
}

}  // namespace
}  // namespace n2j
